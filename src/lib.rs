//! # query-reranking
//!
//! Umbrella crate for the *Query Reranking As A Service* reproduction
//! (Asudeh, Zhang, Das — VLDB 2016). Re-exports every subsystem crate so
//! examples and downstream users need a single dependency:
//!
//! * [`types`] — tuples, schemas, intervals, conjunctive queries,
//! * [`ranking`] — monotonic user ranking functions and contour solvers,
//! * [`server`] — the simulated hidden-database top-k search interface,
//! * [`datagen`] — synthetic datasets and query workloads,
//! * [`core`] — the reranking algorithms (1D/MD baseline, binary, RERANK),
//! * [`knowledge`] — the sharded cross-session knowledge plane (response
//!   replay, drained-region synthesis, exact result streams) with epoch
//!   invalidation,
//! * [`exec`] — dependency-free structured concurrency (scoped thread
//!   pool, bounded MPMC channels, cancellation, deterministic immediate
//!   mode),
//! * [`obs`] — the observability plane: typed events, lock-striped
//!   metrics, and the fleet monitor for predicted-vs-actual spend,
//! * [`service`] — the thread-safe "as a service" facade, with the
//!   concurrent `serve_batch` front-end and parallel federation,
//! * [`edge`] — the std-only HTTP/1.1 wire layer: the admission-controlled
//!   server front door and the `SearchInterface` client adapter.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use qrs_core as core;
pub use qrs_datagen as datagen;
pub use qrs_edge as edge;
pub use qrs_exec as exec;
pub use qrs_knowledge as knowledge;
pub use qrs_obs as obs;
pub use qrs_ranking as ranking;
pub use qrs_server as server;
pub use qrs_service as service;
pub use qrs_types as types;
