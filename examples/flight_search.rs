//! The paper's motivating 1D scenario (§1/§3): flight search sites let you
//! *filter* on layover-style attributes but not *rank* by them. Here a user
//! wants flights ordered by taxi-out time (tarmac agony), which the site's
//! interface cannot sort by — the reranking service does it with a handful
//! of queries, and we compare the three §3 algorithms' bills.
//!
//! ```text
//! cargo run --release --example flight_search
//! ```

use query_reranking::core::{OneDCursor, OneDStrategy, RerankParams, SharedState};
use query_reranking::datagen::flights;
use query_reranking::datagen::flights::attr;
use query_reranking::server::{SearchInterface, SimServer, SystemRank};
use query_reranking::types::{CatPredicate, Direction, Interval, Query};

fn main() {
    let n = 60_000;
    let data = flights(n, 7);
    // The site ranks by its own blend (SR1 from the paper's experiments).
    let system = SystemRank::linear("SR1", vec![(attr::AIR_TIME, 0.3), (attr::TAXI_IN, 1.0)]);
    let k = 10;

    // User query: one specific carrier, mid-range distance; rank by
    // ascending taxi-out — unsupported by the site.
    let sel = Query::all()
        .and_cat(CatPredicate::eq(
            query_reranking::datagen::flights::cat::CARRIER,
            2,
        ))
        .and_range(attr::DISTANCE, Interval::closed(200.0, 1_500.0));

    println!("top-5 flights by taxi-out (exact), per algorithm:\n");
    for strategy in OneDStrategy::ALL {
        let server = SimServer::new(data.clone(), system.clone(), k);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(n, k));
        let mut cur = OneDCursor::over(attr::TAXI_OUT, Direction::Asc, sel.clone(), strategy);
        let mut rows = Vec::new();
        for _ in 0..5 {
            match cur
                .next(&server, &mut st)
                .expect("offline sim server does not fail")
            {
                Some(t) => rows.push((t.ord(attr::TAXI_OUT), t.ord(attr::DISTANCE))),
                None => break,
            }
        }
        println!(
            "{:<12} cost = {:>3} queries",
            strategy.label(),
            server.queries_issued()
        );
        for (i, (taxi, dist)) in rows.iter().enumerate() {
            println!(
                "   #{} taxi_out = {taxi:>5.1} min  distance = {dist:>5.0} mi",
                i + 1
            );
        }
        println!();
    }
    println!(
        "All three produce identical rankings; they differ only in how many\n\
         queries they spend against the site's top-{k} interface."
    );
}
