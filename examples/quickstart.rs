//! Quickstart: stand up a hidden database, wrap it in a reranking service,
//! and query it under a ranking function the database does not support.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use query_reranking::core::MdOptions;
use query_reranking::datagen::autos;
use query_reranking::ranking::LinearRank;
use query_reranking::server::{SimServer, SystemRank};
use query_reranking::service::{Algorithm, RerankService};
use query_reranking::types::{Direction, Query};
use std::sync::Arc;

fn main() {
    // 1. The "hidden" web database: 13k used-car listings, a top-15
    //    interface, and a proprietary ranking we know nothing about.
    let listings = autos(13_169, 42);
    let schema = Arc::clone(listings.schema());
    let server = SimServer::new(listings, SystemRank::pseudo_random(7), 15);

    // 2. The third-party reranking service.
    let service = RerankService::new(Arc::new(server), 13_169);

    // 3. A user preference the site does not offer: cheap, low-mileage,
    //    *recent* cars, weighted — i.e. minimize
    //    0.5·price + 0.3·mileage − 40000·(year - 1993)/…, expressed as a
    //    monotonic linear function with a descending year preference.
    let price = schema.attr_by_name("price").unwrap();
    let mileage = schema.attr_by_name("mileage").unwrap();
    let year = schema.attr_by_name("year").unwrap();
    let rank = Arc::new(LinearRank::new(vec![
        (price, Direction::Asc, 0.5),
        (mileage, Direction::Asc, 0.08),
        (year, Direction::Desc, 900.0),
    ]));

    // 4. Open a session (the builder preflights the algorithm choice and
    //    the server's capabilities), stream the exact top-10, and report
    //    the query bill.
    let mut session = service
        .session(Query::all(), rank)
        .algorithm(Algorithm::Md(MdOptions::rerank()))
        .open()
        .expect("MD-RERANK needs no optional server capability");
    println!("rank | price    | mileage  | year | score");
    let (rows, err) = session.top(10);
    assert!(err.is_none(), "budget is unlimited here: {err:?}");
    for r in rows {
        println!(
            "{:>4} | {:>8.0} | {:>8.0} | {:>4.0} | {:>9.1}",
            r.rank,
            r.tuple.ord(price),
            r.tuple.ord(mileage),
            r.tuple.ord(year),
            r.score,
        );
    }
    println!(
        "\nexact top-10 under a custom ranking cost {} queries to the site \
         (of {} total issued by the service so far)",
        session.queries_spent(),
        service.queries_issued()
    );
    let (hist, d1, dmd) = service.knowledge();
    println!("service knowledge: {hist} tuples in history, {d1} 1D dense intervals, {dmd} MD dense boxes");
}
