//! The Blue Nile scenario (§1, §6): the catalog ranks by *descending price
//! per carat*; a shopper wants the opposite — most carat per dollar — plus a
//! proportions-based ranking ("summation of depth and table percent") the
//! site cannot express at all. MD-RERANK answers both exactly; TA over
//! 1D-RERANK is the comparator. A query budget mimics API rate limits.
//!
//! ```text
//! cargo run --release --example diamond_shopper
//! ```

use query_reranking::core::md::ta::SortedAccess;
use query_reranking::core::MdOptions;
use query_reranking::datagen::diamonds;
use query_reranking::datagen::diamonds::attr;
use query_reranking::ranking::{LinearRank, RankFn, RatioRank};
use query_reranking::server::{SimServer, SystemRank};
use query_reranking::service::{Algorithm, RerankService};
use query_reranking::types::{Interval, Query};
use std::sync::Arc;

fn main() {
    let catalog = diamonds(117_641, 9);
    let server = SimServer::new(
        catalog,
        SystemRank::ratio_desc(attr::PRICE, attr::CARAT),
        30,
    );
    let service = RerankService::new(Arc::new(server), 117_641).with_budget(5_000);

    // Shopper filter: around one carat, sane prices.
    let sel = Query::all()
        .and_range(attr::CARAT, Interval::closed(0.9, 1.6))
        .and_range(attr::PRICE, Interval::closed(1_000.0, 20_000.0));

    // Preference 1: maximize carat per dollar (minimize price per carat) —
    // the exact opposite of the site's ordering.
    let value_rank: Arc<dyn RankFn> = Arc::new(RatioRank::minimize(attr::PRICE, attr::CARAT));
    // Preference 2: the paper's "depth + table percent" sum.
    let proportions: Arc<dyn RankFn> = Arc::new(LinearRank::asc(vec![
        (attr::DEPTH, 1.0),
        (attr::TABLE, 1.0),
    ]));

    for (label, rank) in [
        ("best value (min price/carat)", Arc::clone(&value_rank)),
        ("best proportions (min depth+table)", proportions),
    ] {
        for (algo_label, algo) in [
            ("MD-RERANK", Algorithm::Md(MdOptions::rerank())),
            (
                "TA over 1D-RERANK",
                Algorithm::Ta(SortedAccess::OneD(
                    query_reranking::core::OneDStrategy::Rerank,
                )),
            ),
        ] {
            let mut s = service
                .session(sel.clone(), Arc::clone(&rank))
                .algorithm(algo)
                .open()
                .expect("both algorithms run on a bare top-k interface");
            // `top` keeps the tuples fetched before a budget trip: the
            // shopper sees whatever the rate limit allowed, plus the error.
            let (rows, err) = s.top(5);
            println!("\n{label} via {algo_label} — {} queries", s.queries_spent());
            for r in rows {
                println!(
                    "  #{} carat {:.2}  price ${:>7.0}  $/ct {:>6.0}  depth {:.3} table {:.3}",
                    r.rank,
                    r.tuple.ord(attr::CARAT),
                    r.tuple.ord(attr::PRICE),
                    r.tuple.ord(attr::PRICE) / r.tuple.ord(attr::CARAT),
                    r.tuple.ord(attr::DEPTH),
                    r.tuple.ord(attr::TABLE),
                );
            }
            if let Some(e) = err {
                println!("  … stopped early by the budget: {e}");
            }
        }
    }
    println!(
        "\ntotal spend against the site: {} queries (budget 5000)",
        service.queries_issued()
    );
}
