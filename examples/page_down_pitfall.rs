//! Why the "just fetch h·k tuples and rerank locally" shortcut (§1) is not a
//! reranking service: when the site's proprietary ranking disagrees with the
//! user's, paging returns the *wrong* tuples and the error is unknowable
//! without crawling. This example measures its recall against the exact
//! answer produced by MD-RERANK at a fraction of the crawl cost.
//!
//! ```text
//! cargo run --release --example page_down_pitfall
//! ```

use query_reranking::core::baselines::{page_down_rerank, recall_at_h};
use query_reranking::core::{MdCursor, MdOptions, RerankParams, SharedState};
use query_reranking::datagen::synthetic::correlated;
use query_reranking::ranking::{LinearRank, RankFn};
use query_reranking::server::{SearchInterface, SimServer, SystemRank};
use query_reranking::types::{AttrId, Query};
use std::sync::Arc;

fn main() {
    let n = 10_000;
    // Anti-correlated attributes + a system ranking opposed to the user's:
    // the regime where the shortcut fails hardest.
    let data = correlated(n, -0.7, 31);
    let sys = SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]);
    let rank = LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]);
    let truth = data.rank_by(&Query::all(), |t| rank.score(t));

    println!("page-down shortcut vs exact reranking (n={n}, top-10):\n");
    println!(
        "{:<28} {:>8} {:>10} {:>7}",
        "method", "queries", "recall@10", "exact?"
    );
    for pages in [1usize, 3, 10, 30, 100] {
        let server = SimServer::new(data.clone(), sys.clone(), 10).with_paging();
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(n, 10));
        let r = page_down_rerank(&server, &mut st, &Query::all(), |t| rank.score(t), pages)
            .expect("paging capability enabled above");
        println!(
            "{:<28} {:>8} {:>10.2} {:>7}",
            format!("page-down ({pages} pages)"),
            server.queries_issued(),
            recall_at_h(&r.tuples, &truth, 10),
            r.exact
        );
    }
    let server = SimServer::new(data.clone(), sys, 10);
    let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(n, 10));
    let mut cur = MdCursor::new(
        Arc::new(rank.clone()) as Arc<dyn RankFn>,
        Query::all(),
        MdOptions::rerank(),
        server.schema(),
    );
    let mut got = Vec::new();
    for _ in 0..10 {
        match cur
            .next(&server, &mut st)
            .expect("offline sim server does not fail")
        {
            Some(t) => got.push(t),
            None => break,
        }
    }
    println!(
        "{:<28} {:>8} {:>10.2} {:>7}",
        "MD-RERANK (this paper)",
        server.queries_issued(),
        recall_at_h(&got, &truth, 10),
        true
    );
    println!(
        "\nPaging only reaches recall 1.0 once it has effectively crawled the\n\
         whole result — MD-RERANK certifies the exact top-10 directly."
    );
}
