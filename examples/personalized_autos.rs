//! The paper's "personalized ranking application" (§1): one stored user
//! preference applied across *multiple* car-dealer databases, none of which
//! support it natively. Each dealer gets its own reranking service; the
//! profile lives once in a [`ProfileStore`].
//!
//! ```text
//! cargo run --release --example personalized_autos
//! ```

use query_reranking::datagen::autos;
use query_reranking::datagen::autos::attr;
use query_reranking::ranking::LinearRank;
use query_reranking::server::{SimServer, SystemRank};
use query_reranking::service::{Algorithm, ProfileStore, RerankService};
use query_reranking::types::{Direction, Query};
use std::sync::Arc;

fn main() {
    // Two dealers with different inventories and different opaque rankings.
    let dealer_a = RerankService::new(
        Arc::new(SimServer::new(
            autos(8_000, 1),
            SystemRank::pseudo_random(1),
            15,
        )),
        8_000,
    );
    let dealer_b = RerankService::new(
        Arc::new(SimServer::new(
            autos(6_000, 2),
            SystemRank::by_attr_desc(attr::PRICE), // flashy expensive cars first
            15,
        )),
        6_000,
    );

    // The user's preference, registered once: low mileage per model year,
    // weighted against price.
    let profiles = ProfileStore::new();
    profiles.register(
        "commuter",
        Arc::new(LinearRank::new(vec![
            (attr::PRICE, Direction::Asc, 1.0),
            (attr::MILEAGE, Direction::Asc, 0.12),
            (attr::YEAR, Direction::Desc, 1_200.0),
        ])),
    );

    let rank = profiles.get("commuter").expect("profile registered above");
    for (name, dealer) in [("dealer A", &dealer_a), ("dealer B", &dealer_b)] {
        let mut session = dealer
            .session(Query::all(), Arc::clone(&rank))
            .open()
            .expect("Auto picks an algorithm needing no optional capability");
        let (rows, err) = session.top(5);
        assert!(err.is_none(), "no budget configured: {err:?}");
        println!(
            "\n{name} — top-5 under the shared 'commuter' profile ({} queries):",
            session.queries_spent()
        );
        for r in rows {
            println!(
                "  #{} ${:>6.0}  {:>7.0} mi  year {:.0}",
                r.rank,
                r.tuple.ord(attr::PRICE),
                r.tuple.ord(attr::MILEAGE),
                r.tuple.ord(attr::YEAR),
            );
        }
    }

    // The federated view: one exact, score-merged ranking over both lots.
    let services = [&dealer_a, &dealer_b];
    let mut fed = query_reranking::service::FederatedSession::open(
        &services,
        Query::all(),
        Arc::clone(&rank),
        Algorithm::Auto,
    )
    .expect("every source accepts the Auto algorithm");
    println!("\nfederated top-8 across both dealers:");
    let (hits, err) = fed.top(8);
    assert!(err.is_none(), "no budget configured: {err:?}");
    for f in hits {
        println!(
            "  #{} [dealer {}] ${:>6.0}  {:>7.0} mi  year {:.0}",
            f.hit.rank,
            if f.source == 0 { "A" } else { "B" },
            f.hit.tuple.ord(attr::PRICE),
            f.hit.tuple.ord(attr::MILEAGE),
            f.hit.tuple.ord(attr::YEAR),
        );
    }
    println!(
        "\nSame preference, two sites, exact results on both — neither site\n\
         supports this ranking natively."
    );
}
