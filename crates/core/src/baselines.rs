//! The naive comparators discussed in §1.
//!
//! * *Crawl-then-rank* — enumerate `R(q)` entirely (the \[15\]-style crawler in
//!   [`crate::crawl`]) and rank locally. Exact, but costs at least linear in
//!   `|R(q)|/k` queries.
//! * *Page-down rerank* — fetch `h·k` tuples through the system ranking's
//!   page turns and rerank locally. Cheap, but **approximate with unknown
//!   error** unless paging exhausts `R(q)` — the paper's argument for why
//!   this shortcut is not a reranking service. [`PageDownResult::exact`]
//!   reports whether the answer happens to be provably correct, and the
//!   Fig.-adjacent ablation measures its recall.

use crate::ctx::SharedState;
use qrs_server::SearchInterface;
use qrs_types::value::cmp_f64;
use qrs_types::{Capability, Query, RerankError, Tuple};
use std::sync::Arc;

pub use crate::crawl::{crawl_region, crawl_then_rank, CrawlResult};

/// Outcome of the page-down shortcut.
#[derive(Debug, Clone)]
pub struct PageDownResult {
    /// Locally reranked tuples (best first).
    pub tuples: Vec<Arc<Tuple>>,
    /// True iff paging reached the end of `R(q)`, making the rerank exact.
    pub exact: bool,
    /// Pages fetched.
    pub pages: usize,
}

/// Fetch up to `max_pages` pages of the system ranking for `q` and rerank
/// locally by `score`. Negotiates [`Capability::Paging`] up front and
/// returns [`RerankError::UnsupportedCapability`] when the server lacks it.
pub fn page_down_rerank(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    q: &Query,
    score: impl Fn(&Tuple) -> f64,
    max_pages: usize,
) -> Result<PageDownResult, RerankError> {
    server.capabilities().require(Capability::Paging)?;
    let mut tuples: Vec<Arc<Tuple>> = Vec::new();
    let mut exact = false;
    let mut pages = 0;
    for page in 0..max_pages {
        let resp = server.query_page(q, page)?;
        st.history.record_response(&resp);
        pages += 1;
        tuples.extend(resp.tuples.iter().cloned());
        if !resp.is_overflow() {
            exact = true;
            break;
        }
    }
    tuples.sort_by(|a, b| cmp_f64(score(a), score(b)).then(a.id.cmp(&b.id)));
    tuples.dedup_by_key(|t| t.id);
    Ok(PageDownResult {
        tuples,
        exact,
        pages,
    })
}

/// Incremental, resume-safe page-down: the Get-Next-shaped sibling of
/// [`page_down_rerank`], used when the planner selects paging as the
/// *exact* fallback on sites whose filters are too weak for the cursor
/// algorithms (point-only classifieds, browse-only storefronts).
///
/// The first [`PageDownCursor::next`] pages the system ranking down until
/// the result set drains or `max_pages` is hit, then emits the locally
/// reranked tuples one at a time. Unlike the baseline function, the cursor
/// is **strict**: if paging stops before the result drains, it returns
/// `RerankError::UnsupportedCapability(Capability::PageDepth(..))` instead
/// of silently serving an approximate order — the planner only picks this
/// cursor when the advertised page depth provably covers the relation.
///
/// Resume contract: a transient failure mid-paging keeps every fetched
/// page; retrying `next` re-enters at the page where the failure struck.
pub struct PageDownCursor {
    sel: Query,
    rank: Arc<dyn qrs_ranking::RankFn>,
    max_pages: usize,
    next_page: usize,
    drained: bool,
    sorted: bool,
    buf: Vec<Arc<Tuple>>,
    emitted: usize,
}

impl PageDownCursor {
    /// A cursor paging `sel` down at most `max_pages` pages, reranking by
    /// `rank`. Pass `usize::MAX` when the site advertises unlimited depth.
    pub fn new(sel: Query, rank: Arc<dyn qrs_ranking::RankFn>, max_pages: usize) -> Self {
        PageDownCursor {
            sel,
            rank,
            max_pages,
            next_page: 0,
            drained: false,
            sorted: false,
            buf: Vec::new(),
            emitted: 0,
        }
    }

    /// Whether paging reached the end of `R(q)` (set once the fetch phase
    /// completes; emission is only correct after this turns `true`).
    pub fn drained(&self) -> bool {
        self.drained
    }

    /// Fetch **one** page (one charged query), or nothing if already
    /// drained. Returns whether the result set is now fully drained.
    ///
    /// This is the granular API the service layer drives: one page per
    /// Get-Next step, so query-budget gates fire *between* pages and the
    /// shared-state lock is released between them — a 1 000-page drain can
    /// be budget-capped and interleaves with concurrent sessions instead
    /// of monopolizing the service.
    pub fn fetch_next_page(
        &mut self,
        server: &dyn SearchInterface,
        st: &mut SharedState,
    ) -> Result<bool, RerankError> {
        if self.drained {
            return Ok(true);
        }
        if self.next_page >= self.max_pages {
            // The site stopped serving pages before the result drained:
            // continuing would silently reorder unseen tuples, so surface
            // the missing depth instead.
            return Err(RerankError::UnsupportedCapability(Capability::PageDepth(
                self.next_page + 1,
            )));
        }
        let resp = server.query_page(&self.sel, self.next_page)?;
        st.history.record_response(&resp);
        self.next_page += 1;
        self.buf.extend(resp.tuples.iter().cloned());
        if !resp.is_overflow() {
            self.drained = true;
        }
        Ok(self.drained)
    }

    /// The next tuple in user-rank order, or `None` when exhausted. Only
    /// meaningful once [`PageDownCursor::drained`] is `true` — before that
    /// the local rerank would be over a prefix of the *system* ranking,
    /// exactly the silent inexactness this cursor exists to refuse.
    pub fn emit_next(&mut self) -> Option<Arc<Tuple>> {
        debug_assert!(self.drained, "emit_next before the result set drained");
        if !self.sorted {
            let rank = &self.rank;
            self.buf
                .sort_by(|a, b| cmp_f64(rank.score(a), rank.score(b)).then(a.id.cmp(&b.id)));
            // Duplicate ids are adjacent after the sort (same tuple ⇒ same
            // score ⇒ tie broken by id).
            self.buf.dedup_by_key(|t| t.id);
            self.sorted = true;
        }
        let t = self.buf.get(self.emitted).cloned();
        if t.is_some() {
            self.emitted += 1;
        }
        t
    }

    /// The next tuple in user-rank order, draining the remaining pages in
    /// one call if needed; `Ok(None)` when exhausted. Convenience for
    /// direct/one-shot use — budget-gated callers (the service session)
    /// drive [`PageDownCursor::fetch_next_page`] page by page instead.
    pub fn next(
        &mut self,
        server: &dyn SearchInterface,
        st: &mut SharedState,
    ) -> Result<Option<Arc<Tuple>>, RerankError> {
        while !self.fetch_next_page(server, st)? {}
        Ok(self.emit_next())
    }
}

impl std::fmt::Debug for PageDownCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageDownCursor")
            .field("max_pages", &self.max_pages)
            .field("next_page", &self.next_page)
            .field("drained", &self.drained)
            .field("buffered", &self.buf.len())
            .field("emitted", &self.emitted)
            .finish()
    }
}

/// Recall of an approximate top-h list against ground truth (by tuple id).
pub fn recall_at_h(approx: &[Arc<Tuple>], truth: &[Arc<Tuple>], h: usize) -> f64 {
    if h == 0 || truth.is_empty() {
        return 1.0;
    }
    let want: std::collections::HashSet<_> = truth.iter().take(h).map(|t| t.id).collect();
    let hit = approx
        .iter()
        .take(h)
        .filter(|t| want.contains(&t.id))
        .count();
    hit as f64 / want.len().min(h) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RerankParams;
    use qrs_datagen::synthetic::uniform;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::AttrId;

    fn score(t: &Tuple) -> f64 {
        t.ord(AttrId(0)) + t.ord(AttrId(1))
    }

    #[test]
    fn page_down_is_inexact_when_system_disagrees() {
        let data = uniform(300, 2, 1, 401);
        let truth = data.rank_by(&Query::all(), score);
        // System ranks by the *opposite* of the user's preference.
        let sys = SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(300, 10));
        let server = SimServer::new(data, sys, 10).with_paging();
        let r = page_down_rerank(&server, &mut st, &Query::all(), score, 3).unwrap();
        assert!(!r.exact);
        // With anti-correlated system ranking, 3 pages of 10 should miss
        // most of the true top-10.
        assert!(recall_at_h(&r.tuples, &truth, 10) < 0.5);
    }

    #[test]
    fn page_down_exact_when_it_drains_the_result() {
        let data = uniform(25, 2, 1, 403);
        let truth = data.rank_by(&Query::all(), score);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(25, 10));
        let server = SimServer::new(data, SystemRank::pseudo_random(41), 10).with_paging();
        let r = page_down_rerank(&server, &mut st, &Query::all(), score, 100).unwrap();
        assert!(r.exact);
        assert_eq!(r.pages, 3); // 25 tuples / k=10
        let got: Vec<u32> = r.tuples.iter().map(|t| t.id.0).collect();
        let want: Vec<u32> = truth.iter().map(|t| t.id.0).collect();
        assert_eq!(got, want);
        assert_eq!(recall_at_h(&r.tuples, &truth, 10), 1.0);
    }

    #[test]
    fn page_down_refused_without_paging_capability() {
        let data = uniform(30, 2, 1, 407);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(30, 10));
        let server = SimServer::new(data, SystemRank::pseudo_random(43), 10); // no paging
        let err = page_down_rerank(&server, &mut st, &Query::all(), score, 3).unwrap_err();
        assert_eq!(
            err,
            qrs_types::RerankError::UnsupportedCapability(Capability::Paging)
        );
    }

    #[test]
    fn page_down_cursor_streams_exact_order_and_resumes() {
        use qrs_ranking::LinearRank;
        let data = uniform(25, 2, 1, 409);
        let truth = data.rank_by(&Query::all(), score);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(25, 10));
        let server = SimServer::new(data, SystemRank::pseudo_random(47), 10).with_paging();
        let rank: Arc<dyn qrs_ranking::RankFn> =
            Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]));
        let mut c = PageDownCursor::new(Query::all(), rank, usize::MAX);
        let mut got = Vec::new();
        while let Some(t) = c.next(&server, &mut st).unwrap() {
            got.push(t.id.0);
        }
        assert!(c.drained());
        let want: Vec<u32> = truth.iter().map(|t| t.id.0).collect();
        assert_eq!(got, want);
        // All pages fetched up front, then emission is free.
        assert_eq!(server.queries_issued(), 3);
    }

    #[test]
    fn page_down_cursor_is_strict_about_depth() {
        use qrs_ranking::LinearRank;
        let data = uniform(50, 2, 1, 411);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(50, 5));
        // 50 tuples at k=5 need 10 pages; the cursor is capped at 3.
        let server = SimServer::new(data, SystemRank::pseudo_random(53), 5).with_paging();
        let rank: Arc<dyn qrs_ranking::RankFn> =
            Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]));
        let mut c = PageDownCursor::new(Query::all(), rank, 3);
        let err = c.next(&server, &mut st).unwrap_err();
        assert_eq!(
            err,
            RerankError::UnsupportedCapability(Capability::PageDepth(4))
        );
        // The three fetched pages stay paid-for; the error is stable.
        assert_eq!(server.queries_issued(), 3);
        assert!(c.next(&server, &mut st).is_err());
        assert_eq!(server.queries_issued(), 3);
    }

    #[test]
    fn recall_edge_cases() {
        assert_eq!(recall_at_h(&[], &[], 5), 1.0);
        let data = uniform(10, 2, 1, 405);
        let ts: Vec<Arc<Tuple>> = data.tuples().to_vec();
        assert_eq!(recall_at_h(&ts, &ts, 0), 1.0);
        assert_eq!(recall_at_h(&ts[..3], &ts, 3), 1.0);
        assert_eq!(recall_at_h(&ts[5..8], &ts, 3), 0.0);
    }
}
