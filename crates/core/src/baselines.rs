//! The naive comparators discussed in §1.
//!
//! * *Crawl-then-rank* — enumerate `R(q)` entirely (the [15]-style crawler in
//!   [`crate::crawl`]) and rank locally. Exact, but costs at least linear in
//!   `|R(q)|/k` queries.
//! * *Page-down rerank* — fetch `h·k` tuples through the system ranking's
//!   page turns and rerank locally. Cheap, but **approximate with unknown
//!   error** unless paging exhausts `R(q)` — the paper's argument for why
//!   this shortcut is not a reranking service. [`PageDownResult::exact`]
//!   reports whether the answer happens to be provably correct, and the
//!   Fig.-adjacent ablation measures its recall.

use crate::ctx::SharedState;
use qrs_server::SearchInterface;
use qrs_types::value::cmp_f64;
use qrs_types::{Capability, Query, RerankError, Tuple};
use std::sync::Arc;

pub use crate::crawl::{crawl_region, crawl_then_rank, CrawlResult};

/// Outcome of the page-down shortcut.
#[derive(Debug, Clone)]
pub struct PageDownResult {
    /// Locally reranked tuples (best first).
    pub tuples: Vec<Arc<Tuple>>,
    /// True iff paging reached the end of `R(q)`, making the rerank exact.
    pub exact: bool,
    /// Pages fetched.
    pub pages: usize,
}

/// Fetch up to `max_pages` pages of the system ranking for `q` and rerank
/// locally by `score`. Negotiates [`Capability::Paging`] up front and
/// returns [`RerankError::UnsupportedCapability`] when the server lacks it.
pub fn page_down_rerank(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    q: &Query,
    score: impl Fn(&Tuple) -> f64,
    max_pages: usize,
) -> Result<PageDownResult, RerankError> {
    server.capabilities().require(Capability::Paging)?;
    let mut tuples: Vec<Arc<Tuple>> = Vec::new();
    let mut exact = false;
    let mut pages = 0;
    for page in 0..max_pages {
        let resp = server.query_page(q, page)?;
        st.history.record_response(&resp);
        pages += 1;
        tuples.extend(resp.tuples.iter().cloned());
        if !resp.is_overflow() {
            exact = true;
            break;
        }
    }
    tuples.sort_by(|a, b| cmp_f64(score(a), score(b)).then(a.id.cmp(&b.id)));
    tuples.dedup_by_key(|t| t.id);
    Ok(PageDownResult {
        tuples,
        exact,
        pages,
    })
}

/// Recall of an approximate top-h list against ground truth (by tuple id).
pub fn recall_at_h(approx: &[Arc<Tuple>], truth: &[Arc<Tuple>], h: usize) -> f64 {
    if h == 0 || truth.is_empty() {
        return 1.0;
    }
    let want: std::collections::HashSet<_> = truth.iter().take(h).map(|t| t.id).collect();
    let hit = approx
        .iter()
        .take(h)
        .filter(|t| want.contains(&t.id))
        .count();
    hit as f64 / want.len().min(h) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RerankParams;
    use qrs_datagen::synthetic::uniform;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::AttrId;

    fn score(t: &Tuple) -> f64 {
        t.ord(AttrId(0)) + t.ord(AttrId(1))
    }

    #[test]
    fn page_down_is_inexact_when_system_disagrees() {
        let data = uniform(300, 2, 1, 401);
        let truth = data.rank_by(&Query::all(), score);
        // System ranks by the *opposite* of the user's preference.
        let sys = SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(300, 10));
        let server = SimServer::new(data, sys, 10).with_paging();
        let r = page_down_rerank(&server, &mut st, &Query::all(), score, 3).unwrap();
        assert!(!r.exact);
        // With anti-correlated system ranking, 3 pages of 10 should miss
        // most of the true top-10.
        assert!(recall_at_h(&r.tuples, &truth, 10) < 0.5);
    }

    #[test]
    fn page_down_exact_when_it_drains_the_result() {
        let data = uniform(25, 2, 1, 403);
        let truth = data.rank_by(&Query::all(), score);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(25, 10));
        let server = SimServer::new(data, SystemRank::pseudo_random(41), 10).with_paging();
        let r = page_down_rerank(&server, &mut st, &Query::all(), score, 100).unwrap();
        assert!(r.exact);
        assert_eq!(r.pages, 3); // 25 tuples / k=10
        let got: Vec<u32> = r.tuples.iter().map(|t| t.id.0).collect();
        let want: Vec<u32> = truth.iter().map(|t| t.id.0).collect();
        assert_eq!(got, want);
        assert_eq!(recall_at_h(&r.tuples, &truth, 10), 1.0);
    }

    #[test]
    fn page_down_refused_without_paging_capability() {
        let data = uniform(30, 2, 1, 407);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(30, 10));
        let server = SimServer::new(data, SystemRank::pseudo_random(43), 10); // no paging
        let err = page_down_rerank(&server, &mut st, &Query::all(), score, 3).unwrap_err();
        assert_eq!(
            err,
            qrs_types::RerankError::UnsupportedCapability(Capability::Paging)
        );
    }

    #[test]
    fn recall_edge_cases() {
        assert_eq!(recall_at_h(&[], &[], 5), 1.0);
        let data = uniform(10, 2, 1, 405);
        let ts: Vec<Arc<Tuple>> = data.tuples().to_vec();
        assert_eq!(recall_at_h(&ts, &ts, 0), 1.0);
        assert_eq!(recall_at_h(&ts[..3], &ts, 3), 1.0);
        assert_eq!(recall_at_h(&ts[5..8], &ts, 3), 0.0);
    }
}
