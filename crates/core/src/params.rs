//! Tunable parameters of the reranking service.
//!
//! §3.2.2 of the paper: a region is *dense* when it holds at least `s` tuples
//! within a window narrower than `|V(Ai)|·(s/n)/c` — i.e. its density beats
//! uniform by a factor `c`. The paper's analysis recommends `c = n` (log-scale
//! effect on per-query cost) and `s = k·log₂ n` (linear effect), which
//! [`RerankParams::paper_defaults`] encodes; Fig. 9 sweeps both.

/// Parameters shared by every reranking algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RerankParams {
    /// (Estimate of) the database size `n`. A third-party service can obtain
    /// it from site metadata or standard size-estimation techniques; the
    /// dense thresholds only need its order of magnitude.
    pub n: f64,
    /// Dense-region tuple count `s`.
    pub s: f64,
    /// Dense-region density factor `c`.
    pub c: f64,
}

impl RerankParams {
    /// The paper's recommended setting: `c = n`, `s = k·log₂ n`.
    pub fn paper_defaults(n: usize, k: usize) -> Self {
        let nf = (n.max(2)) as f64;
        RerankParams {
            n: nf,
            s: (k.max(1) as f64) * nf.log2(),
            c: nf,
        }
    }

    /// Explicit values (used by the Fig. 9 parameter sweep).
    pub fn with_sc(n: usize, s: f64, c: f64) -> Self {
        assert!(s > 0.0 && c > 0.0);
        RerankParams {
            n: n.max(2) as f64,
            s,
            c,
        }
    }

    /// 1D dense-region width threshold for an attribute with domain width
    /// `domain_width`: `|V(Ai)|·(s/n)/c`.
    #[inline]
    pub fn dense_width(&self, domain_width: f64) -> f64 {
        domain_width * (self.s / self.n) / self.c
    }

    /// MD dense-region *relative volume* threshold: `(s/n)/c` (§4.4, with
    /// `|V|` normalized out).
    #[inline]
    pub fn dense_rel_volume(&self) -> f64 {
        (self.s / self.n) / self.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_formulas() {
        let p = RerankParams::paper_defaults(1024, 10);
        assert_eq!(p.n, 1024.0);
        assert_eq!(p.c, 1024.0);
        assert_eq!(p.s, 100.0); // 10 · log2(1024)
    }

    #[test]
    fn thresholds_scale() {
        let p = RerankParams::with_sc(1000, 50.0, 1000.0);
        let w = p.dense_width(2000.0);
        assert!((w - 2000.0 * 0.05 / 1000.0).abs() < 1e-12);
        assert!((p.dense_rel_volume() - 5e-5).abs() < 1e-18);
    }

    #[test]
    fn degenerate_sizes_clamped() {
        let p = RerankParams::paper_defaults(0, 0);
        assert!(p.n >= 2.0);
        assert!(p.s > 0.0);
    }
}
