//! The 1D *Get-Next* cursor (§2.2's incremental interface, §5's extensions).
//!
//! A [`OneDCursor`] streams the tuples of `R(q)` in ranking-attribute order.
//! Between values it delegates to the [`super::primitives`] strategies; *at*
//! a value it handles ties exactly: before moving past value `v`, the whole
//! slab `Sel(q) ∧ Ai = v` is collected (a complete region, one point query,
//! or a sub-crawl on the other attributes when even the point query
//! overflows) and emitted in id order. Point-only attributes (§5) are
//! enumerated value by value in preference order.

use crate::crawl::crawl_region;
use crate::ctx::SharedState;
use crate::one_d::primitives::{next_above, OneDSpec};
use crate::one_d::OneDStrategy;
use qrs_server::SearchInterface;
use qrs_types::{Direction, Interval, Query, RerankError, Tuple};
use std::collections::VecDeque;
use std::sync::Arc;

/// How to treat equal attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TiePolicy {
    /// Collect every tuple of a value slab before moving on (§5; exact on
    /// any data). The default.
    #[default]
    Exact,
    /// Assume the general positioning assumption (§2.1): one tuple per
    /// value. Cheaper; exact only when the attribute has no duplicates
    /// within `R(q)`.
    AssumeDistinct,
}

/// Streaming Get-Next over one ranking attribute.
#[derive(Debug)]
pub struct OneDCursor {
    spec: OneDSpec,
    strategy: OneDStrategy,
    tie: TiePolicy,
    state: State,
}

#[derive(Debug)]
enum State {
    Start,
    /// Enumerating a point-only attribute: remaining normalized values.
    PointEnum {
        values: VecDeque<f64>,
        queue: VecDeque<Arc<Tuple>>,
    },
    Slab {
        nval: f64,
        queue: VecDeque<Arc<Tuple>>,
    },
    Done,
}

impl OneDCursor {
    /// Cursor driving `strategy` over `spec`, with the given tie policy.
    pub fn new(spec: OneDSpec, strategy: OneDStrategy, tie: TiePolicy) -> Self {
        OneDCursor {
            spec,
            strategy,
            tie,
            state: State::Start,
        }
    }

    /// Convenience constructor.
    pub fn over(
        attr: qrs_types::AttrId,
        dir: Direction,
        sel: Query,
        strategy: OneDStrategy,
    ) -> Self {
        OneDCursor::new(OneDSpec::new(attr, dir, sel), strategy, TiePolicy::Exact)
    }

    /// The search specification (attribute, direction, selection).
    pub fn spec(&self) -> &OneDSpec {
        &self.spec
    }

    /// The next tuple in ranking order, or `Ok(None)` when `R(q)` is
    /// exhausted. A server failure surfaces as `Err`; the cursor stays
    /// coherent and a later retry resumes where it stopped.
    pub fn next(
        &mut self,
        server: &dyn SearchInterface,
        st: &mut SharedState,
    ) -> Result<Option<Arc<Tuple>>, RerankError> {
        loop {
            match &mut self.state {
                State::Done => return Ok(None),
                State::Slab { queue, nval } => {
                    if let Some(t) = queue.pop_front() {
                        return Ok(Some(t));
                    }
                    let after = *nval;
                    self.advance(server, st, after)?;
                }
                State::PointEnum { values, queue } => {
                    if let Some(t) = queue.pop_front() {
                        return Ok(Some(t));
                    }
                    match values.pop_front() {
                        None => self.state = State::Done,
                        Some(nv) => {
                            let slab = gather_slab(server, st, &self.spec, nv);
                            match slab {
                                Ok(slab) => {
                                    if let State::PointEnum { queue, .. } = &mut self.state {
                                        queue.extend(slab);
                                    }
                                }
                                Err(e) => {
                                    // Re-queue the value so a retry replays it.
                                    if let State::PointEnum { values, .. } = &mut self.state {
                                        values.push_front(nv);
                                    }
                                    return Err(e);
                                }
                            }
                        }
                    }
                }
                State::Start => {
                    let schema = Arc::clone(server.schema());
                    let o = schema.ordinal(self.spec.attr);
                    if o.point_only {
                        let vals = o
                            .values
                            .as_ref()
                            .expect("point-only attribute carries a value list");
                        let mut norm: Vec<f64> =
                            vals.iter().map(|&v| self.spec.dir.normalize(v)).collect();
                        norm.sort_by(f64::total_cmp);
                        self.state = State::PointEnum {
                            values: norm.into_iter().collect(),
                            queue: VecDeque::new(),
                        };
                    } else {
                        self.advance(server, st, f64::NEG_INFINITY)?;
                    }
                }
            }
        }
    }

    /// Pull every remaining tuple (careful on large `R(q)` — this crawls).
    pub fn drain(
        &mut self,
        server: &dyn SearchInterface,
        st: &mut SharedState,
    ) -> Result<Vec<Arc<Tuple>>, RerankError> {
        let mut out = Vec::new();
        while let Some(t) = self.next(server, st)? {
            out.push(t);
        }
        Ok(out)
    }

    fn advance(
        &mut self,
        server: &dyn SearchInterface,
        st: &mut SharedState,
        after: f64,
    ) -> Result<(), RerankError> {
        match next_above(server, st, &self.spec, self.strategy, after, None)? {
            None => self.state = State::Done,
            Some(t) => {
                let nv = self.spec.nval(&t);
                let queue: VecDeque<Arc<Tuple>> = match self.tie {
                    TiePolicy::AssumeDistinct => std::iter::once(t).collect(),
                    TiePolicy::Exact => gather_slab(server, st, &self.spec, nv)?.into(),
                };
                debug_assert!(
                    !queue.is_empty(),
                    "slab at a discovered value can't be empty"
                );
                self.state = State::Slab { nval: nv, queue };
            }
        }
        Ok(())
    }
}

/// Collect every tuple with `attr` exactly at normalized value `nval`
/// matching the spec's selection, sorted by id. Exact even when the slab
/// overflows the interface (sub-crawl on the remaining attributes).
pub(crate) fn gather_slab(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    spec: &OneDSpec,
    nval: f64,
) -> Result<Vec<Arc<Tuple>>, RerankError> {
    let raw = spec.dir.denormalize(nval);
    let q = spec.sel.clone().and_range(spec.attr, Interval::point(raw));
    if st.complete.covers(&q) {
        return Ok(st.history.at_value(spec.attr, raw, &q));
    }
    let resp = server.query(&q)?;
    st.absorb(&q, &resp);
    if resp.is_overflow() {
        // More than k ties at one value: crawl the slab by the other
        // attributes.
        let r = crawl_region(server, st, &q)?;
        return Ok(r.tuples);
    }
    Ok(st.history.at_value(spec.attr, raw, &q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RerankParams;
    use qrs_datagen::synthetic::{discrete_grid, uniform};
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::value::cmp_f64;
    use qrs_types::AttrId;

    fn truth_order(server: &SimServer, spec: &OneDSpec) -> Vec<(f64, u32)> {
        let mut v: Vec<(f64, u32)> = server
            .dataset()
            .tuples()
            .iter()
            .filter(|t| spec.sel.matches(t))
            .map(|t| (spec.nval(t), t.id.0))
            .collect();
        v.sort_by(|a, b| cmp_f64(a.0, b.0).then(a.1.cmp(&b.1)));
        v
    }

    #[test]
    fn streams_whole_relation_in_order_continuous() {
        let data = uniform(300, 2, 1, 51);
        let st0 = RerankParams::paper_defaults(300, 5);
        for strategy in OneDStrategy::ALL {
            let mut st = SharedState::new(data.schema(), st0);
            let server = SimServer::new(data.clone(), SystemRank::by_attr_desc(AttrId(0)), 5);
            let mut cur = OneDCursor::over(AttrId(0), Direction::Asc, Query::all(), strategy);
            let got: Vec<(f64, u32)> = cur
                .drain(&server, &mut st)
                .unwrap()
                .iter()
                .map(|t| (t.ord(AttrId(0)), t.id.0))
                .collect();
            assert_eq!(
                got,
                truth_order(&server, cur.spec()),
                "{}",
                strategy.label()
            );
        }
    }

    #[test]
    fn streams_with_heavy_ties_exactly() {
        // 6-level grid: many duplicates per value, some slabs overflow k.
        let data = discrete_grid(400, 2, 6, 53);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(400, 7));
        let server = SimServer::new(data, SystemRank::pseudo_random(1), 7);
        let mut cur = OneDCursor::over(
            AttrId(0),
            Direction::Asc,
            Query::all(),
            OneDStrategy::Rerank,
        );
        let got: Vec<(f64, u32)> = cur
            .drain(&server, &mut st)
            .unwrap()
            .iter()
            .map(|t| (t.ord(AttrId(0)), t.id.0))
            .collect();
        assert_eq!(got, truth_order(&server, cur.spec()));
    }

    #[test]
    fn descending_stream_with_filter() {
        let data = uniform(400, 2, 1, 59);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(400, 5));
        let server = SimServer::new(data, SystemRank::by_attr_asc(AttrId(0)), 5);
        let sel = Query::all().and_range(AttrId(1), Interval::closed(0.2, 0.8));
        let mut cur = OneDCursor::over(AttrId(0), Direction::Desc, sel, OneDStrategy::Binary);
        let got: Vec<(f64, u32)> = cur
            .drain(&server, &mut st)
            .unwrap()
            .iter()
            .map(|t| (cur_nval(&cur, t), t.id.0))
            .collect();
        assert_eq!(got, truth_order(&server, cur.spec()));
    }

    fn cur_nval(c: &OneDCursor, t: &Tuple) -> f64 {
        c.spec().nval(t)
    }

    #[test]
    fn assume_distinct_matches_exact_on_distinct_data() {
        let data = uniform(250, 2, 1, 61);
        let params = RerankParams::paper_defaults(250, 5);
        let run = |tie: TiePolicy| {
            let mut st = SharedState::new(data.schema(), params);
            let server = SimServer::new(data.clone(), SystemRank::by_attr_desc(AttrId(0)), 5);
            let mut cur = OneDCursor::new(
                OneDSpec::new(AttrId(0), Direction::Asc, Query::all()),
                OneDStrategy::Binary,
                tie,
            );
            let ids: Vec<u32> = cur
                .drain(&server, &mut st)
                .unwrap()
                .iter()
                .map(|t| t.id.0)
                .collect();
            (ids, server.queries_issued())
        };
        let (exact_ids, exact_cost) = run(TiePolicy::Exact);
        let (fast_ids, fast_cost) = run(TiePolicy::AssumeDistinct);
        assert_eq!(exact_ids, fast_ids);
        // The distinct assumption saves the per-value point queries.
        assert!(
            fast_cost < exact_cost,
            "fast {fast_cost} exact {exact_cost}"
        );
    }

    #[test]
    fn point_only_attribute_enumerates_in_preference_order() {
        use qrs_types::{CatAttr, OrdinalAttr, Schema, Tuple, TupleId};
        let schema = Schema::new(
            vec![
                OrdinalAttr::point_only("grade", vec![1.0, 2.0, 3.0]),
                OrdinalAttr::new("x", 0.0, 1.0),
            ],
            vec![CatAttr::new("c", 2)],
        );
        let tuples = vec![
            Tuple::new(TupleId(0), vec![2.0, 0.1], vec![0]),
            Tuple::new(TupleId(1), vec![1.0, 0.2], vec![0]),
            Tuple::new(TupleId(2), vec![3.0, 0.3], vec![0]),
            Tuple::new(TupleId(3), vec![1.0, 0.4], vec![1]),
        ];
        let data = qrs_types::Dataset::new(schema, tuples).unwrap();
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(4, 2));
        let server = SimServer::new(data, SystemRank::pseudo_random(9), 2);
        let mut cur = OneDCursor::over(
            AttrId(0),
            Direction::Asc,
            Query::all(),
            OneDStrategy::Rerank,
        );
        let got: Vec<u32> = cur
            .drain(&server, &mut st)
            .unwrap()
            .iter()
            .map(|t| t.id.0)
            .collect();
        assert_eq!(got, vec![1, 3, 0, 2]);
        // Descending preference reverses the value order.
        let mut st2 = SharedState::new(
            server.dataset().schema(),
            RerankParams::paper_defaults(4, 2),
        );
        let mut cur2 = OneDCursor::over(
            AttrId(0),
            Direction::Desc,
            Query::all(),
            OneDStrategy::Rerank,
        );
        let got2: Vec<u32> = cur2
            .drain(&server, &mut st2)
            .unwrap()
            .iter()
            .map(|t| t.id.0)
            .collect();
        assert_eq!(got2, vec![2, 0, 1, 3]);
    }

    #[test]
    fn empty_result_stream() {
        let data = uniform(100, 2, 1, 67);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(100, 5));
        let server = SimServer::new(data, SystemRank::pseudo_random(2), 5);
        let sel = Query::all().and_range(AttrId(1), Interval::closed(5.0, 6.0));
        let mut cur = OneDCursor::over(AttrId(0), Direction::Asc, sel, OneDStrategy::Baseline);
        assert!(cur.next(&server, &mut st).unwrap().is_none());
        // Idempotent.
        assert!(cur.next(&server, &mut st).unwrap().is_none());
    }
}
