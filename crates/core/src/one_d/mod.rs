//! The 1D query reranking algorithms (§3).
//!
//! Given a user query `q`, a ranking attribute `Ai` and a preference
//! direction, find tuples of `R(q)` in `Ai`-order while issuing as few
//! server queries as possible:
//!
//! * [`OneDStrategy::Baseline`] — Algorithm 1 (1D-BASELINE): shrink the
//!   search interval to the best returned value, repeat until underflow,
//! * [`OneDStrategy::Binary`] — Algorithm 2 (1D-BINARY): bisect the search
//!   interval instead,
//! * [`OneDStrategy::Rerank`] — Algorithm 3 (1D-RERANK): bisect until the
//!   interval is narrower than the dense-region threshold, then hand off to
//!   the on-the-fly index oracle (Algorithm 4, [`crate::index::dense1d`]).
//!
//! [`OneDCursor`] wraps the primitives into the paper's *Get-Next* interface
//! and removes the general-positioning assumption (§5): equal-value *slabs*
//! are collected exactly before moving past their value, and point-only
//! attributes are enumerated value by value.

pub mod cursor;
pub mod primitives;

pub use cursor::{OneDCursor, TiePolicy};
pub use primitives::{next_above, NarrowResult, OneDSpec};

/// Which §3 algorithm drives the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OneDStrategy {
    /// 1D-BASELINE (§3.1): linear frontier advance.
    Baseline,
    /// 1D-BINARY (§3.2.1): binary interval narrowing.
    Binary,
    /// 1D-RERANK (§3.2.2): binary narrowing plus the on-the-fly dense index.
    Rerank,
}

impl OneDStrategy {
    /// The paper's three compared 1D algorithms (Figs 5–12).
    pub const ALL: [OneDStrategy; 3] = [
        OneDStrategy::Baseline,
        OneDStrategy::Binary,
        OneDStrategy::Rerank,
    ];

    /// Human-readable name used in experiment tables and plots.
    pub fn label(self) -> &'static str {
        match self {
            OneDStrategy::Baseline => "1D-BASELINE",
            OneDStrategy::Binary => "1D-BINARY",
            OneDStrategy::Rerank => "1D-RERANK",
        }
    }
}
