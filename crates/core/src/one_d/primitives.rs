//! The `next-above` primitive behind all 1D algorithms.
//!
//! Everything works in *normalized* values (`dir.normalize(raw)`, smaller =
//! better): find a matching tuple with the smallest normalized value strictly
//! greater than `after`, optionally strictly below `upto`. The three §3
//! strategies differ only in how they shrink the uncertainty interval.

use crate::ctx::SharedState;
use crate::one_d::OneDStrategy;
use qrs_server::SearchInterface;
use qrs_types::value::OrdF64;
use qrs_types::{AttrId, Direction, Endpoint, Interval, Query, RerankError, Tuple};
use std::sync::Arc;

/// A 1D search specification: ranking attribute, direction and selection.
#[derive(Debug, Clone)]
pub struct OneDSpec {
    /// The ranking attribute.
    pub attr: AttrId,
    /// Preference direction on the attribute (smaller or larger is better).
    pub dir: Direction,
    /// The user query's selection condition `Sel(q)`.
    pub sel: Query,
}

impl OneDSpec {
    /// Bundle a ranking attribute, direction and selection condition.
    pub fn new(attr: AttrId, dir: Direction, sel: Query) -> Self {
        OneDSpec { attr, dir, sel }
    }

    /// Normalized value of a tuple on the ranking attribute.
    #[inline]
    pub fn nval(&self, t: &Tuple) -> f64 {
        self.dir.normalize(t.ord(self.attr))
    }

    /// Server query for `sel ∧ attr ∈ norm_iv` (translated to raw space).
    pub fn query_for(&self, norm_iv: Interval) -> Query {
        let raw = match self.dir {
            Direction::Asc => norm_iv,
            Direction::Desc => norm_iv.negate(),
        };
        self.sel.clone().and_range(self.attr, raw)
    }

    /// Tuple minimizing (normalized value, id) in a slice.
    pub fn min_tuple<'a>(&self, ts: &'a [Arc<Tuple>]) -> Option<&'a Arc<Tuple>> {
        ts.iter().min_by_key(|t| (OrdF64(self.nval(t)), t.id))
    }
}

/// Outcome of the interval-narrowing loop.
#[derive(Debug, Clone)]
pub enum NarrowResult {
    /// The exact next tuple was pinned down.
    Found(Arc<Tuple>),
    /// No tuple exists strictly inside the uncertainty interval; the best
    /// known candidate (if any) is the answer.
    Exhausted(Option<Arc<Tuple>>),
    /// (1D-RERANK only) the interval `[lo, nval(cur))` fell below the dense
    /// threshold with the candidate `cur` still unconfirmed.
    Narrowed {
        /// Lower end of the remaining uncertainty interval.
        lo: f64,
        /// Best candidate found so far (possibly not the true next tuple).
        cur: Arc<Tuple>,
    },
}

/// Find the matching tuple with the smallest normalized value in
/// `(after, upto)` using the given strategy. `after = -∞` means "from the
/// top"; `upto = None` means unbounded.
pub fn next_above(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    spec: &OneDSpec,
    strategy: OneDStrategy,
    after: f64,
    upto: Option<f64>,
) -> Result<Option<Arc<Tuple>>, RerankError> {
    match strategy {
        OneDStrategy::Baseline => baseline(server, st, spec, after, upto),
        OneDStrategy::Binary => match narrow(server, st, spec, after, upto, None)? {
            NarrowResult::Found(t) => Ok(Some(t)),
            NarrowResult::Exhausted(c) => Ok(c),
            NarrowResult::Narrowed { .. } => unreachable!("no stop width given"),
        },
        OneDStrategy::Rerank => {
            let domain = {
                let o = server.schema().ordinal(spec.attr);
                o.domain_width()
            };
            let threshold = st.params.dense_width(domain);
            match narrow(server, st, spec, after, upto, Some(threshold))? {
                NarrowResult::Found(t) => Ok(Some(t)),
                NarrowResult::Exhausted(c) => Ok(c),
                NarrowResult::Narrowed { lo, cur } => {
                    let cv = spec.nval(&cur);
                    // The unknown region is [lo, cv) when probes have raised
                    // lo past `after`, and (after, cv) otherwise — the
                    // closed oracle bound must never re-include `after`.
                    let x = if lo > after { lo } else { after.next_up() };
                    match crate::index::dense1d::oracle(server, st, spec, x, cv)? {
                        Some(t) => Ok(Some(t)),
                        None => Ok(Some(cur)),
                    }
                }
            }
        }
    }
}

/// Algorithm 1 (1D-BASELINE) on normalized values, leveraging history and
/// complete regions.
pub(crate) fn baseline(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    spec: &OneDSpec,
    after: f64,
    upto: Option<f64>,
) -> Result<Option<Arc<Tuple>>, RerankError> {
    let mut cur: Option<Arc<Tuple>> = st
        .history
        .next_norm_above(spec.attr, spec.dir, after, upto, &spec.sel)
        .cloned();
    loop {
        let hi = effective_hi(cur.as_ref().map(|t| spec.nval(t)), upto);
        let iv = open_interval(after, hi);
        if iv.is_empty() {
            return Ok(cur);
        }
        let q = spec.query_for(iv);
        if st.complete.covers(&q) {
            // Every tuple in the interval is already known — and history had
            // none below `cur` (cur is the history minimum).
            return Ok(cur);
        }
        let resp = server.query(&q)?;
        st.absorb(&q, &resp);
        match resp.outcome {
            qrs_types::QueryOutcome::Underflow => return Ok(cur),
            qrs_types::QueryOutcome::Valid => return Ok(spec.min_tuple(&resp.tuples).cloned()),
            qrs_types::QueryOutcome::Overflow => {
                cur = spec.min_tuple(&resp.tuples).cloned();
                debug_assert!(cur.is_some());
            }
        }
    }
}

/// Algorithms 2/3 core: bisect the uncertainty interval `[lo, nval(cur))`.
///
/// With `stop_width = None` this is 1D-BINARY run to completion; with
/// `Some(w)` it returns [`NarrowResult::Narrowed`] as soon as the interval is
/// narrower than `w` (the 1D-RERANK hand-off point).
pub fn narrow(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    spec: &OneDSpec,
    after: f64,
    upto: Option<f64>,
    stop_width: Option<f64>,
) -> Result<NarrowResult, RerankError> {
    let mut cur: Option<Arc<Tuple>> = st
        .history
        .next_norm_above(spec.attr, spec.dir, after, upto, &spec.sel)
        .cloned();
    // Invariant: no matching tuple has normalized value in (after, lo).
    // Starting from the very top (`after = -∞`), the public schema domain
    // bounds the uncertainty region — without this, the bisection midpoint
    // of (-∞, cv) is degenerate and 1D-BINARY would collapse to baseline
    // probes for the first Get-Next.
    let mut lo = if after == f64::NEG_INFINITY {
        let o = server.schema().ordinal(spec.attr);
        let (a, b) = (spec.dir.normalize(o.min), spec.dir.normalize(o.max));
        a.min(b)
    } else {
        after
    };
    loop {
        let Some(c) = cur.clone() else {
            // No candidate yet: one baseline-style probe over the remainder.
            let iv = if lo == after {
                open_interval(after, upto.unwrap_or(f64::INFINITY))
            } else {
                half_open(lo, upto.unwrap_or(f64::INFINITY))
            };
            if iv.is_empty() {
                return Ok(NarrowResult::Exhausted(None));
            }
            let q = spec.query_for(iv);
            if st.complete.covers(&q) {
                return Ok(NarrowResult::Exhausted(None));
            }
            let resp = server.query(&q)?;
            st.absorb(&q, &resp);
            match resp.outcome {
                qrs_types::QueryOutcome::Underflow => return Ok(NarrowResult::Exhausted(None)),
                qrs_types::QueryOutcome::Valid => {
                    return Ok(NarrowResult::Found(
                        spec.min_tuple(&resp.tuples).cloned().unwrap(),
                    ))
                }
                qrs_types::QueryOutcome::Overflow => {
                    cur = spec.min_tuple(&resp.tuples).cloned();
                    continue;
                }
            }
        };
        let cv = spec.nval(&c);
        if lo >= cv {
            return Ok(NarrowResult::Exhausted(cur));
        }
        if let Some(w) = stop_width {
            if cv - lo < w {
                return Ok(NarrowResult::Narrowed { lo, cur: c });
            }
        }
        let mid = lo + (cv - lo) / 2.0;
        if !(mid > lo && mid < cv) {
            // Floating-point degeneracy: confirm the sliver directly.
            match probe(server, st, spec, region_iv(after, lo, cv))? {
                Probe::Empty => return Ok(NarrowResult::Exhausted(cur)),
                Probe::All(t) => return Ok(NarrowResult::Found(t)),
                Probe::Partial(t) => {
                    cur = Some(t);
                    continue;
                }
            }
        }
        // Probe the lower half [lo, mid) — open at `after` before any
        // half-interval has been proven empty, so the predecessor tuple at
        // exactly `after` is never re-returned.
        match probe(server, st, spec, region_iv(after, lo, mid))? {
            Probe::All(t) => return Ok(NarrowResult::Found(t)),
            Probe::Partial(t) => {
                cur = Some(t);
            }
            Probe::Empty => {
                // Lower half empty — probe the entire upper half [mid, cv)
                // (Algorithm 2's second query).
                lo = mid;
                match probe(server, st, spec, half_open(mid, cv))? {
                    Probe::Empty => return Ok(NarrowResult::Exhausted(cur)),
                    Probe::All(t) => return Ok(NarrowResult::Found(t)),
                    Probe::Partial(t) => {
                        cur = Some(t);
                    }
                }
            }
        }
    }
}

enum Probe {
    /// Interval certainly empty.
    Empty,
    /// Interval fully enumerated; its minimum tuple.
    All(Arc<Tuple>),
    /// Interval overflowed; best returned tuple.
    Partial(Arc<Tuple>),
}

fn probe(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    spec: &OneDSpec,
    iv: Interval,
) -> Result<Probe, RerankError> {
    if iv.is_empty() {
        return Ok(Probe::Empty);
    }
    let q = spec.query_for(iv);
    if st.complete.covers(&q) {
        return Ok(
            match st
                .history
                .matching(&q)
                .into_iter()
                .min_by_key(|t| (OrdF64(spec.nval(t)), t.id))
            {
                Some(t) => Probe::All(t),
                None => Probe::Empty,
            },
        );
    }
    let resp = server.query(&q)?;
    st.absorb(&q, &resp);
    Ok(match resp.outcome {
        qrs_types::QueryOutcome::Underflow => Probe::Empty,
        qrs_types::QueryOutcome::Valid => {
            Probe::All(spec.min_tuple(&resp.tuples).cloned().unwrap())
        }
        qrs_types::QueryOutcome::Overflow => {
            Probe::Partial(spec.min_tuple(&resp.tuples).cloned().unwrap())
        }
    })
}

fn effective_hi(cur: Option<f64>, upto: Option<f64>) -> f64 {
    match (cur, upto) {
        (Some(a), Some(b)) => a.min(b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => f64::INFINITY,
    }
}

fn open_interval(lo: f64, hi: f64) -> Interval {
    Interval {
        lo: if lo == f64::NEG_INFINITY {
            Endpoint::Unbounded
        } else {
            Endpoint::Open(lo)
        },
        hi: if hi == f64::INFINITY {
            Endpoint::Unbounded
        } else {
            Endpoint::Open(hi)
        },
    }
}

/// The uncertainty region between `after` (always exclusive) and `hi`
/// (exclusive): `[lo, hi)` once probes raised `lo` above `after`, else
/// `(after, hi)`.
fn region_iv(after: f64, lo: f64, hi: f64) -> Interval {
    if lo > after {
        half_open(lo, hi)
    } else {
        open_interval(after, hi)
    }
}

fn half_open(lo: f64, hi: f64) -> Interval {
    Interval {
        lo: if lo == f64::NEG_INFINITY {
            Endpoint::Unbounded
        } else {
            Endpoint::Closed(lo)
        },
        hi: if hi == f64::INFINITY {
            Endpoint::Unbounded
        } else {
            Endpoint::Open(hi)
        },
    }
}

// Alias for the dense-region oracle, which crawls with 1D-BASELINE.
pub(crate) use self::baseline as baseline_next_above;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RerankParams;
    use qrs_datagen::synthetic::uniform;
    use qrs_server::{SimServer, SystemRank};

    fn setup(n: usize, k: usize, seed: u64, friendly: bool) -> (SimServer, SharedState) {
        let data = uniform(n, 2, 1, seed);
        let st = SharedState::new(data.schema(), RerankParams::paper_defaults(n, k));
        let sys = if friendly {
            SystemRank::by_attr_asc(AttrId(0))
        } else {
            SystemRank::by_attr_desc(AttrId(0)) // adversarial for Asc user
        };
        let server = SimServer::new(data, sys, k);
        (server, st)
    }

    fn truth_min(server: &SimServer, spec: &OneDSpec, after: f64) -> Option<f64> {
        server
            .dataset()
            .tuples()
            .iter()
            .filter(|t| spec.sel.matches(t) && spec.nval(t) > after)
            .map(|t| spec.nval(t))
            .min_by(f64::total_cmp)
    }

    #[test]
    fn all_strategies_find_the_true_minimum() {
        for friendly in [true, false] {
            for strategy in OneDStrategy::ALL {
                let (server, mut st) = setup(400, 5, 17, friendly);
                let spec = OneDSpec::new(AttrId(0), Direction::Asc, Query::all());
                let t = next_above(&server, &mut st, &spec, strategy, f64::NEG_INFINITY, None)
                    .unwrap()
                    .expect("non-empty dataset has a minimum");
                assert_eq!(
                    Some(spec.nval(&t)),
                    truth_min(&server, &spec, f64::NEG_INFINITY),
                    "{} friendly={friendly}",
                    strategy.label()
                );
            }
        }
    }

    #[test]
    fn descending_direction_finds_maximum() {
        let (server, mut st) = setup(400, 5, 23, false);
        let spec = OneDSpec::new(AttrId(0), Direction::Desc, Query::all());
        let t = next_above(
            &server,
            &mut st,
            &spec,
            OneDStrategy::Binary,
            f64::NEG_INFINITY,
            None,
        )
        .unwrap()
        .unwrap();
        let max = server
            .dataset()
            .tuples()
            .iter()
            .map(|u| u.ord(AttrId(0)))
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(t.ord(AttrId(0)), max);
    }

    #[test]
    fn after_excludes_previous_and_returns_successor() {
        let (server, mut st) = setup(300, 4, 29, false);
        let spec = OneDSpec::new(AttrId(0), Direction::Asc, Query::all());
        let first = next_above(
            &server,
            &mut st,
            &spec,
            OneDStrategy::Rerank,
            f64::NEG_INFINITY,
            None,
        )
        .unwrap()
        .unwrap();
        let second = next_above(
            &server,
            &mut st,
            &spec,
            OneDStrategy::Rerank,
            spec.nval(&first),
            None,
        )
        .unwrap()
        .unwrap();
        assert_eq!(
            Some(spec.nval(&second)),
            truth_min(&server, &spec, spec.nval(&first))
        );
        assert!(spec.nval(&second) > spec.nval(&first));
    }

    #[test]
    fn upto_bounds_the_search() {
        let (server, mut st) = setup(300, 4, 31, true);
        let spec = OneDSpec::new(AttrId(0), Direction::Asc, Query::all());
        // Nothing below the true minimum.
        let m = truth_min(&server, &spec, f64::NEG_INFINITY).unwrap();
        let none = next_above(
            &server,
            &mut st,
            &spec,
            OneDStrategy::Binary,
            f64::NEG_INFINITY,
            Some(m),
        )
        .unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn selection_is_respected() {
        let (server, mut st) = setup(500, 5, 37, false);
        let sel = Query::all().and_range(AttrId(1), Interval::closed(0.4, 0.9));
        let spec = OneDSpec::new(AttrId(0), Direction::Asc, sel);
        for strategy in OneDStrategy::ALL {
            let t = next_above(&server, &mut st, &spec, strategy, f64::NEG_INFINITY, None)
                .unwrap()
                .unwrap();
            assert!(spec.sel.matches(&t));
            assert_eq!(
                Some(spec.nval(&t)),
                truth_min(&server, &spec, f64::NEG_INFINITY)
            );
        }
    }

    #[test]
    fn empty_selection_returns_none_for_all_strategies() {
        let (server, mut st) = setup(200, 4, 41, true);
        let sel = Query::all().and_range(AttrId(1), Interval::closed(2.0, 3.0)); // outside [0,1]
        let spec = OneDSpec::new(AttrId(0), Direction::Asc, sel);
        for strategy in OneDStrategy::ALL {
            assert!(
                next_above(&server, &mut st, &spec, strategy, f64::NEG_INFINITY, None)
                    .unwrap()
                    .is_none()
            );
        }
    }

    #[test]
    fn history_makes_repeat_searches_cheap() {
        let (server, mut st) = setup(400, 5, 43, false);
        let spec = OneDSpec::new(AttrId(0), Direction::Asc, Query::all());
        let t1 = next_above(
            &server,
            &mut st,
            &spec,
            OneDStrategy::Baseline,
            f64::NEG_INFINITY,
            None,
        )
        .unwrap()
        .unwrap();
        let cost_first = server.queries_issued();
        // Second identical search: the confirming region is registered
        // complete, so it costs zero queries.
        let t2 = next_above(
            &server,
            &mut st,
            &spec,
            OneDStrategy::Baseline,
            f64::NEG_INFINITY,
            None,
        )
        .unwrap()
        .unwrap();
        assert_eq!(t1.id, t2.id);
        assert_eq!(server.queries_issued(), cost_first);
    }
}
