//! The MD dense-region index (§4.4, Algorithm 6 lines 3–12).
//!
//! When MD search narrows to a box with relative volume below `(s/n)/c`, the
//! box is crawled **completely and selection-free** (the paper strips
//! `Sel(q)` so one crawl serves all future user queries) and stored. Future
//! oracle hits on a contained box answer from the stored tuples at zero
//! query cost.
//!
//! Deviation from the paper noted in DESIGN.md: Algorithm 6 crawls in score
//! order and may stop early at the first tuple satisfying `Sel(q)`; we crawl
//! the box to completion instead. The cost is the same order (the box holds
//! `O(s)` tuples by construction), and completeness makes the stored entry
//! reusable by *any* ranking function over the same attributes, not just the
//! one that triggered the crawl.

use crate::crawl::crawl_region;
use crate::ctx::SharedState;
use crate::norm::{NormBox, NormView};
use qrs_server::SearchInterface;
use qrs_types::value::cmp_f64;
use qrs_types::{AttrId, Direction, Query, RerankError, Tuple};
use std::sync::Arc;

/// One fully crawled box.
#[derive(Debug)]
pub struct DenseBox {
    attrs: Vec<AttrId>,
    dirs: Vec<Direction>,
    bbox: NormBox,
    tuples: Vec<Arc<Tuple>>,
    /// True when the crawl hit an indistinguishable >k duplicate group.
    pub truncated: bool,
}

/// Registry of crawled boxes.
#[derive(Debug, Default)]
pub struct DenseMd {
    boxes: Vec<DenseBox>,
    /// Crawl queries spent building the index (experiment metric).
    pub build_cost: u64,
}

impl DenseMd {
    /// Crawled boxes registered so far.
    pub fn num_boxes(&self) -> usize {
        self.boxes.len()
    }

    /// Tuples discovered across all boxes.
    pub fn num_tuples(&self) -> usize {
        self.boxes.iter().map(|b| b.tuples.len()).sum()
    }

    fn find(&self, view: &NormView, b: &NormBox) -> Option<&DenseBox> {
        self.boxes.iter().find(|d| {
            d.attrs == view.rank().attrs()
                && d.dirs == view.rank().directions()
                && b.dims
                    .iter()
                    .zip(&d.bbox.dims)
                    .all(|(inner, outer)| inner.is_subset_of(outer))
        })
    }
}

/// Resolve "lowest-scoring tuple matching `sel` inside box `b`" through the
/// index, crawling `b` (selection-free) on a miss. A failed crawl registers
/// nothing: the box is re-crawled on the next call (the shared history still
/// holds every tuple seen, so the retry is cheaper).
pub fn md_oracle(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    view: &NormView,
    b: &NormBox,
    sel: &Query,
) -> Result<Option<(Arc<Tuple>, f64)>, RerankError> {
    if st.densemd.find(view, b).is_none() {
        let before = server.queries_issued();
        let box_query = view.to_query(b, &Query::all());
        let r = match crawl_region(server, st, &box_query) {
            Ok(r) => r,
            Err(e) => {
                st.densemd.build_cost += server.queries_issued() - before;
                return Err(e);
            }
        };
        st.densemd.build_cost += server.queries_issued() - before;
        st.densemd.boxes.push(DenseBox {
            attrs: view.rank().attrs().to_vec(),
            dirs: view.rank().directions().to_vec(),
            bbox: b.clone(),
            tuples: r.tuples,
            truncated: r.truncated,
        });
    }
    let d = st.densemd.find(view, b).expect("just inserted");
    Ok(d.tuples
        .iter()
        .filter(|t| sel.matches(t) && b.contains(&view.norm_coords(t)))
        .map(|t| (Arc::clone(t), view.score(t)))
        .min_by(|a, b| cmp_f64(a.1, b.1).then(a.0.id.cmp(&b.0.id))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RerankParams;
    use qrs_datagen::synthetic::uniform;
    use qrs_ranking::LinearRank;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::Interval;

    fn setup() -> (SimServer, SharedState, NormView) {
        let data = uniform(400, 2, 1, 77);
        let st = SharedState::new(data.schema(), RerankParams::paper_defaults(400, 5));
        let server = SimServer::new(data, SystemRank::pseudo_random(4), 5);
        let rank = LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]);
        let view = NormView::new(Arc::new(rank), server.schema());
        (server, st, view)
    }

    #[test]
    fn oracle_crawls_then_reuses() {
        let (server, mut st, view) = setup();
        let mut b = NormBox::full(view.bounds());
        b.dims[0] = Interval::closed(0.0, 0.2);
        b.dims[1] = Interval::closed(0.0, 0.2);
        let sel = Query::all();
        let got = md_oracle(&server, &mut st, &view, &b, &sel)
            .unwrap()
            .unwrap();
        // Ground truth.
        let truth = server
            .dataset()
            .tuples()
            .iter()
            .filter(|t| t.ord(AttrId(0)) <= 0.2 && t.ord(AttrId(1)) <= 0.2)
            .map(|t| view.score(t))
            .min_by(f64::total_cmp)
            .unwrap();
        assert_eq!(got.1, truth);
        assert!(st.densemd.num_boxes() == 1);
        assert!(st.densemd.build_cost > 0);
        // Contained box afterwards: free.
        let cost = server.queries_issued();
        let mut inner = b.clone();
        inner.dims[0] = Interval::closed(0.05, 0.15);
        let _ = md_oracle(&server, &mut st, &view, &inner, &sel).unwrap();
        assert_eq!(server.queries_issued(), cost);
        assert_eq!(st.densemd.num_boxes(), 1, "no duplicate entry");
    }

    #[test]
    fn oracle_applies_selection_after_generic_crawl() {
        let (server, mut st, view) = setup();
        let mut b = NormBox::full(view.bounds());
        b.dims[0] = Interval::closed(0.0, 0.3);
        let sel = Query::all().and_cat(qrs_types::CatPredicate::eq(qrs_types::CatId(0), 1));
        let got = md_oracle(&server, &mut st, &view, &b, &sel).unwrap();
        let truth = server
            .dataset()
            .tuples()
            .iter()
            .filter(|t| sel.matches(t) && t.ord(AttrId(0)) <= 0.3)
            .map(|t| view.score(t))
            .min_by(f64::total_cmp);
        assert_eq!(got.map(|(_, s)| s), truth);
    }

    #[test]
    fn empty_box_returns_none() {
        let (server, mut st, view) = setup();
        let mut b = NormBox::full(view.bounds());
        b.dims[0] = Interval::closed(5.0, 6.0); // outside data
        assert!(md_oracle(&server, &mut st, &view, &b, &Query::all())
            .unwrap()
            .is_none());
    }
}
