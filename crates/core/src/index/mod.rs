//! On-the-fly dense-region indexes (§3.2.2 and §4.4).
//!
//! Dense regions — many tuples packed into a narrow window — are what makes
//! the binary-search algorithms expensive, and the same dense region gets hit
//! by many different user queries. Both indexes trade a one-time crawling
//! cost for zero-cost answers on all future hits:
//!
//! * [`dense1d`] — per-(attribute, direction) intervals with an incremental
//!   crawl frontier (Algorithm 4's oracle),
//! * [`densemd`] — fully crawled normalized boxes for the MD oracle
//!   (Algorithm 6 lines 3–12).

pub mod dense1d;
pub mod densemd;
