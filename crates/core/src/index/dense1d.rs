//! The 1D on-the-fly dense-region index (Algorithm 4).
//!
//! An indexed interval `⟨Ai, dir, (x, y)⟩` stores the tuples discovered inside
//! it together with a *crawl frontier*: every tuple whose normalized value
//! lies in `[x, frontier]` is known. The [`oracle`] extends the frontier with
//! 1D-BASELINE steps **without the user's selection condition** — the paper's
//! deliberate choice (§3.2.2) that makes one crawl serve every future user
//! query touching the region. Tie slabs are collected exactly, so the
//! frontier invariant survives duplicate attribute values.

use crate::ctx::SharedState;
use crate::one_d::primitives::{baseline_next_above, OneDSpec};
use qrs_server::SearchInterface;
use qrs_types::value::OrdF64;
use qrs_types::{AttrId, Direction, Query, RerankError, Tuple, TupleId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One indexed dense region on a (attribute, direction) axis.
#[derive(Debug)]
pub struct DenseInterval {
    /// Normalized range `[x, y)` this entry covers: the lower end.
    pub x: f64,
    /// The (exclusive) upper end of the covered range.
    pub y: f64,
    /// All values `v ∈ [x, frontier]` are fully crawled (`None` = nothing
    /// crawled yet).
    frontier: Option<f64>,
    /// The whole range is fully crawled.
    complete: bool,
    /// Discovered tuples keyed by (normalized value, id).
    tuples: BTreeMap<(OrdF64, TupleId), Arc<Tuple>>,
}

impl DenseInterval {
    fn new(x: f64, y: f64) -> Self {
        DenseInterval {
            x,
            y,
            frontier: None,
            complete: false,
            tuples: BTreeMap::new(),
        }
    }

    /// Number of tuples discovered in the region so far.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when nothing has been discovered in the region yet.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// True when the whole range `[x, y)` has been crawled.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Smallest (value, id) tuple in `[lo, hi)` matching `sel` *provably*:
    /// only certain if its value is within the crawled frontier.
    fn certain_min(&self, lo: f64, hi: f64, sel: &Query, spec: &OneDSpec) -> Option<Arc<Tuple>> {
        let limit = if self.complete {
            f64::INFINITY
        } else {
            self.frontier?
        };
        self.tuples
            .range((OrdF64(lo), TupleId(0))..)
            .map(|(_, t)| t)
            .take_while(|t| {
                let v = spec.nval(t);
                v < hi && v <= limit
            })
            .find(|t| sel.matches(t))
            .cloned()
    }
}

/// The per-axis index: a list of intervals per (attribute, direction).
#[derive(Debug, Default)]
pub struct Dense1D {
    map: HashMap<(AttrId, Direction), Vec<DenseInterval>>,
    /// Total crawl queries spent building the index (for experiments).
    pub build_cost: u64,
}

impl Dense1D {
    /// Number of indexed intervals across all axes.
    pub fn num_intervals(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Total tuples stored.
    pub fn num_tuples(&self) -> usize {
        self.map
            .values()
            .flat_map(|v| v.iter())
            .map(DenseInterval::len)
            .sum()
    }

    fn entry_covering(
        &mut self,
        attr: AttrId,
        dir: Direction,
        x: f64,
        y: f64,
    ) -> &mut DenseInterval {
        let list = self.map.entry((attr, dir)).or_default();
        if let Some(i) = list.iter().position(|d| d.x <= x && y <= d.y) {
            &mut list[i]
        } else {
            list.push(DenseInterval::new(x, y));
            list.last_mut().unwrap()
        }
    }
}

/// Algorithm 4: resolve "smallest matching tuple with normalized value in
/// `[x, y)`" through the index, crawling (selection-free) as needed.
/// Returns `Ok(None)` when the range holds no matching tuple. On a server
/// failure the crawl frontier keeps everything confirmed so far, so a retry
/// resumes rather than restarts.
pub fn oracle(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    spec: &OneDSpec,
    x: f64,
    y: f64,
) -> Result<Option<Arc<Tuple>>, RerankError> {
    if x >= y {
        return Ok(None);
    }
    // Split the borrow: the crawl steps need &mut SharedState, so the entry
    // is looked up by key each round.
    let key = (spec.attr, spec.dir);
    let generic = OneDSpec::new(spec.attr, spec.dir, Query::all());
    {
        st.dense1d.entry_covering(spec.attr, spec.dir, x, y);
    }
    loop {
        // Phase 1: certain answer from the stored tuples?
        {
            let list = st.dense1d.map.get(&key).unwrap();
            let d = list.iter().find(|d| d.x <= x && y <= d.y).unwrap();
            if let Some(t) = d.certain_min(x, y, &spec.sel, spec) {
                return Ok(Some(t));
            }
            let limit = if d.complete {
                f64::INFINITY
            } else {
                d.frontier.unwrap_or(f64::NEG_INFINITY)
            };
            if d.complete || limit >= y {
                return Ok(None); // fully crawled, no match in [x, y)
            }
        }
        // Phase 2: extend the frontier one slab.
        let (dx, dy, after) = {
            let list = st.dense1d.map.get(&key).unwrap();
            let d = list.iter().find(|d| d.x <= x && y <= d.y).unwrap();
            let after = match d.frontier {
                Some(f) => f,
                // Include the boundary x itself: start one ULP below.
                None => d.x.next_down(),
            };
            (d.x, d.y, after)
        };
        let before = server.queries_issued();
        let found = match baseline_next_above(server, st, &generic, after, Some(dy)) {
            Ok(f) => f,
            Err(e) => {
                st.dense1d.build_cost += server.queries_issued() - before;
                return Err(e);
            }
        };
        match found {
            None => {
                st.dense1d.build_cost += server.queries_issued() - before;
                let list = st.dense1d.map.get_mut(&key).unwrap();
                let d = list.iter_mut().find(|d| d.x <= x && y <= d.y).unwrap();
                d.complete = true;
                d.frontier = Some(dy);
            }
            Some(t) => {
                let v = spec.nval(&t);
                // Collect the whole tie slab at v (selection-free) so the
                // frontier invariant holds with duplicates.
                let slab = match crate::one_d::cursor::gather_slab(server, st, &generic, v) {
                    Ok(slab) => slab,
                    Err(e) => {
                        st.dense1d.build_cost += server.queries_issued() - before;
                        return Err(e);
                    }
                };
                st.dense1d.build_cost += server.queries_issued() - before;
                let list = st.dense1d.map.get_mut(&key).unwrap();
                let d = list.iter_mut().find(|d| d.x <= x && y <= d.y).unwrap();
                debug_assert!(v > after && v < dy, "crawl step left ({after}, {dy})");
                let _ = dx;
                for s in slab {
                    d.tuples.insert((OrdF64(spec.nval(&s)), s.id), s);
                }
                d.frontier = Some(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RerankParams;
    use qrs_datagen::synthetic::clustered;
    use qrs_server::{SimServer, SystemRank};

    fn setup(k: usize) -> (SimServer, SharedState) {
        let data = clustered(800, 1, 2, 0.004, 21);
        let st = SharedState::new(data.schema(), RerankParams::paper_defaults(800, k));
        // Adversarial system ranking: descending attr for ascending users.
        let server = SimServer::new(data, SystemRank::by_attr_desc(AttrId(0)), k);
        (server, st)
    }

    #[test]
    fn oracle_finds_minimum_in_range_and_reuses_index() {
        let (server, mut st) = setup(5);
        let spec = OneDSpec::new(AttrId(0), Direction::Asc, Query::all());
        let truth = |x: f64, y: f64| {
            server
                .dataset()
                .tuples()
                .iter()
                .map(|t| t.ord(AttrId(0)))
                .filter(|&v| v >= x && v < y)
                .min_by(f64::total_cmp)
        };
        let t = oracle(&server, &mut st, &spec, 0.0, 0.5).unwrap().unwrap();
        assert_eq!(Some(t.ord(AttrId(0))), truth(0.0, 0.5));
        // A sub-range lookup afterwards may reuse the same interval's crawl.
        let cost = server.queries_issued();
        let t2 = oracle(&server, &mut st, &spec, 0.0, t.ord(AttrId(0)).next_up()).unwrap();
        assert!(t2.is_some());
        assert_eq!(server.queries_issued(), cost, "second lookup was free");
    }

    #[test]
    fn oracle_respects_selection() {
        let (server, mut st) = setup(5);
        let sel = Query::all().and_cat(qrs_types::CatPredicate::eq(qrs_types::CatId(0), 2));
        let spec = OneDSpec::new(AttrId(0), Direction::Asc, sel.clone());
        let got = oracle(&server, &mut st, &spec, 0.0, 1.1).unwrap();
        let truth = server
            .dataset()
            .tuples()
            .iter()
            .filter(|t| sel.matches(t) && t.ord(AttrId(0)) >= 0.0)
            .map(|t| t.ord(AttrId(0)))
            .min_by(f64::total_cmp);
        assert_eq!(got.map(|t| t.ord(AttrId(0))), truth);
    }

    #[test]
    fn oracle_empty_range_is_none() {
        let (server, mut st) = setup(5);
        let spec = OneDSpec::new(AttrId(0), Direction::Asc, Query::all());
        assert!(oracle(&server, &mut st, &spec, 5.0, 6.0).unwrap().is_none());
        assert!(oracle(&server, &mut st, &spec, 0.5, 0.5).unwrap().is_none());
    }

    #[test]
    fn index_tracks_build_cost_and_sizes() {
        let (server, mut st) = setup(5);
        let spec = OneDSpec::new(AttrId(0), Direction::Asc, Query::all());
        oracle(&server, &mut st, &spec, 0.0, 0.3).unwrap();
        assert!(st.dense1d.num_intervals() >= 1);
        assert!(st.dense1d.num_tuples() >= 1);
        assert!(st.dense1d.build_cost > 0);
        assert!(st.dense1d.build_cost <= server.queries_issued());
    }
}
