//! Consult-before-spend: the [`KnowledgeGate`] server decorator.
//!
//! The knowledge plane (`qrs-knowledge`) must intercept **every** request a
//! strategy makes, and the built-in cursors issue some of theirs through
//! [`crate::strategy::StrategyIo::raw`] rather than the typed helpers — so
//! the interception point is beneath `StrategyIo`: a [`KnowledgeGate`]
//! wraps the real [`SearchInterface`] and is handed to `StrategyIo` in its
//! place. Order per request:
//!
//! 1. build the request's canonical [`RequestKey`],
//! 2. consult the source's [`SourceShard`] — an exact replay or an answer
//!    synthesized from a drained region is returned **without contacting
//!    the server**, charging zero queries and zero cost units while
//!    crediting the gate's `queries_saved`/`cost_units_saved` ledger with
//!    what the site would have billed,
//! 3. on a miss, pay: forward to the inner server and record the response
//!    (successes only — refused requests teach nothing certain).
//!
//! The gate's `queries_issued`/`cost_units_issued` forward to the inner
//! server, so the session layer's in-lock delta attribution keeps working
//! unchanged: knowledge hits add zero to the paid ledger and show up only
//! in the saved one.

use qrs_knowledge::{RequestKey, SourceShard};
use qrs_server::{Capabilities, OrderedPage, SearchInterface};
use qrs_types::{
    AttrId, CostModel, Direction, MutationLog, Query, QueryResponse, RequestKind, Schema,
    ServerError,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A [`SearchInterface`] decorator that answers from a knowledge shard when
/// it can and pays the wrapped server when it must. See the module docs for
/// the consult-before-spend order.
pub struct KnowledgeGate {
    inner: Arc<dyn SearchInterface>,
    shard: Arc<SourceShard>,
    /// The inner server's cost model, captured once: hit pricing must not
    /// pay a capability round-trip per request.
    cost: CostModel,
    k: usize,
    queries_saved: AtomicU64,
    cost_units_saved: AtomicU64,
    /// The inner server's mutation sequence number as of this gate's last
    /// [`sync`](KnowledgeGate::sync) — the watermark everything this gate
    /// cached into the shard was recorded under.
    watermark: AtomicU64,
}

impl KnowledgeGate {
    /// Gate `inner` behind `shard`.
    pub fn new(inner: Arc<dyn SearchInterface>, shard: Arc<SourceShard>) -> Self {
        let cost = inner.capabilities().cost;
        let k = inner.k();
        let gate = KnowledgeGate {
            inner,
            shard,
            cost,
            k,
            queries_saved: AtomicU64::new(0),
            cost_units_saved: AtomicU64::new(0),
            watermark: AtomicU64::new(0),
        };
        gate.sync();
        gate
    }

    /// Poll the inner server's mutation sequence number, report it to the
    /// shard (advancing the shard's watermark bumps its epoch, lazily
    /// invalidating every entry recorded against the older snapshot), and
    /// remember it locally. Called at construction and before every request
    /// so a gate can never serve knowledge recorded before a mutation it
    /// has already observed. Servers without a mutation feed report 0
    /// forever, making this a no-op. Returns the sequence number seen.
    pub fn sync(&self) -> u64 {
        let seq = self.inner.mutation_seq();
        if seq > 0 {
            self.shard.observe_watermark(seq);
        }
        self.watermark.store(seq, Ordering::Release);
        seq
    }

    /// The inner server's mutation sequence number as of the last
    /// [`sync`](KnowledgeGate::sync).
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// The shard this gate consults.
    pub fn shard(&self) -> &Arc<SourceShard> {
        &self.shard
    }

    /// The wrapped server.
    pub fn inner(&self) -> &Arc<dyn SearchInterface> {
        &self.inner
    }

    /// Queries answered from knowledge instead of the server, so far.
    /// Monotonic; the session layer reads deltas across a cursor step
    /// under the shared-state lock, mirroring how paid queries are
    /// attributed.
    pub fn queries_saved(&self) -> u64 {
        self.queries_saved.load(Ordering::Relaxed)
    }

    /// Cost units those knowledge hits would have been billed, under the
    /// server's advertised cost model.
    pub fn cost_units_saved(&self) -> u64 {
        self.cost_units_saved.load(Ordering::Relaxed)
    }

    fn credit(&self, q: &Query, kind: RequestKind) {
        self.queries_saved.fetch_add(1, Ordering::Relaxed);
        self.cost_units_saved
            .fetch_add(self.cost.charge(q, kind), Ordering::Relaxed);
    }
}

impl SearchInterface for KnowledgeGate {
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn query(&self, q: &Query) -> Result<QueryResponse, ServerError> {
        self.sync();
        let key = RequestKey::top_k(q);
        if let Some(hit) = self.shard.lookup_response(&key, q, self.k) {
            self.credit(q, RequestKind::TopK);
            return Ok(QueryResponse::new(hit.tuples, hit.more));
        }
        let resp = self.inner.query(q)?;
        self.shard
            .record_response(key, q, self.k, &resp.tuples, resp.is_overflow());
        Ok(resp)
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }

    fn cost_units_issued(&self) -> u64 {
        self.inner.cost_units_issued()
    }

    fn query_page(&self, q: &Query, page: usize) -> Result<QueryResponse, ServerError> {
        self.sync();
        let key = RequestKey::page(q, page);
        if let Some(hit) = self.shard.lookup_response(&key, q, self.k) {
            self.credit(q, RequestKind::Page);
            return Ok(QueryResponse::new(hit.tuples, hit.more));
        }
        let resp = self.inner.query_page(q, page)?;
        self.shard
            .record_response(key, q, self.k, &resp.tuples, resp.is_overflow());
        Ok(resp)
    }

    fn query_ordered(
        &self,
        q: &Query,
        attr: AttrId,
        dir: Direction,
        page: usize,
    ) -> Result<OrderedPage, ServerError> {
        self.sync();
        let key = RequestKey::ordered(q, attr, dir, page);
        if let Some(hit) = self.shard.lookup_response(&key, q, self.k) {
            self.credit(q, RequestKind::Ordered);
            return Ok(OrderedPage {
                tuples: hit.tuples,
                has_more: hit.more,
            });
        }
        let resp = self.inner.query_ordered(q, attr, dir, page)?;
        self.shard
            .record_response(key, q, self.k, &resp.tuples, resp.has_more);
        Ok(resp)
    }

    fn mutation_seq(&self) -> u64 {
        self.inner.mutation_seq()
    }

    fn mutations_since(&self, since: u64) -> Result<MutationLog, ServerError> {
        self.inner.mutations_since(since)
    }
}

impl std::fmt::Debug for KnowledgeGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnowledgeGate")
            .field("queries_saved", &self.queries_saved())
            .field("cost_units_saved", &self.cost_units_saved())
            .field("shard", &self.shard.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_datagen::synthetic::uniform;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::Interval;

    fn gate(k: usize) -> (KnowledgeGate, Arc<SourceShard>) {
        let data = uniform(120, 2, 1, 2101);
        let server = Arc::new(SimServer::new(data, SystemRank::pseudo_random(3), k));
        let shard = Arc::new(SourceShard::new());
        (
            KnowledgeGate::new(server as Arc<dyn SearchInterface>, Arc::clone(&shard)),
            shard,
        )
    }

    fn narrow() -> Query {
        Query::all().and_range(AttrId(0), Interval::closed(0.2, 0.6))
    }

    #[test]
    fn second_identical_query_is_free_and_identical() {
        let (g, _) = gate(5);
        let q = narrow();
        let cold = g.query(&q).unwrap();
        let paid = g.queries_issued();
        assert_eq!(g.queries_saved(), 0);
        let warm = g.query(&q).unwrap();
        assert_eq!(g.queries_issued(), paid, "hit must not touch the server");
        assert_eq!(g.queries_saved(), 1);
        assert_eq!(g.cost_units_saved(), 1, "flat model: one unit saved");
        assert_eq!(warm.outcome, cold.outcome);
        let ids = |r: &QueryResponse| r.tuples.iter().map(|t| t.id).collect::<Vec<_>>();
        assert_eq!(ids(&warm), ids(&cold));
    }

    #[test]
    fn subsumed_query_is_synthesized_identically_to_the_server() {
        let (g, _) = gate(60);
        // k = 60 over 120 tuples: the [0, 0.4] slice (~48 expected
        // matches) comes back valid, draining its region.
        let wide = Query::all().and_range(AttrId(0), Interval::closed(0.0, 0.4));
        let first = g.query(&wide).unwrap();
        assert!(first.is_valid(), "pick a selection the server drains");
        let sub = Query::all().and_range(AttrId(0), Interval::closed(0.1, 0.3));
        let paid = g.queries_issued();
        let synth = g.query(&sub).unwrap();
        assert_eq!(g.queries_issued(), paid);
        assert_eq!(g.queries_saved(), 1);
        // Ground truth: the same query against an identical ungated server.
        let data = uniform(120, 2, 1, 2101);
        let fresh = SimServer::new(data, SystemRank::pseudo_random(3), 60);
        let truth = fresh.query(&sub).unwrap();
        assert_eq!(synth.outcome, truth.outcome);
        assert_eq!(
            synth.tuples.iter().map(|t| t.id).collect::<Vec<_>>(),
            truth.tuples.iter().map(|t| t.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn invalidation_forces_a_paid_refetch() {
        let (g, shard) = gate(5);
        let q = narrow();
        g.query(&q).unwrap();
        let paid = g.queries_issued();
        shard.invalidate();
        g.query(&q).unwrap();
        assert!(g.queries_issued() > paid, "stale knowledge must be re-paid");
        assert_eq!(g.queries_saved(), 0);
    }

    #[test]
    fn mutations_auto_invalidate_cached_knowledge() {
        let data = uniform(120, 2, 1, 2101);
        let server = Arc::new(SimServer::new(data, SystemRank::pseudo_random(3), 5));
        let shard = Arc::new(SourceShard::new());
        let g = KnowledgeGate::new(
            Arc::clone(&server) as Arc<dyn SearchInterface>,
            Arc::clone(&shard),
        );
        let q = narrow();
        let cold = g.query(&q).unwrap();
        assert_eq!(g.watermark(), 0);
        // Delete a tuple the cached answer contains: the next query through
        // the gate must notice the feed moved and re-pay the server — no
        // manual invalidate() call anywhere.
        let victim = cold.tuples[0].id;
        server.delete(victim).expect("victim is present");
        let paid = g.queries_issued();
        let fresh = g.query(&q).unwrap();
        assert!(g.queries_issued() > paid, "stale replay must be re-paid");
        assert_eq!(g.queries_saved(), 0);
        assert_eq!(g.watermark(), 1);
        assert_eq!(shard.stats().watermark, 1);
        assert!(fresh.tuples.iter().all(|t| t.id != victim));
        // And the re-recorded answer replays free at the new watermark.
        let paid = g.queries_issued();
        g.query(&q).unwrap();
        assert_eq!(g.queries_issued(), paid);
        assert_eq!(g.queries_saved(), 1);
    }

    #[test]
    fn saved_cost_units_use_the_advertised_model() {
        let data = uniform(120, 2, 1, 2103);
        let server = SimServer::new(data, SystemRank::pseudo_random(3), 5)
            .with_cost_model(CostModel::flat().with_base(3).with_range_cost(2));
        let shard = Arc::new(SourceShard::new());
        let g = KnowledgeGate::new(Arc::new(server), shard);
        let q = narrow(); // one range predicate: 3 + 2 = 5 units
        g.query(&q).unwrap();
        g.query(&q).unwrap();
        assert_eq!(g.queries_saved(), 1);
        assert_eq!(g.cost_units_saved(), 5);
    }
}
