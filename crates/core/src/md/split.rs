//! Prefix-box partition geometry.
//!
//! The recurring MD step is: given a box `b` and a pivot `p` with
//! `S(p) ≥ target`, cover `{u ∈ b : S(u) < target}` with rectangular
//! queries while pruning the corner `{u ⪰ p}` (every point there scores at
//! least `S(p) ≥ target` by monotonicity). [`prefix_split`] produces the `m`
//! mutually-exclusive boxes
//!
//! ```text
//! child_j = b ∩ {u_1 ≥ p_1, …, u_{j-1} ≥ p_{j-1}, u_j < p_j}
//! ```
//!
//! whose union is exactly `b \ {u ⪰ p}` — the corrected, complete version of
//! the paper's Eq. 7/Eq. 9 covers (see `qrs-ranking`'s module docs for why
//! the cumulative corner replaces per-coordinate `b(Aj)` when `m ≥ 3`).
//! [`split_excluding`] additionally sub-splits the one child containing a
//! witness tuple so the witness lands in no child — the progress guarantee.

use crate::norm::{NormBox, NormView};
use qrs_types::Interval;

/// `b \ {u ⪰ pivot}` as at most `m` disjoint boxes (empty children dropped).
pub fn prefix_split(b: &NormBox, pivot: &[f64]) -> Vec<NormBox> {
    let m = b.dims.len();
    debug_assert_eq!(pivot.len(), m);
    let mut out = Vec::with_capacity(m);
    for j in 0..m {
        let mut child = b.clone();
        for (l, &pl) in pivot.iter().enumerate().take(j) {
            child.dims[l] = child.dims[l].intersect(&Interval::at_least(pl));
        }
        child.dims[j] = child.dims[j].intersect(&Interval::less_than(pivot[j]));
        if !child.is_empty() {
            out.push(child);
        }
    }
    out
}

/// Split `b` around `pivot` (pruning `{u ⪰ pivot}`), then sub-split the
/// child containing the witness `w` around the contour corner derived from
/// `w`, so `w` itself is excluded from every returned box.
///
/// Preconditions: `S(pivot) ≥ target`, `S(w) ≥ target`, `w ∈ b`.
pub fn split_excluding(
    view: &NormView,
    b: &NormBox,
    pivot: &[f64],
    w: &[f64],
    target: f64,
) -> Vec<NormBox> {
    let mut children = prefix_split(b, pivot);
    if let Some(i) = children.iter().position(|c| c.contains(w)) {
        let host = children.swap_remove(i);
        let lo = host.lo_corner(view.bounds());
        let corner = view.rank().corner(w, target, &lo);
        debug_assert!(view.rank().score_norm(&corner) >= target);
        children.extend(prefix_split(&host, &corner));
    }
    children
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_ranking::{LinearRank, NormBounds};
    use qrs_types::{AttrId, Direction, OrdinalAttr, Schema};
    use std::sync::Arc;

    fn unit_box(m: usize) -> NormBox {
        NormBox {
            dims: vec![Interval::closed(0.0, 1.0); m],
        }
    }

    fn grid_points(m: usize, steps: usize) -> Vec<Vec<f64>> {
        // All grid points in [0,1]^m.
        let mut pts = vec![vec![]];
        for _ in 0..m {
            let mut next = Vec::new();
            for p in &pts {
                for s in 0..=steps {
                    let mut q = p.clone();
                    q.push(s as f64 / steps as f64);
                    next.push(q);
                }
            }
            pts = next;
        }
        pts
    }

    #[test]
    fn prefix_split_is_disjoint_and_covers_complement() {
        for m in [1, 2, 3, 4] {
            let b = unit_box(m);
            let pivot = vec![0.4; m];
            let children = prefix_split(&b, &pivot);
            assert!(children.len() <= m);
            for u in grid_points(m, 5) {
                let in_corner = u.iter().all(|&x| x >= 0.4);
                let holders = children.iter().filter(|c| c.contains(&u)).count();
                if in_corner {
                    assert_eq!(holders, 0, "corner point {u:?} covered");
                } else {
                    assert_eq!(holders, 1, "point {u:?} held by {holders} boxes");
                }
            }
        }
    }

    #[test]
    fn prefix_split_with_pivot_on_boundary() {
        let b = unit_box(2);
        // Pivot at the lo corner: everything is in the pruned corner.
        assert!(prefix_split(&b, &[0.0, 0.0]).is_empty());
        // Pivot at the hi corner: children cover all but the single point.
        let children = prefix_split(&b, &[1.0, 1.0]);
        assert_eq!(children.len(), 2);
        assert!(children.iter().all(|c| !c.contains(&[1.0, 1.0])));
        assert_eq!(
            children.iter().filter(|c| c.contains(&[0.3, 0.9])).count(),
            1
        );
    }

    fn view3() -> NormView {
        let schema = Schema::new(
            vec![
                OrdinalAttr::new("a", 0.0, 1.0),
                OrdinalAttr::new("b", 0.0, 1.0),
                OrdinalAttr::new("c", 0.0, 1.0),
            ],
            vec![],
        );
        let rank = LinearRank::new(vec![
            (AttrId(0), Direction::Asc, 1.0),
            (AttrId(1), Direction::Asc, 1.0),
            (AttrId(2), Direction::Asc, 1.0),
        ]);
        NormView::new(Arc::new(rank), &schema)
    }

    #[test]
    fn split_excluding_removes_witness_but_keeps_candidates() {
        let view = view3();
        let b = unit_box(3);
        let target = 0.75;
        let w = [0.3, 0.3, 0.3]; // S = 0.9 >= target
        let pivot = view
            .rank()
            .contour_point(&[0.0; 3], &[1.0; 3], target)
            .unwrap();
        let children = split_excluding(&view, &b, &pivot, &w, target);
        // The witness is in no child.
        assert!(children.iter().all(|c| !c.contains(&w)));
        // Every grid point scoring < target is in exactly one child.
        for u in grid_points(3, 4) {
            let s: f64 = u.iter().sum();
            let holders = children.iter().filter(|c| c.contains(&u)).count();
            if s < target {
                assert_eq!(holders, 1, "u {u:?} s {s} holders {holders}");
            } else {
                assert!(holders <= 1, "u {u:?} double-covered");
            }
        }
        // This is the counterexample shape from the ranking crate docs:
        // (0.24, 0.24, 0.44·…) analog must stay covered.
        let tricky = [0.24, 0.24, 0.26];
        assert_eq!(children.iter().filter(|c| c.contains(&tricky)).count(), 1);
    }

    #[test]
    fn bounds_helper_consistency() {
        // NormBounds used by lo_corner must clamp unbounded dims.
        let nb = NormBounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let mut b = NormBox {
            dims: vec![Interval::all(), Interval::closed(0.2, 0.8)],
        };
        assert_eq!(b.lo_corner(&nb), vec![0.0, 0.2]);
        b.dims[0] = Interval::less_than(0.5);
        assert_eq!(b.hi_corner(&nb), vec![0.5, 0.8]);
    }
}
