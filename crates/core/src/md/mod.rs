//! Multi-dimensional query reranking (§4).
//!
//! * [`top1`] — the shared top-1 search loop; strategy toggles select
//!   MD-BASELINE (§4.2), MD-BINARY (§4.3: direct domination detection +
//!   virtual-tuple pruning) or MD-RERANK (§4.4: + dense-region oracle),
//! * [`split`] — the prefix-box partition geometry all of them share,
//! * [`cursor`] — the Get-Next driver (top-k via subspace splitting,
//!   §4.2.2), exact under ties via point-slab subspaces,
//! * [`ta`] — the "TA over 1D-RERANK" comparator (§4.1) with the §5
//!   public-ORDER-BY variant.

pub mod cursor;
pub mod split;
pub mod ta;
pub mod top1;

pub use cursor::MdCursor;
pub use ta::TaCursor;
pub use top1::{md_top1, MdOptions};

/// Preset algorithm selector for experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MdAlgo {
    /// Fagin-style TA driven by 1D-RERANK Get-Next streams (§4.1).
    TaOver1D,
    /// TA with sorted access through the server's public `ORDER BY` where
    /// available (§5 "Multiple/Known System Ranking Functions").
    TaPublicOrderBy,
    /// MD-BASELINE (§4.2).
    Baseline,
    /// MD-BINARY (§4.3).
    Binary,
    /// MD-RERANK (§4.4).
    Rerank,
}

impl MdAlgo {
    /// The paper's four compared algorithms (Figs 13/14).
    pub const ALL: [MdAlgo; 4] = [
        MdAlgo::TaOver1D,
        MdAlgo::Baseline,
        MdAlgo::Binary,
        MdAlgo::Rerank,
    ];

    /// Human-readable name used in experiment tables and plots.
    pub fn label(self) -> &'static str {
        match self {
            MdAlgo::TaOver1D => "TA over 1D-RERANK",
            MdAlgo::TaPublicOrderBy => "TA via public ORDER BY",
            MdAlgo::Baseline => "MD-BASELINE",
            MdAlgo::Binary => "MD-BINARY",
            MdAlgo::Rerank => "MD-RERANK",
        }
    }
}
