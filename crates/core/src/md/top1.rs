//! The shared MD top-1 search loop (§4.2–§4.4).
//!
//! One loop, three strategy toggles:
//!
//! * **off/off/off** — MD-BASELINE: maintain a queue of candidate boxes;
//!   each overflowing box is partitioned around the contour corner of its
//!   witness tuple (the corrected Eq. 8/Eq. 9 cover), and boxes are shrunk
//!   by the `ℓ(Ai)` axis caps (Eq. 6) of the best score so far,
//! * **`virtual_tuples`** — split around the max-volume contour point `v'`
//!   instead (§4.3.2 "virtual tuple pruning"), sub-splitting the child that
//!   contains the witness so progress is still guaranteed,
//! * **`domination`** — before splitting, probe the box `{u ⪯ v'}` dominated
//!   by the virtual tuple (§4.3.2 "direct domination detection"): any tuple
//!   there scores ≤ S(v') = target and usually improves the threshold,
//! * **`dense_index`** — boxes smaller than the `(s/n)/c` relative-volume
//!   threshold go to the MD dense-region oracle instead of being split
//!   further (§4.4).

use crate::ctx::SharedState;
use crate::index::densemd::md_oracle;
use crate::md::split::{prefix_split, split_excluding};
use crate::norm::{NormBox, NormView};
use qrs_server::SearchInterface;
use qrs_types::{Interval, Query, RerankError, Tuple};
use std::collections::VecDeque;
use std::sync::Arc;

/// Strategy toggles (see module docs). Presets map onto the paper's three
/// MD algorithms; individual flags support the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdOptions {
    /// Split around *virtual* (corner) tuples instead of discovered ones
    /// (§4.3's binary refinement).
    pub virtual_tuples: bool,
    /// Prune subspaces dominated by an already-found candidate.
    pub domination: bool,
    /// Crawl and index small boxes through the §4.4 dense index.
    pub dense_index: bool,
}

impl MdOptions {
    /// MD-BASELINE (§4.2): no virtual splits, no pruning, no index.
    pub fn baseline() -> Self {
        MdOptions {
            virtual_tuples: false,
            domination: false,
            dense_index: false,
        }
    }

    /// MD-BINARY (§4.3): virtual splits + domination pruning.
    pub fn binary() -> Self {
        MdOptions {
            virtual_tuples: true,
            domination: true,
            dense_index: false,
        }
    }

    /// MD-RERANK (§4.4): everything on, including the dense index.
    pub fn rerank() -> Self {
        MdOptions {
            virtual_tuples: true,
            domination: true,
            dense_index: true,
        }
    }
}

type Best = Option<(Arc<Tuple>, f64)>;

fn consider(best: &mut Best, t: &Arc<Tuple>, score: f64) {
    match best {
        None => *best = Some((Arc::clone(t), score)),
        Some((bt, bs)) => {
            if score < *bs || (score == *bs && t.id < bt.id) {
                *best = Some((Arc::clone(t), score));
            }
        }
    }
}

/// Lowest-scoring tuple in `b ∧ sel` (ties by id **not** guaranteed global —
/// equal-score regions may be pruned; callers needing full tie sets use the
/// cursor's cell machinery).
pub fn md_top1(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    view: &NormView,
    sel: &Query,
    b0: &NormBox,
    opts: MdOptions,
) -> Result<Option<(Arc<Tuple>, f64)>, RerankError> {
    let mut best: Best = history_best(st, view, b0, sel);
    let mut queue: VecDeque<NormBox> = VecDeque::new();
    queue.push_back(b0.clone());

    while let Some(b) = queue.pop_front() {
        if b.is_empty() {
            continue;
        }
        // Shrink by the ℓ(Ai) caps of the current threshold; may prove the
        // whole box prunable.
        let b = match shrink(view, &b, best.as_ref().map(|(_, s)| *s)) {
            None => continue,
            Some(x) => x,
        };
        if opts.dense_index && b.rel_volume(view.bounds()) < st.params.dense_rel_volume() {
            if let Some((t, s)) = md_oracle(server, st, view, &b, sel)? {
                consider(&mut best, &t, s);
            }
            continue;
        }
        let q = view.to_query(&b, sel);
        if q.is_unsatisfiable() {
            continue;
        }
        if st.complete.covers(&q) {
            if let Some((t, s)) = history_best(st, view, &b, sel) {
                consider(&mut best, &t, s);
            }
            continue;
        }
        let resp = server.query(&q)?;
        st.absorb(&q, &resp);
        match resp.outcome {
            qrs_types::QueryOutcome::Underflow => continue,
            qrs_types::QueryOutcome::Valid => {
                for t in &resp.tuples {
                    consider(&mut best, t, view.score(t));
                }
                continue;
            }
            qrs_types::QueryOutcome::Overflow => {
                // Witness: best returned tuple (all returned lie in b ∧ sel).
                let w = resp
                    .tuples
                    .iter()
                    .min_by(|a, c| {
                        qrs_types::value::cmp_f64(view.score(a), view.score(c))
                            .then(a.id.cmp(&c.id))
                    })
                    .expect("overflow responses are non-empty")
                    .clone();
                consider(&mut best, &w, view.score(&w));
                let target = best.as_ref().map(|(_, s)| *s).expect("best set by witness");
                let lo = b.lo_corner(view.bounds());
                let hi = b.hi_corner(view.bounds());
                let wc = view.norm_coords(&w);

                let pivot = if opts.virtual_tuples {
                    view.rank().contour_point(&lo, &hi, target)
                } else {
                    None
                };
                match pivot {
                    Some(p) => {
                        if opts.domination {
                            probe_dominated(server, st, view, &b, &p, sel, &mut best)?;
                        }
                        let target = best.as_ref().map(|(_, s)| *s).unwrap();
                        queue.extend(split_excluding(view, &b, &p, &wc, target));
                    }
                    None => {
                        if view.rank().score_norm(&lo) >= target {
                            continue; // whole box at/above the threshold
                        }
                        // MD-BASELINE path: corner split around the witness.
                        let corner = view.rank().corner(&wc, target, &lo);
                        queue.extend(prefix_split(&b, &corner));
                    }
                }
            }
        }
    }
    Ok(best)
}

/// §4.3.2 direct domination detection: one query on the box `{u ⪯ p} ∩ b`.
fn probe_dominated(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    view: &NormView,
    b: &NormBox,
    p: &[f64],
    sel: &Query,
    best: &mut Best,
) -> Result<(), RerankError> {
    let mut probe = b.clone();
    for (j, &pj) in p.iter().enumerate() {
        probe.dims[j] = probe.dims[j].intersect(&Interval::at_most(pj));
    }
    if probe.is_empty() {
        return Ok(());
    }
    let q = view.to_query(&probe, sel);
    if q.is_unsatisfiable() {
        return Ok(());
    }
    if st.complete.covers(&q) {
        if let Some((t, s)) = history_best(st, view, &probe, sel) {
            consider(best, &t, s);
        }
        return Ok(());
    }
    let resp = server.query(&q)?;
    st.absorb(&q, &resp);
    for t in &resp.tuples {
        consider(best, t, view.score(t));
    }
    Ok(())
}

/// Best known tuple inside a box from history alone.
pub(crate) fn history_best(st: &SharedState, view: &NormView, b: &NormBox, sel: &Query) -> Best {
    let attr0 = view.rank().attrs()[0];
    let raw_iv = match view.rank().directions()[0] {
        qrs_types::Direction::Asc => b.dims[0],
        qrs_types::Direction::Desc => b.dims[0].negate(),
    };
    let mut best: Best = None;
    for t in st.history.in_range(attr0, raw_iv) {
        if sel.matches(t) && b.contains(&view.norm_coords(t)) {
            let s = view.score(t);
            consider(&mut best, t, s);
        }
    }
    best
}

/// Cap each axis at its `ℓ(Ai)` intercept for the threshold; `None` when the
/// whole box is provably at/above the threshold.
fn shrink(view: &NormView, b: &NormBox, threshold: Option<f64>) -> Option<NormBox> {
    let Some(target) = threshold else {
        return Some(b.clone());
    };
    let lo = b.lo_corner(view.bounds());
    if view.rank().score_norm(&lo) >= target {
        return None;
    }
    let hi = b.hi_corner(view.bounds());
    let mut out = b.clone();
    for (j, &hj) in hi.iter().enumerate() {
        if let Some(e) = view.rank().ell(j, target, &lo, hj) {
            out.dims[j] = out.dims[j].intersect(&Interval::less_than(e));
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RerankParams;
    use qrs_datagen::synthetic::{correlated, uniform};
    use qrs_ranking::{LinearRank, RankFn};
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::value::cmp_f64;
    use qrs_types::AttrId;

    fn opts_all() -> [(&'static str, MdOptions); 3] {
        [
            ("baseline", MdOptions::baseline()),
            ("binary", MdOptions::binary()),
            ("rerank", MdOptions::rerank()),
        ]
    }

    fn check_top1(
        data: qrs_types::Dataset,
        sys: SystemRank,
        k: usize,
        rank: LinearRank,
        sel: Query,
    ) {
        let truth = data
            .tuples()
            .iter()
            .filter(|t| sel.matches(t))
            .map(|t| rank.score(t))
            .min_by(|a, b| cmp_f64(*a, *b));
        let n = data.len();
        for (name, opts) in opts_all() {
            let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(n, k));
            let server = SimServer::new(data.clone(), sys.clone(), k);
            let view = NormView::new(Arc::new(rank.clone()), server.schema());
            let b0 = view.initial_box(&sel);
            let got = md_top1(&server, &mut st, &view, &sel, &b0, opts).unwrap();
            assert_eq!(got.map(|(_, s)| s), truth, "algo {name}");
        }
    }

    #[test]
    fn finds_top1_uniform_2d() {
        let data = uniform(300, 2, 1, 101);
        check_top1(
            data,
            SystemRank::pseudo_random(5),
            5,
            LinearRank::asc(vec![(AttrId(0), 0.7), (AttrId(1), 0.3)]),
            Query::all(),
        );
    }

    #[test]
    fn finds_top1_anticorrelated_adversarial_system() {
        let data = correlated(300, -0.9, 103);
        // System ranks by descending sum — worst case for an ascending user.
        let sys = SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]);
        check_top1(
            data,
            sys,
            5,
            LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]),
            Query::all(),
        );
    }

    #[test]
    fn finds_top1_3d_with_selection() {
        let data = uniform(400, 3, 1, 107);
        let sel = Query::all().and_cat(qrs_types::CatPredicate::eq(qrs_types::CatId(0), 1));
        check_top1(
            data,
            SystemRank::linear("sys", vec![(AttrId(2), -1.0)]),
            4,
            LinearRank::asc(vec![(AttrId(0), 0.5), (AttrId(1), 0.9), (AttrId(2), 0.2)]),
            sel,
        );
    }

    #[test]
    fn mixed_directions() {
        let data = uniform(300, 2, 1, 109);
        let rank = LinearRank::new(vec![
            (AttrId(0), qrs_types::Direction::Asc, 1.0),
            (AttrId(1), qrs_types::Direction::Desc, 2.0),
        ]);
        check_top1(
            data,
            SystemRank::by_attr_asc(AttrId(1)),
            5,
            rank,
            Query::all(),
        );
    }

    #[test]
    fn empty_selection_yields_none() {
        let data = uniform(200, 2, 1, 113);
        let sel = Query::all().and_range(AttrId(0), Interval::closed(5.0, 6.0));
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(200, 5));
        let server = SimServer::new(data, SystemRank::pseudo_random(1), 5);
        let rank = LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]);
        let view = NormView::new(Arc::new(rank), server.schema());
        let b0 = view.initial_box(&sel);
        assert!(
            md_top1(&server, &mut st, &view, &sel, &b0, MdOptions::binary())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn rerank_uses_dense_oracle_on_tiny_boxes() {
        let data = uniform(300, 2, 1, 117);
        // Absurdly generous dense threshold: every box goes to the oracle.
        let mut st = SharedState::new(data.schema(), RerankParams::with_sc(300, 300.0, 0.5));
        let server = SimServer::new(data.clone(), SystemRank::pseudo_random(2), 5);
        let rank = LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]);
        let view = NormView::new(Arc::new(rank.clone()), server.schema());
        let b0 = view.initial_box(&Query::all());
        let got = md_top1(
            &server,
            &mut st,
            &view,
            &Query::all(),
            &b0,
            MdOptions::rerank(),
        )
        .unwrap();
        let truth = data
            .tuples()
            .iter()
            .map(|t| rank.score(t))
            .min_by(|a, b| cmp_f64(*a, *b));
        assert_eq!(got.map(|(_, s)| s), truth);
        assert!(st.densemd.num_boxes() > 0, "oracle never engaged");
    }
}
