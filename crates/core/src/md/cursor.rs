//! The MD Get-Next driver (§4.2.2), exact under ties.
//!
//! The paper discovers the No. (h+1) tuple by maintaining subspaces split at
//! previously emitted tuples and taking the best subspace top-1. We split
//! *three ways* per dimension (`< v`, `= v`, `> v`) instead of the paper's
//! two, which removes the general-positioning assumption (§5): tuples
//! sharing attribute values with an emitted tuple live in the `= v` slabs.
//! A fully pinned slab (every ranking dimension a point) is a *cell*; cells
//! track emitted ids explicitly and enumerate exact duplicates through point
//! queries / sub-crawls on the remaining attributes.

use crate::crawl::crawl_region;
use crate::ctx::SharedState;
use crate::md::top1::{md_top1, MdOptions};
use crate::norm::{NormBox, NormView};
use qrs_ranking::RankFn;
use qrs_server::SearchInterface;
use qrs_types::{Interval, Query, RerankError, Schema, Tuple, TupleId};
use std::collections::HashSet;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum TopState {
    Unknown,
    Empty,
    Known(Arc<Tuple>, f64),
}

#[derive(Debug)]
struct Subspace {
    bbox: NormBox,
    top: TopState,
    /// Ids emitted from this subspace — only populated for cells.
    cell_emitted: HashSet<TupleId>,
}

/// How the Get-Next driver treats ranking-attribute ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MdTie {
    /// Three-way splits with point slabs and duplicate cells: exact on any
    /// data (§5's removal of the general positioning assumption).
    #[default]
    Exact,
    /// The paper's §4.2.2 splitting: two subspaces per emission
    /// (`A1 < v`, `A1 > v`). Cheaper; exact only under the general
    /// positioning assumption (tuples sharing a ranking value with an
    /// emitted tuple are skipped, as in the paper's experiments).
    GeneralPositioning,
}

/// Streaming Get-Next over an arbitrary monotonic ranking function.
pub struct MdCursor {
    view: NormView,
    sel: Query,
    opts: MdOptions,
    tie: MdTie,
    subs: Vec<Subspace>,
}

impl MdCursor {
    /// Cursor over `rank` restricted to `sel`, with exact tie handling.
    pub fn new(rank: Arc<dyn RankFn>, sel: Query, opts: MdOptions, schema: &Schema) -> Self {
        Self::with_tie(rank, sel, opts, schema, MdTie::Exact)
    }

    /// Like [`MdCursor::new`] but with an explicit tie-handling policy.
    pub fn with_tie(
        rank: Arc<dyn RankFn>,
        sel: Query,
        opts: MdOptions,
        schema: &Schema,
        tie: MdTie,
    ) -> Self {
        let view = NormView::new(rank, schema);
        let b0 = view.initial_box(&sel);
        MdCursor {
            view,
            sel,
            opts,
            tie,
            subs: vec![Subspace {
                bbox: b0,
                top: TopState::Unknown,
                cell_emitted: HashSet::new(),
            }],
        }
    }

    /// The normalized view (ranking function + bounds) the cursor searches.
    pub fn view(&self) -> &NormView {
        &self.view
    }

    /// The next tuple in user-ranking order (`Ok(None)` once `R(q)` is
    /// exhausted). On `Err` the already-resolved subspace tops are kept, so
    /// a retry resumes with the work already paid for.
    pub fn next(
        &mut self,
        server: &dyn SearchInterface,
        st: &mut SharedState,
    ) -> Result<Option<Arc<Tuple>>, RerankError> {
        // Resolve all unknown subspace tops.
        for sub in &mut self.subs {
            if matches!(sub.top, TopState::Unknown) {
                sub.top = if sub.bbox.is_cell() {
                    cell_top(
                        server,
                        st,
                        &self.view,
                        &sub.bbox,
                        &self.sel,
                        &sub.cell_emitted,
                    )?
                } else {
                    match md_top1(server, st, &self.view, &self.sel, &sub.bbox, self.opts)? {
                        None => TopState::Empty,
                        Some((t, s)) => TopState::Known(t, s),
                    }
                };
            }
        }
        // Best over subspaces (score, then id).
        let Some(best_idx) = self
            .subs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match &s.top {
                TopState::Known(t, sc) => Some((i, t.id, *sc)),
                _ => None,
            })
            .min_by(|a, b| qrs_types::value::cmp_f64(a.2, b.2).then(a.1.cmp(&b.1)))
            .map(|(i, _, _)| i)
        else {
            return Ok(None);
        };

        let TopState::Known(t, _) = self.subs[best_idx].top.clone() else {
            unreachable!()
        };
        if self.subs[best_idx].bbox.is_cell() {
            let sub = &mut self.subs[best_idx];
            sub.cell_emitted.insert(t.id);
            sub.top = TopState::Unknown;
        } else {
            let host = self.subs.swap_remove(best_idx);
            let coords = self.view.norm_coords(&t);
            match self.tie {
                MdTie::Exact => {
                    self.subs.extend(split_at_tuple(&host.bbox, &coords, t.id));
                }
                MdTie::GeneralPositioning => {
                    // §4.2.2: split the host on the first free dimension
                    // only, dropping the boundary slab.
                    let d = (0..coords.len())
                        .find(|&d| {
                            let iv = host.bbox.dims[d];
                            !matches!(
                                (iv.lo, iv.hi),
                                (qrs_types::Endpoint::Closed(a), qrs_types::Endpoint::Closed(b)) if a == b
                            )
                        })
                        .unwrap_or(0);
                    for side in [
                        Interval::less_than(coords[d]),
                        Interval::greater_than(coords[d]),
                    ] {
                        let child = host.bbox.with_dim(d, side);
                        if !child.is_empty() {
                            self.subs.push(Subspace {
                                bbox: child,
                                top: TopState::Unknown,
                                cell_emitted: HashSet::new(),
                            });
                        }
                    }
                }
            }
        }
        Ok(Some(t))
    }

    /// Pull the top `h` tuples (shorter if `R(q)` is exhausted).
    pub fn top_h(
        &mut self,
        server: &dyn SearchInterface,
        st: &mut SharedState,
        h: usize,
    ) -> Result<Vec<Arc<Tuple>>, RerankError> {
        let mut out = Vec::with_capacity(h);
        for _ in 0..h {
            match self.next(server, st)? {
                Some(t) => out.push(t),
                None => break,
            }
        }
        Ok(out)
    }

    /// Number of live subspaces (diagnostics).
    pub fn num_subspaces(&self) -> usize {
        self.subs.len()
    }
}

/// Three-way split of a box at an emitted tuple's coordinates; the all-point
/// residue becomes a cell with the tuple pre-marked emitted.
fn split_at_tuple(b: &NormBox, coords: &[f64], id: TupleId) -> Vec<Subspace> {
    let mut out = Vec::new();
    let mut cur = b.clone();
    for (d, &v) in coords.iter().enumerate() {
        let iv = cur.dims[d];
        let is_point = matches!(
            (iv.lo, iv.hi),
            (qrs_types::Endpoint::Closed(a), qrs_types::Endpoint::Closed(bv)) if a == bv
        );
        if is_point {
            continue;
        }
        for side in [Interval::less_than(v), Interval::greater_than(v)] {
            let child = cur.with_dim(d, side);
            if !child.is_empty() {
                out.push(Subspace {
                    bbox: child,
                    top: TopState::Unknown,
                    cell_emitted: HashSet::new(),
                });
            }
        }
        cur.dims[d] = cur.dims[d].intersect(&Interval::point(v));
    }
    let mut emitted = HashSet::new();
    emitted.insert(id);
    out.push(Subspace {
        bbox: cur,
        top: TopState::Unknown,
        cell_emitted: emitted,
    });
    out
}

/// Top of a cell: the lowest-id unemitted tuple at exactly these ranking
/// coordinates (all share one score).
fn cell_top(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    view: &NormView,
    cell: &NormBox,
    sel: &Query,
    emitted: &HashSet<TupleId>,
) -> Result<TopState, RerankError> {
    let q = view.to_query(cell, sel);
    if q.is_unsatisfiable() {
        return Ok(TopState::Empty);
    }
    if !st.complete.covers(&q) {
        let resp = server.query(&q)?;
        st.absorb(&q, &resp);
        if resp.is_overflow() {
            // >k tuples at one ranking-coordinate point: crawl by the
            // remaining (non-ranking / categorical) attributes.
            crawl_region(server, st, &q)?;
        }
    }
    let known = st.history.matching(&q);
    Ok(match known.into_iter().find(|t| !emitted.contains(&t.id)) {
        Some(t) => {
            let s = view.score(&t);
            TopState::Known(t, s)
        }
        None => TopState::Empty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RerankParams;
    use qrs_datagen::synthetic::{correlated, discrete_grid, uniform};
    use qrs_ranking::LinearRank;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::value::cmp_f64;
    use qrs_types::AttrId;

    /// Compare an emitted prefix against the *full* ground-truth ranking by
    /// score sequence; id-sets must match per equal-score group, except the
    /// final group which may be cut by the prefix (tie order among equal
    /// scores is unspecified, so any subset of the group is legal there).
    fn assert_stream_matches(
        got: &[Arc<Tuple>],
        full_truth: &[Arc<Tuple>],
        score: impl Fn(&Tuple) -> f64,
    ) {
        assert!(got.len() <= full_truth.len(), "emitted more than exists");
        let gs: Vec<f64> = got.iter().map(|t| score(t)).collect();
        let ts: Vec<f64> = full_truth
            .iter()
            .take(got.len())
            .map(|t| score(t))
            .collect();
        assert_eq!(gs, ts, "score sequences differ");
        let mut i = 0;
        while i < gs.len() {
            let mut j = i;
            while j < gs.len() && gs[j] == gs[i] {
                j += 1;
            }
            let mut g: Vec<u32> = got[i..j].iter().map(|t| t.id.0).collect();
            g.sort_unstable();
            let mut w: Vec<u32> = full_truth
                .iter()
                .filter(|t| score(t) == gs[i])
                .map(|t| t.id.0)
                .collect();
            w.sort_unstable();
            if j < gs.len() || w.len() == g.len() {
                // Interior group (or exactly complete): sets must be equal.
                assert_eq!(g, w, "tie group {i}..{j}");
            } else {
                // Truncated final group: any subset of the right size.
                assert!(
                    g.iter().all(|id| w.binary_search(id).is_ok()),
                    "final group {g:?} not a subset of {w:?}"
                );
            }
            i = j;
        }
    }

    fn run_all(
        data: qrs_types::Dataset,
        rank: LinearRank,
        sel: Query,
        sys: SystemRank,
        k: usize,
        h: usize,
    ) {
        let mut truth: Vec<Arc<Tuple>> = data
            .tuples()
            .iter()
            .filter(|t| sel.matches(t))
            .cloned()
            .collect();
        truth.sort_by(|a, b| cmp_f64(rank.score(a), rank.score(b)).then(a.id.cmp(&b.id)));
        let n = data.len();
        for (name, opts) in [
            ("baseline", MdOptions::baseline()),
            ("binary", MdOptions::binary()),
            ("rerank", MdOptions::rerank()),
        ] {
            let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(n, k));
            let server = SimServer::new(data.clone(), sys.clone(), k);
            let mut cur = MdCursor::new(Arc::new(rank.clone()), sel.clone(), opts, server.schema());
            let got = cur.top_h(&server, &mut st, h).unwrap();
            assert_eq!(got.len(), h.min(truth.len()), "emitted count");
            assert_stream_matches(&got, &truth, |t| rank.score(t));
            let _ = name;
        }
    }

    #[test]
    fn top_h_uniform_2d() {
        run_all(
            uniform(250, 2, 1, 201),
            LinearRank::asc(vec![(AttrId(0), 0.6), (AttrId(1), 0.4)]),
            Query::all(),
            SystemRank::pseudo_random(11),
            5,
            12,
        );
    }

    #[test]
    fn top_h_anticorrelated_adversarial() {
        run_all(
            correlated(250, -0.85, 203),
            LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]),
            Query::all(),
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            5,
            10,
        );
    }

    #[test]
    fn top_h_with_filter_and_3d() {
        let sel = Query::all().and_cat(qrs_types::CatPredicate::eq(qrs_types::CatId(0), 2));
        run_all(
            uniform(300, 3, 1, 207),
            LinearRank::asc(vec![(AttrId(0), 0.3), (AttrId(1), 0.5), (AttrId(2), 0.9)]),
            sel,
            SystemRank::by_attr_desc(AttrId(0)),
            4,
            8,
        );
    }

    #[test]
    fn top_h_heavy_ties_grid() {
        // 5-level grid: massive ties, slabs and cells everywhere.
        run_all(
            discrete_grid(300, 2, 5, 209),
            LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]),
            Query::all(),
            SystemRank::pseudo_random(13),
            6,
            25,
        );
    }

    #[test]
    fn exhausts_small_relations() {
        let data = uniform(40, 2, 1, 211);
        let rank = LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 2.0)]);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(40, 5));
        let server = SimServer::new(data.clone(), SystemRank::pseudo_random(17), 5);
        let mut cur = MdCursor::new(
            Arc::new(rank.clone()),
            Query::all(),
            MdOptions::binary(),
            server.schema(),
        );
        let got = cur.top_h(&server, &mut st, 100).unwrap();
        assert_eq!(got.len(), 40, "must emit the entire relation");
        assert!(cur.next(&server, &mut st).unwrap().is_none());
        // Scores non-decreasing.
        let scores: Vec<f64> = got.iter().map(|t| rank.score(t)).collect();
        assert!(scores.windows(2).all(|w| w[0] <= w[1]));
    }
}
