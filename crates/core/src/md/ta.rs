//! "TA over 1D-RERANK" (§4.1) — the threshold algorithm of Fagin et al.
//! driven by Get-Next sorted access.
//!
//! Each ranking attribute gets a sorted-access stream: a 1D-RERANK
//! [`OneDCursor`] by default, or — when the server publicly offers `ORDER
//! BY` on the attribute (§5 "Multiple/Known System Ranking Functions") — a
//! cheap paged [`SortedAccess::PublicOrderBy`] stream. Random access is free
//! in this setting (the interface returns whole tuples), so TA reduces to:
//! pull streams round-robin, maintain the threshold `τ = S(frontier)`, emit
//! a candidate once its score is at most `τ`.
//!
//! The paper uses this as the comparator that *fails to exploit
//! multi-predicate queries*: its cost explodes when many tuples have extreme
//! values on single attributes (Fig. 1) — reproduced in the Fig. 13/14/16/17
//! experiments.

use crate::ctx::SharedState;
use crate::norm::NormView;
use crate::one_d::{OneDCursor, OneDSpec, OneDStrategy, TiePolicy};
use qrs_ranking::RankFn;
use qrs_server::{Capabilities, SearchInterface};
use qrs_types::value::OrdF64;
use qrs_types::{Capability, Query, RerankError, Schema, Tuple, TupleId};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

/// How sorted access per attribute is realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortedAccess {
    /// Get-Next via the given 1D strategy (the paper's default: 1D-RERANK).
    OneD(OneDStrategy),
    /// Page through the server's public `ORDER BY` (§5); falls back to
    /// 1D-RERANK on attributes the server does not offer.
    PublicOrderBy,
}

enum Stream {
    Cursor(OneDCursor),
    Public {
        spec: OneDSpec,
        page: usize,
        buf: VecDeque<Arc<Tuple>>,
        done: bool,
    },
}

impl Stream {
    fn next(
        &mut self,
        server: &dyn SearchInterface,
        st: &mut SharedState,
    ) -> Result<Option<Arc<Tuple>>, RerankError> {
        match self {
            Stream::Cursor(c) => c.next(server, st),
            Stream::Public {
                spec,
                page,
                buf,
                done,
            } => loop {
                if let Some(t) = buf.pop_front() {
                    return Ok(Some(t));
                }
                if *done {
                    return Ok(None);
                }
                let p = server.query_ordered(&spec.sel, spec.attr, spec.dir, *page)?;
                *page += 1;
                *done = !p.has_more;
                for t in &p.tuples {
                    st.history.record(t);
                }
                if p.tuples.is_empty() {
                    *done = true;
                    return Ok(None);
                }
                buf.extend(p.tuples);
            },
        }
    }
}

/// Streaming Get-Next via the threshold algorithm.
pub struct TaCursor {
    view: NormView,
    streams: Vec<Stream>,
    /// Last-seen normalized value per stream (init: domain minimum).
    frontier: Vec<f64>,
    exhausted: Vec<bool>,
    /// Candidates by (score, id); `seen` prevents re-insertion.
    candidates: BTreeMap<(OrdF64, TupleId), Arc<Tuple>>,
    seen: HashSet<TupleId>,
    all_known: bool,
    rr: usize,
}

impl TaCursor {
    /// Cursor over `rank` restricted to `sel`, assuming no public `ORDER BY`
    /// support (every stream runs through 1D sorted access).
    pub fn new(rank: Arc<dyn RankFn>, sel: Query, access: SortedAccess, schema: &Schema) -> Self {
        Self::with_server_caps(rank, sel, access, schema, &Capabilities::none())
    }

    /// Like [`TaCursor::new`] but negotiating against the server's
    /// advertised [`Capabilities`]: attributes without public `ORDER BY`
    /// fall back to 1D-RERANK sorted access. Callers wanting a hard error
    /// instead of the fallback preflight with [`Capabilities::require`]
    /// (the service layer's session builder does).
    pub fn with_server_caps(
        rank: Arc<dyn RankFn>,
        sel: Query,
        access: SortedAccess,
        schema: &Schema,
        caps: &Capabilities,
    ) -> Self {
        let view = NormView::new(Arc::clone(&rank), schema);
        let streams = rank
            .attrs()
            .iter()
            .zip(rank.directions())
            .map(|(&a, &d)| {
                let spec = OneDSpec::new(a, d, sel.clone());
                match access {
                    SortedAccess::PublicOrderBy if caps.supports(Capability::OrderBy(a)) => {
                        Stream::Public {
                            spec,
                            page: 0,
                            buf: VecDeque::new(),
                            done: false,
                        }
                    }
                    SortedAccess::PublicOrderBy => Stream::Cursor(OneDCursor::new(
                        spec,
                        OneDStrategy::Rerank,
                        TiePolicy::Exact,
                    )),
                    SortedAccess::OneD(s) => {
                        Stream::Cursor(OneDCursor::new(spec, s, TiePolicy::Exact))
                    }
                }
            })
            .collect();
        let frontier = view.bounds().lo.clone();
        let m = rank.dims();
        TaCursor {
            view,
            streams,
            frontier,
            exhausted: vec![false; m],
            candidates: BTreeMap::new(),
            seen: HashSet::new(),
            all_known: false,
            rr: 0,
        }
    }

    /// The normalized view (ranking function + bounds) the cursor searches.
    pub fn view(&self) -> &NormView {
        &self.view
    }

    /// The next tuple in user-ranking order (`Ok(None)` once exhausted).
    /// Candidates and frontiers survive an `Err`, so a retry resumes.
    pub fn next(
        &mut self,
        server: &dyn SearchInterface,
        st: &mut SharedState,
    ) -> Result<Option<Arc<Tuple>>, RerankError> {
        loop {
            let tau = if self.all_known {
                f64::INFINITY
            } else {
                self.view.rank().score_norm(&self.frontier)
            };
            if let Some((&(s, id), _)) = self.candidates.first_key_value() {
                if s.0 <= tau {
                    return Ok(self.candidates.remove(&(s, id)));
                }
            } else if self.all_known {
                return Ok(None);
            }
            self.pull_one(server, st)?;
        }
    }

    /// Pull the top `h` tuples (shorter if `R(q)` is exhausted).
    pub fn top_h(
        &mut self,
        server: &dyn SearchInterface,
        st: &mut SharedState,
        h: usize,
    ) -> Result<Vec<Arc<Tuple>>, RerankError> {
        let mut out = Vec::with_capacity(h);
        for _ in 0..h {
            match self.next(server, st)? {
                Some(t) => out.push(t),
                None => break,
            }
        }
        Ok(out)
    }

    fn pull_one(
        &mut self,
        server: &dyn SearchInterface,
        st: &mut SharedState,
    ) -> Result<(), RerankError> {
        let m = self.streams.len();
        for _ in 0..m {
            let i = self.rr;
            self.rr = (self.rr + 1) % m;
            if self.exhausted[i] {
                continue;
            }
            match self.streams[i].next(server, st)? {
                Some(t) => {
                    self.frontier[i] = self.view.rank().directions()[i]
                        .normalize(t.ord(self.view.rank().attrs()[i]));
                    if self.seen.insert(t.id) {
                        let s = self.view.score(&t);
                        self.candidates.insert((OrdF64(s), t.id), t);
                    }
                    return Ok(());
                }
                None => {
                    // One exhausted stream enumerated all of R(q): complete.
                    self.exhausted[i] = true;
                    self.all_known = true;
                    return Ok(());
                }
            }
        }
        self.all_known = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RerankParams;
    use qrs_datagen::synthetic::{correlated, uniform};
    use qrs_ranking::LinearRank;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::value::cmp_f64;
    use qrs_types::AttrId;

    fn truth(data: &qrs_types::Dataset, rank: &LinearRank, sel: &Query, h: usize) -> Vec<f64> {
        let mut v: Vec<f64> = data
            .tuples()
            .iter()
            .filter(|t| sel.matches(t))
            .map(|t| rank.score(t))
            .collect();
        v.sort_by(|a, b| cmp_f64(*a, *b));
        v.truncate(h);
        v
    }

    #[test]
    fn ta_matches_ground_truth() {
        let data = uniform(250, 2, 1, 301);
        let rank = LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 0.5)]);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(250, 5));
        let server = SimServer::new(data.clone(), SystemRank::pseudo_random(23), 5);
        let mut ta = TaCursor::new(
            Arc::new(rank.clone()),
            Query::all(),
            SortedAccess::OneD(OneDStrategy::Rerank),
            server.schema(),
        );
        let got: Vec<f64> = ta
            .top_h(&server, &mut st, 15)
            .unwrap()
            .iter()
            .map(|t| rank.score(t))
            .collect();
        assert_eq!(got, truth(&data, &rank, &Query::all(), 15));
    }

    #[test]
    fn ta_with_filter_and_anticorrelation() {
        let data = correlated(300, -0.8, 307);
        let sel = Query::all().and_cat(qrs_types::CatPredicate::eq(qrs_types::CatId(0), 0));
        let rank = LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(300, 5));
        let server = SimServer::new(data.clone(), SystemRank::pseudo_random(29), 5);
        let mut ta = TaCursor::new(
            Arc::new(rank.clone()),
            sel.clone(),
            SortedAccess::OneD(OneDStrategy::Rerank),
            server.schema(),
        );
        let got: Vec<f64> = ta
            .top_h(&server, &mut st, 10)
            .unwrap()
            .iter()
            .map(|t| rank.score(t))
            .collect();
        assert_eq!(got, truth(&data, &rank, &sel, 10));
    }

    #[test]
    fn ta_public_order_by_variant() {
        let data = uniform(250, 2, 1, 311);
        let rank = LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(250, 5));
        let server = SimServer::new(data.clone(), SystemRank::pseudo_random(31), 5)
            .with_order_by(vec![AttrId(0), AttrId(1)]);
        let mut ta = TaCursor::with_server_caps(
            Arc::new(rank.clone()),
            Query::all(),
            SortedAccess::PublicOrderBy,
            server.schema(),
            &server.capabilities(),
        );
        let got: Vec<f64> = ta
            .top_h(&server, &mut st, 12)
            .unwrap()
            .iter()
            .map(|t| rank.score(t))
            .collect();
        assert_eq!(got, truth(&data, &rank, &Query::all(), 12));
    }

    #[test]
    fn ta_exhausts_relation() {
        let data = uniform(60, 2, 1, 313);
        let rank = LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]);
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(60, 5));
        let server = SimServer::new(data, SystemRank::pseudo_random(37), 5);
        let mut ta = TaCursor::new(
            Arc::new(rank),
            Query::all(),
            SortedAccess::OneD(OneDStrategy::Binary),
            server.schema(),
        );
        let got = ta.top_h(&server, &mut st, 1000).unwrap();
        assert_eq!(got.len(), 60);
        assert!(ta.next(&server, &mut st).unwrap().is_none());
    }
}
