//! Shared middleware state.
//!
//! One [`SharedState`] lives for the lifetime of the reranking service and is
//! threaded through every algorithm invocation: the history and the dense
//! indexes are deliberately *cross-user-query* structures (the amortization
//! arguments of §3.2.2 and §4.4 depend on it).

use crate::history::{CompleteRegions, History};
use crate::index::dense1d::Dense1D;
use crate::index::densemd::DenseMd;
use crate::params::RerankParams;
use qrs_types::{Query, QueryResponse, Schema};

/// History + complete-region registry + dense indexes + parameters.
#[derive(Debug)]
pub struct SharedState {
    /// Every tuple ever observed in a server response, indexed per
    /// ordinal attribute.
    pub history: History,
    /// Regions proven complete (query answered without overflow).
    pub complete: CompleteRegions,
    /// The §3.2.2 on-the-fly dense index (1D).
    pub dense1d: Dense1D,
    /// The §4.4 on-the-fly dense index (MD boxes).
    pub densemd: DenseMd,
    /// The tuning parameters everything above was built with.
    pub params: RerankParams,
}

impl SharedState {
    /// Fresh, empty state for a database with `schema`, tuned by `params`.
    pub fn new(schema: &Schema, params: RerankParams) -> Self {
        SharedState {
            history: History::new(schema.num_ordinal()),
            complete: CompleteRegions::default(),
            dense1d: Dense1D::default(),
            densemd: DenseMd::default(),
            params,
        }
    }

    /// Record a server response: tuples go to history; valid/underflow
    /// responses register the query as a complete region.
    pub fn absorb(&mut self, q: &Query, resp: &QueryResponse) {
        self.history.record_response(resp);
        if !resp.is_overflow() {
            self.complete.register(q.clone());
        }
    }

    /// Drop the complete-region registry (emptiness proofs), keeping tuples
    /// and the dense indexes.
    ///
    /// The paper's "leveraging history" (§3.1.1) carries *tuples* across
    /// user queries; completeness knowledge is exactly what its on-the-fly
    /// indexes add. Persisting the registry is a strict improvement this
    /// library makes by default, but the figure experiments call this
    /// between user queries to reproduce the paper's cost model — see
    /// EXPERIMENTS.md.
    pub fn forget_complete_regions(&mut self) {
        self.complete = CompleteRegions::default();
    }
}
