//! # qrs-core
//!
//! The reranking algorithms of *Query Reranking As A Service* (Asudeh,
//! Zhang, Das — VLDB 2016): exact top-k under **any** user-specified
//! monotonic ranking function, through nothing but a hidden database's
//! top-`k` conjunctive search interface, minimizing the number of queries
//! issued.
//!
//! ## Map of the crate
//!
//! | Paper | Here |
//! |---|---|
//! | §3.1 Algorithm 1 (1D-BASELINE) | [`one_d::OneDStrategy::Baseline`] |
//! | §3.2.1 Algorithm 2 (1D-BINARY) | [`one_d::OneDStrategy::Binary`] |
//! | §3.2.2 Algorithm 3+4 (1D-RERANK + oracle) | [`one_d::OneDStrategy::Rerank`], [`index::dense1d`] |
//! | §4.1 TA over 1D-RERANK | [`md::TaCursor`] |
//! | §4.2 MD-BASELINE | [`md::MdOptions::baseline`] |
//! | §4.3 Algorithm 5 (MD-BINARY) | [`md::MdOptions::binary`] |
//! | §4.4 Algorithm 6 (MD-RERANK) | [`md::MdOptions::rerank`], [`index::densemd`] |
//! | §5 extensions (ties, ORDER BY, point predicates) | [`one_d::TiePolicy`], [`md::ta::SortedAccess`], crawler |
//! | §1 baselines (crawl, page-down) | [`baselines`] |
//!
//! All algorithms share a [`ctx::SharedState`] — query history, complete
//! -region registry and the on-the-fly dense indexes — so cost amortizes
//! across user queries, which is the paper's central systems idea.
//!
//! ### Known deviations from the paper (documented in DESIGN.md)
//!
//! * The MD partition uses a *cumulative* contour corner instead of the
//!   per-coordinate `b(Aj)` of Eq. 8, which is incomplete for `m ≥ 3` (see
//!   `qrs_ranking::rankfn` docs for the counterexample).
//! * 1D-BINARY remembers proven-empty half-intervals across iterations
//!   (pure improvement, same asymptotics).
//! * The MD dense oracle crawls its box to completion instead of stopping at
//!   the first `Sel(q)` match, making the index reusable across ranking
//!   functions.

#![deny(missing_docs)]

pub mod baselines;
pub mod crawl;
pub mod ctx;
pub mod history;
pub mod index;
pub mod knowledge;
pub mod md;
pub mod norm;
pub mod one_d;
pub mod params;
pub mod strategy;

pub use ctx::SharedState;
pub use knowledge::KnowledgeGate;
pub use md::{MdAlgo, MdCursor, MdOptions, TaCursor};
pub use norm::{NormBox, NormView};
pub use one_d::{OneDCursor, OneDSpec, OneDStrategy, TiePolicy};
pub use params::RerankParams;
pub use strategy::{
    CostEstimate, MdCursorStrategy, OneDCursorStrategy, PageDownStrategy, PlanContext,
    RerankStrategy, StrategyIo, StrategyStep, TaCursorStrategy,
};
