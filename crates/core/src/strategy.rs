//! The pluggable execution API: reranking algorithms as strategy objects.
//!
//! Every exact-reranking algorithm in this crate — the §3 1D cursor, the
//! §4 MD cursor, TA over public `ORDER BY`, the strict page-down fallback —
//! is a *pull state machine*: ask it for the next step and it either emits
//! the next-ranked tuple, reports paid progress, or declares the stream
//! exhausted, issuing typed queries against the restricted interface along
//! the way. [`RerankStrategy`] names that contract so the `qrs-service`
//! session loop can drive *any* algorithm — the four built-in families
//! (wrapped here as [`OneDCursorStrategy`], [`MdCursorStrategy`],
//! [`TaCursorStrategy`], [`PageDownStrategy`]) or a user-registered custom
//! one — through one `Box<dyn RerankStrategy>` without matching on an
//! algorithm enum.
//!
//! Strategies are **sans-session**: they never see the service's locks,
//! budgets or retry machinery. Each [`RerankStrategy::next_step`] call
//! receives a [`StrategyIo`] — the typed request surface (top-k, page
//! turn, `ORDER BY` page) plus the shared knowledge state — and must issue
//! at most a bounded burst of requests before returning, so the driver can
//! re-check budget gates and release locks between steps. Everything a
//! strategy pays for goes through the ledger the driver meters.
//!
//! Strategies also carry their own *cost estimator*
//! ([`RerankStrategy::estimate`]): given a [`PlanContext`] (site
//! capabilities including the advertised [`CostModel`], database size
//! estimate, pull horizon), predict the spend of running to the horizon.
//! The planner ranks feasible candidates by these estimates — prediction
//! and billing share the site's price list, so the comparison is in the
//! currency the ledger will actually charge.

use crate::baselines::PageDownCursor;
use crate::ctx::SharedState;
use crate::md::cursor::MdCursor;
use crate::md::ta::{SortedAccess, TaCursor};
use crate::one_d::cursor::{OneDCursor, TiePolicy};
use crate::one_d::primitives::OneDSpec;
use crate::one_d::OneDStrategy;
use qrs_ranking::RankFn;
use qrs_server::{Capabilities, OrderedPage, SearchInterface};
use qrs_types::{
    AttrId, CostModel, Direction, Interval, Query, QueryResponse, RequestKind, RerankError, Schema,
    Tuple,
};
use std::sync::Arc;

/// The canonical strategy-name vocabulary: one table shared by the
/// strategy objects' [`RerankStrategy::name`] impls, the planner's
/// candidate names, and experiment row labels — rename here or nowhere.
pub mod names {
    /// The §3 1D cursor.
    pub const ONE_D: &str = "1d-rerank";
    /// The §4 MD box-partitioning cursor.
    pub const MD: &str = "md-rerank";
    /// TA paging the site's public `ORDER BY` (§5).
    pub const TA_ORDER_BY: &str = "ta-order-by";
    /// TA over per-attribute 1D-RERANK sorted access (§4.1).
    pub const TA_OVER_1D: &str = "ta-over-1d";
    /// The strict page-down drain.
    pub const PAGE_DOWN: &str = "page-down";
    /// A user-registered custom strategy object.
    pub const CUSTOM: &str = "custom";
    /// Automatic (planner) choice — not a runnable strategy itself.
    pub const AUTO: &str = "auto";
}

/// What one [`RerankStrategy::next_step`] call produced.
#[derive(Debug, Clone)]
pub enum StrategyStep {
    /// The next-ranked tuple surfaced (the driver may still filter it
    /// against a residual predicate before handing it to the user).
    Emit(Arc<Tuple>),
    /// Paid work happened (e.g. one page fetched) but no tuple is ready
    /// yet: the driver re-checks its budget gates and calls again.
    Progress,
    /// The stream is exhausted; further calls keep returning this.
    Exhausted,
}

/// Planner-time context for [`RerankStrategy::estimate`]: everything known
/// about the site and the request before any query is spent.
#[derive(Debug, Clone)]
pub struct PlanContext {
    /// The site model the server advertised (including its [`CostModel`]).
    pub caps: Capabilities,
    /// Schema of the hidden database.
    pub schema: Arc<Schema>,
    /// The interface page size `k`.
    pub k: usize,
    /// Estimated database size `|D|`.
    pub n_estimate: usize,
    /// How many tuples the caller expects to pull (the `h` of top-`h`).
    pub horizon: usize,
    /// The selection as it will be sent to the server (inexpressible
    /// predicates already relaxed away by the planner).
    pub server_query: Query,
    /// Attributes of the user ranking function, in rank order.
    pub rank_attrs: Vec<AttrId>,
}

impl PlanContext {
    /// `max(1, ceil(h / k))`: result pages the horizon spans.
    pub fn horizon_pages(&self) -> u64 {
        (self.horizon.max(1) as u64).div_ceil(self.k.max(1) as u64)
    }

    /// `ceil(n / k)`: pages that provably drain the whole database.
    pub fn drain_pages(&self) -> u64 {
        (self.n_estimate.max(1) as u64).div_ceil(self.k.max(1) as u64)
    }
}

/// Predicted spend for driving a strategy to the plan horizon: request
/// count and its weighted price under the site's advertised [`CostModel`].
///
/// Estimates are heuristics, not guarantees — the planner only needs them
/// to *rank* candidates, and the `planner_cost` experiment in `qrs-bench`
/// checks the ranking against actually-charged ledgers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostEstimate {
    /// Predicted charged requests.
    pub queries: u64,
    /// Predicted weighted cost units ([`CostModel::charge`] applied to the
    /// strategy's representative query shape, times the request count).
    pub cost_units: u64,
}

impl CostEstimate {
    /// An estimate of `queries` requests, each priced as `shape` through
    /// the `kind` entry point under `model`.
    pub fn priced(queries: u64, model: &CostModel, shape: &Query, kind: RequestKind) -> Self {
        CostEstimate {
            queries,
            cost_units: queries.saturating_mul(model.charge(shape, kind)),
        }
    }
}

impl std::fmt::Display for CostEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "≈{} units ({} queries)", self.cost_units, self.queries)
    }
}

/// The typed I/O surface a strategy drives: every request a restricted
/// site offers, plus the shared knowledge state. Handed to
/// [`RerankStrategy::next_step`] by the session driver — strategies never
/// own a server reference, so the driver stays in charge of locking,
/// budgets and ledger attribution.
///
/// The typed helpers ([`StrategyIo::top_k`], [`StrategyIo::page`]) record
/// successful responses into the shared query history automatically, so a
/// custom strategy's paid-for tuples amortize future sessions exactly like
/// the built-in algorithms' do. (`ORDER BY` pages are recorded tuple by
/// tuple.)
pub struct StrategyIo<'a> {
    server: &'a dyn SearchInterface,
    state: &'a mut SharedState,
}

impl<'a> StrategyIo<'a> {
    /// Bind the typed request surface to one server and its shared state.
    pub fn new(server: &'a dyn SearchInterface, state: &'a mut SharedState) -> Self {
        StrategyIo { server, state }
    }

    /// Issue a one-shot top-`k` query; the response is recorded into the
    /// shared history.
    pub fn top_k(&mut self, q: &Query) -> Result<QueryResponse, RerankError> {
        let resp = self.server.query(q)?;
        self.state.history.record_response(&resp);
        Ok(resp)
    }

    /// Fetch page `page` (0-based) of the system ranking for `q`; recorded
    /// into the shared history.
    pub fn page(&mut self, q: &Query, page: usize) -> Result<QueryResponse, RerankError> {
        let resp = self.server.query_page(q, page)?;
        self.state.history.record_response(&resp);
        Ok(resp)
    }

    /// Fetch page `page` of `R(q)` publicly ordered by `attr` in `dir`;
    /// tuples are recorded into the shared history.
    pub fn ordered(
        &mut self,
        q: &Query,
        attr: AttrId,
        dir: Direction,
        page: usize,
    ) -> Result<OrderedPage, RerankError> {
        let p = self.server.query_ordered(q, attr, dir, page)?;
        for t in &p.tuples {
            self.state.history.record(t);
        }
        Ok(p)
    }

    /// The interface page size `k`.
    pub fn k(&self) -> usize {
        self.server.k()
    }

    /// The site model the server advertises.
    pub fn capabilities(&self) -> Capabilities {
        self.server.capabilities()
    }

    /// Schema of the hidden database.
    pub fn schema(&self) -> &Arc<Schema> {
        self.server.schema()
    }

    /// The raw server + shared-state pair. Escape hatch for strategies
    /// (like the built-in cursor wrappers) whose machinery predates the
    /// typed surface; prefer the typed helpers in new code — they keep the
    /// history recording invariant for you.
    pub fn raw(&mut self) -> (&'a dyn SearchInterface, &mut SharedState) {
        (self.server, self.state)
    }
}

impl std::fmt::Debug for StrategyIo<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategyIo")
            .field("k", &self.server.k())
            .field("history", &self.state.history.len())
            .finish()
    }
}

/// An exact reranking algorithm as a pluggable pull state machine.
///
/// The `qrs-service` session drives one `Box<dyn RerankStrategy>` per
/// session: [`RerankStrategy::next_step`] until [`StrategyStep::Exhausted`],
/// with budget gates re-checked and locks released between steps. Register
/// custom implementations via `SessionBuilder::strategy(..)`.
///
/// Contract:
/// * **Bounded steps** — each `next_step` call issues at most a small,
///   bounded burst of requests (ideally one) before returning
///   [`StrategyStep::Progress`]; long drains must be resumable.
/// * **Resume after `Err`** — state survives an error; retrying re-enters
///   where the failure struck, never re-paying answered queries.
/// * **Exactness is yours** — the driver re-applies residual predicates
///   but trusts the emission *order*; emit in nondecreasing user-rank
///   order or document otherwise.
///
/// ```
/// use qrs_core::strategy::{
///     CostEstimate, PlanContext, RerankStrategy, StrategyIo, StrategyStep,
/// };
/// use qrs_types::{Query, RequestKind, RerankError};
///
/// /// A toy strategy: report the size of the first page, then stop.
/// struct FirstPageProbe {
///     sel: Query,
///     fetched: std::collections::VecDeque<std::sync::Arc<qrs_types::Tuple>>,
///     done: bool,
/// }
///
/// impl RerankStrategy for FirstPageProbe {
///     fn name(&self) -> &str {
///         "first-page-probe"
///     }
///     fn estimate(&self, ctx: &PlanContext) -> CostEstimate {
///         // One top-k request, priced under the site's model.
///         CostEstimate::priced(1, &ctx.caps.cost, &self.sel, RequestKind::TopK)
///     }
///     fn next_step(&mut self, io: &mut StrategyIo<'_>) -> Result<StrategyStep, RerankError> {
///         if !self.done {
///             self.done = true;
///             self.fetched = io.top_k(&self.sel)?.tuples.into_iter().collect();
///             return Ok(StrategyStep::Progress);
///         }
///         Ok(match self.fetched.pop_front() {
///             Some(t) => StrategyStep::Emit(t),
///             None => StrategyStep::Exhausted,
///         })
///     }
/// }
/// ```
pub trait RerankStrategy: Send {
    /// Short stable name, used in plans, rationales and experiment rows.
    fn name(&self) -> &str;

    /// Predict the spend of driving this strategy to `ctx.horizon` tuples.
    /// Used by the planner to rank feasible candidates; heuristic, but
    /// priced under the site's advertised cost model.
    fn estimate(&self, ctx: &PlanContext) -> CostEstimate;

    /// Advance the state machine by one bounded step.
    fn next_step(&mut self, io: &mut StrategyIo<'_>) -> Result<StrategyStep, RerankError>;
}

fn step_from(t: Option<Arc<Tuple>>) -> StrategyStep {
    match t {
        Some(t) => StrategyStep::Emit(t),
        None => StrategyStep::Exhausted,
    }
}

/// `ceil(log2(n))`, floored at 1 — the binary-search depth estimates lean
/// on.
fn log2_ceil(n: u64) -> u64 {
    (64 - n.max(2).saturating_sub(1).leading_zeros() as u64).max(1)
}

/// A non-degenerate predicate shape on `attr` for pricing: point for
/// point-only attributes (that is what the cursor will send), a true range
/// otherwise.
fn pricing_predicate(schema: &Schema, attr: AttrId) -> Interval {
    let a = schema.ordinal(attr);
    if a.point_only {
        Interval::point(a.min)
    } else {
        Interval::open(a.min, a.max)
    }
}

/// The §3 1D cursor ([`OneDCursor`]) as a strategy object.
#[derive(Debug)]
pub struct OneDCursorStrategy {
    cursor: OneDCursor,
}

impl OneDCursorStrategy {
    /// Wrap a 1D cursor for `spec` with the given primitive strategy and
    /// tie policy.
    pub fn new(spec: OneDSpec, strategy: OneDStrategy, tie: TiePolicy) -> Self {
        OneDCursorStrategy {
            cursor: OneDCursor::new(spec, strategy, tie),
        }
    }

    /// The 1D cursor's cost heuristic, usable at plan time without
    /// constructing the cursor: one binary-search descent (`log2 n`) plus
    /// roughly one query per emitted tuple — the shared dense index
    /// amortizes later descents — priced as a range-filtered top-`k` on
    /// the ranking attribute.
    pub fn estimate_in(ctx: &PlanContext) -> CostEstimate {
        let h = ctx.horizon.max(1) as u64;
        let n = ctx.n_estimate.max(1) as u64;
        let queries = h + log2_ceil(n);
        let mut shape = ctx.server_query.clone();
        if let Some(&attr) = ctx.rank_attrs.first() {
            shape.add_range(attr, pricing_predicate(&ctx.schema, attr));
        }
        CostEstimate::priced(queries, &ctx.caps.cost, &shape, RequestKind::TopK)
    }
}

impl RerankStrategy for OneDCursorStrategy {
    fn name(&self) -> &str {
        names::ONE_D
    }

    fn estimate(&self, ctx: &PlanContext) -> CostEstimate {
        Self::estimate_in(ctx)
    }

    fn next_step(&mut self, io: &mut StrategyIo<'_>) -> Result<StrategyStep, RerankError> {
        let (server, st) = io.raw();
        self.cursor.next(server, st).map(step_from)
    }
}

/// The §4 MD box-partitioning cursor ([`MdCursor`]) as a strategy object.
pub struct MdCursorStrategy {
    cursor: MdCursor,
}

impl MdCursorStrategy {
    /// Wrap an MD cursor for `sel` ranked by `rank`.
    pub fn new(rank: Arc<dyn RankFn>, sel: Query, opts: crate::MdOptions, schema: &Schema) -> Self {
        MdCursorStrategy {
            cursor: MdCursor::new(rank, sel, opts, schema),
        }
    }

    /// The MD cursor's cost heuristic: the 1D shape scaled by the ranking
    /// arity (each dimension contributes binary partitioning work), priced
    /// as a top-`k` constrained on every ordinal attribute — the box
    /// queries the cursor actually sends.
    pub fn estimate_in(ctx: &PlanContext) -> CostEstimate {
        let h = ctx.horizon.max(1) as u64;
        let n = ctx.n_estimate.max(1) as u64;
        let m = ctx.rank_attrs.len().max(1) as u64;
        let queries = h + m * (1 + ctx.horizon_pages()) * log2_ceil(n);
        let mut shape = ctx.server_query.clone();
        for attr in ctx.schema.attr_ids() {
            shape.add_range(attr, pricing_predicate(&ctx.schema, attr));
        }
        CostEstimate::priced(queries, &ctx.caps.cost, &shape, RequestKind::TopK)
    }
}

impl RerankStrategy for MdCursorStrategy {
    fn name(&self) -> &str {
        names::MD
    }

    fn estimate(&self, ctx: &PlanContext) -> CostEstimate {
        Self::estimate_in(ctx)
    }

    fn next_step(&mut self, io: &mut StrategyIo<'_>) -> Result<StrategyStep, RerankError> {
        let (server, st) = io.raw();
        self.cursor.next(server, st).map(step_from)
    }
}

/// TA over sorted access ([`TaCursor`]) as a strategy object.
pub struct TaCursorStrategy {
    cursor: TaCursor,
    public: bool,
}

impl TaCursorStrategy {
    /// Wrap a TA cursor negotiating `access` against the server's
    /// advertised capabilities (attributes without public `ORDER BY` fall
    /// back to 1D-RERANK sorted access).
    pub fn new(
        rank: Arc<dyn RankFn>,
        sel: Query,
        access: SortedAccess,
        schema: &Schema,
        caps: &Capabilities,
    ) -> Self {
        TaCursorStrategy {
            cursor: TaCursor::with_server_caps(rank, sel, access, schema, caps),
            public: matches!(access, SortedAccess::PublicOrderBy),
        }
    }

    /// TA's cost heuristic for public-`ORDER BY` sorted access; see
    /// [`TaCursorStrategy::estimate_with_access`].
    pub fn estimate_in(ctx: &PlanContext) -> CostEstimate {
        Self::estimate_with_access(ctx, true)
    }

    /// TA's cost heuristic: the threshold stops once each of the `m`
    /// streams has drained `≈ (h · n^(m-1))^(1/m)` tuples (for `m = 1` the
    /// single ordered stream *is* the answer order: depth `h`; for `m = 2`
    /// the classic `sqrt(h·n)`). With public `ORDER BY` access that is
    /// `⌈depth/k⌉` ordered pages per stream, priced as `ORDER BY` pages of
    /// the server query; with 1D-RERANK sorted access
    /// ([`SortedAccess::OneD`]) each stream instead issues range-filtered
    /// top-`k` probes — roughly one per drained tuple plus one
    /// binary-search descent — priced in *that* request class, since the
    /// server never sees an `ORDER BY`.
    pub fn estimate_with_access(ctx: &PlanContext, public_order_by: bool) -> CostEstimate {
        let h = ctx.horizon.max(1) as u64;
        let n = ctx.n_estimate.max(1) as u64;
        let m = ctx.rank_attrs.len().max(1) as u64;
        let k = ctx.k.max(1) as u64;
        let depth = (((h as f64) * (n as f64).powi(m as i32 - 1))
            .powf(1.0 / m as f64)
            .ceil() as u64)
            .clamp(1, n);
        if public_order_by {
            let pages_per_stream = depth.div_ceil(k).clamp(1, ctx.drain_pages());
            CostEstimate::priced(
                m * pages_per_stream,
                &ctx.caps.cost,
                &ctx.server_query,
                RequestKind::Ordered,
            )
        } else {
            let mut shape = ctx.server_query.clone();
            if let Some(&attr) = ctx.rank_attrs.first() {
                shape.add_range(attr, pricing_predicate(&ctx.schema, attr));
            }
            CostEstimate::priced(
                m * (depth + log2_ceil(n)),
                &ctx.caps.cost,
                &shape,
                RequestKind::TopK,
            )
        }
    }
}

impl RerankStrategy for TaCursorStrategy {
    fn name(&self) -> &str {
        if self.public {
            names::TA_ORDER_BY
        } else {
            names::TA_OVER_1D
        }
    }

    fn estimate(&self, ctx: &PlanContext) -> CostEstimate {
        Self::estimate_with_access(ctx, self.public)
    }

    fn next_step(&mut self, io: &mut StrategyIo<'_>) -> Result<StrategyStep, RerankError> {
        let (server, st) = io.raw();
        self.cursor.next(server, st).map(step_from)
    }
}

/// The strict page-down fallback ([`PageDownCursor`]) as a strategy
/// object. Fetches one page per step (so the driver's budget gates fire
/// between pages), then emits the locally reranked drain.
#[derive(Debug)]
pub struct PageDownStrategy {
    cursor: PageDownCursor,
}

impl PageDownStrategy {
    /// Wrap a strict page-down cursor for `sel` reranked by `rank`,
    /// allowed at most `max_pages` page turns.
    pub fn new(sel: Query, rank: Arc<dyn RankFn>, max_pages: usize) -> Self {
        PageDownStrategy {
            cursor: PageDownCursor::new(sel, rank, max_pages),
        }
    }

    /// Page-down's cost is not a heuristic: draining `R(q)` takes exactly
    /// `ceil(n/k)` page turns (under the planner's `n_estimate`), priced
    /// as page requests of the server query. Emission afterwards is free.
    pub fn estimate_in(ctx: &PlanContext) -> CostEstimate {
        CostEstimate::priced(
            ctx.drain_pages(),
            &ctx.caps.cost,
            &ctx.server_query,
            RequestKind::Page,
        )
    }
}

impl RerankStrategy for PageDownStrategy {
    fn name(&self) -> &str {
        "page-down"
    }

    fn estimate(&self, ctx: &PlanContext) -> CostEstimate {
        Self::estimate_in(ctx)
    }

    fn next_step(&mut self, io: &mut StrategyIo<'_>) -> Result<StrategyStep, RerankError> {
        let (server, st) = io.raw();
        if self.cursor.drained() {
            Ok(step_from(self.cursor.emit_next()))
        } else {
            self.cursor
                .fetch_next_page(server, st)
                .map(|_| StrategyStep::Progress)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RerankParams;
    use qrs_datagen::synthetic::uniform;
    use qrs_ranking::LinearRank;
    use qrs_server::{SimServer, SystemRank};

    fn ctx(n: usize, k: usize, horizon: usize, dims: usize, cost: CostModel) -> PlanContext {
        let data = uniform(16, 2, 1, 1);
        PlanContext {
            caps: Capabilities::none().with_cost_model(cost),
            schema: Arc::clone(data.schema()),
            k,
            n_estimate: n,
            horizon,
            server_query: Query::all(),
            rank_attrs: (0..dims).map(AttrId).collect(),
        }
    }

    #[test]
    fn page_down_estimate_is_the_exact_drain() {
        let c = ctx(100, 5, 8, 2, CostModel::flat());
        let e = PageDownStrategy::estimate_in(&c);
        assert_eq!(e.queries, 20);
        assert_eq!(e.cost_units, 20);
        // A paged surcharge prices every turn.
        let c = ctx(100, 5, 8, 2, CostModel::flat().with_paged_cost(3));
        assert_eq!(PageDownStrategy::estimate_in(&c).cost_units, 80);
    }

    #[test]
    fn estimates_order_cursors_before_drains_on_deep_databases() {
        let c = ctx(10_000, 5, 5, 1, CostModel::flat());
        let one_d = OneDCursorStrategy::estimate_in(&c);
        let drain = PageDownStrategy::estimate_in(&c);
        assert!(
            one_d.cost_units < drain.cost_units,
            "1d {one_d} vs drain {drain}"
        );
        let c = ctx(10_000, 5, 5, 2, CostModel::flat());
        let md = MdCursorStrategy::estimate_in(&c);
        assert!(md.cost_units < PageDownStrategy::estimate_in(&c).cost_units);
        // Estimates grow with the horizon.
        let deep = ctx(10_000, 5, 50, 2, CostModel::flat());
        assert!(MdCursorStrategy::estimate_in(&deep).cost_units > md.cost_units);
    }

    #[test]
    fn cost_model_reprices_without_changing_query_counts() {
        let flat = ctx(1_000, 5, 5, 2, CostModel::flat());
        let metered = ctx(
            1_000,
            5,
            5,
            2,
            CostModel::flat().with_range_cost(1).with_ordered_cost(2),
        );
        let (f, m) = (
            MdCursorStrategy::estimate_in(&flat),
            MdCursorStrategy::estimate_in(&metered),
        );
        assert_eq!(f.queries, m.queries);
        // Two range predicates at +1 each: 3 units per query.
        assert_eq!(m.cost_units, 3 * m.queries);
        let (f, m) = (
            TaCursorStrategy::estimate_in(&flat),
            TaCursorStrategy::estimate_in(&metered),
        );
        assert_eq!(f.queries, m.queries);
        assert_eq!(m.cost_units, 3 * f.cost_units);
    }

    #[test]
    fn built_in_strategies_stream_identically_to_their_cursors() {
        let n = 60;
        let k = 5;
        let data = uniform(n, 2, 1, 77);
        let rank: Arc<dyn RankFn> =
            Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]));
        let server_a = SimServer::new(data.clone(), SystemRank::pseudo_random(3), k);
        let server_b = SimServer::new(data.clone(), SystemRank::pseudo_random(3), k);
        let mut st_a = SharedState::new(data.schema(), RerankParams::paper_defaults(n, k));
        let mut st_b = SharedState::new(data.schema(), RerankParams::paper_defaults(n, k));

        let mut cursor = MdCursor::new(
            Arc::clone(&rank),
            Query::all(),
            crate::MdOptions::rerank(),
            data.schema(),
        );
        let mut strategy = MdCursorStrategy::new(
            Arc::clone(&rank),
            Query::all(),
            crate::MdOptions::rerank(),
            data.schema(),
        );
        for _ in 0..10 {
            let want = cursor.next(&server_a, &mut st_a).unwrap().map(|t| t.id);
            let got = loop {
                let mut io = StrategyIo::new(&server_b, &mut st_b);
                match strategy.next_step(&mut io).unwrap() {
                    StrategyStep::Emit(t) => break Some(t.id),
                    StrategyStep::Exhausted => break None,
                    StrategyStep::Progress => continue,
                }
            };
            assert_eq!(want, got);
            assert_eq!(server_a.queries_issued(), server_b.queries_issued());
            if want.is_none() {
                break;
            }
        }
    }

    #[test]
    fn strategy_io_typed_helpers_record_history() {
        let n = 30;
        let data = uniform(n, 2, 1, 79);
        let server = SimServer::new(data.clone(), SystemRank::pseudo_random(5), 5).with_paging();
        let mut st = SharedState::new(data.schema(), RerankParams::paper_defaults(n, 5));
        let mut io = StrategyIo::new(&server, &mut st);
        assert_eq!(io.k(), 5);
        let resp = io.top_k(&Query::all()).unwrap();
        assert_eq!(resp.tuples.len(), 5);
        let resp = io.page(&Query::all(), 1).unwrap();
        assert_eq!(resp.tuples.len(), 5);
        assert!(io.capabilities().paging);
        let _ = io;
        assert_eq!(st.history.len(), 10);
    }
}
