//! Query-answer history (§3.1.1 "Leveraging History").
//!
//! Every tuple the server ever returns is retained and indexed per attribute;
//! all algorithms consult the history before spending a query, and the
//! sharing happens *across user queries* — the paper's point being that the
//! more the service is used, the cheaper each rerank becomes.
//!
//! The companion [`CompleteRegions`] registry remembers queries whose answer
//! was *complete* (valid or underflow responses, and fully crawled regions):
//! if a new query is subsumed by a registered region, its entire answer is
//! already in history and costs zero server queries.

use qrs_types::value::OrdF64;
use qrs_types::{AttrId, Direction, Interval, Query, QueryResponse, Tuple, TupleId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// All tuples observed so far, with per-attribute sorted indexes.
#[derive(Debug, Default)]
pub struct History {
    tuples: HashMap<TupleId, Arc<Tuple>>,
    /// For each ordinal attribute: (value, id) → tuple, sorted by raw value.
    by_attr: Vec<BTreeMap<(OrdF64, TupleId), Arc<Tuple>>>,
}

impl History {
    /// An empty history over a schema with `num_ordinal_attrs` ordinal
    /// attributes.
    pub fn new(num_ordinal_attrs: usize) -> Self {
        History {
            tuples: HashMap::new(),
            by_attr: (0..num_ordinal_attrs).map(|_| BTreeMap::new()).collect(),
        }
    }

    /// Number of distinct tuples observed.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuple has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// True when the tuple with this id has been observed.
    pub fn contains(&self, id: TupleId) -> bool {
        self.tuples.contains_key(&id)
    }

    /// Look up an observed tuple by id.
    pub fn get(&self, id: TupleId) -> Option<&Arc<Tuple>> {
        self.tuples.get(&id)
    }

    /// Record one tuple.
    pub fn record(&mut self, t: &Arc<Tuple>) {
        if self.tuples.insert(t.id, Arc::clone(t)).is_none() {
            for (i, idx) in self.by_attr.iter_mut().enumerate() {
                idx.insert((OrdF64(t.ord(AttrId(i))), t.id), Arc::clone(t));
            }
        }
    }

    /// Record every tuple of a response.
    pub fn record_response(&mut self, resp: &QueryResponse) {
        for t in &resp.tuples {
            self.record(t);
        }
    }

    /// Tuples whose raw `attr` value lies in `iv`, in ascending value order.
    pub fn in_range<'a>(
        &'a self,
        attr: AttrId,
        iv: Interval,
    ) -> impl Iterator<Item = &'a Arc<Tuple>> + 'a {
        use qrs_types::Endpoint;
        use std::ops::Bound;
        let lo = match iv.lo {
            Endpoint::Unbounded => Bound::Unbounded,
            Endpoint::Open(v) => Bound::Excluded((OrdF64(v), TupleId(u32::MAX))),
            Endpoint::Closed(v) => Bound::Included((OrdF64(v), TupleId(0))),
        };
        let hi = match iv.hi {
            Endpoint::Unbounded => Bound::Unbounded,
            Endpoint::Open(v) => Bound::Excluded((OrdF64(v), TupleId(0))),
            Endpoint::Closed(v) => Bound::Included((OrdF64(v), TupleId(u32::MAX))),
        };
        self.by_attr[attr.0].range((lo, hi)).map(|(_, t)| t)
    }

    /// The matching tuple ranked first along `attr` in direction `dir` whose
    /// *normalized* value is strictly greater than `after_norm` (pass
    /// `f64::NEG_INFINITY` for "the minimum"), optionally capped strictly
    /// below `upto_norm`.
    pub fn next_norm_above(
        &self,
        attr: AttrId,
        dir: Direction,
        after_norm: f64,
        upto_norm: Option<f64>,
        q: &Query,
    ) -> Option<&Arc<Tuple>> {
        let norm_iv = Interval {
            lo: if after_norm == f64::NEG_INFINITY {
                qrs_types::Endpoint::Unbounded
            } else {
                qrs_types::Endpoint::Open(after_norm)
            },
            hi: match upto_norm {
                None => qrs_types::Endpoint::Unbounded,
                Some(v) => qrs_types::Endpoint::Open(v),
            },
        };
        let raw_iv = match dir {
            Direction::Asc => norm_iv,
            Direction::Desc => norm_iv.negate(),
        };
        let it = self.in_range(attr, raw_iv).filter(|t| q.matches(t));
        match dir {
            Direction::Asc => it.min_by_key(|t| (OrdF64(t.ord(attr)), t.id)),
            Direction::Desc => it.max_by_key(|t| (OrdF64(t.ord(attr)), std::cmp::Reverse(t.id))),
        }
    }

    /// All observed tuples matching `q`, sorted by id (full scan — used when
    /// a complete region makes the local answer authoritative).
    pub fn matching(&self, q: &Query) -> Vec<Arc<Tuple>> {
        let mut v: Vec<Arc<Tuple>> = self
            .tuples
            .values()
            .filter(|t| q.matches(t))
            .cloned()
            .collect();
        v.sort_by_key(|t| t.id);
        v
    }

    /// All matching tuples at exactly `attr = raw_value`, sorted by id.
    pub fn at_value(&self, attr: AttrId, raw_value: f64, q: &Query) -> Vec<Arc<Tuple>> {
        let mut v: Vec<Arc<Tuple>> = self
            .in_range(attr, Interval::point(raw_value))
            .filter(|t| q.matches(t))
            .cloned()
            .collect();
        v.sort_by_key(|t| t.id);
        v
    }
}

/// Registry of queries with fully known answers.
///
/// A query lands here when the server's response was valid/underflow, or the
/// crawler exhausted it. Capped FIFO — dropping an entry only costs future
/// queries, never correctness.
#[derive(Debug)]
pub struct CompleteRegions {
    regions: std::collections::VecDeque<Query>,
    cap: usize,
}

impl Default for CompleteRegions {
    fn default() -> Self {
        CompleteRegions::new(4096)
    }
}

impl CompleteRegions {
    /// An empty registry remembering at most `cap` regions (FIFO).
    pub fn new(cap: usize) -> Self {
        CompleteRegions {
            regions: std::collections::VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Regions currently remembered.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when no region has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Register a query whose full answer is now in history.
    pub fn register(&mut self, q: Query) {
        if self.regions.len() == self.cap {
            self.regions.pop_front();
        }
        self.regions.push_back(q);
    }

    /// Is every tuple matching `q` guaranteed to be in history already?
    pub fn covers(&self, q: &Query) -> bool {
        self.regions.iter().any(|r| q.is_subsumed_by(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::{Endpoint, QueryOutcome};

    fn t(id: u32, vals: Vec<f64>) -> Arc<Tuple> {
        Arc::new(Tuple::new(TupleId(id), vals, vec![]))
    }

    fn hist() -> History {
        let mut h = History::new(2);
        for (i, (a, b)) in [(1.0, 9.0), (2.0, 8.0), (2.0, 7.0), (5.0, 1.0)]
            .into_iter()
            .enumerate()
        {
            h.record(&t(i as u32, vec![a, b]));
        }
        h
    }

    #[test]
    fn record_is_idempotent() {
        let mut h = History::new(1);
        let x = t(3, vec![1.0]);
        h.record(&x);
        h.record(&x);
        assert_eq!(h.len(), 1);
        assert!(h.contains(TupleId(3)));
    }

    #[test]
    fn record_response_stores_all() {
        let mut h = History::new(1);
        let resp = QueryResponse {
            tuples: vec![t(0, vec![1.0]), t(1, vec![2.0])],
            outcome: QueryOutcome::Valid,
        };
        h.record_response(&resp);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn range_respects_open_bounds() {
        let h = hist();
        let ids: Vec<u32> = h
            .in_range(AttrId(0), Interval::open(1.0, 5.0))
            .map(|t| t.id.0)
            .collect();
        assert_eq!(ids, vec![1, 2]); // the two x=2 tuples, id order within key
    }

    #[test]
    fn next_norm_above_asc_and_desc() {
        let h = hist();
        let q = Query::all();
        // Ascending on attr0 after 1.0 → the smallest id at value 2.0.
        let n = h
            .next_norm_above(AttrId(0), Direction::Asc, 1.0, None, &q)
            .unwrap();
        assert_eq!(n.ord(AttrId(0)), 2.0);
        // Descending on attr0: normalized value = -x; after -5.0 means x < 5.
        let d = h
            .next_norm_above(AttrId(0), Direction::Desc, -5.0, None, &q)
            .unwrap();
        assert_eq!(d.ord(AttrId(0)), 2.0);
        // From the very start.
        let first = h
            .next_norm_above(AttrId(0), Direction::Asc, f64::NEG_INFINITY, None, &q)
            .unwrap();
        assert_eq!(first.ord(AttrId(0)), 1.0);
    }

    #[test]
    fn next_norm_above_respects_upto_and_filter() {
        let h = hist();
        let q = Query::all().and_range(AttrId(1), Interval::at_most(8.0));
        // after 1, upto 5 (exclusive), filtered to attr1 <= 8 → x = 2 rows.
        let n = h
            .next_norm_above(AttrId(0), Direction::Asc, 1.0, Some(5.0), &q)
            .unwrap();
        assert_eq!(n.ord(AttrId(0)), 2.0);
        // upto 2 (exclusive) excludes them.
        assert!(h
            .next_norm_above(AttrId(0), Direction::Asc, 1.0, Some(2.0), &q)
            .is_none());
    }

    #[test]
    fn at_value_collects_ties_sorted() {
        let h = hist();
        let ties = h.at_value(AttrId(0), 2.0, &Query::all());
        let ids: Vec<u32> = ties.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn complete_regions_subsumption() {
        let mut c = CompleteRegions::default();
        let big = Query::all().and_range(AttrId(0), Interval::open(0.0, 10.0));
        c.register(big);
        let small = Query::all().and_range(AttrId(0), Interval::closed(2.0, 5.0));
        assert!(c.covers(&small));
        let other = Query::all().and_range(AttrId(0), Interval::closed(2.0, 15.0));
        assert!(!c.covers(&other));
    }

    #[test]
    fn complete_regions_cap_evicts() {
        let mut c = CompleteRegions::new(2);
        for i in 0..3 {
            c.register(Query::all().and_range(AttrId(0), Interval::point(f64::from(i))));
        }
        assert_eq!(c.len(), 2);
        assert!(!c.covers(&Query::all().and_range(AttrId(0), Interval::point(0.0))));
        assert!(c.covers(&Query::all().and_range(AttrId(0), Interval::point(2.0))));
    }

    #[test]
    fn endpoint_bound_translation_includes_closed() {
        let h = hist();
        let ids: Vec<u32> = h
            .in_range(
                AttrId(0),
                Interval {
                    lo: Endpoint::Closed(2.0),
                    hi: Endpoint::Closed(5.0),
                },
            )
            .map(|t| t.id.0)
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
