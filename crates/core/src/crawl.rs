//! Region crawler — the \[15\]-style range-splitting enumerator.
//!
//! Fully enumerates `R(q)` through the top-k interface by recursively
//! splitting overflowing queries on attribute values observed in their
//! answers. Used in three places:
//!
//! * the *crawl-then-rank* baseline of §1 (crawl everything, rank locally),
//! * tie slabs when removing the general-positioning assumption (§5) — a
//!   point predicate `Ai = v` may still overflow and must be subdivided on
//!   the other attributes,
//! * the MD dense-region oracle (§4.4), which crawls a small box completely
//!   before indexing it.
//!
//! Splits always use *observed* attribute values (three-way `< v`, `= v`,
//! `> v` at the median returned value), so every recursion step either
//! strictly separates tuples or pins an attribute to a point — termination
//! is structural, not epsilon-based. Groups of more-than-`k` tuples
//! identical on **every** ordinal attribute are fundamentally
//! indistinguishable through the interface; the crawler returns what it can
//! and reports `truncated = true`.

use crate::ctx::SharedState;
use qrs_server::SearchInterface;
use qrs_types::value::cmp_f64;
use qrs_types::{AttrId, Interval, Query, RerankError, Schema, Tuple, TupleId};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of a full-region crawl.
#[derive(Debug, Clone)]
pub struct CrawlResult {
    /// Every discovered tuple matching the query, sorted by id.
    pub tuples: Vec<Arc<Tuple>>,
    /// True if an indistinguishable >k duplicate group was hit; the result
    /// then contains only `k` representatives of that group.
    pub truncated: bool,
}

/// Enumerate all tuples matching `q`. Fails fast on a server error; tuples
/// already absorbed into the shared history stay there (a retry resumes from
/// the knowledge accumulated so far).
pub fn crawl_region(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    q: &Query,
) -> Result<CrawlResult, RerankError> {
    let schema = Arc::clone(server.schema());
    let mut found: HashMap<TupleId, Arc<Tuple>> = HashMap::new();
    let mut truncated = false;
    let mut stack = vec![q.clone()];

    while let Some(cq) = stack.pop() {
        if cq.is_unsatisfiable() {
            continue;
        }
        if st.complete.covers(&cq) {
            for t in st.history.matching(&cq) {
                found.insert(t.id, t);
            }
            continue;
        }
        let resp = server.query(&cq)?;
        st.absorb(&cq, &resp);
        for t in &resp.tuples {
            found.insert(t.id, Arc::clone(t));
        }
        if !resp.is_overflow() {
            continue;
        }
        match choose_split(&schema, &cq, &resp.tuples) {
            Some(Split::ThreeWay(attr, v)) => {
                let iv = cq.interval(attr);
                stack.push(
                    cq.clone()
                        .and_range(attr, iv.intersect(&Interval::less_than(v))),
                );
                stack.push(cq.clone().and_range(attr, Interval::point(v)));
                stack.push(cq.and_range(attr, iv.intersect(&Interval::greater_than(v))));
            }
            Some(Split::Enumerate(attr)) => {
                let iv = cq.interval(attr);
                let values = schema
                    .ordinal(attr)
                    .values
                    .as_deref()
                    .expect("point-only attributes carry an explicit value list");
                for &v in values.iter().filter(|v| iv.contains(**v)) {
                    stack.push(cq.clone().and_range(attr, Interval::point(v)));
                }
            }
            Some(Split::EnumerateCat(cat)) => {
                let card = schema.categorical(cat).cardinality;
                for code in 0..card {
                    stack.push(cq.clone().and_cat(qrs_types::CatPredicate::eq(cat, code)));
                }
            }
            None => {
                // Identical on every ordinal and categorical attribute:
                // indistinguishable through the interface.
                truncated = true;
            }
        }
    }

    if !truncated {
        st.complete.register(q.clone());
    }
    let mut tuples: Vec<Arc<Tuple>> = found.into_values().collect();
    tuples.sort_by_key(|t| t.id);
    Ok(CrawlResult { tuples, truncated })
}

/// How to subdivide an overflowing query.
enum Split {
    /// `< v`, `= v`, `> v` on a range-searchable attribute.
    ThreeWay(AttrId, f64),
    /// One point query per domain value of a point-only attribute (§5).
    Enumerate(AttrId),
    /// One equality query per code of a categorical attribute (separates
    /// tuples identical on all ordinals but differing in categories).
    EnumerateCat(qrs_types::CatId),
}

/// Pick a split: prefer the range-searchable attribute whose returned values
/// are most spread (median split separates best); among single-valued
/// attributes, pick one not yet pinned to a point (pins it); fall back to
/// enumerating an unpinned point-only attribute.
fn choose_split(schema: &Schema, q: &Query, returned: &[Arc<Tuple>]) -> Option<Split> {
    let mut best: Option<(AttrId, f64, usize)> = None; // (attr, median, distinct)
    let mut pin_candidate: Option<(AttrId, f64)> = None;
    let mut enumerate_candidate: Option<AttrId> = None;
    for a in schema.attr_ids() {
        if schema.ordinal(a).point_only {
            if enumerate_candidate.is_none() && !is_pinned(q, a) {
                enumerate_candidate = Some(a);
            }
            continue;
        }
        let mut vals: Vec<f64> = returned.iter().map(|t| t.ord(a)).collect();
        vals.sort_by(|x, y| cmp_f64(*x, *y));
        vals.dedup_by(|x, y| cmp_f64(*x, *y).is_eq());
        if vals.len() >= 2 {
            let median = vals[vals.len() / 2];
            if best.is_none_or(|(_, _, d)| vals.len() > d) {
                best = Some((a, median, vals.len()));
            }
        } else if pin_candidate.is_none() && !vals.is_empty() && !is_pinned(q, a) {
            pin_candidate = Some((a, vals[0]));
        }
    }
    if let Some((a, v, _)) = best {
        return Some(Split::ThreeWay(a, v));
    }
    if let Some((a, v)) = pin_candidate {
        return Some(Split::ThreeWay(a, v));
    }
    if let Some(a) = enumerate_candidate {
        return Some(Split::Enumerate(a));
    }
    // All ordinals pinned: separate by categorical attributes (pick one not
    // already restricted to a single code).
    schema
        .cat_ids()
        .find(|&c| {
            q.cats()
                .iter()
                .find(|p| p.attr == c)
                .is_none_or(|p| p.codes().len() > 1)
        })
        .map(Split::EnumerateCat)
}

fn is_pinned(q: &Query, a: AttrId) -> bool {
    let iv = q.interval(a);
    matches!(
        (iv.lo, iv.hi),
        (qrs_types::Endpoint::Closed(x), qrs_types::Endpoint::Closed(y)) if x == y
    )
}

/// Crawl everything matching `q` and rank locally — the §1 baseline.
/// Returns the exact ranking (ties by id) unless `truncated`.
pub fn crawl_then_rank(
    server: &dyn SearchInterface,
    st: &mut SharedState,
    q: &Query,
    score: impl Fn(&Tuple) -> f64,
) -> Result<CrawlResult, RerankError> {
    let mut r = crawl_region(server, st, q)?;
    r.tuples
        .sort_by(|a, b| cmp_f64(score(a), score(b)).then(a.id.cmp(&b.id)));
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RerankParams;
    use qrs_datagen::synthetic::{discrete_grid, uniform};
    use qrs_server::{SimServer, SystemRank};

    fn setup(data: qrs_types::Dataset, k: usize) -> (SimServer, SharedState) {
        let st = SharedState::new(data.schema(), RerankParams::paper_defaults(data.len(), k));
        let server = SimServer::new(data, SystemRank::pseudo_random(3), k);
        (server, st)
    }

    #[test]
    fn crawls_everything_continuous() {
        let data = uniform(300, 2, 1, 42);
        let n = data.len();
        let (server, mut st) = setup(data, 5);
        let r = crawl_region(&server, &mut st, &Query::all()).unwrap();
        assert!(!r.truncated);
        assert_eq!(r.tuples.len(), n);
        // The crawled region is now complete: re-crawling is free.
        let before = server.queries_issued();
        let r2 = crawl_region(&server, &mut st, &Query::all()).unwrap();
        assert_eq!(server.queries_issued(), before);
        assert_eq!(r2.tuples.len(), n);
    }

    #[test]
    fn crawls_with_heavy_ties() {
        // 4-level grid in 2D: at most 16 distinct cells for 200 tuples.
        let data = discrete_grid(200, 2, 4, 7);
        let n = data.len();
        let (server, mut st) = setup(data, 10);
        let r = crawl_region(&server, &mut st, &Query::all()).unwrap();
        // Cells can hold more than k=10 exact duplicates → possibly
        // truncated, but never *silently* short.
        if !r.truncated {
            assert_eq!(r.tuples.len(), n);
        } else {
            assert!(r.tuples.len() < n);
        }
    }

    #[test]
    fn subregion_crawl_respects_filter() {
        let data = uniform(300, 2, 1, 9);
        let q = Query::all().and_range(AttrId(0), Interval::closed(0.2, 0.6));
        let expect = data.count_matching(&q);
        let (server, mut st) = setup(data, 5);
        let r = crawl_region(&server, &mut st, &q).unwrap();
        assert!(!r.truncated);
        assert_eq!(r.tuples.len(), expect);
        assert!(r.tuples.iter().all(|t| q.matches(t)));
    }

    #[test]
    fn crawl_then_rank_matches_ground_truth() {
        let data = uniform(250, 2, 1, 10);
        let truth = data.rank_by(&Query::all(), |t| t.ord(AttrId(0)) + t.ord(AttrId(1)));
        let (server, mut st) = setup(data, 5);
        let r = crawl_then_rank(&server, &mut st, &Query::all(), |t| {
            t.ord(AttrId(0)) + t.ord(AttrId(1))
        })
        .unwrap();
        assert!(!r.truncated);
        let got: Vec<TupleId> = r.tuples.iter().map(|t| t.id).collect();
        let want: Vec<TupleId> = truth.iter().map(|t| t.id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn unsatisfiable_query_is_free() {
        let data = uniform(100, 2, 1, 11);
        let (server, mut st) = setup(data, 5);
        let q = Query::all().and_range(AttrId(0), Interval::open(0.5, 0.5));
        let r = crawl_region(&server, &mut st, &q).unwrap();
        assert!(r.tuples.is_empty());
        assert_eq!(server.queries_issued(), 0);
    }
}
