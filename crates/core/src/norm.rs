//! Normalized-space geometry shared by the MD algorithms.
//!
//! A [`NormView`] pairs a user ranking function with the normalized bounds of
//! its ranking attributes; a [`NormBox`] is an axis-aligned box in that space
//! (smaller = better on every axis). The MD algorithms reason exclusively in
//! normalized space and call [`NormView::to_query`] to translate a box into
//! the real conjunctive predicates the server understands — including the
//! endpoint flip for descending-preference attributes.

use qrs_ranking::{NormBounds, RankFn};
use qrs_types::{Direction, Interval, Query, Schema, Tuple};
use std::sync::Arc;

/// A ranking function viewed over a concrete schema.
#[derive(Clone)]
pub struct NormView {
    rank: Arc<dyn RankFn>,
    bounds: NormBounds,
}

impl NormView {
    /// Derive the normalized bounds of the ranking attributes from the
    /// schema's declared domains.
    pub fn new(rank: Arc<dyn RankFn>, schema: &Schema) -> Self {
        let mut lo = Vec::with_capacity(rank.dims());
        let mut hi = Vec::with_capacity(rank.dims());
        for (i, &a) in rank.attrs().iter().enumerate() {
            let o = schema.ordinal(a);
            let d = rank.directions()[i];
            let (x, y) = (d.normalize(o.min), d.normalize(o.max));
            lo.push(x.min(y));
            hi.push(x.max(y));
        }
        let bounds = NormBounds::new(lo, hi);
        NormView { rank, bounds }
    }

    /// The ranking function this view normalizes for.
    #[inline]
    pub fn rank(&self) -> &Arc<dyn RankFn> {
        &self.rank
    }

    /// The per-attribute normalization bounds.
    #[inline]
    pub fn bounds(&self) -> &NormBounds {
        &self.bounds
    }

    /// Number of ranking attributes (the normalized space's dimension).
    #[inline]
    pub fn dims(&self) -> usize {
        self.rank.dims()
    }

    /// The user score of `t` (unnormalized — ranking order is what counts).
    #[inline]
    pub fn score(&self, t: &Tuple) -> f64 {
        self.rank.score(t)
    }

    /// `t`'s coordinates in the normalized `[0,1]^m` space.
    #[inline]
    pub fn norm_coords(&self, t: &Tuple) -> Vec<f64> {
        self.rank.norm_coords(t)
    }

    /// Translate a normalized box into server predicates, ANDed onto `sel`.
    pub fn to_query(&self, b: &NormBox, sel: &Query) -> Query {
        let mut q = sel.clone();
        for (i, iv) in b.dims.iter().enumerate() {
            if *iv == Interval::all() {
                continue;
            }
            let raw = match self.rank.directions()[i] {
                Direction::Asc => *iv,
                Direction::Desc => iv.negate(),
            };
            q.add_range(self.rank.attrs()[i], raw);
        }
        q
    }

    /// The initial search box for a user query: the full normalized domain
    /// intersected with `sel`'s predicates on ranking attributes.
    pub fn initial_box(&self, sel: &Query) -> NormBox {
        let mut b = NormBox::full(&self.bounds);
        for (i, &a) in self.rank.attrs().iter().enumerate() {
            let raw = sel.interval(a);
            if raw == Interval::all() {
                continue;
            }
            let norm = match self.rank.directions()[i] {
                Direction::Asc => raw,
                Direction::Desc => raw.negate(),
            };
            b.dims[i] = b.dims[i].intersect(&norm);
        }
        b
    }
}

impl std::fmt::Debug for NormView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NormView")
            .field("rank", &self.rank.label())
            .field("bounds", &self.bounds)
            .finish()
    }
}

/// An axis-aligned box in normalized space (one interval per ranking dim).
#[derive(Debug, Clone, PartialEq)]
pub struct NormBox {
    /// One normalized interval per ranking dimension.
    pub dims: Vec<Interval>,
}

impl NormBox {
    /// The closed box `[lo, hi]` over the whole normalized domain.
    pub fn full(bounds: &NormBounds) -> Self {
        NormBox {
            dims: bounds
                .lo
                .iter()
                .zip(&bounds.hi)
                .map(|(&l, &h)| Interval::closed(l, h))
                .collect(),
        }
    }

    /// True when any dimension's interval is empty (the box contains no
    /// point).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(Interval::is_empty)
    }

    /// Does the box contain a normalized point?
    pub fn contains(&self, u: &[f64]) -> bool {
        debug_assert_eq!(u.len(), self.dims.len());
        self.dims.iter().zip(u).all(|(iv, &v)| iv.contains(v))
    }

    /// Greatest finite lower corner (clamped to the domain bounds) — the
    /// box's *ideal* point, where the score is minimal.
    pub fn lo_corner(&self, bounds: &NormBounds) -> Vec<f64> {
        self.dims
            .iter()
            .enumerate()
            .map(|(i, iv)| iv.lo.value().map_or(bounds.lo[i], |v| v.max(bounds.lo[i])))
            .collect()
    }

    /// Least finite upper corner (clamped to the domain bounds).
    pub fn hi_corner(&self, bounds: &NormBounds) -> Vec<f64> {
        self.dims
            .iter()
            .enumerate()
            .map(|(i, iv)| iv.hi.value().map_or(bounds.hi[i], |v| v.min(bounds.hi[i])))
            .collect()
    }

    /// Volume relative to the whole domain: `Π widthᵢ / Π domainᵢ`, clamping
    /// unbounded sides to the domain. Degenerate domain dimensions count as
    /// factor 1. This is the quantity compared against `(s/n)/c` in §4.4.
    pub fn rel_volume(&self, bounds: &NormBounds) -> f64 {
        let lo = self.lo_corner(bounds);
        let hi = self.hi_corner(bounds);
        let mut v = 1.0;
        for i in 0..self.dims.len() {
            let dom = bounds.hi[i] - bounds.lo[i];
            if dom > 0.0 {
                v *= ((hi[i] - lo[i]).max(0.0) / dom).min(1.0);
            }
        }
        v
    }

    /// Are all dimensions single points? (An exact-duplicate cell.)
    pub fn is_cell(&self) -> bool {
        self.dims.iter().all(|iv| {
            matches!(
                (iv.lo, iv.hi),
                (qrs_types::Endpoint::Closed(a), qrs_types::Endpoint::Closed(b)) if a == b
            )
        })
    }

    /// Replace dimension `i` with its intersection with `iv`.
    pub fn with_dim(&self, i: usize, iv: Interval) -> NormBox {
        let mut b = self.clone();
        b.dims[i] = b.dims[i].intersect(&iv);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_ranking::LinearRank;
    use qrs_types::{AttrId, OrdinalAttr, TupleId};

    fn schema() -> Schema {
        Schema::new(
            vec![
                OrdinalAttr::new("price", 0.0, 100.0),
                OrdinalAttr::new("year", 2000.0, 2020.0),
            ],
            vec![],
        )
    }

    fn view() -> NormView {
        // Prefer cheap and new: price asc, year desc.
        let rank = LinearRank::new(vec![
            (AttrId(0), Direction::Asc, 1.0),
            (AttrId(1), Direction::Desc, 2.0),
        ]);
        NormView::new(Arc::new(rank), &schema())
    }

    #[test]
    fn bounds_are_normalized() {
        let v = view();
        assert_eq!(v.bounds().lo, vec![0.0, -2020.0]);
        assert_eq!(v.bounds().hi, vec![100.0, -2000.0]);
    }

    #[test]
    fn to_query_flips_desc_dims() {
        let v = view();
        let mut b = NormBox::full(v.bounds());
        // Normalized year in [-2020, -2010) ⇔ raw year in (2010, 2020].
        b.dims[1] = Interval::closed_open(-2020.0, -2010.0);
        let q = v.to_query(&b, &Query::all());
        let raw = q.interval(AttrId(1));
        assert_eq!(raw, Interval::open_closed(2010.0, 2020.0));
        let t_new = Tuple::new(TupleId(0), vec![50.0, 2015.0], vec![]);
        let t_old = Tuple::new(TupleId(1), vec![50.0, 2005.0], vec![]);
        assert!(q.matches(&t_new));
        assert!(!q.matches(&t_old));
    }

    #[test]
    fn initial_box_absorbs_sel_ranges() {
        let v = view();
        let sel = Query::all().and_range(AttrId(1), Interval::at_least(2010.0));
        let b = v.initial_box(&sel);
        // year >= 2010 ⇔ normalized year <= -2010.
        assert!(b.dims[1].contains(-2015.0));
        assert!(!b.dims[1].contains(-2005.0));
    }

    #[test]
    fn corners_and_volume() {
        let v = view();
        let b = NormBox::full(v.bounds());
        assert_eq!(b.lo_corner(v.bounds()), vec![0.0, -2020.0]);
        assert_eq!(b.hi_corner(v.bounds()), vec![100.0, -2000.0]);
        assert!((b.rel_volume(v.bounds()) - 1.0).abs() < 1e-12);
        let half = b.with_dim(0, Interval::closed(0.0, 50.0));
        assert!((half.rel_volume(v.bounds()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cell_detection() {
        let v = view();
        let mut b = NormBox::full(v.bounds());
        assert!(!b.is_cell());
        b.dims[0] = Interval::point(5.0);
        b.dims[1] = Interval::point(-2010.0);
        assert!(b.is_cell());
    }

    #[test]
    fn empty_box_detection() {
        let v = view();
        let b = NormBox::full(v.bounds()).with_dim(0, Interval::open(7.0, 7.0));
        assert!(b.is_empty());
    }

    #[test]
    fn contains_tuple_coords() {
        let v = view();
        let b = NormBox::full(v.bounds());
        let t = Tuple::new(TupleId(0), vec![10.0, 2010.0], vec![]);
        assert!(b.contains(&v.norm_coords(&t)));
    }
}
