//! The fleet monitor: folds the event stream into per-(site, strategy)
//! predicted-vs-actual spend tables.
//!
//! The *predicted* column is seeded by [`crate::EventKind::PlanChosen`]
//! events (plan-time `CostEstimate`s); the *actual* column is settled by
//! [`crate::EventKind::RequestCharged`] deltas, which carry the same
//! in-lock ledger numbers the session and service stats accumulate — so a
//! monitor report reconciles exactly against those ledgers, by
//! construction. Divergence ratios (actual / predicted) are the signal the
//! ROADMAP's mid-flight re-planning loop consumes: a ratio drifting from
//! 1.0 means the calibrated cost model no longer describes the live site.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{Event, EventKind};
use crate::Subscriber;

/// Accumulated spend for one (site, strategy) cell of the fleet table.
#[derive(Debug, Default, Clone, Copy)]
struct RowAccum {
    sessions: u64,
    predicted_queries: u64,
    predicted_cost_units: u64,
    calibrated_queries: u64,
    calibrated_cost_units: u64,
    actual_queries: u64,
    actual_cost_units: u64,
    saved_queries: u64,
    saved_cost_units: u64,
    /// Divergence-triggered switches that left this row's strategy.
    switches: u64,
}

#[derive(Debug, Default)]
struct MonitorInner {
    /// Session ordinal → (site, strategy), registered at `SessionOpen` and
    /// dropped at `SessionClose`; events in between join through it.
    sessions: HashMap<(Arc<str>, u64), (Arc<str>, String)>,
    /// The fleet table. `BTreeMap` so reports iterate deterministically.
    rows: BTreeMap<(String, String), RowAccum>,
}

/// Folds events into the fleet's predicted-vs-actual table. One `Monitor`
/// is embedded in every enabled `ObsHandle`; services sharing a handle
/// (or a caller-constructed `Monitor` attached as a subscriber to several
/// handles) aggregate into one table keyed by site.
#[derive(Debug, Default)]
pub struct Monitor {
    inner: Mutex<MonitorInner>,
}

impl Monitor {
    /// An empty monitor, ready to attach as a [`Subscriber`].
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Fold one event. Events whose session was never registered (e.g. a
    /// stream attached mid-flight) are ignored rather than misattributed.
    pub fn fold(&self, event: &Event) {
        let mut inner = self.inner.lock();
        let skey = (Arc::clone(&event.site), event.session);
        match &event.kind {
            EventKind::SessionOpen { strategy } => {
                inner
                    .sessions
                    .insert(skey, (Arc::clone(&event.site), strategy.clone()));
                let row = inner
                    .rows
                    .entry((event.site.to_string(), strategy.clone()))
                    .or_default();
                row.sessions += 1;
            }
            EventKind::PlanChosen {
                predicted_queries,
                predicted_cost_units,
                calibrated_queries,
                calibrated_cost_units,
                ..
            } => {
                if let Some((site, strategy)) = inner.sessions.get(&skey).cloned() {
                    let row = inner.rows.entry((site.to_string(), strategy)).or_default();
                    row.predicted_queries += predicted_queries;
                    row.predicted_cost_units += predicted_cost_units;
                    row.calibrated_queries += calibrated_queries;
                    row.calibrated_cost_units += calibrated_cost_units;
                }
            }
            EventKind::Replanned { to_strategy, .. } => {
                // Count the switch against the strategy that was abandoned,
                // then re-point the session's join entry so every later
                // charge lands on the strategy actually doing the work.
                if let Some((site, strategy)) = inner.sessions.get(&skey).cloned() {
                    let row = inner.rows.entry((site.to_string(), strategy)).or_default();
                    row.switches += 1;
                    // The destination row exists even if the session never
                    // charges again, so reports show where switches landed.
                    inner
                        .rows
                        .entry((site.to_string(), to_strategy.clone()))
                        .or_default();
                    inner.sessions.insert(skey, (site, to_strategy.clone()));
                }
            }
            EventKind::RequestCharged {
                queries,
                cost_units,
                ..
            } => {
                if let Some((site, strategy)) = inner.sessions.get(&skey).cloned() {
                    let row = inner.rows.entry((site.to_string(), strategy)).or_default();
                    row.actual_queries += queries;
                    row.actual_cost_units += cost_units;
                }
            }
            EventKind::KnowledgeHit {
                queries,
                cost_units,
            } => {
                if let Some((site, strategy)) = inner.sessions.get(&skey).cloned() {
                    let row = inner.rows.entry((site.to_string(), strategy)).or_default();
                    row.saved_queries += queries;
                    row.saved_cost_units += cost_units;
                }
            }
            EventKind::SessionClose { .. } => {
                // The row's accumulated spend persists; only the join entry
                // for the (now unreachable) session ordinal is dropped.
                inner.sessions.remove(&skey);
            }
            _ => {}
        }
    }

    /// Snapshot the fleet table, rows sorted by (site, strategy).
    ///
    /// The order is a pinned contract, not an accident of storage: reports
    /// must diff cleanly across runs and across however many threads fed
    /// the monitor, so the snapshot re-sorts explicitly even though the
    /// backing `BTreeMap` already iterates in key order.
    pub fn report(&self) -> MonitorReport {
        let inner = self.inner.lock();
        let mut rows: Vec<MonitorRow> = inner
            .rows
            .iter()
            .map(|((site, strategy), a)| MonitorRow {
                site: site.clone(),
                strategy: strategy.clone(),
                sessions: a.sessions,
                predicted_queries: a.predicted_queries,
                predicted_cost_units: a.predicted_cost_units,
                calibrated_queries: a.calibrated_queries,
                calibrated_cost_units: a.calibrated_cost_units,
                actual_queries: a.actual_queries,
                actual_cost_units: a.actual_cost_units,
                saved_queries: a.saved_queries,
                saved_cost_units: a.saved_cost_units,
                switches: a.switches,
            })
            .collect();
        rows.sort_by(|a, b| (&a.site, &a.strategy).cmp(&(&b.site, &b.strategy)));
        MonitorReport { rows }
    }
}

impl Subscriber for Monitor {
    fn on_event(&self, event: &Event) {
        self.fold(event);
    }
}

/// One (site, strategy) cell of the fleet table.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorRow {
    /// Site label of the service that ran the sessions.
    pub site: String,
    /// Strategy name in the `qrs_core::strategy::names` vocabulary.
    pub strategy: String,
    /// Sessions opened in this cell.
    pub sessions: u64,
    /// Sum of plan-time query estimates across those sessions.
    pub predicted_queries: u64,
    /// Sum of plan-time weighted-cost estimates.
    pub predicted_cost_units: u64,
    /// Sum of calibration-scaled query estimates (equals
    /// `predicted_queries` for statically planned sessions).
    pub calibrated_queries: u64,
    /// Sum of calibration-scaled weighted-cost estimates.
    pub calibrated_cost_units: u64,
    /// Raw queries actually charged (exactly the ledger numbers).
    pub actual_queries: u64,
    /// Weighted cost units actually charged.
    pub actual_cost_units: u64,
    /// Queries the knowledge plane answered for free.
    pub saved_queries: u64,
    /// Cost units those hits would have been billed.
    pub saved_cost_units: u64,
    /// Divergence-triggered mid-flight switches that abandoned this row's
    /// strategy.
    pub switches: u64,
}

/// An actual-vs-predicted spend ratio with a typed sentinel for the
/// zero-prediction cell, instead of `inf`/`NaN` (which would poison any
/// aggregation) or a bare `Option` (which throws away how much was
/// actually spent against the missing prediction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Divergence {
    /// `actual / predicted` with a nonzero denominator. 1.0 means the
    /// planner's model described the site perfectly; above it, sessions
    /// cost more than planned.
    Ratio(f64),
    /// Nothing was predicted for this cell (e.g. custom-strategy sessions,
    /// or a stream attached after `PlanChosen`); `actual` units were still
    /// charged against it.
    NoPrediction {
        /// Units actually spent against the zero prediction.
        actual: u64,
    },
}

impl Divergence {
    fn of(actual: u64, predicted: u64) -> Self {
        if predicted > 0 {
            Divergence::Ratio(actual as f64 / predicted as f64)
        } else {
            Divergence::NoPrediction { actual }
        }
    }

    /// The ratio, or `None` for the zero-prediction sentinel.
    pub fn ratio(&self) -> Option<f64> {
        match self {
            Divergence::Ratio(r) => Some(*r),
            Divergence::NoPrediction { .. } => None,
        }
    }
}

impl MonitorRow {
    /// `actual_queries / predicted_queries` against the *static* plan-time
    /// estimates, with a typed sentinel when nothing was predicted.
    pub fn query_divergence(&self) -> Divergence {
        Divergence::of(self.actual_queries, self.predicted_queries)
    }

    /// `actual_cost_units / predicted_cost_units` against the *static*
    /// plan-time estimates.
    pub fn cost_divergence(&self) -> Divergence {
        Divergence::of(self.actual_cost_units, self.predicted_cost_units)
    }

    /// `actual_queries / calibrated_queries` against the
    /// calibration-scaled estimates — the number the re-planning trigger
    /// watches per session.
    pub fn calibrated_query_divergence(&self) -> Divergence {
        Divergence::of(self.actual_queries, self.calibrated_queries)
    }

    /// `actual_cost_units / calibrated_cost_units` against the
    /// calibration-scaled estimates.
    pub fn calibrated_cost_divergence(&self) -> Divergence {
        Divergence::of(self.actual_cost_units, self.calibrated_cost_units)
    }
}

/// A deterministic snapshot of the fleet table (rows sorted by
/// (site, strategy)).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MonitorReport {
    /// The table, one row per (site, strategy) pair that opened a session.
    pub rows: Vec<MonitorRow>,
}

impl MonitorReport {
    /// Look up one cell.
    pub fn row(&self, site: &str, strategy: &str) -> Option<&MonitorRow> {
        self.rows
            .iter()
            .find(|r| r.site == site && r.strategy == strategy)
    }

    /// Total actual raw queries across the fleet.
    pub fn actual_queries_total(&self) -> u64 {
        self.rows.iter().map(|r| r.actual_queries).sum()
    }

    /// Total actual weighted cost across the fleet.
    pub fn actual_cost_units_total(&self) -> u64 {
        self.rows.iter().map(|r| r.actual_cost_units).sum()
    }

    /// Total knowledge savings (queries) across the fleet.
    pub fn saved_queries_total(&self) -> u64 {
        self.rows.iter().map(|r| r.saved_queries).sum()
    }

    /// Total knowledge savings (cost units) across the fleet.
    pub fn saved_cost_units_total(&self) -> u64 {
        self.rows.iter().map(|r| r.saved_cost_units).sum()
    }

    /// Total divergence-triggered mid-flight switches across the fleet.
    pub fn switches_total(&self) -> u64 {
        self.rows.iter().map(|r| r.switches).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::QueryClass;

    fn ev(site: &Arc<str>, session: u64, kind: EventKind) -> Event {
        Event {
            at_ms: 0,
            site: Arc::clone(site),
            session,
            kind,
        }
    }

    #[test]
    fn fold_joins_charges_to_the_opening_strategy() {
        let m = Monitor::new();
        let site: Arc<str> = Arc::from("dealer-a");
        m.fold(&ev(
            &site,
            1,
            EventKind::SessionOpen {
                strategy: "1d-rerank".into(),
            },
        ));
        m.fold(&ev(
            &site,
            1,
            EventKind::PlanChosen {
                strategy: "1d-rerank".into(),
                predicted_queries: 10,
                predicted_cost_units: 15,
                calibrated_queries: 11,
                calibrated_cost_units: 20,
            },
        ));
        m.fold(&ev(
            &site,
            1,
            EventKind::RequestCharged {
                class: QueryClass::TopK,
                queries: 4,
                cost_units: 6,
            },
        ));
        m.fold(&ev(
            &site,
            1,
            EventKind::RequestCharged {
                class: QueryClass::TopK,
                queries: 8,
                cost_units: 12,
            },
        ));
        m.fold(&ev(
            &site,
            1,
            EventKind::KnowledgeHit {
                queries: 2,
                cost_units: 3,
            },
        ));
        let report = m.report();
        let row = report.row("dealer-a", "1d-rerank").expect("row");
        assert_eq!(row.sessions, 1);
        assert_eq!(row.predicted_queries, 10);
        assert_eq!(row.predicted_cost_units, 15);
        assert_eq!(row.actual_queries, 12);
        assert_eq!(row.actual_cost_units, 18);
        assert_eq!(row.saved_queries, 2);
        assert_eq!(row.saved_cost_units, 3);
        assert_eq!(row.calibrated_queries, 11);
        assert_eq!(row.calibrated_cost_units, 20);
        assert_eq!(row.query_divergence().ratio(), Some(1.2));
        assert_eq!(row.cost_divergence().ratio(), Some(1.2));
        assert_eq!(row.calibrated_cost_divergence().ratio(), Some(0.9));
    }

    #[test]
    fn rows_persist_after_session_close_and_sort_deterministically() {
        let m = Monitor::new();
        let a: Arc<str> = Arc::from("b-site");
        let b: Arc<str> = Arc::from("a-site");
        for (site, sess, strat) in [(&a, 1, "md-rerank"), (&b, 1, "1d-rerank")] {
            m.fold(&ev(
                site,
                sess,
                EventKind::SessionOpen {
                    strategy: strat.into(),
                },
            ));
            m.fold(&ev(
                site,
                sess,
                EventKind::RequestCharged {
                    class: QueryClass::TopK,
                    queries: 1,
                    cost_units: 1,
                },
            ));
            m.fold(&ev(
                site,
                sess,
                EventKind::SessionClose {
                    emitted: 1,
                    queries_spent: 1,
                    cost_units_spent: 1,
                    queries_saved: 0,
                    cost_units_saved: 0,
                },
            ));
        }
        let report = m.report();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].site, "a-site");
        assert_eq!(report.rows[1].site, "b-site");
        assert_eq!(report.actual_queries_total(), 2);
        // Charges for a closed (unregistered) session are dropped, not
        // misattributed.
        m.fold(&ev(
            &a,
            1,
            EventKind::RequestCharged {
                class: QueryClass::TopK,
                queries: 99,
                cost_units: 99,
            },
        ));
        assert_eq!(m.report().actual_queries_total(), 2);
    }

    #[test]
    fn report_order_is_deterministic_under_concurrent_feeds() {
        // Many threads hammer one monitor with interleaved sessions across
        // shuffled (site, strategy) pairs; every snapshot must come back
        // sorted by (site, strategy) and identical across repeated calls —
        // the diff-cleanly contract, independent of feed schedule.
        use std::sync::Arc as StdArc;
        let m = StdArc::new(Monitor::new());
        let pairs = [
            ("zeta", "md-rerank"),
            ("alpha", "ta-order-by"),
            ("mid", "1d-rerank"),
            ("alpha", "1d-rerank"),
            ("zeta", "1d-rerank"),
        ];
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = StdArc::clone(&m);
                std::thread::spawn(move || {
                    for (i, (site, strat)) in pairs.iter().enumerate() {
                        let site: Arc<str> = Arc::from(*site);
                        // Distinct session ordinals per thread so joins
                        // never collide across threads.
                        let sess = (t * pairs.len() + i + 1) as u64;
                        let m = &*m;
                        m.fold(&Event {
                            at_ms: 0,
                            site: Arc::clone(&site),
                            session: sess,
                            kind: EventKind::SessionOpen {
                                strategy: (*strat).into(),
                            },
                        });
                        m.fold(&Event {
                            at_ms: 0,
                            site: Arc::clone(&site),
                            session: sess,
                            kind: EventKind::RequestCharged {
                                class: QueryClass::TopK,
                                queries: 1,
                                cost_units: 2,
                            },
                        });
                        m.fold(&Event {
                            at_ms: 0,
                            site,
                            session: sess,
                            kind: EventKind::SessionClose {
                                emitted: 1,
                                queries_spent: 1,
                                cost_units_spent: 2,
                                queries_saved: 0,
                                cost_units_saved: 0,
                            },
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = m.report();
        let keys: Vec<(String, String)> = report
            .rows
            .iter()
            .map(|r| (r.site.clone(), r.strategy.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "rows must be sorted by (site, strategy)");
        assert_eq!(report.rows.len(), 5, "one row per distinct pair");
        assert_eq!(report.actual_queries_total(), 8 * 5);
        // Snapshots are stable: a second report is identical.
        assert_eq!(report, m.report());
    }

    #[test]
    fn divergence_uses_typed_sentinel_without_predictions() {
        let row = MonitorRow {
            site: "s".into(),
            strategy: "custom".into(),
            sessions: 1,
            predicted_queries: 0,
            predicted_cost_units: 0,
            calibrated_queries: 0,
            calibrated_cost_units: 0,
            actual_queries: 5,
            actual_cost_units: 5,
            saved_queries: 0,
            saved_cost_units: 0,
            switches: 0,
        };
        // No inf/NaN: the zero-prediction cell carries its actual spend.
        assert_eq!(
            row.query_divergence(),
            Divergence::NoPrediction { actual: 5 }
        );
        assert_eq!(row.query_divergence().ratio(), None);
        assert_eq!(
            row.calibrated_cost_divergence(),
            Divergence::NoPrediction { actual: 5 }
        );
    }

    #[test]
    fn replanned_remaps_later_charges_and_counts_the_switch() {
        let m = Monitor::new();
        let site: Arc<str> = Arc::from("drifty");
        m.fold(&ev(
            &site,
            1,
            EventKind::SessionOpen {
                strategy: "ta-order-by".into(),
            },
        ));
        m.fold(&ev(
            &site,
            1,
            EventKind::RequestCharged {
                class: QueryClass::Ordered,
                queries: 2,
                cost_units: 9,
            },
        ));
        m.fold(&ev(
            &site,
            1,
            EventKind::Replanned {
                from_strategy: "ta-order-by".into(),
                to_strategy: "md-rerank".into(),
                at_emitted: 2,
                queries_spent: 2,
                cost_units_spent: 9,
            },
        ));
        m.fold(&ev(
            &site,
            1,
            EventKind::RequestCharged {
                class: QueryClass::TopK,
                queries: 3,
                cost_units: 3,
            },
        ));
        let report = m.report();
        let from = report.row("drifty", "ta-order-by").expect("origin row");
        let to = report.row("drifty", "md-rerank").expect("target row");
        // Pre-switch spend stays on the abandoned strategy; the switch is
        // counted there; post-switch spend lands on the new strategy.
        assert_eq!((from.actual_queries, from.actual_cost_units), (2, 9));
        assert_eq!(from.switches, 1);
        assert_eq!((to.actual_queries, to.actual_cost_units), (3, 3));
        assert_eq!(to.switches, 0);
        assert_eq!(report.switches_total(), 1);
    }

    #[test]
    fn same_session_ordinal_on_different_sites_does_not_collide() {
        let m = Monitor::new();
        let a: Arc<str> = Arc::from("site-a");
        let b: Arc<str> = Arc::from("site-b");
        m.fold(&ev(
            &a,
            1,
            EventKind::SessionOpen {
                strategy: "1d-rerank".into(),
            },
        ));
        m.fold(&ev(
            &b,
            1,
            EventKind::SessionOpen {
                strategy: "page-down".into(),
            },
        ));
        m.fold(&ev(
            &b,
            1,
            EventKind::RequestCharged {
                class: QueryClass::Page,
                queries: 7,
                cost_units: 7,
            },
        ));
        let report = m.report();
        assert_eq!(report.row("site-a", "1d-rerank").unwrap().actual_queries, 0);
        assert_eq!(report.row("site-b", "page-down").unwrap().actual_queries, 7);
    }
}
