//! The typed event vocabulary: everything the instrumented service layers
//! report, as plain data.
//!
//! Events are *facts*, not log lines: each one carries the exact ledger
//! deltas or state transition it describes, stamped with the emitting
//! service's injectable clock and its site name, so folds over an event
//! stream (the [`crate::Monitor`], the [`crate::MetricsRegistry`])
//! reconcile exactly against the session and service ledgers instead of
//! being approximately parsed back out of text.

use std::sync::Arc;

/// The request class a session's strategy issues against the hidden
/// database — the unit the per-class cost counters are keyed by. Built-in
/// strategies map 1:1 (cursor algorithms issue top-k probes, TA over
/// public `ORDER BY` issues ordered scans, page-down pages); a custom
/// strategy may mix classes, which is its own bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Top-`k` probe queries (the 1D/MD cursor families, TA over 1D).
    TopK,
    /// Page-down requests against the system ranking.
    Page,
    /// `ORDER BY` sorted-access scans (TA over public order).
    Ordered,
    /// A user-registered strategy whose request mix the service cannot
    /// know.
    Mixed,
}

impl QueryClass {
    /// Every class, in the order the per-class metric arrays use.
    pub const ALL: [QueryClass; 4] = [
        QueryClass::TopK,
        QueryClass::Page,
        QueryClass::Ordered,
        QueryClass::Mixed,
    ];

    /// Stable index into per-class metric arrays.
    pub fn index(self) -> usize {
        match self {
            QueryClass::TopK => 0,
            QueryClass::Page => 1,
            QueryClass::Ordered => 2,
            QueryClass::Mixed => 3,
        }
    }

    /// Stable lowercase name (used by the JSON exporter).
    pub fn as_str(self) -> &'static str {
        match self {
            QueryClass::TopK => "topk",
            QueryClass::Page => "page",
            QueryClass::Ordered => "ordered",
            QueryClass::Mixed => "mixed",
        }
    }
}

/// Which cap produced a [`EventKind::BudgetTrip`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetScope {
    /// The per-session query cap (`SessionBuilder::budget`).
    Session,
    /// The service-wide query cap (`RerankService::with_budget`).
    Service,
    /// A retry budget (per-session or service-wide) ran dry.
    Retry,
}

impl BudgetScope {
    /// Stable lowercase name (used by the JSON exporter).
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetScope::Session => "session",
            BudgetScope::Service => "service",
            BudgetScope::Retry => "retry",
        }
    }
}

/// What happened. Every variant carries the exact numbers of the moment it
/// describes; fields named `queries`/`cost_units` are ledger *deltas*, not
/// running totals, so folds sum them without double counting.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A session opened (counted after all preflights passed).
    SessionOpen {
        /// The strategy the session drives, in the shared
        /// `qrs_core::strategy::names` vocabulary.
        strategy: String,
    },
    /// The planner (or the caller's explicit choice) committed to a
    /// strategy, with its plan-time cost estimate — the monitor's
    /// *predicted* column.
    PlanChosen {
        /// The chosen candidate's strategy name.
        strategy: String,
        /// Plan-time estimate of raw queries for the session's horizon.
        predicted_queries: u64,
        /// Plan-time estimate of weighted cost units.
        predicted_cost_units: u64,
        /// The query estimate after calibration scaling — equal to
        /// `predicted_queries` when the service plans statically.
        calibrated_queries: u64,
        /// The weighted-cost estimate after calibration scaling — equal to
        /// `predicted_cost_units` when the service plans statically.
        calibrated_cost_units: u64,
    },
    /// A running session's actual spend diverged past the configured ratio
    /// of its calibrated prediction, and the session re-planned among the
    /// remaining feasible candidates and switched strategies mid-flight.
    Replanned {
        /// The strategy the session was riding.
        from_strategy: String,
        /// The strategy it switched to.
        to_strategy: String,
        /// Tuples already emitted (and preserved) at the switch point.
        at_emitted: u64,
        /// Raw queries paid under the old strategy.
        queries_spent: u64,
        /// Weighted cost units paid under the old strategy.
        cost_units_spent: u64,
    },
    /// A Get-Next pull began (one `Session::next` call).
    RequestIssued {
        /// The request class the session's strategy issues.
        class: QueryClass,
    },
    /// One strategy step charged the session's ledger. Emitted only for
    /// steps that actually spent (`queries > 0 || cost_units > 0`), so
    /// summing these deltas per session reproduces `SessionStats` exactly.
    RequestCharged {
        /// The request class the session's strategy issues.
        class: QueryClass,
        /// Raw queries this step charged.
        queries: u64,
        /// Weighted cost units this step charged.
        cost_units: u64,
    },
    /// A failed step is about to be retried.
    RetryAttempt {
        /// 1-based retry index within the current step.
        retry_index: u32,
    },
    /// The retry engine slept before re-attempting.
    BackoffSleep {
        /// Milliseconds slept (on the service's injectable clock).
        ms: u64,
        /// True when the server's `retry_after_ms` hint dictated the sleep
        /// (it dominates the computed backoff schedule).
        server_hinted: bool,
    },
    /// A federation source's circuit breaker opened.
    CircuitTrip {
        /// Lifetime trip count for this source, this one included.
        trips: u64,
    },
    /// A half-open probe pull was admitted after a cool-down.
    CircuitProbe {
        /// True when the probe succeeded and the circuit closed.
        reopened: bool,
    },
    /// The knowledge plane answered instead of the server (request-level
    /// hits, or the one-shot full-replay credit of a sealed stream).
    KnowledgeHit {
        /// Queries answered for free.
        queries: u64,
        /// Cost units those queries would have been billed.
        cost_units: u64,
    },
    /// A knowledge-gated step had to pay the server (the plane had no
    /// answer). The deltas duplicate the step's [`EventKind::RequestCharged`]
    /// — this event exists so hit/miss ratios fold without joining streams.
    KnowledgeMiss {
        /// Queries paid to the server.
        queries: u64,
        /// Cost units charged for them.
        cost_units: u64,
    },
    /// A session drained its stream and sealed the cached result entry for
    /// future whole-stream replays.
    KnowledgeSeal {
        /// Length of the sealed stream.
        items: u64,
        /// End-to-end query cost the sealing run paid (spent + saved).
        queries_full: u64,
        /// End-to-end weighted cost.
        cost_units_full: u64,
    },
    /// A `MaintainedSession::refresh` repaired (or re-drove) its
    /// materialized top-`h` after data change.
    MutationRepair {
        /// Feed deltas consumed.
        applied: u64,
        /// Replacement tuples pulled live to repair delete evictions.
        replacement_pulls: u64,
        /// True when the repair fell back to a full strategy re-drive.
        redrove: bool,
        /// Server queries the refresh spent.
        queries_spent: u64,
    },
    /// A query or retry budget refused further spend.
    BudgetTrip {
        /// Which cap tripped.
        scope: BudgetScope,
        /// Spend at the moment of refusal.
        spent: u64,
        /// The cap.
        limit: u64,
    },
    /// A session was dropped; the final ledger totals ride along.
    SessionClose {
        /// Tuples emitted over the session's lifetime.
        emitted: u64,
        /// Final raw-query spend.
        queries_spent: u64,
        /// Final weighted cost spend.
        cost_units_spent: u64,
        /// Final knowledge savings (queries).
        queries_saved: u64,
        /// Final knowledge savings (cost units).
        cost_units_saved: u64,
    },
    /// A `serve_batch` call dispatched a batch of requests.
    BatchServed {
        /// Requests in the batch.
        requests: u64,
    },
    /// The HTTP edge admitted a wire batch past admission control.
    EdgeAdmitted {
        /// Requests in the admitted wire batch.
        requests: u64,
    },
    /// The HTTP edge refused a wire batch at the gate — before any query
    /// was issued or charged (capacity or tenant-budget admission).
    EdgeRejected {
        /// Stable refusal class: `"capacity"` or `"tenant_budget"`.
        reason: String,
    },
}

impl EventKind {
    /// Stable snake_case name of the variant (used by the JSON exporter
    /// and by tests grouping recorded events).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SessionOpen { .. } => "session_open",
            EventKind::PlanChosen { .. } => "plan_chosen",
            EventKind::Replanned { .. } => "replanned",
            EventKind::RequestIssued { .. } => "request_issued",
            EventKind::RequestCharged { .. } => "request_charged",
            EventKind::RetryAttempt { .. } => "retry_attempt",
            EventKind::BackoffSleep { .. } => "backoff_sleep",
            EventKind::CircuitTrip { .. } => "circuit_trip",
            EventKind::CircuitProbe { .. } => "circuit_probe",
            EventKind::KnowledgeHit { .. } => "knowledge_hit",
            EventKind::KnowledgeMiss { .. } => "knowledge_miss",
            EventKind::KnowledgeSeal { .. } => "knowledge_seal",
            EventKind::MutationRepair { .. } => "mutation_repair",
            EventKind::BudgetTrip { .. } => "budget_trip",
            EventKind::SessionClose { .. } => "session_close",
            EventKind::BatchServed { .. } => "batch_served",
            EventKind::EdgeAdmitted { .. } => "edge_admitted",
            EventKind::EdgeRejected { .. } => "edge_rejected",
        }
    }
}

/// One observed fact: when (the emitting service's injectable clock),
/// where (site), who (session ordinal; 0 for service-level events), what
/// ([`EventKind`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Clock reading at emission, in ms since the service clock's epoch.
    /// Deterministic under `MockClock`.
    pub at_ms: u64,
    /// The emitting service's site label (shared, cheap to clone).
    pub site: Arc<str>,
    /// Session ordinal within the emitting handle (1-based; 0 means the
    /// event is service-level, e.g. [`EventKind::BatchServed`]).
    pub session: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// site and strategy names are plain identifiers in practice, but the
/// exporter must never emit malformed lines.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Event {
    /// One self-contained JSON object (no trailing newline): the
    /// [`crate::JsonLinesExporter`]'s line format. Hand-assembled — the
    /// workspace carries no serde — with a flat field layout so downstream
    /// `jq`-style tooling needs no schema.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"at_ms\":");
        s.push_str(&self.at_ms.to_string());
        s.push_str(",\"site\":\"");
        escape_into(&mut s, &self.site);
        s.push_str("\",\"session\":");
        s.push_str(&self.session.to_string());
        s.push_str(",\"event\":\"");
        s.push_str(self.kind.name());
        s.push('"');
        let field_u64 = |s: &mut String, k: &str, v: u64| {
            s.push_str(",\"");
            s.push_str(k);
            s.push_str("\":");
            s.push_str(&v.to_string());
        };
        match &self.kind {
            EventKind::SessionOpen { strategy } => {
                s.push_str(",\"strategy\":\"");
                escape_into(&mut s, strategy);
                s.push('"');
            }
            EventKind::PlanChosen {
                strategy,
                predicted_queries,
                predicted_cost_units,
                calibrated_queries,
                calibrated_cost_units,
            } => {
                s.push_str(",\"strategy\":\"");
                escape_into(&mut s, strategy);
                s.push('"');
                field_u64(&mut s, "predicted_queries", *predicted_queries);
                field_u64(&mut s, "predicted_cost_units", *predicted_cost_units);
                field_u64(&mut s, "calibrated_queries", *calibrated_queries);
                field_u64(&mut s, "calibrated_cost_units", *calibrated_cost_units);
            }
            EventKind::Replanned {
                from_strategy,
                to_strategy,
                at_emitted,
                queries_spent,
                cost_units_spent,
            } => {
                s.push_str(",\"from_strategy\":\"");
                escape_into(&mut s, from_strategy);
                s.push_str("\",\"to_strategy\":\"");
                escape_into(&mut s, to_strategy);
                s.push('"');
                field_u64(&mut s, "at_emitted", *at_emitted);
                field_u64(&mut s, "queries_spent", *queries_spent);
                field_u64(&mut s, "cost_units_spent", *cost_units_spent);
            }
            EventKind::RequestIssued { class } => {
                s.push_str(",\"class\":\"");
                s.push_str(class.as_str());
                s.push('"');
            }
            EventKind::RequestCharged {
                class,
                queries,
                cost_units,
            } => {
                s.push_str(",\"class\":\"");
                s.push_str(class.as_str());
                s.push('"');
                field_u64(&mut s, "queries", *queries);
                field_u64(&mut s, "cost_units", *cost_units);
            }
            EventKind::RetryAttempt { retry_index } => {
                field_u64(&mut s, "retry_index", u64::from(*retry_index));
            }
            EventKind::BackoffSleep { ms, server_hinted } => {
                field_u64(&mut s, "ms", *ms);
                s.push_str(",\"server_hinted\":");
                s.push_str(if *server_hinted { "true" } else { "false" });
            }
            EventKind::CircuitTrip { trips } => {
                field_u64(&mut s, "trips", *trips);
            }
            EventKind::CircuitProbe { reopened } => {
                s.push_str(",\"reopened\":");
                s.push_str(if *reopened { "true" } else { "false" });
            }
            EventKind::KnowledgeHit {
                queries,
                cost_units,
            }
            | EventKind::KnowledgeMiss {
                queries,
                cost_units,
            } => {
                field_u64(&mut s, "queries", *queries);
                field_u64(&mut s, "cost_units", *cost_units);
            }
            EventKind::KnowledgeSeal {
                items,
                queries_full,
                cost_units_full,
            } => {
                field_u64(&mut s, "items", *items);
                field_u64(&mut s, "queries_full", *queries_full);
                field_u64(&mut s, "cost_units_full", *cost_units_full);
            }
            EventKind::MutationRepair {
                applied,
                replacement_pulls,
                redrove,
                queries_spent,
            } => {
                field_u64(&mut s, "applied", *applied);
                field_u64(&mut s, "replacement_pulls", *replacement_pulls);
                s.push_str(",\"redrove\":");
                s.push_str(if *redrove { "true" } else { "false" });
                field_u64(&mut s, "queries_spent", *queries_spent);
            }
            EventKind::BudgetTrip {
                scope,
                spent,
                limit,
            } => {
                s.push_str(",\"scope\":\"");
                s.push_str(scope.as_str());
                s.push('"');
                field_u64(&mut s, "spent", *spent);
                field_u64(&mut s, "limit", *limit);
            }
            EventKind::SessionClose {
                emitted,
                queries_spent,
                cost_units_spent,
                queries_saved,
                cost_units_saved,
            } => {
                field_u64(&mut s, "emitted", *emitted);
                field_u64(&mut s, "queries_spent", *queries_spent);
                field_u64(&mut s, "cost_units_spent", *cost_units_spent);
                field_u64(&mut s, "queries_saved", *queries_saved);
                field_u64(&mut s, "cost_units_saved", *cost_units_saved);
            }
            EventKind::BatchServed { requests } | EventKind::EdgeAdmitted { requests } => {
                field_u64(&mut s, "requests", *requests);
            }
            EventKind::EdgeRejected { reason } => {
                s.push_str(",\"reason\":\"");
                escape_into(&mut s, reason);
                s.push('"');
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_well_formed_for_every_variant() {
        let kinds = vec![
            EventKind::SessionOpen {
                strategy: "1d-rerank".into(),
            },
            EventKind::PlanChosen {
                strategy: "md-rerank".into(),
                predicted_queries: 10,
                predicted_cost_units: 20,
                calibrated_queries: 12,
                calibrated_cost_units: 26,
            },
            EventKind::Replanned {
                from_strategy: "ta-order-by".into(),
                to_strategy: "md-rerank".into(),
                at_emitted: 3,
                queries_spent: 9,
                cost_units_spent: 27,
            },
            EventKind::RequestIssued {
                class: QueryClass::TopK,
            },
            EventKind::RequestCharged {
                class: QueryClass::Page,
                queries: 3,
                cost_units: 6,
            },
            EventKind::RetryAttempt { retry_index: 2 },
            EventKind::BackoffSleep {
                ms: 700,
                server_hinted: true,
            },
            EventKind::CircuitTrip { trips: 1 },
            EventKind::CircuitProbe { reopened: false },
            EventKind::KnowledgeHit {
                queries: 4,
                cost_units: 4,
            },
            EventKind::KnowledgeMiss {
                queries: 1,
                cost_units: 2,
            },
            EventKind::KnowledgeSeal {
                items: 25,
                queries_full: 40,
                cost_units_full: 55,
            },
            EventKind::MutationRepair {
                applied: 5,
                replacement_pulls: 2,
                redrove: false,
                queries_spent: 2,
            },
            EventKind::BudgetTrip {
                scope: BudgetScope::Service,
                spent: 100,
                limit: 100,
            },
            EventKind::SessionClose {
                emitted: 25,
                queries_spent: 40,
                cost_units_spent: 55,
                queries_saved: 0,
                cost_units_saved: 0,
            },
            EventKind::BatchServed { requests: 8 },
            EventKind::EdgeAdmitted { requests: 3 },
            EventKind::EdgeRejected {
                reason: "capacity".into(),
            },
        ];
        let site: Arc<str> = Arc::from("dealer-a");
        for kind in kinds {
            let name = kind.name();
            let e = Event {
                at_ms: 42,
                site: Arc::clone(&site),
                session: 7,
                kind,
            };
            let line = e.to_json_line();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains(&format!("\"event\":\"{name}\"")), "{line}");
            assert!(line.contains("\"site\":\"dealer-a\""), "{line}");
            // Balanced quotes: an even count means no unterminated string.
            assert_eq!(line.matches('"').count() % 2, 0, "{line}");
        }
    }

    #[test]
    fn json_escaping_handles_hostile_names() {
        let e = Event {
            at_ms: 0,
            site: Arc::from("a\"b\\c\nd"),
            session: 0,
            kind: EventKind::SessionOpen {
                strategy: "s\ttrat".into(),
            },
        };
        let line = e.to_json_line();
        assert!(line.contains("a\\\"b\\\\c\\nd"), "{line}");
        assert!(line.contains("s\\ttrat"), "{line}");
        // Balanced string delimiters: even count of *unescaped* quotes.
        let unescaped = line.replace("\\\\", "").replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0, "{line}");
    }
}
