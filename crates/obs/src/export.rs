//! A JSON-lines exporter subscriber for experiments: one event per line,
//! hand-assembled JSON (the workspace carries no serde).

use std::io::Write;

use parking_lot::Mutex;

use crate::event::Event;
use crate::Subscriber;

/// Writes every event as one JSON object per line to any `Write + Send`
/// sink (a file, a `Vec<u8>`, a pipe). Lines are written whole under one
/// mutex, so concurrent sessions never interleave within a line.
pub struct JsonLinesExporter {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonLinesExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesExporter").finish_non_exhaustive()
    }
}

impl JsonLinesExporter {
    /// Export into `sink`. Write errors are swallowed — observability must
    /// never fail the query path it observes.
    pub fn new(sink: impl Write + Send + 'static) -> Self {
        JsonLinesExporter {
            sink: Mutex::new(Box::new(sink)),
        }
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        let _ = self.sink.lock().flush();
    }
}

impl Subscriber for JsonLinesExporter {
    fn on_event(&self, event: &Event) {
        let mut line = event.to_json_line();
        line.push('\n');
        let _ = self.sink.lock().write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    /// A `Vec<u8>` sink shared with the test through an `Arc<Mutex<_>>`.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn one_line_per_event() {
        let buf = SharedBuf::default();
        let exporter = JsonLinesExporter::new(buf.clone());
        for i in 0..3u64 {
            exporter.on_event(&Event {
                at_ms: i,
                site: Arc::from("s"),
                session: 0,
                kind: EventKind::BatchServed { requests: i },
            });
        }
        exporter.flush();
        let out = String::from_utf8(buf.0.lock().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains(&format!("\"requests\":{i}")), "{line}");
        }
    }
}
