//! The `ObsHandle`: the one object instrumented code threads around.
//!
//! A handle is either *disabled* (the default — a `None`, so every
//! instrumentation site costs one branch and constructs nothing) or
//! *enabled*, in which case it owns the metrics registry, the fleet
//! monitor, and the attached subscribers. Cloning shares the underlying
//! plane; the service, its sessions, and its batch workers all hold clones
//! of the same handle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::{Event, EventKind};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::monitor::{Monitor, MonitorReport};
use crate::Subscriber;

/// The enabled plane: everything an emitting handle fans out to.
#[derive(Debug)]
struct ObsInner {
    site: Arc<str>,
    metrics: MetricsRegistry,
    monitor: Monitor,
    subscribers: Vec<Arc<dyn Subscriber>>,
    /// Session ordinals handed out by [`ObsHandle::open_session`],
    /// starting at 1 (0 is reserved for service-level events).
    next_session: AtomicU64,
}

impl std::fmt::Debug for dyn Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Subscriber")
    }
}

/// Configures and builds an enabled [`ObsHandle`].
#[derive(Debug)]
pub struct ObsBuilder {
    site: Arc<str>,
    subscribers: Vec<Arc<dyn Subscriber>>,
}

impl ObsBuilder {
    /// Start a plane for the given site label (the `site` field every
    /// emitted event carries).
    pub fn new(site: impl Into<Arc<str>>) -> Self {
        ObsBuilder {
            site: site.into(),
            subscribers: Vec::new(),
        }
    }

    /// Attach a subscriber; events fan out to subscribers in attachment
    /// order, after the built-in metrics and monitor folds.
    pub fn subscriber(mut self, s: Arc<dyn Subscriber>) -> Self {
        self.subscribers.push(s);
        self
    }

    /// Build the enabled handle.
    pub fn build(self) -> ObsHandle {
        ObsHandle {
            inner: Some(Arc::new(ObsInner {
                site: self.site,
                metrics: MetricsRegistry::default(),
                monitor: Monitor::new(),
                subscribers: self.subscribers,
                next_session: AtomicU64::new(1),
            })),
        }
    }
}

/// A cheap, cloneable handle to the observability plane — or to nothing.
///
/// Instrumented code calls [`ObsHandle::enabled`] (one `Option`
/// discriminant check) before constructing any event, so a disabled handle
/// keeps the hot path byte-identical in behaviour: no allocation, no
/// clock read, no fan-out.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle {
    inner: Option<Arc<ObsInner>>,
}

impl ObsHandle {
    /// The do-nothing handle every service starts with.
    pub fn disabled() -> Self {
        ObsHandle { inner: None }
    }

    /// Shorthand for an enabled handle with no extra subscribers (metrics
    /// and monitor only).
    pub fn for_site(site: impl Into<Arc<str>>) -> Self {
        ObsBuilder::new(site).build()
    }

    /// Start configuring an enabled handle.
    pub fn builder(site: impl Into<Arc<str>>) -> ObsBuilder {
        ObsBuilder::new(site)
    }

    /// True when events will actually be folded anywhere. Check this
    /// before doing any work to construct an event.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The site label events carry, when enabled.
    pub fn site(&self) -> Option<&str> {
        self.inner.as_deref().map(|i| &*i.site)
    }

    /// Allocate a session ordinal for event attribution: 1-based when
    /// enabled, 0 (the service-level ordinal) when disabled.
    pub fn open_session(&self) -> u64 {
        match &self.inner {
            Some(i) => i.next_session.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Emit one event: fold into metrics, then the monitor, then fan out
    /// to subscribers in attachment order. No-op when disabled (but
    /// callers should check [`ObsHandle::enabled`] first and skip even
    /// building the `kind`).
    pub fn emit(&self, at_ms: u64, session: u64, kind: EventKind) {
        let Some(inner) = &self.inner else { return };
        let event = Event {
            at_ms,
            site: Arc::clone(&inner.site),
            session,
            kind,
        };
        inner.metrics.fold(&event);
        inner.monitor.fold(&event);
        for s in &inner.subscribers {
            s.on_event(&event);
        }
    }

    /// Record one Get-Next pull's wall latency into the latency histogram
    /// (measured at the pull wrapper, not carried in an event). No-op when
    /// disabled.
    #[inline]
    pub fn record_pull(&self, latency_ms: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.record_pull(latency_ms);
        }
    }

    /// Snapshot the metrics registry, or `None` when disabled.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.inner.as_deref().map(|i| i.metrics.snapshot())
    }

    /// Snapshot the fleet monitor's predicted-vs-actual table (empty when
    /// disabled).
    pub fn monitor_report(&self) -> MonitorReport {
        match &self.inner {
            Some(i) => i.monitor.report(),
            None => MonitorReport::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::QueryClass;
    use crate::Recorder;

    #[test]
    fn disabled_handle_does_nothing() {
        let h = ObsHandle::disabled();
        assert!(!h.enabled());
        assert_eq!(h.open_session(), 0);
        assert_eq!(h.open_session(), 0);
        h.emit(0, 0, EventKind::BatchServed { requests: 1 });
        h.record_pull(5);
        assert!(h.metrics().is_none());
        assert!(h.monitor_report().rows.is_empty());
        assert_eq!(h.site(), None);
    }

    #[test]
    fn enabled_handle_folds_and_fans_out() {
        let recorder = Arc::new(Recorder::with_capacity(16));
        let h = ObsHandle::builder("dealer-a")
            .subscriber(Arc::clone(&recorder) as Arc<dyn Subscriber>)
            .build();
        assert!(h.enabled());
        assert_eq!(h.site(), Some("dealer-a"));
        let s1 = h.open_session();
        let s2 = h.open_session();
        assert_eq!((s1, s2), (1, 2));

        h.emit(
            10,
            s1,
            EventKind::SessionOpen {
                strategy: "1d-rerank".into(),
            },
        );
        h.emit(
            11,
            s1,
            EventKind::RequestCharged {
                class: QueryClass::TopK,
                queries: 3,
                cost_units: 5,
            },
        );
        h.record_pull(7);

        let m = h.metrics().expect("enabled");
        assert_eq!(m.events, 2);
        assert_eq!(m.sessions_opened, 1);
        assert_eq!(m.queries_total(), 3);
        assert_eq!(m.cost_units_total(), 5);
        assert_eq!(m.pulls, 1);

        let report = h.monitor_report();
        let row = report.row("dealer-a", "1d-rerank").expect("row");
        assert_eq!(row.actual_queries, 3);

        let events = recorder.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at_ms, 10);
        assert_eq!(&*events[1].site, "dealer-a");
    }

    #[test]
    fn clones_share_one_plane() {
        let h = ObsHandle::for_site("s");
        let h2 = h.clone();
        let s = h.open_session();
        h2.emit(
            0,
            s,
            EventKind::SessionOpen {
                strategy: "page-down".into(),
            },
        );
        assert_eq!(h.metrics().unwrap().sessions_opened, 1);
        assert_eq!(h2.open_session(), s + 1);
    }
}
