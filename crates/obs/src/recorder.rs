//! A bounded ring-buffer subscriber for tests and debugging.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::event::Event;
use crate::Subscriber;

/// Default ring capacity when `QRS_OBS_BUFFER` is unset or unparsable.
pub const DEFAULT_BUFFER: usize = 1024;

#[derive(Debug, Default)]
struct RecorderInner {
    ring: VecDeque<Event>,
    dropped: u64,
}

/// A bounded in-memory event ring: keeps the most recent `capacity`
/// events, dropping the oldest when full (and counting the drops). Whole
/// events are pushed and popped under one mutex, so a reader never sees a
/// torn event — either it is entirely in the ring or entirely dropped.
#[derive(Debug)]
pub struct Recorder {
    capacity: usize,
    inner: Mutex<RecorderInner>,
}

impl Recorder {
    /// A ring holding at most `capacity` events (`capacity` 0 records
    /// nothing and counts every event as dropped).
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            capacity,
            inner: Mutex::new(RecorderInner {
                ring: VecDeque::with_capacity(capacity.min(DEFAULT_BUFFER)),
                dropped: 0,
            }),
        }
    }

    /// Capacity from the `QRS_OBS_BUFFER` environment variable, falling
    /// back to [`DEFAULT_BUFFER`].
    pub fn from_env() -> Self {
        let capacity = std::env::var("QRS_OBS_BUFFER")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_BUFFER);
        Recorder::with_capacity(capacity)
    }

    /// The ring's configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted (oldest-first) because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().ring.is_empty()
    }

    /// Copy out the buffered events, oldest first. The ring is left
    /// intact.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Drain the buffered events (oldest first), resetting the ring but
    /// not the drop counter.
    pub fn drain(&self) -> Vec<Event> {
        self.inner.lock().ring.drain(..).collect()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::with_capacity(DEFAULT_BUFFER)
    }
}

impl Subscriber for Recorder {
    fn on_event(&self, event: &Event) {
        let mut inner = self.inner.lock();
        if self.capacity == 0 {
            inner.dropped += 1;
            return;
        }
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    fn ev(session: u64) -> Event {
        Event {
            at_ms: session,
            site: Arc::from("s"),
            session,
            kind: EventKind::BatchServed { requests: session },
        }
    }

    #[test]
    fn drops_oldest_when_full() {
        let r = Recorder::with_capacity(3);
        for i in 1..=5 {
            r.on_event(&ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.events().iter().map(|e| e.session).collect();
        assert_eq!(kept, vec![3, 4, 5]);
    }

    #[test]
    fn zero_capacity_counts_everything_as_dropped() {
        let r = Recorder::with_capacity(0);
        r.on_event(&ev(1));
        r.on_event(&ev(2));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn drain_empties_the_ring_but_keeps_the_drop_count() {
        let r = Recorder::with_capacity(2);
        for i in 1..=3 {
            r.on_event(&ev(i));
        }
        let drained = r.drain();
        assert_eq!(drained.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        r.on_event(&ev(9));
        assert_eq!(r.len(), 1);
    }
}
