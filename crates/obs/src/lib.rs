//! Event tracing + metrics plane for the reranking service.
//!
//! The paper's rerank-as-a-service model only pays off operationally when
//! the service can *see* what each session spends versus what the planner
//! predicted. This crate is that sight: a typed event vocabulary
//! ([`Event`]/[`EventKind`]) covering the whole session lifecycle (plan
//! chosen, requests issued/charged, retries and backoff, circuit
//! trips/probes, knowledge hits/misses/seals, mutation repairs, budget
//! trips, open/close), a lock-striped [`MetricsRegistry`] (exact
//! sum-on-read counters plus log2 latency histograms), and a fleet
//! [`Monitor`] folding the stream into per-(site, strategy)
//! predicted-vs-actual spend tables with divergence ratios — the data
//! layer a mid-flight re-planning loop consumes.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Instrumented code holds an
//!    [`ObsHandle`]; a disabled handle is a `None`, so every emission site
//!    is one branch that skips even *constructing* the event. The service
//!    crate's tests assert the disabled path leaves query ledgers and
//!    result streams byte-identical.
//! 2. **Exact, not sampled.** Spend-carrying events
//!    ([`EventKind::RequestCharged`], [`EventKind::KnowledgeHit`]) carry
//!    the same in-lock ledger deltas the session/service stats accumulate,
//!    so monitor reports reconcile *exactly* against those ledgers.
//! 3. **Deterministic.** Timestamps come from the emitting service's
//!    injectable clock (passed in by callers — this crate reads no OS
//!    clock), and [`MonitorReport`] rows sort by (site, strategy).
//!
//! Two built-in subscribers ship with the crate: a bounded ring-buffer
//! [`Recorder`] (drop-oldest, tear-free) for tests, and a
//! [`JsonLinesExporter`] for experiments.

#![deny(missing_docs)]

mod event;
mod export;
mod handle;
mod metrics;
mod monitor;
mod recorder;

pub use event::{BudgetScope, Event, EventKind, QueryClass};
pub use export::JsonLinesExporter;
pub use handle::{ObsBuilder, ObsHandle};
pub use metrics::{
    log2_bucket, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use monitor::{Divergence, Monitor, MonitorReport, MonitorRow};
pub use recorder::{Recorder, DEFAULT_BUFFER};

/// An event sink. Implementations must be cheap and non-blocking-ish:
/// `on_event` runs on the emitting (query-path) thread, after the built-in
/// metrics and monitor folds. Implementations must never panic — the
/// observability plane must not fail the query path it observes.
pub trait Subscriber: Send + Sync {
    /// Receive one event. The event is borrowed; clone it to keep it.
    fn on_event(&self, event: &Event);
}
