//! Lock-striped metrics: monotonic counters plus fixed-bucket log2
//! histograms, folded from the event stream (and a direct latency hook).
//!
//! The striping scheme mirrors `qrs_service::ServiceStats`: each logical
//! counter is an array of cache-line-padded atomic cells, every thread
//! picks one cell round-robin at first touch, and reads sum the cells.
//! Totals are exact — every increment lands in exactly one cell — so the
//! reconciliation tests can demand equality, not approximation, against
//! the session ledgers. Only the *snapshot* is racy-but-monotonic, which
//! a single atomic would be too.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::event::{Event, EventKind};

/// Cells per striped counter; a small power of two (the executor defaults
/// to one worker per core and threads spread round-robin).
const STRIPES: usize = 8;

/// Buckets per log2 histogram: bucket `i` holds values whose bit length is
/// `i` (bucket 0 = value 0, bucket 1 = value 1, bucket 2 = 2..=3, ...).
/// 32 buckets cover every latency/size this service can produce (2^31 ms
/// is ~24 days).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// One cache line worth of counter; the alignment keeps two cells from
/// sharing a line, which is the whole point of striping.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// Round-robin assignment of threads to stripe slots, fixed at a thread's
/// first increment.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// A monotonic counter sharded across padded cells: lock-free, exact under
/// concurrency, contention-free across threads in different slots.
#[derive(Debug, Default)]
struct StripedU64 {
    cells: [PaddedCell; STRIPES],
}

impl StripedU64 {
    #[inline]
    fn add(&self, v: u64) {
        STRIPE.with(|s| self.cells[*s].0.fetch_add(v, Ordering::Relaxed));
    }

    #[inline]
    fn incr(&self) {
        self.add(1);
    }

    fn sum(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A fixed-bucket log2 histogram, striped the same way as the counters:
/// each stripe owns a full row of buckets (padded rows, so two threads in
/// different slots never touch the same line), and a snapshot sums rows
/// bucket-wise.
#[derive(Debug, Default)]
struct StripedHistogram {
    rows: [PaddedRow; STRIPES],
}

/// One stripe's bucket row, padded out to its own cache-line region.
#[repr(align(64))]
#[derive(Debug)]
struct PaddedRow([AtomicU64; HISTOGRAM_BUCKETS]);

impl Default for PaddedRow {
    fn default() -> Self {
        PaddedRow(std::array::from_fn(|_| AtomicU64::new(0)))
    }
}

/// Bucket index for a value: its bit length, clamped to the top bucket.
#[inline]
pub fn log2_bucket(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl StripedHistogram {
    #[inline]
    fn record(&self, v: u64) {
        let b = log2_bucket(v);
        STRIPE.with(|s| self.rows[*s].0[b].fetch_add(1, Ordering::Relaxed));
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for row in &self.rows {
            for (acc, cell) in buckets.iter_mut().zip(row.0.iter()) {
                *acc += cell.load(Ordering::Relaxed);
            }
        }
        HistogramSnapshot { buckets }
    }
}

/// Point-in-time copy of one histogram's buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per log2 bucket: bucket `i` holds values of bit length `i`
    /// (bucket 0 is exactly the zeros; the top bucket absorbs overflow).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Total observations across all buckets.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Inclusive upper bound of bucket `i`'s value range (`u64::MAX` for
    /// the overflow bucket). Useful when rendering the histogram.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }
}

/// The metrics plane: striped monotonic counters and histograms, updated by
/// folding [`Event`]s (plus one direct hook for per-pull latency, which is
/// measured at the `Session::next` wrapper rather than carried in an
/// event). All update paths are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    events: StripedU64,
    sessions_opened: StripedU64,
    sessions_closed: StripedU64,
    pulls: StripedU64,
    queries_by_class: [StripedU64; 4],
    cost_units_by_class: [StripedU64; 4],
    replans: StripedU64,
    retries: StripedU64,
    backoff_sleeps: StripedU64,
    backoff_slept_ms: StripedU64,
    circuit_trips: StripedU64,
    circuit_probes: StripedU64,
    knowledge_hits: StripedU64,
    knowledge_misses: StripedU64,
    knowledge_seals: StripedU64,
    queries_saved: StripedU64,
    cost_units_saved: StripedU64,
    mutation_repairs: StripedU64,
    replacement_pulls: StripedU64,
    redrives: StripedU64,
    budget_trips: StripedU64,
    batches: StripedU64,
    edge_admitted: StripedU64,
    edge_rejected: StripedU64,
    pull_latency_ms: StripedHistogram,
    backoff_ms: StripedHistogram,
}

/// Point-in-time snapshot of every counter and histogram in the registry.
/// Sum-on-read totals are exact (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Events folded into the registry, all kinds.
    pub events: u64,
    /// `SessionOpen` events seen.
    pub sessions_opened: u64,
    /// `SessionClose` events seen.
    pub sessions_closed: u64,
    /// Get-Next pulls timed through the latency hook.
    pub pulls: u64,
    /// Raw queries charged, by [`crate::QueryClass`] index.
    pub queries_by_class: [u64; 4],
    /// Weighted cost units charged, by [`crate::QueryClass`] index.
    pub cost_units_by_class: [u64; 4],
    /// Divergence-triggered mid-flight strategy switches.
    pub replans: u64,
    /// Retry attempts.
    pub retries: u64,
    /// Backoff sleeps taken.
    pub backoff_sleeps: u64,
    /// Total milliseconds slept in backoff (injectable-clock time).
    pub backoff_slept_ms: u64,
    /// Circuit-breaker trips.
    pub circuit_trips: u64,
    /// Half-open circuit probes admitted.
    pub circuit_probes: u64,
    /// Knowledge-plane hits (request-level and full-replay credits).
    pub knowledge_hits: u64,
    /// Knowledge-gated steps that had to pay the server.
    pub knowledge_misses: u64,
    /// Result streams sealed for whole-stream replay.
    pub knowledge_seals: u64,
    /// Queries answered from the knowledge plane instead of the server.
    pub queries_saved: u64,
    /// Cost units those hits would have been billed.
    pub cost_units_saved: u64,
    /// `MaintainedSession::refresh` repairs observed.
    pub mutation_repairs: u64,
    /// Replacement tuples pulled live during repairs.
    pub replacement_pulls: u64,
    /// Repairs that fell back to a full strategy re-drive.
    pub redrives: u64,
    /// Budget refusals (session, service, or retry scope).
    pub budget_trips: u64,
    /// Batches dispatched through `serve_batch`.
    pub batches: u64,
    /// Wire batches admitted past the HTTP edge's admission control.
    pub edge_admitted: u64,
    /// Wire batches refused at the edge gate, uncharged.
    pub edge_rejected: u64,
    /// Per-pull latency distribution (ms, log2 buckets).
    pub pull_latency_ms: HistogramSnapshot,
    /// Backoff sleep distribution (ms, log2 buckets).
    pub backoff_ms: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Raw queries charged, summed over all classes.
    pub fn queries_total(&self) -> u64 {
        self.queries_by_class.iter().sum()
    }

    /// Weighted cost units charged, summed over all classes.
    pub fn cost_units_total(&self) -> u64 {
        self.cost_units_by_class.iter().sum()
    }
}

impl MetricsRegistry {
    /// Fold one event into the counters. Lock-free; called on the emitting
    /// thread before subscriber fan-out.
    pub fn fold(&self, event: &Event) {
        self.events.incr();
        match &event.kind {
            EventKind::SessionOpen { .. } => self.sessions_opened.incr(),
            EventKind::PlanChosen { .. } => {}
            EventKind::Replanned { .. } => self.replans.incr(),
            EventKind::RequestIssued { .. } => {}
            EventKind::RequestCharged {
                class,
                queries,
                cost_units,
            } => {
                self.queries_by_class[class.index()].add(*queries);
                self.cost_units_by_class[class.index()].add(*cost_units);
            }
            EventKind::RetryAttempt { .. } => self.retries.incr(),
            EventKind::BackoffSleep { ms, .. } => {
                self.backoff_sleeps.incr();
                self.backoff_slept_ms.add(*ms);
                self.backoff_ms.record(*ms);
            }
            EventKind::CircuitTrip { .. } => self.circuit_trips.incr(),
            EventKind::CircuitProbe { .. } => self.circuit_probes.incr(),
            EventKind::KnowledgeHit {
                queries,
                cost_units,
            } => {
                self.knowledge_hits.incr();
                self.queries_saved.add(*queries);
                self.cost_units_saved.add(*cost_units);
            }
            EventKind::KnowledgeMiss { .. } => self.knowledge_misses.incr(),
            EventKind::KnowledgeSeal { .. } => self.knowledge_seals.incr(),
            EventKind::MutationRepair {
                replacement_pulls,
                redrove,
                ..
            } => {
                self.mutation_repairs.incr();
                self.replacement_pulls.add(*replacement_pulls);
                if *redrove {
                    self.redrives.incr();
                }
            }
            EventKind::BudgetTrip { .. } => self.budget_trips.incr(),
            EventKind::SessionClose { .. } => self.sessions_closed.incr(),
            EventKind::BatchServed { .. } => self.batches.incr(),
            EventKind::EdgeAdmitted { .. } => self.edge_admitted.incr(),
            EventKind::EdgeRejected { .. } => self.edge_rejected.incr(),
        }
    }

    /// Record one Get-Next pull's wall latency (ms). Separate from the
    /// event fold because latency is measured by the `Session::next`
    /// wrapper around the whole pull, not inside any single event.
    pub fn record_pull(&self, latency_ms: u64) {
        self.pulls.incr();
        self.pull_latency_ms.record(latency_ms);
    }

    /// Exact point-in-time totals (see the module docs for the
    /// racy-but-monotonic caveat on concurrent snapshots).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            events: self.events.sum(),
            sessions_opened: self.sessions_opened.sum(),
            sessions_closed: self.sessions_closed.sum(),
            pulls: self.pulls.sum(),
            queries_by_class: std::array::from_fn(|i| self.queries_by_class[i].sum()),
            cost_units_by_class: std::array::from_fn(|i| self.cost_units_by_class[i].sum()),
            replans: self.replans.sum(),
            retries: self.retries.sum(),
            backoff_sleeps: self.backoff_sleeps.sum(),
            backoff_slept_ms: self.backoff_slept_ms.sum(),
            circuit_trips: self.circuit_trips.sum(),
            circuit_probes: self.circuit_probes.sum(),
            knowledge_hits: self.knowledge_hits.sum(),
            knowledge_misses: self.knowledge_misses.sum(),
            knowledge_seals: self.knowledge_seals.sum(),
            queries_saved: self.queries_saved.sum(),
            cost_units_saved: self.cost_units_saved.sum(),
            mutation_repairs: self.mutation_repairs.sum(),
            replacement_pulls: self.replacement_pulls.sum(),
            redrives: self.redrives.sum(),
            budget_trips: self.budget_trips.sum(),
            batches: self.batches.sum(),
            edge_admitted: self.edge_admitted.sum(),
            edge_rejected: self.edge_rejected.sum(),
            pull_latency_ms: self.pull_latency_ms.snapshot(),
            backoff_ms: self.backoff_ms.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::QueryClass;
    use std::sync::Arc;

    #[test]
    fn log2_buckets_partition_the_u64_range() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(1023), 10);
        assert_eq!(log2_bucket(1024), 11);
        assert_eq!(log2_bucket(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(HistogramSnapshot::bucket_upper_bound(0), 0);
        assert_eq!(HistogramSnapshot::bucket_upper_bound(1), 1);
        assert_eq!(HistogramSnapshot::bucket_upper_bound(10), 1023);
        assert_eq!(
            HistogramSnapshot::bucket_upper_bound(HISTOGRAM_BUCKETS - 1),
            u64::MAX
        );
    }

    #[test]
    fn fold_routes_each_kind_to_its_counter() {
        let m = MetricsRegistry::default();
        let site: Arc<str> = Arc::from("s");
        let ev = |kind| Event {
            at_ms: 0,
            site: Arc::clone(&site),
            session: 1,
            kind,
        };
        m.fold(&ev(EventKind::SessionOpen {
            strategy: "1d-rerank".into(),
        }));
        m.fold(&ev(EventKind::RequestCharged {
            class: QueryClass::TopK,
            queries: 3,
            cost_units: 7,
        }));
        m.fold(&ev(EventKind::RequestCharged {
            class: QueryClass::Ordered,
            queries: 2,
            cost_units: 2,
        }));
        m.fold(&ev(EventKind::Replanned {
            from_strategy: "ta-order-by".into(),
            to_strategy: "md-rerank".into(),
            at_emitted: 2,
            queries_spent: 6,
            cost_units_spent: 18,
        }));
        m.fold(&ev(EventKind::RetryAttempt { retry_index: 1 }));
        m.fold(&ev(EventKind::BackoffSleep {
            ms: 600,
            server_hinted: false,
        }));
        m.fold(&ev(EventKind::KnowledgeHit {
            queries: 5,
            cost_units: 9,
        }));
        m.fold(&ev(EventKind::MutationRepair {
            applied: 4,
            replacement_pulls: 2,
            redrove: true,
            queries_spent: 2,
        }));
        m.fold(&ev(EventKind::BudgetTrip {
            scope: crate::BudgetScope::Session,
            spent: 10,
            limit: 10,
        }));
        m.fold(&ev(EventKind::SessionClose {
            emitted: 5,
            queries_spent: 5,
            cost_units_spent: 9,
            queries_saved: 5,
            cost_units_saved: 9,
        }));
        m.record_pull(3);
        m.record_pull(900);

        let s = m.snapshot();
        assert_eq!(s.events, 10);
        assert_eq!(s.replans, 1);
        assert_eq!(s.sessions_opened, 1);
        assert_eq!(s.sessions_closed, 1);
        assert_eq!(s.queries_by_class[QueryClass::TopK.index()], 3);
        assert_eq!(s.cost_units_by_class[QueryClass::TopK.index()], 7);
        assert_eq!(s.queries_by_class[QueryClass::Ordered.index()], 2);
        assert_eq!(s.queries_total(), 5);
        assert_eq!(s.cost_units_total(), 9);
        assert_eq!(s.retries, 1);
        assert_eq!(s.backoff_sleeps, 1);
        assert_eq!(s.backoff_slept_ms, 600);
        assert_eq!(s.backoff_ms.count(), 1);
        assert_eq!(s.knowledge_hits, 1);
        assert_eq!(s.queries_saved, 5);
        assert_eq!(s.cost_units_saved, 9);
        assert_eq!(s.mutation_repairs, 1);
        assert_eq!(s.replacement_pulls, 2);
        assert_eq!(s.redrives, 1);
        assert_eq!(s.budget_trips, 1);
        assert_eq!(s.pulls, 2);
        assert_eq!(s.pull_latency_ms.count(), 2);
        assert_eq!(s.pull_latency_ms.buckets[log2_bucket(3)], 1);
        assert_eq!(s.pull_latency_ms.buckets[log2_bucket(900)], 1);
    }

    #[test]
    fn striped_totals_are_exact_across_threads() {
        let m = Arc::new(MetricsRegistry::default());
        let site: Arc<str> = Arc::from("s");
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let m = Arc::clone(&m);
                let site = Arc::clone(&site);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        m.fold(&Event {
                            at_ms: i,
                            site: Arc::clone(&site),
                            session: 1,
                            kind: EventKind::RequestCharged {
                                class: QueryClass::TopK,
                                queries: 1,
                                cost_units: 2,
                            },
                        });
                        m.record_pull(i % 512);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.events, 16_000);
        assert_eq!(s.queries_total(), 16_000);
        assert_eq!(s.cost_units_total(), 32_000);
        assert_eq!(s.pulls, 16_000);
        assert_eq!(s.pull_latency_ms.count(), 16_000);
    }
}
