//! Service-level counters.
//!
//! The hot counters are **striped**: each logical counter is a small array
//! of cache-line-padded atomic cells, and every thread picks one cell
//! (round-robin at first touch) for all its increments. `serve_batch`
//! workers on different cores therefore stop bouncing one cache line per
//! bookkeeping call — the classic false-sharing fix — while reads simply
//! sum the cells. Totals are exact (every increment lands in exactly one
//! cell); only the read is a racy-but-monotonic snapshot, which it already
//! was with a single atomic.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of cells per striped counter. A small power of two is enough:
/// the executor defaults to one worker per core and threads spread
/// round-robin, so contention drops ~linearly with cells.
const STRIPES: usize = 8;

/// One cache line worth of counter: the alignment keeps two cells from
/// ever sharing a line, which is the whole point of striping.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// Round-robin assignment of threads to stripe slots, fixed at a thread's
/// first increment.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// A monotonic counter sharded across padded cells. Lock-free, exact under
/// concurrency, contention-free across threads in different slots.
#[derive(Debug, Default)]
struct StripedU64 {
    cells: [PaddedCell; STRIPES],
}

impl StripedU64 {
    #[inline]
    fn add(&self, v: u64) {
        STRIPE.with(|s| self.cells[*s].0.fetch_add(v, Ordering::Relaxed));
    }

    #[inline]
    fn incr(&self) {
        self.add(1);
    }

    fn sum(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// Monotonic counters describing service activity. All methods are lock-free
/// and safe to call from concurrent sessions; the hot ones are striped (see
/// the module docs).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Plain atomic on purpose: `SessionBuilder::open` reads it as a
    /// retry-jitter nonce, and opens are rare enough that striping would
    /// only complicate that use.
    sessions_started: AtomicU64,
    tuples_emitted: StripedU64,
    queries_spent: StripedU64,
    cost_units_spent: StripedU64,
    queries_saved: StripedU64,
    cost_units_saved: StripedU64,
    retries_spent: StripedU64,
    strategy_switches: StripedU64,
    batches_served: StripedU64,
    requests_served: StripedU64,
    requests_cancelled: StripedU64,
}

/// Point-in-time snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Sessions opened through `SessionBuilder::open` (refused opens are
    /// not counted).
    pub sessions_started: u64,
    /// Tuples emitted across all sessions.
    pub tuples_emitted: u64,
    /// Queries charged through this service's sessions (failed attempts'
    /// spend included — counted in-lock per cursor step, like the
    /// per-session `SessionStats`).
    pub queries_spent: u64,
    /// Weighted cost units charged through this service's sessions, under
    /// the server's advertised cost model. Equals `queries_spent` on flat
    /// sites; the number that matters on metered ones.
    pub cost_units_spent: u64,
    /// Queries answered from the knowledge plane instead of the server —
    /// zero unless the service was built
    /// `with_knowledge`. Same in-lock attribution as `queries_spent`.
    pub queries_saved: u64,
    /// Cost units those knowledge hits would have been billed.
    pub cost_units_saved: u64,
    /// Retries spent across all sessions (the recovery effort the service
    /// has burned on transient server failures).
    pub retries_spent: u64,
    /// Divergence-triggered mid-flight strategy switches across all
    /// sessions — zero unless the service was opted into the adaptive
    /// planner via `with_adaptive`.
    pub strategy_switches: u64,
    /// Concurrent batches accepted by `serve_batch`.
    pub batches_served: u64,
    /// Individual batch requests taken off the pool (cancelled included).
    pub requests_served: u64,
    /// Batch requests that observed a cancellation token mid-flight.
    pub requests_cancelled: u64,
}

impl ServiceStats {
    pub(crate) fn on_session(&self) {
        self.sessions_started.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_emit(&self) {
        self.tuples_emitted.incr();
    }

    pub(crate) fn on_spend(&self, queries: u64, cost_units: u64) {
        self.queries_spent.add(queries);
        self.cost_units_spent.add(cost_units);
    }

    pub(crate) fn on_saved(&self, queries: u64, cost_units: u64) {
        self.queries_saved.add(queries);
        self.cost_units_saved.add(cost_units);
    }

    pub(crate) fn on_retry(&self) {
        self.retries_spent.incr();
    }

    pub(crate) fn on_switch(&self) {
        self.strategy_switches.incr();
    }

    pub(crate) fn on_batch(&self) {
        self.batches_served.incr();
    }

    pub(crate) fn on_request(&self) {
        self.requests_served.incr();
    }

    pub(crate) fn on_cancel(&self) {
        self.requests_cancelled.incr();
    }

    /// Exact point-in-time totals (sum over the stripes; the read itself
    /// is a racy-but-monotonic snapshot, as with any concurrent counter).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions_started: self.sessions_started.load(Ordering::Relaxed),
            tuples_emitted: self.tuples_emitted.sum(),
            queries_spent: self.queries_spent.sum(),
            cost_units_spent: self.cost_units_spent.sum(),
            queries_saved: self.queries_saved.sum(),
            cost_units_saved: self.cost_units_saved.sum(),
            retries_spent: self.retries_spent.sum(),
            strategy_switches: self.strategy_switches.sum(),
            batches_served: self.batches_served.sum(),
            requests_served: self.requests_served.sum(),
            requests_cancelled: self.requests_cancelled.sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let s = ServiceStats::default();
        s.on_session();
        s.on_emit();
        s.on_emit();
        s.on_spend(4, 9);
        s.on_spend(1, 1);
        s.on_saved(2, 6);
        s.on_retry();
        s.on_retry();
        s.on_retry();
        s.on_switch();
        s.on_batch();
        s.on_request();
        s.on_request();
        s.on_cancel();
        let snap = s.snapshot();
        assert_eq!(snap.sessions_started, 1);
        assert_eq!(snap.tuples_emitted, 2);
        assert_eq!(snap.queries_spent, 5);
        assert_eq!(snap.cost_units_spent, 10);
        assert_eq!(snap.queries_saved, 2);
        assert_eq!(snap.cost_units_saved, 6);
        assert_eq!(snap.retries_spent, 3);
        assert_eq!(snap.strategy_switches, 1);
        assert_eq!(snap.batches_served, 1);
        assert_eq!(snap.requests_served, 2);
        assert_eq!(snap.requests_cancelled, 1);
    }

    #[test]
    fn striped_totals_are_exact_across_threads() {
        let s = Arc::new(ServiceStats::default());
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.on_spend(1, 2);
                        s.on_emit();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.queries_spent, 16_000);
        assert_eq!(snap.cost_units_spent, 32_000);
        assert_eq!(snap.tuples_emitted, 16_000);
    }

    #[test]
    fn padded_cells_do_not_share_cache_lines() {
        // The de-contention argument rests on cell alignment; pin it.
        assert_eq!(std::mem::align_of::<PaddedCell>(), 64);
        assert!(std::mem::size_of::<StripedU64>() >= STRIPES * 64);
    }
}
