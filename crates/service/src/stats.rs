//! Service-level counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing service activity. All methods are lock-free
/// and safe to call from concurrent sessions.
#[derive(Debug, Default)]
pub struct ServiceStats {
    sessions_started: AtomicU64,
    tuples_emitted: AtomicU64,
    retries_spent: AtomicU64,
}

/// Point-in-time snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub sessions_started: u64,
    pub tuples_emitted: u64,
    /// Retries spent across all sessions (the recovery effort the service
    /// has burned on transient server failures).
    pub retries_spent: u64,
}

impl ServiceStats {
    pub(crate) fn on_session(&self) {
        self.sessions_started.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_emit(&self) {
        self.tuples_emitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_retry(&self) {
        self.retries_spent.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions_started: self.sessions_started.load(Ordering::Relaxed),
            tuples_emitted: self.tuples_emitted.load(Ordering::Relaxed),
            retries_spent: self.retries_spent.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ServiceStats::default();
        s.on_session();
        s.on_emit();
        s.on_emit();
        s.on_retry();
        s.on_retry();
        s.on_retry();
        let snap = s.snapshot();
        assert_eq!(snap.sessions_started, 1);
        assert_eq!(snap.tuples_emitted, 2);
        assert_eq!(snap.retries_spent, 3);
    }
}
