//! Service-level counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing service activity. All methods are lock-free
/// and safe to call from concurrent sessions.
#[derive(Debug, Default)]
pub struct ServiceStats {
    sessions_started: AtomicU64,
    tuples_emitted: AtomicU64,
    queries_spent: AtomicU64,
    cost_units_spent: AtomicU64,
    retries_spent: AtomicU64,
    batches_served: AtomicU64,
    requests_served: AtomicU64,
    requests_cancelled: AtomicU64,
}

/// Point-in-time snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub sessions_started: u64,
    pub tuples_emitted: u64,
    /// Queries charged through this service's sessions (failed attempts'
    /// spend included — counted in-lock per cursor step, like the
    /// per-session `SessionStats`).
    pub queries_spent: u64,
    /// Weighted cost units charged through this service's sessions, under
    /// the server's advertised cost model. Equals `queries_spent` on flat
    /// sites; the number that matters on metered ones.
    pub cost_units_spent: u64,
    /// Retries spent across all sessions (the recovery effort the service
    /// has burned on transient server failures).
    pub retries_spent: u64,
    /// Concurrent batches accepted by `serve_batch`.
    pub batches_served: u64,
    /// Individual batch requests taken off the pool (cancelled included).
    pub requests_served: u64,
    /// Batch requests that observed a cancellation token mid-flight.
    pub requests_cancelled: u64,
}

impl ServiceStats {
    pub(crate) fn on_session(&self) {
        self.sessions_started.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_emit(&self) {
        self.tuples_emitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_spend(&self, queries: u64, cost_units: u64) {
        self.queries_spent.fetch_add(queries, Ordering::Relaxed);
        self.cost_units_spent
            .fetch_add(cost_units, Ordering::Relaxed);
    }

    pub(crate) fn on_retry(&self) {
        self.retries_spent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_batch(&self) {
        self.batches_served.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_request(&self) {
        self.requests_served.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_cancel(&self) {
        self.requests_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions_started: self.sessions_started.load(Ordering::Relaxed),
            tuples_emitted: self.tuples_emitted.load(Ordering::Relaxed),
            queries_spent: self.queries_spent.load(Ordering::Relaxed),
            cost_units_spent: self.cost_units_spent.load(Ordering::Relaxed),
            retries_spent: self.retries_spent.load(Ordering::Relaxed),
            batches_served: self.batches_served.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            requests_cancelled: self.requests_cancelled.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ServiceStats::default();
        s.on_session();
        s.on_emit();
        s.on_emit();
        s.on_spend(4, 9);
        s.on_spend(1, 1);
        s.on_retry();
        s.on_retry();
        s.on_retry();
        s.on_batch();
        s.on_request();
        s.on_request();
        s.on_cancel();
        let snap = s.snapshot();
        assert_eq!(snap.sessions_started, 1);
        assert_eq!(snap.tuples_emitted, 2);
        assert_eq!(snap.queries_spent, 5);
        assert_eq!(snap.cost_units_spent, 10);
        assert_eq!(snap.retries_spent, 3);
        assert_eq!(snap.batches_served, 1);
        assert_eq!(snap.requests_served, 2);
        assert_eq!(snap.requests_cancelled, 1);
    }
}
