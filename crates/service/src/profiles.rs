//! Named ranking profiles.
//!
//! §1's motivating application: "a personalized ranking application …
//! offering users the ability to remember their preferences across multiple
//! web databases and apply the same personalized ranking over all of them".
//! A [`ProfileStore`] keeps named [`RankFn`]s; the same profile can open
//! sessions against any number of [`crate::RerankService`]s whose schemas
//! carry the profile's attributes.

use parking_lot::RwLock;
use qrs_ranking::RankFn;
use std::collections::HashMap;
use std::sync::Arc;

/// Thread-safe registry of named ranking preferences.
#[derive(Default)]
pub struct ProfileStore {
    profiles: RwLock<HashMap<String, Arc<dyn RankFn>>>,
}

impl ProfileStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a profile.
    pub fn register(&self, name: impl Into<String>, rank: Arc<dyn RankFn>) {
        self.profiles.write().insert(name.into(), rank);
    }

    /// Fetch a profile by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn RankFn>> {
        self.profiles.read().get(name).cloned()
    }

    /// Remove a profile; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.profiles.write().remove(name).is_some()
    }

    /// Sorted profile names.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.profiles.read().keys().cloned().collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for ProfileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileStore")
            .field("profiles", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_ranking::LinearRank;
    use qrs_types::AttrId;

    #[test]
    fn register_get_remove() {
        let store = ProfileStore::new();
        store.register(
            "cheap-first",
            Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0)])),
        );
        assert!(store.get("cheap-first").is_some());
        assert_eq!(store.names(), vec!["cheap-first".to_string()]);
        assert!(store.remove("cheap-first"));
        assert!(!store.remove("cheap-first"));
        assert!(store.get("cheap-first").is_none());
    }

    #[test]
    fn replace_overwrites() {
        let store = ProfileStore::new();
        store.register("p", Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0)])));
        store.register("p", Arc::new(LinearRank::asc(vec![(AttrId(1), 1.0)])));
        let got = store.get("p").unwrap();
        assert_eq!(got.attrs(), &[AttrId(1)]);
        assert_eq!(store.names().len(), 1);
    }
}
