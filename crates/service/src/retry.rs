//! The retry/backoff engine behind `Session::next`.
//!
//! [`qrs_types::RetryPolicy`] is the declarative config; this module is the
//! machinery: the crate-private `RetryRunner` owns the deterministic jitter
//! RNG and the per-session retry cap, [`RetryBudget`] meters retries
//! *service-wide* so
//! a storm of failing sessions cannot burn unbounded backoff time.
//!
//! Delay selection, in priority order:
//!
//! 1. **The server's hint dominates.** A [`ServerError::RateLimited`] with
//!    `retry_after_ms` set is slept *exactly*: the backend said precisely
//!    when capacity returns, so neither the exponential schedule nor jitter
//!    applies.
//! 2. Otherwise the policy's [`BackoffKind`] decides:
//!    [`BackoffKind::Exponential`] computes `base * 2^(i-1)` (capped) plus
//!    a uniform jitter draw from `[0, jitter_ms]`;
//!    [`BackoffKind::DecorrelatedJitter`] draws each sleep uniformly from
//!    `[base, 3 · previous]` (capped) — the "full jitter" schedule that
//!    never re-synchronizes a fleet of clients that failed together. Both
//!    draw from the seeded `rand` shim — deterministic, so tests assert
//!    exact sleep sequences on a [`qrs_server::MockClock`].
//!
//! [`ServerError::RateLimited`]: qrs_types::ServerError::RateLimited

use qrs_types::retry::BackoffKind;
use qrs_types::{RerankError, RetryPolicy};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-session retry state: the policy, the deterministic jitter RNG, and
/// an optional cap on the retries this one session may spend.
#[derive(Debug)]
pub(crate) struct RetryRunner {
    policy: RetryPolicy,
    session_limit: Option<u64>,
    rng: StdRng,
    /// The previous decorrelated-jitter sleep (the distribution's upper
    /// bound is `3 ·` this). `None` until the first computed sleep.
    prev_ms: Option<u64>,
}

impl RetryRunner {
    pub(crate) fn new(policy: RetryPolicy, session_limit: Option<u64>) -> Self {
        let rng = StdRng::seed_from_u64(policy.seed);
        RetryRunner {
            policy,
            session_limit,
            rng,
            prev_ms: None,
        }
    }

    pub(crate) fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Re-anchor the decorrelated-jitter chain after a successful step:
    /// escalation from one step's storm must not inflate the sleeps of a
    /// later, unrelated failure (the exponential schedule gets the same
    /// reset for free from the per-step retry index).
    pub(crate) fn reset_backoff(&mut self) {
        self.prev_ms = None;
    }

    pub(crate) fn session_limit(&self) -> Option<u64> {
        self.session_limit
    }

    /// The sleep before retry `retry_index` (1-based) of a step that just
    /// failed with `err`. The server's `retry_after_ms` hint dominates the
    /// computed backoff (and leaves the decorrelated state untouched — the
    /// server's window says nothing about our own schedule); jitter only
    /// applies to the computed path.
    pub(crate) fn delay_ms(&mut self, retry_index: u32, err: &RerankError) -> u64 {
        if let Some(hint) = err.retry_after_hint() {
            return hint;
        }
        match self.policy.kind {
            BackoffKind::Exponential => {
                let base = self.policy.base_delay_ms(retry_index);
                let jitter = if self.policy.jitter_ms == 0 {
                    0
                } else {
                    self.rng.random_range(0..=self.policy.jitter_ms)
                };
                base.saturating_add(jitter)
            }
            BackoffKind::DecorrelatedJitter => {
                // sleep_i ~ U[base, 3 · sleep_{i-1}], capped — always at
                // least `base` and never above `max_backoff_ms`, so the
                // sequence is bounded no matter how the draws fall.
                let base = self.policy.base_backoff_ms;
                let hi = self
                    .prev_ms
                    .unwrap_or(base)
                    .saturating_mul(3)
                    .clamp(base, self.policy.max_backoff_ms.max(base));
                let sleep = if hi <= base {
                    base
                } else {
                    self.rng.random_range(base..=hi)
                };
                self.prev_ms = Some(sleep);
                sleep
            }
        }
    }
}

/// A service-wide cap on retries, shared by every session of a
/// [`crate::RerankService`]. Unlike [`crate::QueryBudget`] (which meters
/// *queries*, a spend the backend sees), this meters the middleware's own
/// recovery effort.
#[derive(Debug)]
pub struct RetryBudget {
    limit: Option<u64>,
    spent: AtomicU64,
}

impl RetryBudget {
    /// No cap (the default).
    pub fn unlimited() -> Self {
        RetryBudget {
            limit: None,
            spent: AtomicU64::new(0),
        }
    }

    /// At most `limit` retries across all sessions.
    pub fn limited(limit: u64) -> Self {
        RetryBudget {
            limit: Some(limit),
            spent: AtomicU64::new(0),
        }
    }

    /// Retries spent so far.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// The cap, or `None` for an unlimited budget.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Atomically claim one retry, or report `(spent, limit)` when the
    /// budget is gone — concurrent sessions can never overspend.
    pub fn try_spend(&self) -> Result<(), (u64, u64)> {
        match self.limit {
            None => {
                self.spent.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Some(limit) => self
                .spent
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                    (s < limit).then_some(s + 1)
                })
                .map(|_| ())
                .map_err(|s| (s, limit)),
        }
    }

    /// Open a fresh window (e.g. a new accounting day).
    pub fn reset(&self) {
        self.spent.store(0, Ordering::Relaxed);
    }
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::ServerError;

    fn rate_limited(hint: Option<u64>) -> RerankError {
        RerankError::Server(ServerError::RateLimited {
            retry_after_ms: hint,
        })
    }

    fn outage() -> RerankError {
        RerankError::Server(ServerError::unavailable("503"))
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let policy = RetryPolicy::none()
            .attempts(8)
            .backoff(100, 10_000)
            .jitter(50)
            .seed(7);
        let delays: Vec<u64> = {
            let mut r = RetryRunner::new(policy.clone(), None);
            (1..=6).map(|i| r.delay_ms(i, &outage())).collect()
        };
        for (i, &d) in delays.iter().enumerate() {
            let base = 100u64 << i;
            assert!(
                (base..=base + 50).contains(&d),
                "retry {}: delay {d} outside [{base}, {}]",
                i + 1,
                base + 50
            );
        }
        // Same policy seed ⇒ same jitter sequence.
        let mut r2 = RetryRunner::new(policy, None);
        let replay: Vec<u64> = (1..=6).map(|i| r2.delay_ms(i, &outage())).collect();
        assert_eq!(delays, replay);
    }

    #[test]
    fn zero_jitter_is_pure_exponential() {
        let mut r = RetryRunner::new(RetryPolicy::none().attempts(8).backoff(10, 40), None);
        assert_eq!(r.delay_ms(1, &outage()), 10);
        assert_eq!(r.delay_ms(2, &outage()), 20);
        assert_eq!(r.delay_ms(3, &outage()), 40);
        assert_eq!(r.delay_ms(4, &outage()), 40);
    }

    #[test]
    fn retry_after_hint_dominates_computed_backoff() {
        let mut r = RetryRunner::new(
            RetryPolicy::none()
                .attempts(10)
                .backoff(1_000, 60_000)
                .jitter(500),
            None,
        );
        // Early retry, hint far above the computed 1s backoff: exactly the hint.
        assert_eq!(r.delay_ms(1, &rate_limited(Some(30_000))), 30_000);
        // Late retry, hint far below the computed backoff: still exactly the
        // hint — the server knows when capacity returns, no jitter added.
        assert_eq!(r.delay_ms(8, &rate_limited(Some(5))), 5);
        // No hint: back to the computed schedule.
        let d = r.delay_ms(1, &rate_limited(None));
        assert!((1_000..=1_500).contains(&d));
    }

    #[test]
    fn decorrelated_jitter_is_bounded_and_seeded() {
        let policy = RetryPolicy::decorrelated_jitter(17)
            .attempts(16)
            .backoff(100, 2_000);
        let delays: Vec<u64> = {
            let mut r = RetryRunner::new(policy.clone(), None);
            (1..=12).map(|i| r.delay_ms(i, &outage())).collect()
        };
        // Bounded: every sleep in [base, cap]; chained: each at most 3× the
        // previous draw (the distribution's upper bound).
        let mut prev = 100u64;
        for &d in &delays {
            assert!((100..=2_000).contains(&d), "sleep {d} out of [100, 2000]");
            assert!(
                d <= prev.saturating_mul(3).min(2_000),
                "sleep {d} exceeds 3·{prev}"
            );
            prev = d;
        }
        // Seeded: same seed replays the exact sequence…
        let mut r2 = RetryRunner::new(policy, None);
        let replay: Vec<u64> = (1..=12).map(|i| r2.delay_ms(i, &outage())).collect();
        assert_eq!(delays, replay);
        // …and a different seed decorrelates it.
        let mut r3 = RetryRunner::new(
            RetryPolicy::decorrelated_jitter(18)
                .attempts(16)
                .backoff(100, 2_000),
            None,
        );
        let other: Vec<u64> = (1..=12).map(|i| r3.delay_ms(i, &outage())).collect();
        assert_ne!(delays, other);
    }

    #[test]
    fn reset_backoff_reanchors_the_decorrelated_chain() {
        let mut r = RetryRunner::new(
            RetryPolicy::decorrelated_jitter(5)
                .attempts(32)
                .backoff(100, 100_000),
            None,
        );
        // Escalate through a storm toward large sleeps…
        let mut last = 0;
        for i in 1..=12 {
            last = r.delay_ms(i, &outage());
        }
        assert!(last > 300, "chain should have escalated, got {last}");
        // …then a successful step resets the anchor: the next failure's
        // sleep is drawn from [base, 3·base] again, not [base, 3·last].
        r.reset_backoff();
        let after = r.delay_ms(1, &outage());
        assert!(
            (100..=300).contains(&after),
            "post-reset sleep {after} not re-anchored to [100, 300]"
        );
    }

    #[test]
    fn decorrelated_jitter_honors_the_server_hint_without_corrupting_state() {
        let mut r = RetryRunner::new(
            RetryPolicy::decorrelated_jitter(7)
                .attempts(10)
                .backoff(50, 10_000),
            None,
        );
        let first = r.delay_ms(1, &outage());
        assert!((50..=150).contains(&first));
        // A hint dominates exactly and does not feed the chain: the next
        // computed sleep is still bounded by 3× the last *computed* one.
        assert_eq!(r.delay_ms(2, &rate_limited(Some(99_999))), 99_999);
        let next = r.delay_ms(3, &outage());
        assert!(next <= first.saturating_mul(3), "{next} > 3·{first}");
    }

    #[test]
    fn degenerate_decorrelated_bounds_never_panic() {
        // base == cap: every sleep is exactly the base.
        let mut r = RetryRunner::new(
            RetryPolicy::decorrelated_jitter(1)
                .attempts(10)
                .backoff(500, 500),
            None,
        );
        assert_eq!(r.delay_ms(1, &outage()), 500);
        assert_eq!(r.delay_ms(2, &outage()), 500);
        // Zero base: sleeps collapse to zero rather than panicking on an
        // empty range.
        let mut r = RetryRunner::new(
            RetryPolicy::decorrelated_jitter(1)
                .attempts(10)
                .backoff(0, 100),
            None,
        );
        let d = r.delay_ms(1, &outage());
        assert!(d <= 100);
    }

    #[test]
    fn retry_budget_claims_atomically() {
        let b = RetryBudget::limited(2);
        assert!(b.try_spend().is_ok());
        assert!(b.try_spend().is_ok());
        assert_eq!(b.try_spend(), Err((2, 2)));
        assert_eq!(b.spent(), 2);
        b.reset();
        assert!(b.try_spend().is_ok());
        let unlimited = RetryBudget::unlimited();
        for _ in 0..100 {
            assert!(unlimited.try_spend().is_ok());
        }
        assert_eq!(unlimited.spent(), 100);
        assert_eq!(unlimited.limit(), None);
    }
}
