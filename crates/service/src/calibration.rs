//! The ledger-calibrated cost store behind the adaptive planner.
//!
//! Static plan-time estimates are priced under the site's *advertised*
//! [`qrs_types::CostModel`]. Real sites drift: the public price list goes
//! stale, or a strategy family's estimator is systematically off for a
//! particular data distribution. [`Calibration`] closes that loop with
//! observed-cost statistics per (strategy family):
//!
//! * **per-request** — [`Calibration::on_charge`] folds the same in-lock
//!   `(queries, cost_units)` deltas the session and service ledgers
//!   accumulate into a cost-units-per-query [`Ewma`] keyed by
//!   [`QueryClass`],
//! * **per-session** — [`Calibration::observe_session`] folds each
//!   finished session's *actual / predicted* spend ratios (and actual
//!   cost-per-emitted-row) into per-strategy [`Ewma`]s.
//!
//! `Planner::plan` consults [`Calibration::scale`] to multiply each
//! candidate's static [`CostEstimate`] by the learned ratio before
//! ranking, so a strategy the site quietly over-charges loses the cost
//! race even while the advertised model still flatters it. The store is
//! deliberately service-shaped, not session-shaped: share one across
//! services (via `RerankService::with_calibration`) and every tenant's
//! charged deltas train the same model, the same amortization argument as
//! the knowledge plane.
//!
//! Determinism: everything is [`Ewma`]s fed in ledger order under one
//! mutex — identical charge sequences produce bit-identical scales.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use qrs_core::strategy::CostEstimate;
use qrs_obs::QueryClass;
use qrs_types::Ewma;

/// Default EWMA smoothing factor: heavy enough that a handful of drifted
/// sessions visibly moves the scale, light enough that one outlier
/// session does not dominate it.
pub const DEFAULT_ALPHA: f64 = 0.3;

/// Observed-cost statistics for one strategy family.
#[derive(Debug, Clone)]
struct CalCell {
    /// Session-level `actual_queries / predicted_queries`.
    query_ratio: Ewma,
    /// Session-level `actual_cost_units / predicted_cost_units`.
    cost_ratio: Ewma,
    /// Session-level `actual_cost_units / rows emitted`.
    cost_per_row: Ewma,
    /// Request-level `cost_units / queries`, per [`QueryClass`].
    per_class: [Ewma; 4],
}

impl CalCell {
    fn new(alpha: f64) -> Self {
        CalCell {
            query_ratio: Ewma::new(alpha),
            cost_ratio: Ewma::new(alpha),
            cost_per_row: Ewma::new(alpha),
            per_class: [Ewma::new(alpha); 4],
        }
    }
}

/// Per-(strategy family) observed-cost statistics, fed from charged
/// ledger deltas and finished sessions; consulted by `Planner::plan` to
/// scale static estimates. See the module docs.
pub struct Calibration {
    alpha: f64,
    cells: Mutex<HashMap<String, CalCell>>,
}

impl fmt::Debug for Calibration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cells = self.cells.lock();
        f.debug_struct("Calibration")
            .field("alpha", &self.alpha)
            .field("strategies", &cells.len())
            .finish()
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::new()
    }
}

impl Calibration {
    /// An empty store with the stock smoothing factor
    /// ([`DEFAULT_ALPHA`]).
    pub fn new() -> Self {
        Calibration::with_alpha(DEFAULT_ALPHA)
    }

    /// An empty store with smoothing factor `alpha` (clamped into
    /// `(0, 1]` by [`Ewma::new`]).
    pub fn with_alpha(alpha: f64) -> Self {
        Calibration {
            alpha,
            cells: Mutex::new(HashMap::new()),
        }
    }

    /// An empty store whose decay is expressed as a **half-life in
    /// sessions** ([`Ewma::with_half_life`]): after `half_life` further
    /// observed sessions, an old drift's weight has decayed to one half.
    /// The windowing knob for sites whose prices drift and then drift
    /// *back* — the calibrated estimate re-converges toward the advertised
    /// model at a guaranteed geometric rate instead of lingering on stale
    /// history.
    pub fn with_half_life(half_life: f64) -> Self {
        Calibration::with_alpha(Ewma::with_half_life(half_life).alpha())
    }

    /// An empty store behind an [`Arc`], ready for
    /// `RerankService::with_calibration`.
    pub fn shared() -> Arc<Self> {
        Arc::new(Calibration::new())
    }

    /// Fold one charged request's ledger delta in: `dq` raw queries were
    /// billed `dc` weighted cost units as request class `class` by a
    /// session running `strategy`. Zero-query deltas (knowledge replays,
    /// uncharged refusals) carry no price signal and are ignored.
    pub fn on_charge(&self, strategy: &str, class: QueryClass, dq: u64, dc: u64) {
        if dq == 0 {
            return;
        }
        let mut cells = self.cells.lock();
        let cell = cells
            .entry(strategy.to_string())
            .or_insert_with(|| CalCell::new(self.alpha));
        cell.per_class[class.index()].observe(dc as f64 / dq as f64);
    }

    /// Fold one finished session in: it was planned at `predicted`, spent
    /// `actual_queries` / `actual_cost_units` from its own pocket, and
    /// emitted `emitted` rows. Sessions that emitted nothing (or were
    /// predicted free) carry no ratio signal and are ignored — the
    /// re-planning loop also never feeds a *switched* session here, since
    /// its blended spend describes neither strategy.
    pub fn observe_session(
        &self,
        strategy: &str,
        predicted: CostEstimate,
        actual_queries: u64,
        actual_cost_units: u64,
        emitted: u64,
    ) {
        if emitted == 0 || predicted.queries == 0 || predicted.cost_units == 0 {
            return;
        }
        let mut cells = self.cells.lock();
        let cell = cells
            .entry(strategy.to_string())
            .or_insert_with(|| CalCell::new(self.alpha));
        cell.query_ratio
            .observe(actual_queries as f64 / predicted.queries as f64);
        cell.cost_ratio
            .observe(actual_cost_units as f64 / predicted.cost_units as f64);
        cell.cost_per_row
            .observe(actual_cost_units as f64 / emitted as f64);
    }

    /// The learned `(query_ratio, cost_ratio)` scale for `strategy`, or
    /// `None` before any session trained it. The planner multiplies the
    /// static estimate by this; `(1.0, 1.0)` means the advertised model
    /// still describes the site.
    pub fn scale(&self, strategy: &str) -> Option<(f64, f64)> {
        let cells = self.cells.lock();
        let cell = cells.get(strategy)?;
        Some((cell.query_ratio.value()?, cell.cost_ratio.value()?))
    }

    /// Apply the learned scale to a static estimate: each component is
    /// multiplied by its ratio and rounded up (never below 1 — a planned
    /// strategy always costs *something*). Untrained strategies pass
    /// through unscaled.
    pub fn calibrate(&self, strategy: &str, estimate: CostEstimate) -> CostEstimate {
        match self.scale(strategy) {
            Some((qr, cr)) => CostEstimate {
                queries: scale_units(estimate.queries, qr),
                cost_units: scale_units(estimate.cost_units, cr),
            },
            None => estimate,
        }
    }

    /// Snapshot every trained strategy, sorted by name — the inspection
    /// surface the calibration tests and `macro_bench` report against.
    pub fn snapshot(&self) -> Vec<StrategyCalibration> {
        let cells = self.cells.lock();
        let mut out: Vec<StrategyCalibration> = cells
            .iter()
            .map(|(name, cell)| StrategyCalibration {
                strategy: name.clone(),
                query_ratio: cell.query_ratio.value(),
                cost_ratio: cell.cost_ratio.value(),
                cost_per_row: cell.cost_per_row.value(),
                sessions: cell.cost_ratio.samples(),
                class_cost_per_query: QueryClass::ALL.map(|c| cell.per_class[c.index()].value()),
            })
            .collect();
        out.sort_by(|a, b| a.strategy.cmp(&b.strategy));
        out
    }
}

/// `units × ratio`, rounded up, floored at 1. Non-finite or non-positive
/// products (a poisoned ratio) fall back to the unscaled units.
fn scale_units(units: u64, ratio: f64) -> u64 {
    let scaled = (units as f64 * ratio).ceil();
    if scaled.is_finite() && scaled >= 1.0 && scaled < u64::MAX as f64 {
        scaled as u64
    } else if (0.0..1.0).contains(&scaled) {
        1
    } else {
        units
    }
}

/// One strategy family's learned statistics, from
/// [`Calibration::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyCalibration {
    /// Strategy name in the `qrs_core::strategy::names` vocabulary.
    pub strategy: String,
    /// EWMA of session-level `actual_queries / predicted_queries`.
    pub query_ratio: Option<f64>,
    /// EWMA of session-level `actual_cost_units / predicted_cost_units`.
    pub cost_ratio: Option<f64>,
    /// EWMA of actual weighted cost per emitted row.
    pub cost_per_row: Option<f64>,
    /// Finished sessions folded into the ratios.
    pub sessions: u64,
    /// EWMA of per-request `cost_units / queries`, indexed by
    /// [`QueryClass::ALL`] order.
    pub class_cost_per_query: [Option<f64>; 4],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_store_passes_estimates_through() {
        let c = Calibration::new();
        assert_eq!(c.scale("1d-rerank"), None);
        let e = CostEstimate {
            queries: 10,
            cost_units: 25,
        };
        assert_eq!(c.calibrate("1d-rerank", e), e);
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn session_ratios_scale_future_estimates_deterministically() {
        let c = Calibration::new();
        let predicted = CostEstimate {
            queries: 10,
            cost_units: 20,
        };
        // One drifted session: the site charged 3× the advertised cost.
        c.observe_session("ta-order-by", predicted, 10, 60, 5);
        assert_eq!(c.scale("ta-order-by"), Some((1.0, 3.0)));
        let cal = c.calibrate(
            "ta-order-by",
            CostEstimate {
                queries: 8,
                cost_units: 16,
            },
        );
        assert_eq!((cal.queries, cal.cost_units), (8, 48));
        // The other family's estimate is untouched.
        assert_eq!(c.scale("1d-rerank"), None);
        // Replaying the same feed yields bit-identical scales.
        let d = Calibration::new();
        d.observe_session("ta-order-by", predicted, 10, 60, 5);
        assert_eq!(c.scale("ta-order-by"), d.scale("ta-order-by"));
    }

    #[test]
    fn zero_signal_sessions_and_charges_are_ignored() {
        let c = Calibration::new();
        let p = CostEstimate {
            queries: 10,
            cost_units: 10,
        };
        c.observe_session("1d-rerank", p, 5, 5, 0); // emitted nothing
        c.observe_session(
            "1d-rerank",
            CostEstimate {
                queries: 0,
                cost_units: 0,
            },
            5,
            5,
            5,
        ); // predicted free
        c.on_charge("1d-rerank", QueryClass::TopK, 0, 0); // zero-query delta
        assert_eq!(c.scale("1d-rerank"), None);
    }

    #[test]
    fn per_class_cost_per_query_tracks_charged_deltas() {
        let c = Calibration::new();
        c.on_charge("page-down", QueryClass::Page, 2, 4);
        c.on_charge("page-down", QueryClass::Page, 1, 2);
        let snap = c.snapshot();
        assert_eq!(snap.len(), 1);
        let s = &snap[0];
        assert_eq!(s.strategy, "page-down");
        assert_eq!(s.class_cost_per_query[QueryClass::Page.index()], Some(2.0));
        assert_eq!(s.class_cost_per_query[QueryClass::TopK.index()], None);
        assert_eq!(s.sessions, 0);
    }

    #[test]
    fn reverted_drift_reconverges_within_the_half_life_window() {
        // A site drifts to 3× the advertised cost, trains the store, then
        // reverts to honest billing. With a half-life of 4 sessions the
        // residual bias must halve every 4 honest sessions — so two windows
        // shrink the drift bias to a quarter of its peak.
        let half_life = 4.0;
        let c = Calibration::with_half_life(half_life);
        let predicted = CostEstimate {
            queries: 10,
            cost_units: 20,
        };
        // Long drifted phase: the scale converges to (1.0, 3.0).
        for _ in 0..64 {
            c.observe_session("ta-order-by", predicted, 10, 60, 5);
        }
        let (_, drifted) = c.scale("ta-order-by").unwrap();
        assert!((drifted - 3.0).abs() < 1e-6, "drifted scale: {drifted}");
        // The site reverts: honest sessions, one half-life's worth.
        for _ in 0..4 {
            c.observe_session("ta-order-by", predicted, 10, 20, 5);
        }
        let (_, after_one) = c.scale("ta-order-by").unwrap();
        let bias_one = after_one - 1.0;
        assert!(
            (bias_one - (drifted - 1.0) / 2.0).abs() < 1e-9,
            "one window must halve the bias: {after_one}"
        );
        // A second window halves it again — a quarter of the peak bias.
        for _ in 0..4 {
            c.observe_session("ta-order-by", predicted, 10, 20, 5);
        }
        let (_, after_two) = c.scale("ta-order-by").unwrap();
        assert!(
            (after_two - 1.0).abs() <= 0.5 + 1e-9,
            "two windows must shrink the bias to a quarter: {after_two}"
        );
        // And the scaled estimate has actually moved back toward advertised.
        let cal = c.calibrate("ta-order-by", predicted);
        assert!(
            cal.cost_units < 40,
            "a reverted site must shed its stale 3x estimate, got {}",
            cal.cost_units
        );
    }

    #[test]
    fn scale_units_rounds_up_and_floors_at_one() {
        assert_eq!(scale_units(10, 1.01), 11);
        assert_eq!(scale_units(10, 0.001), 1);
        assert_eq!(scale_units(10, f64::NAN), 10);
        assert_eq!(scale_units(10, f64::INFINITY), 10);
    }
}
