//! The concurrent service front-end: many sessions progressing in
//! parallel.
//!
//! The paper pitches reranking *as a service* — a middleware fronting one
//! hidden database for many users at once. [`RerankService::serve_batch`]
//! is that front door: hand it an executor and a batch of
//! [`BatchRequest`]s, and every request runs as its own session on the
//! pool, all against the shared knowledge, the shared query budget, and
//! the shared retry budget. Outcomes come back in request order, each
//! carrying its hits, its typed error (if any), and its exact
//! [`SessionStats`] — per-request attribution stays precise because every
//! counter is updated inside the shared-state lock or via atomics
//! ([`crate::ServiceStats`], [`crate::QueryBudget`],
//! [`crate::RetryBudget`]).
//!
//! Cancellation is cooperative: [`RerankService::serve_batch_cancellable`]
//! checks the token between Get-Next pulls, so a cancelled batch stops at
//! tuple granularity and every request keeps the partial results it
//! already paid for (error [`RerankError::Cancelled`]).
//!
//! [`drive`] is the multi-service generalization — one task per
//! *(service, request)* pair — for multi-tenant drivers like the
//! `qrs-bench` scaling experiment.

use crate::service::{Algorithm, RerankService};
use crate::session::{RankedTuple, SessionStats};
use qrs_core::TiePolicy;
use qrs_exec::{CancelToken, Executor, TaskHandle};
use qrs_ranking::RankFn;
use qrs_types::{Query, RerankError, RetryPolicy};
use std::sync::Arc;

/// One user request inside a batch: a selection, a ranking function, and
/// how many top answers to fetch, plus optional per-request knobs.
pub struct BatchRequest {
    /// The selection query (the `q` of `R(q)`).
    pub sel: Query,
    /// The user's ranking function.
    pub rank: Arc<dyn RankFn>,
    /// Algorithm choice (default [`Algorithm::Auto`]: the planner picks).
    pub algo: Algorithm,
    /// How many top tuples to fetch (the `h` of `Session::top`).
    pub top: usize,
    /// Per-session query cap (the service-wide budget still applies).
    pub budget: Option<u64>,
    /// Per-session retry override (else the service default).
    pub retry: Option<RetryPolicy>,
    /// Tie-handling override for 1-D rank functions (else the session
    /// default, [`qrs_core::TiePolicy::Exact`]).
    pub tie: Option<TiePolicy>,
    /// Plan horizon override: how many answers the planner prices for
    /// (else it prices for `top`).
    pub horizon: Option<usize>,
}

impl BatchRequest {
    /// A request with defaults: [`Algorithm::Auto`], no per-session caps.
    pub fn new(sel: Query, rank: Arc<dyn RankFn>, top: usize) -> Self {
        BatchRequest {
            sel,
            rank,
            algo: Algorithm::Auto,
            top,
            budget: None,
            retry: None,
            tie: None,
            horizon: None,
        }
    }

    /// Builder: pick the algorithm.
    pub fn algorithm(mut self, algo: Algorithm) -> Self {
        self.algo = algo;
        self
    }

    /// Builder: cap this request's query spend.
    pub fn budget(mut self, limit: u64) -> Self {
        self.budget = Some(limit);
        self
    }

    /// Builder: override the retry policy for this request.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Builder: override the tie policy for this request.
    pub fn tie(mut self, policy: TiePolicy) -> Self {
        self.tie = Some(policy);
        self
    }

    /// Builder: override the plan horizon for this request.
    pub fn horizon(mut self, h: usize) -> Self {
        self.horizon = Some(h);
        self
    }
}

/// What one [`BatchRequest`] produced. Mirrors `Session::top`'s contract:
/// partial results survive failure and cancellation alike.
#[derive(Debug)]
pub struct BatchOutcome {
    /// The hits fetched (possibly fewer than requested on error/cancel).
    pub hits: Vec<RankedTuple>,
    /// The typed failure that stopped the request early, if any.
    pub error: Option<RerankError>,
    /// Exact per-session accounting, failed attempts included.
    pub stats: SessionStats,
    /// Wall-clock time this request occupied a worker, in milliseconds —
    /// observational only (latency percentiles in benchmarks), measured on
    /// the service's injectable clock, so batch latency is deterministic
    /// under a `MockClock` and consistent with the observability plane's
    /// latency histograms.
    pub wall_ms: f64,
}

impl BatchOutcome {
    /// The request ran to completion (full batch or stream exhausted).
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Run one request against one service, checking the cancel token between
/// pulls.
fn run_one(svc: &RerankService, req: BatchRequest, cancel: &CancelToken) -> BatchOutcome {
    // The injectable clock, not the OS one: deterministic under MockClock,
    // and the same time base as backoff sleeps and the latency histograms.
    let t0 = svc.clock().now_ms();
    let wall_ms = |t0: u64| svc.clock().now_ms().saturating_sub(t0) as f64;
    svc.stats_ref().on_request();
    let empty = SessionStats {
        emitted: 0,
        queries_spent: 0,
        cost_units_spent: 0,
        queries_saved: 0,
        cost_units_saved: 0,
        attempts_made: 0,
        retries_spent: 0,
        strategy_switches: 0,
        budget_limit: req.budget,
    };
    if cancel.is_cancelled() {
        svc.stats_ref().on_cancel();
        return BatchOutcome {
            hits: Vec::new(),
            error: Some(RerankError::Cancelled),
            stats: empty,
            wall_ms: wall_ms(t0),
        };
    }
    let mut builder = svc.session(req.sel, req.rank).algorithm(req.algo);
    if let Some(limit) = req.budget {
        builder = builder.budget(limit);
    }
    if let Some(policy) = req.retry {
        builder = builder.retry(policy);
    }
    if let Some(policy) = req.tie {
        builder = builder.tie_policy(policy);
    }
    if let Some(h) = req.horizon {
        builder = builder.horizon(h);
    }
    let mut sess = match builder.open() {
        Ok(s) => s,
        Err(e) => {
            return BatchOutcome {
                hits: Vec::new(),
                error: Some(e),
                stats: empty,
                wall_ms: wall_ms(t0),
            }
        }
    };
    let mut hits = Vec::with_capacity(req.top);
    let mut error = None;
    while hits.len() < req.top {
        if cancel.is_cancelled() {
            svc.stats_ref().on_cancel();
            error = Some(RerankError::Cancelled);
            break;
        }
        match sess.next() {
            Ok(Some(r)) => hits.push(r),
            Ok(None) => break,
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }
    BatchOutcome {
        hits,
        error,
        stats: sess.stats(),
        wall_ms: wall_ms(t0),
    }
}

/// The multi-service batch driver: one pooled task per *(service,
/// request)* pair, outcomes in input order. Sessions against the same
/// service share its knowledge, budgets, and stats; sessions against
/// different services progress fully independently (their state locks
/// don't touch).
pub fn drive(
    exec: &Executor,
    jobs: Vec<(&RerankService, BatchRequest)>,
    cancel: &CancelToken,
) -> Vec<BatchOutcome> {
    exec.scope(|s| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(svc, req)| s.spawn(move || run_one(svc, req, cancel)))
            .collect();
        handles.into_iter().map(TaskHandle::join).collect()
    })
}

impl RerankService {
    /// Serve a batch of requests concurrently on `exec`, one session per
    /// request. Outcomes return in request order. All sessions share this
    /// service's knowledge (so concurrent requests amortize each other's
    /// queries), its service-wide query budget, and its retry budget —
    /// both enforced atomically, so a storm of sessions cannot overspend
    /// a cap by racing it.
    pub fn serve_batch(&self, exec: &Executor, requests: Vec<BatchRequest>) -> Vec<BatchOutcome> {
        self.serve_batch_cancellable(exec, requests, &CancelToken::new())
    }

    /// [`RerankService::serve_batch`] with cooperative cancellation:
    /// `cancel` is checked between Get-Next pulls, so cancellation lands
    /// at tuple granularity and partial results (already paid for) are
    /// kept in each outcome alongside [`RerankError::Cancelled`].
    pub fn serve_batch_cancellable(
        &self,
        exec: &Executor,
        requests: Vec<BatchRequest>,
        cancel: &CancelToken,
    ) -> Vec<BatchOutcome> {
        self.stats_ref().on_batch();
        if self.obs().enabled() {
            // Service-level event: session ordinal 0.
            self.obs().emit(
                self.clock().now_ms(),
                0,
                qrs_obs::EventKind::BatchServed {
                    requests: requests.len() as u64,
                },
            );
        }
        drive(
            exec,
            requests.into_iter().map(|r| (self, r)).collect(),
            cancel,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_datagen::synthetic::uniform;
    use qrs_ranking::LinearRank;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::value::cmp_f64;
    use qrs_types::AttrId;

    fn service(n: usize, seed: u64) -> (RerankService, qrs_types::Dataset) {
        let data = uniform(n, 2, 1, seed);
        let server = SimServer::new(data.clone(), SystemRank::pseudo_random(seed), 5);
        (RerankService::new(Arc::new(server), n), data)
    }

    fn rank(w0: f64, w1: f64) -> Arc<dyn RankFn> {
        Arc::new(LinearRank::asc(vec![(AttrId(0), w0), (AttrId(1), w1)]))
    }

    fn brute_top(data: &qrs_types::Dataset, r: &Arc<dyn RankFn>, h: usize) -> Vec<f64> {
        let mut v: Vec<f64> = data.tuples().iter().map(|t| r.score(t)).collect();
        v.sort_by(|a, b| cmp_f64(*a, *b));
        v.truncate(h);
        v
    }

    #[test]
    fn batch_outcomes_are_exact_and_in_request_order() {
        let (svc, data) = service(300, 9001);
        let ranks: Vec<Arc<dyn RankFn>> = vec![
            rank(1.0, 1.0),
            rank(2.0, 0.5),
            rank(0.1, 1.0),
            rank(1.0, 0.25),
        ];
        let reqs: Vec<BatchRequest> = ranks
            .iter()
            .map(|r| BatchRequest::new(Query::all(), Arc::clone(r), 8))
            .collect();
        let exec = Executor::pool(4);
        let outcomes = svc.serve_batch(&exec, reqs);
        assert_eq!(outcomes.len(), 4);
        for (i, (out, r)) in outcomes.iter().zip(&ranks).enumerate() {
            assert!(out.is_ok(), "request {i}: {:?}", out.error);
            let got: Vec<f64> = out.hits.iter().map(|h| h.score).collect();
            assert_eq!(
                got,
                brute_top(&data, r, 8),
                "request {i} (order or exactness)"
            );
            assert_eq!(out.stats.emitted, 8);
        }
        let snap = svc.stats();
        assert_eq!(snap.sessions_started, 4);
        assert_eq!(snap.batches_served, 1);
        assert_eq!(snap.requests_served, 4);
        assert_eq!(snap.requests_cancelled, 0);
        assert_eq!(snap.tuples_emitted, 32);
    }

    #[test]
    fn batch_is_identical_across_executor_modes() {
        let run = |exec: &Executor| -> Vec<Vec<(u32, f64)>> {
            let (svc, _) = service(250, 9007);
            let reqs: Vec<BatchRequest> = (0..6)
                .map(|i| BatchRequest::new(Query::all(), rank(1.0 + f64::from(i), 1.0), 6))
                .collect();
            svc.serve_batch(exec, reqs)
                .into_iter()
                .map(|o| {
                    assert!(o.is_ok(), "{:?}", o.error);
                    o.hits.iter().map(|h| (h.tuple.id.0, h.score)).collect()
                })
                .collect()
        };
        let serial = run(&Executor::immediate(3));
        let pooled = run(&Executor::pool(4));
        let single = run(&Executor::pool(1));
        assert_eq!(serial, pooled, "pool(4) must match immediate mode");
        assert_eq!(serial, single, "pool(1) must match immediate mode");
    }

    #[test]
    fn pre_cancelled_batch_serves_nothing_but_stays_typed() {
        let (svc, _) = service(100, 9011);
        let reqs = vec![
            BatchRequest::new(Query::all(), rank(1.0, 1.0), 5),
            BatchRequest::new(Query::all(), rank(0.5, 1.0), 5),
        ];
        let exec = Executor::pool(2);
        let cancel = CancelToken::new();
        cancel.cancel();
        let outcomes = svc.serve_batch_cancellable(&exec, reqs, &cancel);
        for out in &outcomes {
            assert!(matches!(out.error, Some(RerankError::Cancelled)));
            assert!(out.hits.is_empty());
            assert_eq!(out.stats.queries_spent, 0);
        }
        assert_eq!(svc.queries_issued(), 0, "no query reaches the backend");
        let snap = svc.stats();
        assert_eq!(snap.requests_cancelled, 2);
        assert_eq!(snap.sessions_started, 0);
    }

    #[test]
    fn mid_stream_cancellation_keeps_paid_partials() {
        // The token flips after the second pull of the first request: the
        // cancel lands between pulls, partial hits survive. Immediate mode
        // makes the interleaving deterministic (requests run one by one).
        let (svc, data) = service(200, 9013);
        let cancel = CancelToken::new();
        let watcher = cancel.clone();
        struct TripRank {
            inner: Arc<dyn RankFn>,
            trips: std::sync::atomic::AtomicU64,
            watcher: CancelToken,
        }
        impl RankFn for TripRank {
            fn attrs(&self) -> &[AttrId] {
                self.inner.attrs()
            }
            fn directions(&self) -> &[qrs_types::Direction] {
                self.inner.directions()
            }
            fn score_norm(&self, u: &[f64]) -> f64 {
                // Cancel once scoring shows real progress (≈ second tuple).
                if self
                    .trips
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    > 400
                {
                    self.watcher.cancel();
                }
                self.inner.score_norm(u)
            }
        }
        let tripping: Arc<dyn RankFn> = Arc::new(TripRank {
            inner: rank(1.0, 1.0),
            trips: std::sync::atomic::AtomicU64::new(0),
            watcher,
        });
        let reqs = vec![
            BatchRequest::new(Query::all(), tripping, 50),
            BatchRequest::new(Query::all(), rank(0.5, 1.0), 50),
        ];
        let exec = Executor::immediate(0);
        let outcomes = svc.serve_batch_cancellable(&exec, reqs, &cancel);
        let cancelled: Vec<_> = outcomes
            .iter()
            .filter(|o| matches!(o.error, Some(RerankError::Cancelled)))
            .collect();
        assert!(!cancelled.is_empty(), "the trip wire never fired");
        // Whatever was fetched before the cancel is kept AND is an exact
        // prefix of the brute-force ranking — cancellation may truncate a
        // stream, never corrupt it. (TripRank only instruments scoring, so
        // request 0's scores equal its inner rank's.)
        let request_ranks = [rank(1.0, 1.0), rank(0.5, 1.0)];
        for (out, r) in outcomes.iter().zip(&request_ranks) {
            let got: Vec<f64> = out.hits.iter().map(|h| h.score).collect();
            assert_eq!(
                got,
                brute_top(&data, r, out.hits.len()),
                "kept partials must be an exact ranking prefix"
            );
        }
    }

    #[test]
    fn shared_service_budget_binds_atomically_across_the_batch() {
        // An anti-correlated system ranking forces real spend; the shared
        // cap must stop the whole batch without any session overspending
        // it by more than one in-flight step.
        let data = uniform(400, 2, 1, 9017);
        let server = SimServer::new(
            data,
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        );
        let svc = RerankService::new(Arc::new(server), 400).with_budget(6);
        let reqs: Vec<BatchRequest> = (0..4)
            .map(|i| BatchRequest::new(Query::all(), rank(1.0, 1.0 + f64::from(i)), 100))
            .collect();
        let exec = Executor::pool(4);
        let outcomes = svc.serve_batch(&exec, reqs);
        let tripped = outcomes
            .iter()
            .filter(|o| matches!(o.error, Some(RerankError::BudgetExhausted { .. })))
            .count();
        assert!(tripped >= 1, "a 6-query cap must trip a 4×top-100 batch");
        // Ledger consistency: per-session spend partitions the global count.
        let spent: u64 = outcomes.iter().map(|o| o.stats.queries_spent).sum();
        assert_eq!(spent, svc.queries_issued());
    }

    #[test]
    fn failed_open_is_an_outcome_not_a_poisoned_batch() {
        let (svc, data) = service(150, 9019);
        let reqs = vec![
            // 1D algorithm with a 2D ranking function: refused at preflight.
            BatchRequest::new(Query::all(), rank(1.0, 1.0), 5)
                .algorithm(Algorithm::OneD(qrs_core::OneDStrategy::Rerank)),
            BatchRequest::new(Query::all(), rank(1.0, 1.0), 5),
        ];
        let exec = Executor::pool(2);
        let outcomes = svc.serve_batch(&exec, reqs);
        assert!(matches!(
            outcomes[0].error,
            Some(RerankError::InvalidAlgorithm { .. })
        ));
        assert!(outcomes[1].is_ok(), "{:?}", outcomes[1].error);
        let got: Vec<f64> = outcomes[1].hits.iter().map(|h| h.score).collect();
        assert_eq!(got, brute_top(&data, &rank(1.0, 1.0), 5));
    }

    #[test]
    fn drive_spans_services_and_keeps_input_order() {
        let (a, da) = service(120, 9023);
        let (b, db) = service(90, 9029);
        let r = rank(1.0, 1.0);
        let jobs = vec![
            (&a, BatchRequest::new(Query::all(), Arc::clone(&r), 4)),
            (&b, BatchRequest::new(Query::all(), Arc::clone(&r), 4)),
            (&a, BatchRequest::new(Query::all(), Arc::clone(&r), 2)),
        ];
        let exec = Executor::pool(3);
        let outcomes = drive(&exec, jobs, &CancelToken::new());
        assert_eq!(outcomes.len(), 3);
        let got0: Vec<f64> = outcomes[0].hits.iter().map(|h| h.score).collect();
        let got1: Vec<f64> = outcomes[1].hits.iter().map(|h| h.score).collect();
        let got2: Vec<f64> = outcomes[2].hits.iter().map(|h| h.score).collect();
        assert_eq!(got0, brute_top(&da, &r, 4));
        assert_eq!(got1, brute_top(&db, &r, 4));
        assert_eq!(got2, brute_top(&da, &r, 2));
        assert_eq!(a.stats().requests_served, 2);
        assert_eq!(b.stats().requests_served, 1);
    }
}
