//! Incremental Get-Next sessions (§2.2's problem interface).
//!
//! A session binds one user query + ranking function to a cursor; each
//! [`Session::next`] returns the next-ranked tuple, charging only the
//! incremental query cost ("progressively return top answers while paying
//! only the incremental cost"). The shared service state is locked per call,
//! so concurrent sessions interleave cleanly.
//!
//! Fallibility contract: a budget trip or server failure surfaces as a
//! typed [`RerankError`]; the cursor keeps everything already paid for, so
//! retrying `next` after the budget refreshes (or a transient server error
//! clears) resumes instead of restarting. [`Session::top`] returns the
//! tuples fetched *before* the failure alongside the error — paid-for
//! results are never dropped.

use crate::service::{Algorithm, RerankService};
use qrs_core::md::ta::TaCursor;
use qrs_core::{MdCursor, OneDCursor, OneDSpec, TiePolicy};
use qrs_ranking::RankFn;
use qrs_types::{Query, RerankError, Tuple};
use std::sync::Arc;

/// One emitted answer: global rank (1-based), user score, tuple.
#[derive(Debug, Clone)]
pub struct RankedTuple {
    pub rank: usize,
    pub score: f64,
    pub tuple: Arc<Tuple>,
}

enum Cursor {
    OneD(OneDCursor),
    Md(MdCursor),
    Ta(TaCursor),
}

/// A user's incremental reranked query. Built by
/// [`crate::service::SessionBuilder::open`].
pub struct Session<'a> {
    svc: &'a RerankService,
    rank: Arc<dyn RankFn>,
    cursor: Cursor,
    emitted: usize,
    /// Queries issued inside this session's own cursor calls. Counted under
    /// the shared-state lock, so interleaved queries from concurrent
    /// sessions are never misattributed.
    spent: u64,
    /// Per-session cap on `spent` (the service-wide budget still applies).
    budget_limit: Option<u64>,
}

impl<'a> Session<'a> {
    pub(crate) fn new(
        svc: &'a RerankService,
        sel: Query,
        rank: Arc<dyn RankFn>,
        algo: Algorithm,
        tie: TiePolicy,
        budget_limit: Option<u64>,
    ) -> Self {
        let schema = svc.server().schema();
        let cursor = match algo {
            Algorithm::OneD(strategy) => Cursor::OneD(OneDCursor::new(
                OneDSpec::new(rank.attrs()[0], rank.directions()[0], sel),
                strategy,
                tie,
            )),
            Algorithm::Md(opts) => Cursor::Md(MdCursor::new(Arc::clone(&rank), sel, opts, schema)),
            Algorithm::Ta(access) => Cursor::Ta(TaCursor::with_server_caps(
                Arc::clone(&rank),
                sel,
                access,
                schema,
                &svc.server().capabilities(),
            )),
            Algorithm::Auto => unreachable!("resolved by SessionBuilder::open"),
        };
        Session {
            svc,
            rank,
            cursor,
            emitted: 0,
            spent: 0,
            budget_limit,
        }
    }

    /// The next tuple under the user ranking, or `Ok(None)` when exhausted.
    ///
    /// Not an `Iterator`: each step can fail on the query budget or the
    /// server, and callers need that error, not a silent stop. After an
    /// `Err` the session remains usable — queries already answered stay in
    /// the shared history, so a retry resumes the incremental work.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<RankedTuple>, RerankError> {
        self.svc
            .budget()
            .check(self.svc.server().queries_issued())?;
        if let Some(limit) = self.budget_limit {
            if self.spent >= limit {
                return Err(RerankError::BudgetExhausted {
                    spent: self.spent,
                    limit,
                });
            }
        }
        let server = Arc::clone(self.svc.server());
        let mut st = self.svc.state().lock();
        // Exact per-session attribution: every service query happens inside
        // a cursor call while the state lock is held, so the counter delta
        // across this call is exactly this session's spend.
        let before = server.queries_issued();
        let t = match &mut self.cursor {
            Cursor::OneD(c) => c.next(server.as_ref(), &mut st),
            Cursor::Md(c) => c.next(server.as_ref(), &mut st),
            Cursor::Ta(c) => c.next(server.as_ref(), &mut st),
        };
        self.spent += server.queries_issued() - before;
        drop(st);
        Ok(t?.map(|tuple| {
            self.emitted += 1;
            self.svc.stats_ref().on_emit();
            RankedTuple {
                rank: self.emitted,
                score: self.rank.score(&tuple),
                tuple,
            }
        }))
    }

    /// Fetch the next `h` tuples (shorter if `R(q)` is exhausted).
    ///
    /// Partial results survive failure: if the budget trips or the server
    /// errors mid-batch, the tuples already fetched — and paid for — are
    /// returned together with the error instead of being dropped.
    pub fn top(&mut self, h: usize) -> (Vec<RankedTuple>, Option<RerankError>) {
        let mut out = Vec::with_capacity(h);
        while out.len() < h {
            match self.next() {
                Ok(Some(r)) => out.push(r),
                Ok(None) => break,
                Err(e) => return (out, Some(e)),
            }
        }
        (out, None)
    }

    /// Like [`Session::top`] but all-or-error: partial results are dropped.
    /// Prefer `top` when the caller can use a partial batch.
    pub fn try_top(&mut self, h: usize) -> Result<Vec<RankedTuple>, RerankError> {
        match self.top(h) {
            (hits, None) => Ok(hits),
            (_, Some(e)) => Err(e),
        }
    }

    /// Tuples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Queries this session has caused against the database — exact even
    /// under concurrency: the count is taken inside the shared-state lock
    /// around this session's own cursor calls, so interleaved queries from
    /// other sessions are never attributed here.
    pub fn queries_spent(&self) -> u64 {
        self.spent
    }

    /// This session's query cap, if one was set at build time.
    pub fn budget_limit(&self) -> Option<u64> {
        self.budget_limit
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("emitted", &self.emitted)
            .field("queries_spent", &self.spent)
            .field("budget_limit", &self.budget_limit)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_datagen::synthetic::uniform;
    use qrs_ranking::LinearRank;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::{AttrId, Capability};

    fn service(n: usize, k: usize) -> RerankService {
        let data = uniform(n, 2, 1, 501);
        let server = SimServer::new(data, SystemRank::pseudo_random(7), k);
        RerankService::new(Arc::new(server), n)
    }

    fn anti_service(n: usize, k: usize) -> RerankService {
        let data = uniform(n, 2, 1, 503);
        // Adversarial system ranking to force real query spend.
        let server = SimServer::new(
            data,
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            k,
        );
        RerankService::new(Arc::new(server), n)
    }

    fn rank2() -> Arc<dyn RankFn> {
        Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]))
    }

    #[test]
    fn session_streams_ranked_results() {
        let svc = service(200, 5);
        let mut s = svc.session(Query::all(), rank2()).open().unwrap();
        let (top, err) = s.top(5);
        assert!(err.is_none());
        assert_eq!(top.len(), 5);
        assert!(top.windows(2).all(|w| w[0].score <= w[1].score));
        assert_eq!(top[0].rank, 1);
        assert_eq!(top[4].rank, 5);
        assert_eq!(s.emitted(), 5);
        assert!(s.queries_spent() > 0);
    }

    #[test]
    fn one_d_auto_for_single_attribute() {
        let svc = service(200, 5);
        let rank = Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0)]));
        let mut s = svc.session(Query::all(), rank).open().unwrap();
        let (top, err) = s.top(3);
        assert!(err.is_none());
        let vals: Vec<f64> = top.iter().map(|r| r.tuple.ord(AttrId(0))).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn budget_stops_the_session() {
        let svc = anti_service(500, 3).with_budget(2);
        let mut s = svc.session(Query::all(), rank2()).open().unwrap();
        let mut hit_budget = false;
        for _ in 0..100 {
            match s.next() {
                Err(RerankError::BudgetExhausted { spent, limit }) => {
                    assert_eq!(limit, 2);
                    assert!(spent >= 2);
                    hit_budget = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
                Ok(Some(_)) => {}
                Ok(None) => break,
            }
        }
        assert!(hit_budget, "budget of 2 queries never tripped");
    }

    #[test]
    fn per_session_budget_is_independent() {
        let svc = anti_service(500, 3);
        let mut constrained = svc.session(Query::all(), rank2()).budget(2).open().unwrap();
        let mut err = None;
        for _ in 0..100 {
            match constrained.next() {
                Err(e) => {
                    err = Some(e);
                    break;
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
            }
        }
        assert!(
            matches!(err, Some(RerankError::BudgetExhausted { limit: 2, .. })),
            "per-session budget never tripped: {err:?}"
        );
        // The service itself is unconstrained: a fresh session keeps going.
        let mut free = svc.session(Query::all(), rank2()).open().unwrap();
        let (top, err) = free.top(3);
        assert!(err.is_none());
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn one_d_rejects_multi_attribute_rank_with_typed_error() {
        let svc = service(50, 5);
        let err = svc
            .session(Query::all(), rank2())
            .algorithm(Algorithm::OneD(qrs_core::OneDStrategy::Rerank))
            .open()
            .unwrap_err();
        assert!(
            matches!(err, RerankError::InvalidAlgorithm { ref reason } if reason.contains("single-attribute")),
            "wrong error: {err}"
        );
        // No session was counted for the refused open.
        assert_eq!(svc.stats().sessions_started, 0);
    }

    #[test]
    fn ta_public_order_by_requires_capability() {
        let svc = service(50, 5); // SimServer without with_order_by
        let err = svc
            .session(Query::all(), rank2())
            .algorithm(Algorithm::Ta(qrs_core::md::ta::SortedAccess::PublicOrderBy))
            .open()
            .unwrap_err();
        assert_eq!(
            err,
            RerankError::UnsupportedCapability(Capability::OrderBy(AttrId(0)))
        );
    }

    #[test]
    fn knowledge_accumulates_across_sessions() {
        let svc = service(300, 5);
        let rank = rank2();
        let mut s1 = svc.session(Query::all(), Arc::clone(&rank)).open().unwrap();
        let (got, err) = s1.top(3);
        assert!(err.is_none() && got.len() == 3);
        drop(s1);
        let (h1, _, _) = svc.knowledge();
        assert!(h1 > 0);
        let cost_before = svc.queries_issued();
        // Same request again: shared knowledge should make it cheaper.
        let mut s2 = svc.session(Query::all(), rank).open().unwrap();
        let (got, err) = s2.top(3);
        assert!(err.is_none() && got.len() == 3);
        let second_cost = svc.queries_issued() - cost_before;
        assert!(
            second_cost <= cost_before,
            "no amortization: {second_cost} vs {cost_before}"
        );
        assert_eq!(svc.stats().sessions_started, 2);
    }

    #[test]
    fn top_preserves_partials_on_budget_trip() {
        let svc = anti_service(500, 3).with_budget(30);
        let mut s = svc.session(Query::all(), rank2()).open().unwrap();
        let (hits, err) = s.top(1000);
        let err = err.expect("budget of 30 must trip before 1000 tuples");
        assert!(matches!(err, RerankError::BudgetExhausted { .. }));
        assert!(
            !hits.is_empty(),
            "tuples fetched before the trip must be preserved"
        );
        // The partial batch is still correctly ranked.
        assert!(hits.windows(2).all(|w| w[0].score <= w[1].score));
        // try_top is the all-or-error variant.
        assert!(s.try_top(10).is_err());
    }

    #[test]
    fn server_rate_limit_surfaces_with_partials() {
        let data = uniform(400, 2, 1, 509);
        let server = SimServer::new(
            data,
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        )
        .with_rate_limit(25);
        let svc = RerankService::new(Arc::new(server), 400);
        let mut s = svc.session(Query::all(), rank2()).open().unwrap();
        let (hits, err) = s.top(1000);
        match err {
            Some(RerankError::Server(e)) => assert!(e.is_transient()),
            other => panic!("expected a server error, got {other:?}"),
        }
        // Whatever was fetched before the 429 is kept and ranked.
        assert!(hits.windows(2).all(|w| w[0].score <= w[1].score));
    }
}
