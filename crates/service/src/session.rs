//! Incremental Get-Next sessions (§2.2's problem interface).
//!
//! A session binds one user query + ranking function to a cursor; each
//! [`Session::next`] returns the next-ranked tuple, charging only the
//! incremental query cost ("progressively return top answers while paying
//! only the incremental cost"). The shared service state is locked per call,
//! so concurrent sessions interleave cleanly.
//!
//! Fallibility contract: a budget trip or server failure surfaces as a
//! typed [`RerankError`]; the cursor keeps everything already paid for, so
//! retrying `next` after the budget refreshes (or a transient server error
//! clears) resumes instead of restarting. [`Session::top`] returns the
//! tuples fetched *before* the failure alongside the error — paid-for
//! results are never dropped.
//!
//! Retry contract: with a [`RetryPolicy`](qrs_types::RetryPolicy) attached (via the service default
//! or [`crate::SessionBuilder::retry`]), transient *server* failures are
//! retried in place with exponential backoff + jitter, honoring the
//! server's `retry_after_ms` hint, sleeping on the service's injectable
//! clock, and metering against the per-session and service-wide retry
//! budgets. Because cursors resume after `Err`, a retry re-enters exactly
//! where the failure struck — queries already answered are never re-paid.
//! Attempt counts and retries are tracked in [`SessionStats`] so budget
//! attribution stays exact even for steps that ultimately fail.

use crate::planner::RankedCandidate;
use crate::retry::RetryRunner;
use crate::service::{build_strategy_for, query_class, RerankService};
use qrs_core::strategy::{CostEstimate, RerankStrategy, StrategyIo, StrategyStep};
use qrs_core::{KnowledgeGate, TiePolicy};
use qrs_knowledge::ResultKey;
use qrs_obs::{BudgetScope, EventKind, QueryClass};
use qrs_ranking::RankFn;
use qrs_server::SearchInterface;
use qrs_types::{AdaptiveConfig, Query, RerankError, Tuple};
use std::collections::VecDeque;
use std::sync::Arc;

/// Per-session view of the knowledge plane, built at open time by
/// `SessionBuilder` when the service carries a plane and the session did
/// not opt out.
///
/// Two mechanisms ride in it:
/// * the **gate** — every strategy request goes through the
///   [`KnowledgeGate`] instead of the raw server, so exact replays and
///   drained-region synthesis answer for free; the session reads the
///   gate's saved-ledger deltas in-lock, exactly like paid spend;
/// * the **result replay** — a cached exact output stream for this
///   `(selection, rank, tie, strategy)` is emitted directly (`replay`),
///   after which the strategy resumes from scratch skipping the first
///   `skip` emissions; its replayed requests hit the response cache, so
///   resumption costs zero server queries.
pub(crate) struct SessionKnowledge {
    pub(crate) gate: Arc<KnowledgeGate>,
    /// Key of this session's exact output stream in the shard's result
    /// cache; `None` for custom strategies (their exactness is the
    /// author's promise, so their streams are never cached or replayed).
    pub(crate) result_key: Option<ResultKey>,
    /// Cached `(tuple, score bits)` prefix still to emit.
    pub(crate) replay: VecDeque<(Arc<Tuple>, u64)>,
    /// Length of the cached prefix: strategy emissions `0..skip` were
    /// already replayed and are swallowed when the strategy re-derives
    /// them.
    pub(crate) skip: usize,
    /// The cached stream is known complete: once `replay` drains, the
    /// session is exhausted without ever driving the strategy.
    pub(crate) replay_exhausted: bool,
    /// `(queries, cost_units)` the sealing run paid end to end — credited
    /// to the saved ledger when a complete replay finishes.
    pub(crate) full_ledger: (u64, u64),
    /// One-shot latch for that credit.
    credited: bool,
    /// Post-residual emissions the strategy itself has produced — the
    /// 0-based stream index used for recording and for `skip`.
    strategy_emitted: usize,
}

impl SessionKnowledge {
    pub(crate) fn new(
        gate: Arc<KnowledgeGate>,
        result_key: Option<ResultKey>,
        replay: VecDeque<(Arc<Tuple>, u64)>,
        replay_exhausted: bool,
        full_ledger: (u64, u64),
    ) -> Self {
        let skip = replay.len();
        SessionKnowledge {
            gate,
            result_key,
            replay,
            skip,
            replay_exhausted,
            full_ledger,
            credited: false,
            strategy_emitted: 0,
        }
    }
}

/// Mid-flight re-planning state, armed at open time for built-in-strategy
/// sessions on a service opted into the adaptive planner
/// (`RerankService::with_adaptive`).
///
/// The session watches its own weighted spend against the calibrated
/// plan-time prediction; past the configured divergence ratio it re-ranks
/// the plan's remaining feasible candidates under the *current*
/// calibration, rebuilds the cheapest one's strategy, and swaps it in —
/// at most once per session, swallowing the new strategy's re-derivation
/// of the already-emitted prefix so the user-visible stream stays exact.
pub(crate) struct AdaptiveState {
    cfg: AdaptiveConfig,
    /// Strategy name the session was planned with — the calibration key
    /// its end-of-life actual/predicted ratios are filed under.
    planned_name: String,
    /// The static plan-time estimate.
    predicted: CostEstimate,
    /// The calibration-scaled plan-time estimate the divergence trigger
    /// compares spend against.
    calibrated: CostEstimate,
    /// Pull horizon the estimates were computed for; past it, spending
    /// more than predicted is expected, not divergence.
    horizon: usize,
    /// The plan's remaining feasible candidates (cheapest-first at plan
    /// time), each carrying its own server query and residual. Empty for
    /// explicit-algorithm and custom sessions — which therefore never
    /// switch.
    alternates: Vec<RankedCandidate>,
    tie: TiePolicy,
    /// Latch: one switch max per session.
    switched: bool,
}

impl AdaptiveState {
    pub(crate) fn new(
        cfg: AdaptiveConfig,
        planned_name: String,
        predicted: CostEstimate,
        calibrated: CostEstimate,
        horizon: usize,
        alternates: Vec<RankedCandidate>,
        tie: TiePolicy,
    ) -> Self {
        AdaptiveState {
            cfg,
            planned_name,
            predicted,
            calibrated,
            horizon,
            alternates,
            tie,
            switched: false,
        }
    }
}

/// One emitted answer: global rank (1-based), user score, tuple.
#[derive(Debug, Clone)]
pub struct RankedTuple {
    /// 1-based rank under the user's ranking function.
    pub rank: usize,
    /// The user score the rank was assigned by.
    pub score: f64,
    /// The tuple itself.
    pub tuple: Arc<Tuple>,
}

/// Point-in-time accounting for one session, exact under retries and
/// concurrency: every counter is updated inside the shared-state lock
/// around this session's own cursor calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Tuples emitted so far.
    pub emitted: usize,
    /// Queries charged to this session — including those spent by attempts
    /// that ultimately failed (e.g. a page truncated in transit was paid
    /// for even though no result arrived).
    pub queries_spent: u64,
    /// Weighted cost units charged to this session under the server's
    /// advertised cost model. Equals `queries_spent` on flat-model sites;
    /// the number a metered site actually bills for.
    pub cost_units_spent: u64,
    /// Queries this session answered from the knowledge plane instead of
    /// paying the server — zero unless the service carries a plane.
    /// Attribution is in-lock, exactly like `queries_spent`; a session
    /// whose whole stream replayed from a sealed cache entry credits the
    /// sealing run's recorded cost here.
    pub queries_saved: u64,
    /// Cost units those knowledge hits would have been billed, under the
    /// server's advertised cost model.
    pub cost_units_saved: u64,
    /// Cursor-step attempts made, successful and failed alike.
    pub attempts_made: u64,
    /// Retries spent (attempts beyond the first for a given step).
    pub retries_spent: u64,
    /// Divergence-triggered mid-flight strategy switches (0 or 1: the
    /// adaptive re-planner switches at most once per session).
    pub strategy_switches: u64,
    /// The per-session query cap, if any.
    pub budget_limit: Option<u64>,
}

/// A user's incremental reranked query. Built by
/// [`crate::service::SessionBuilder::open`].
pub struct Session<'a> {
    svc: &'a RerankService,
    rank: Arc<dyn RankFn>,
    /// The pull state machine this session drives — a built-in cursor
    /// wrapper or a user-registered custom strategy; the session loop is
    /// oblivious to which.
    strategy: Box<dyn RerankStrategy>,
    emitted: usize,
    /// Queries issued inside this session's own strategy steps. Counted
    /// under the shared-state lock, so interleaved queries from concurrent
    /// sessions are never misattributed.
    spent: u64,
    /// Weighted cost units charged by those same steps, metered in-lock
    /// alongside `spent` from the server's weighted ledger.
    cost_spent: u64,
    /// Queries answered from knowledge instead of the server, attributed
    /// in-lock from the gate's saved ledger (plus the one-shot full-replay
    /// credit).
    saved: u64,
    /// Cost units those knowledge hits would have been billed.
    cost_saved: u64,
    /// Per-session cap on `spent` (the service-wide budget still applies).
    budget_limit: Option<u64>,
    /// Cursor-step attempts, counted in-lock alongside `spent` so failed
    /// attempts' query spend stays attributed to this session.
    attempts: u64,
    /// Retries spent across all steps of this session.
    retries: u64,
    /// Retry policy + jitter RNG + per-session retry cap.
    retry: RetryRunner,
    /// Predicates the planner relaxed out of the server-side query (the
    /// site could not evaluate them); re-checked here before emitting, so
    /// exactness survives the relaxation.
    residual: Option<Query>,
    /// Knowledge-plane hookup (gate + result replay), when the service
    /// carries a plane and this session opted in.
    knowledge: Option<SessionKnowledge>,
    /// This session's ordinal on the observability plane (0 when the
    /// service has no observer attached).
    obs_id: u64,
    /// The request class this session's charges are bucketed under on the
    /// metrics plane. Re-pointed by a mid-flight switch so post-switch
    /// charges land in the new strategy's bucket.
    class: QueryClass,
    /// Mid-flight re-planning state (`None` on non-adaptive services and
    /// custom-strategy sessions).
    adaptive: Option<AdaptiveState>,
    /// After a plane-less switch: user-visible emissions the replacement
    /// strategy will re-derive and the session must swallow. (With a
    /// knowledge plane attached, its `skip` machinery does this instead.)
    switch_skip: usize,
    /// Divergence-triggered switches performed (0 or 1).
    switches: u64,
}

impl<'a> Session<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        svc: &'a RerankService,
        rank: Arc<dyn RankFn>,
        strategy: Box<dyn RerankStrategy>,
        budget_limit: Option<u64>,
        retry: RetryRunner,
        residual: Option<Query>,
        knowledge: Option<SessionKnowledge>,
        obs_id: u64,
        class: QueryClass,
        adaptive: Option<AdaptiveState>,
    ) -> Self {
        Session {
            svc,
            rank,
            strategy,
            emitted: 0,
            spent: 0,
            cost_spent: 0,
            saved: 0,
            cost_saved: 0,
            budget_limit,
            attempts: 0,
            retries: 0,
            retry,
            residual,
            knowledge,
            obs_id,
            class,
            adaptive,
            switch_skip: 0,
            switches: 0,
        }
    }

    /// Emit one observability event attributed to this session. The
    /// closure runs only when a plane is attached, so a disabled service
    /// pays a single branch here and constructs nothing — no clock read,
    /// no allocation.
    #[inline]
    pub(crate) fn emit_obs(&self, f: impl FnOnce() -> EventKind) {
        let obs = self.svc.obs();
        if obs.enabled() {
            obs.emit(self.svc.clock().now_ms(), self.obs_id, f());
        }
    }

    /// The next tuple under the user ranking, or `Ok(None)` when exhausted.
    ///
    /// Not an `Iterator`: each step can fail on the query budget or the
    /// server, and callers need that error, not a silent stop. After an
    /// `Err` the session remains usable — queries already answered stay in
    /// the shared history, so a retry resumes the incremental work.
    ///
    /// With retries enabled, transient server failures are absorbed here:
    /// the step is re-attempted after a backoff sleep (server
    /// `retry_after_ms` hint dominating the exponential schedule) until it
    /// succeeds, the policy's `max_attempts` is consumed
    /// ([`RerankError::RetriesExhausted`]), or a retry budget runs out
    /// ([`RerankError::RetryBudgetExhausted`]). Query-budget trips are
    /// *not* slept on — only a caller-side window reset can clear them.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<RankedTuple>, RerankError> {
        // Observability wrapper: with no plane attached this is one branch
        // straight into the pull — no clock reads, nothing constructed, so
        // the uninstrumented hot path is preserved bit for bit. With a
        // plane, the whole pull (replay, strategy steps, retries, sleeps)
        // is timed into the per-pull latency histogram.
        if !self.svc.obs().enabled() {
            return self.next_pull();
        }
        self.emit_obs(|| EventKind::RequestIssued { class: self.class });
        let t0 = self.svc.clock().now_ms();
        let out = self.next_pull();
        let dt = self.svc.clock().now_ms().saturating_sub(t0);
        self.svc.obs().record_pull(dt);
        out
    }

    /// The actual pull loop behind [`Session::next`].
    fn next_pull(&mut self) -> Result<Option<RankedTuple>, RerankError> {
        // Serve the cached result stream first: zero server traffic, no
        // shared-state lock. Scores replay from their recorded bit
        // patterns, so a warm stream is byte-identical to the cold one.
        if let Some(k) = &mut self.knowledge {
            if let Some((tuple, bits)) = k.replay.pop_front() {
                self.emitted += 1;
                self.svc.stats_ref().on_emit();
                let mut credit = None;
                if k.replay.is_empty() && k.replay_exhausted && !k.credited {
                    k.credited = true;
                    let (q, c) = k.full_ledger;
                    self.saved += q;
                    self.cost_saved += c;
                    self.svc.stats_ref().on_saved(q, c);
                    credit = Some((q, c));
                }
                if let Some((q, c)) = credit {
                    // The one-shot full-replay credit is a knowledge hit
                    // like any other: the sealing run's whole ledger lands
                    // on the saved column at once.
                    self.emit_obs(|| EventKind::KnowledgeHit {
                        queries: q,
                        cost_units: c,
                    });
                }
                return Ok(Some(RankedTuple {
                    rank: self.emitted,
                    score: f64::from_bits(bits),
                    tuple,
                }));
            }
            if k.replay_exhausted {
                // The cached stream was complete (possibly empty): the
                // session is exhausted without ever driving the strategy.
                let mut credit = None;
                if !k.credited {
                    k.credited = true;
                    let (q, c) = k.full_ledger;
                    self.saved += q;
                    self.cost_saved += c;
                    self.svc.stats_ref().on_saved(q, c);
                    credit = Some((q, c));
                }
                if let Some((q, c)) = credit {
                    self.emit_obs(|| EventKind::KnowledgeHit {
                        queries: q,
                        cost_units: c,
                    });
                }
                return Ok(None);
            }
        }
        // Divergence check before paying for more: past this point the
        // replay (which costs nothing) is drained, so everything spent so
        // far was measured against the calibrated prediction.
        self.maybe_replan();
        let mut retries_this_step: u32 = 0;
        loop {
            // Budget gates re-checked before every attempt: a retry must
            // not sneak past a cap that tripped mid-recovery.
            if let Err(e) = self.svc.budget().check(self.svc.server().queries_issued()) {
                if let RerankError::BudgetExhausted { spent, limit } = e {
                    self.emit_obs(|| EventKind::BudgetTrip {
                        scope: BudgetScope::Service,
                        spent,
                        limit,
                    });
                }
                return Err(e);
            }
            if let Some(limit) = self.budget_limit {
                if self.spent >= limit {
                    let spent = self.spent;
                    self.emit_obs(|| EventKind::BudgetTrip {
                        scope: BudgetScope::Session,
                        spent,
                        limit,
                    });
                    return Err(RerankError::BudgetExhausted { spent, limit });
                }
            }
            let err = match self.step() {
                Ok(StrategyStep::Emit(tuple)) => {
                    // A successful step re-anchors the decorrelated
                    // backoff chain: escalation from an earlier storm
                    // must not inflate sleeps for later, unrelated
                    // failures.
                    self.retry.reset_backoff();
                    if let Some(r) = &self.residual {
                        if !r.matches(&tuple) {
                            // Paid for but filtered client-side: the
                            // planner relaxed a predicate the site could
                            // not evaluate, and this tuple fails it. Rank
                            // order is unaffected — keep pulling.
                            retries_this_step = 0;
                            continue;
                        }
                    }
                    if let Some(k) = &mut self.knowledge {
                        // Post-residual stream index: the cache stores the
                        // user-visible stream, so residual-filtered tuples
                        // never count.
                        let idx = k.strategy_emitted;
                        k.strategy_emitted += 1;
                        if let Some(key) = &k.result_key {
                            k.gate.shard().extend_result(
                                key,
                                idx,
                                Arc::clone(&tuple),
                                self.rank.score(&tuple).to_bits(),
                            );
                        }
                        if idx < k.skip {
                            // Already emitted from the replayed prefix;
                            // the strategy is just catching up (its
                            // requests hit the response cache, so this
                            // costs nothing).
                            retries_this_step = 0;
                            continue;
                        }
                    } else if self.switch_skip > 0 {
                        // Plane-less mid-flight switch: the replacement
                        // strategy re-derives the rows the abandoned one
                        // already emitted; swallow them so the
                        // user-visible stream stays exact.
                        self.switch_skip -= 1;
                        retries_this_step = 0;
                        continue;
                    }
                    self.emitted += 1;
                    self.svc.stats_ref().on_emit();
                    return Ok(Some(RankedTuple {
                        rank: self.emitted,
                        score: self.rank.score(&tuple),
                        tuple,
                    }));
                }
                Ok(StrategyStep::Progress) => {
                    // Partial work (one page fetched): loop to re-check
                    // the budget gates before paying for more.
                    self.retry.reset_backoff();
                    retries_this_step = 0;
                    continue;
                }
                Ok(StrategyStep::Exhausted) => {
                    if let Some(k) = &self.knowledge {
                        if let Some(key) = &k.result_key {
                            // Seal the cache entry: the stream is complete
                            // at exactly `strategy_emitted` tuples, and the
                            // whole run cost `spent + saved` (what a future
                            // full replay deserves credit for).
                            let items = k.strategy_emitted;
                            let queries_full = self.spent + self.saved;
                            let cost_units_full = self.cost_spent + self.cost_saved;
                            k.gate.shard().mark_result_exhausted(
                                key,
                                items,
                                queries_full,
                                cost_units_full,
                            );
                            self.emit_obs(|| EventKind::KnowledgeSeal {
                                items: items as u64,
                                queries_full,
                                cost_units_full,
                            });
                        }
                    }
                    return Ok(None);
                }
                Err(e) => e,
            };
            if !err.is_retryable() || !self.retry.policy().retries_enabled() {
                return Err(err);
            }
            let attempts_this_step = retries_this_step + 1;
            if attempts_this_step >= self.retry.policy().max_attempts {
                return Err(RerankError::RetriesExhausted {
                    attempts: attempts_this_step,
                    last: Box::new(err),
                });
            }
            if let Some(limit) = self.retry.session_limit() {
                if self.retries >= limit {
                    let spent = self.retries;
                    self.emit_obs(|| EventKind::BudgetTrip {
                        scope: BudgetScope::Retry,
                        spent,
                        limit,
                    });
                    return Err(RerankError::RetryBudgetExhausted {
                        retries_spent: spent,
                        limit,
                        last: Box::new(err),
                    });
                }
            }
            if let Err((spent, limit)) = self.svc.retry_budget().try_spend() {
                self.emit_obs(|| EventKind::BudgetTrip {
                    scope: BudgetScope::Retry,
                    spent,
                    limit,
                });
                return Err(RerankError::RetryBudgetExhausted {
                    retries_spent: spent,
                    limit,
                    last: Box::new(err),
                });
            }
            retries_this_step += 1;
            self.retries += 1;
            self.svc.stats_ref().on_retry();
            self.emit_obs(|| EventKind::RetryAttempt {
                retry_index: retries_this_step,
            });
            let delay = self.retry.delay_ms(retries_this_step, &err);
            if delay > 0 {
                self.emit_obs(|| EventKind::BackoffSleep {
                    ms: delay,
                    server_hinted: err.retry_after_hint().is_some(),
                });
                // The shared-state lock is NOT held here: other sessions
                // keep working while this one backs off.
                self.svc.clock().sleep_ms(delay);
            }
        }
    }

    /// The mid-flight divergence check: when this session's weighted spend
    /// exceeds `divergence_ratio ×` its calibrated prediction while rows
    /// remain to the horizon (and at least `min_spend` units were paid —
    /// front-loaded strategies pay for their whole drain up front), re-rank
    /// the plan's remaining feasible candidates under the *current*
    /// calibration and switch to the cheapest. At most once per session;
    /// already-emitted rows are kept and the replacement strategy's
    /// re-derivation of them is swallowed, so the user-visible stream is
    /// byte-identical to never having switched.
    fn maybe_replan(&mut self) {
        let Some(ad) = &self.adaptive else { return };
        if ad.switched
            || !ad.cfg.replan
            || ad.alternates.is_empty()
            || self.emitted >= ad.horizon
            || self.cost_spent < ad.cfg.min_spend
        {
            return;
        }
        let threshold = ad.cfg.divergence_ratio * ad.calibrated.cost_units.max(1) as f64;
        if self.cost_spent as f64 <= threshold {
            return;
        }
        // Re-rank the alternates under what calibration knows *now* — the
        // very charges that tripped this trigger may already have
        // re-ordered them. Ties keep plan order (min_by_key returns the
        // first minimum).
        let store = self.svc.calibration();
        let calibrating = ad.cfg.calibrate;
        let pick = ad
            .alternates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                if calibrating {
                    store.calibrate(&c.name, c.estimate).cost_units
                } else {
                    c.estimate.cost_units
                }
            })
            .map(|(i, _)| i)
            .expect("alternates is non-empty");
        let (chosen, tie) = {
            let ad = self.adaptive.as_mut().expect("checked above");
            ad.switched = true;
            (ad.alternates.swap_remove(pick), ad.tie)
        };
        let from = self.strategy.name().to_string();
        self.strategy = build_strategy_for(
            self.svc,
            Arc::clone(&self.rank),
            tie,
            &chosen.algorithm,
            chosen.server_query.clone(),
        );
        self.residual = chosen.residual.clone();
        self.class = query_class(&chosen.algorithm);
        match &mut self.knowledge {
            Some(k) => {
                // The switched session's stream no longer matches the
                // planned strategy's cache key — stop recording (a blended
                // ledger would poison a future replay's credit), and let
                // the skip machinery swallow the re-derived prefix. The
                // response-level gate still serves the replacement's
                // requests, which is where "without losing paid-for
                // knowledge" comes from: probes the abandoned strategy
                // paid for replay free.
                k.result_key = None;
                k.strategy_emitted = 0;
                k.skip = self.emitted;
            }
            None => self.switch_skip = self.emitted,
        }
        self.switches += 1;
        self.svc.stats_ref().on_switch();
        let (at, q, c) = (self.emitted as u64, self.spent, self.cost_spent);
        let to = self.strategy.name().to_string();
        self.emit_obs(|| EventKind::Replanned {
            from_strategy: from,
            to_strategy: to,
            at_emitted: at,
            queries_spent: q,
            cost_units_spent: c,
        });
    }

    /// One strategy step under the shared-state lock.
    ///
    /// Exact per-session attribution: every service query happens inside a
    /// strategy step while the state lock is held, so the ledger deltas
    /// (raw queries *and* weighted cost units) across this call are
    /// exactly this session's spend. The attempt and spend counters update
    /// *before* the error propagates — a failed attempt that paid for
    /// queries (e.g. a page truncated in transit) still charges this
    /// session.
    fn step(&mut self) -> Result<StrategyStep, RerankError> {
        // With a knowledge gate attached, the strategy talks to the gate
        // instead of the raw server: hits answer for free and land on the
        // saved ledger; misses pass through and land on the paid one. Both
        // ledgers are read as deltas across this step under the lock, so
        // attribution stays exact per session either way.
        let server: Arc<dyn SearchInterface> = match &self.knowledge {
            Some(k) => Arc::clone(&k.gate) as Arc<dyn SearchInterface>,
            None => Arc::clone(self.svc.server()),
        };
        let mut st = self.svc.state().lock();
        let before = server.queries_issued();
        let before_cost = server.cost_units_issued();
        let before_saved = self
            .knowledge
            .as_ref()
            .map(|k| (k.gate.queries_saved(), k.gate.cost_units_saved()));
        let t = {
            let mut io = StrategyIo::new(server.as_ref(), &mut st);
            self.strategy.next_step(&mut io)
        };
        self.attempts += 1;
        let dq = server.queries_issued() - before;
        let dc = server.cost_units_issued() - before_cost;
        self.spent += dq;
        self.cost_spent += dc;
        self.svc.stats_ref().on_spend(dq, dc);
        let (dsq, dsc) = match (&self.knowledge, before_saved) {
            (Some(k), Some((bq, bc))) => {
                (k.gate.queries_saved() - bq, k.gate.cost_units_saved() - bc)
            }
            _ => (0, 0),
        };
        if dsq > 0 || dsc > 0 {
            self.saved += dsq;
            self.cost_saved += dsc;
            self.svc.stats_ref().on_saved(dsq, dsc);
        }
        drop(st);
        // Observability, outside the lock: the deltas are already captured,
        // so emission order cannot change attribution. `RequestCharged`
        // carries the very numbers the ledgers above accumulated — the
        // monitor's actual column reconciles exactly by construction.
        if dq > 0 || dc > 0 {
            // Train the calibration store with the same in-lock delta the
            // ledgers just accumulated — outside the lock, like obs.
            if let Some(ad) = &self.adaptive {
                if ad.cfg.calibrate {
                    self.svc
                        .calibration()
                        .on_charge(self.strategy.name(), self.class, dq, dc);
                }
            }
            self.emit_obs(|| EventKind::RequestCharged {
                class: self.class,
                queries: dq,
                cost_units: dc,
            });
            if self.knowledge.is_some() {
                // A gated step that still paid the server is a miss; the
                // duplicate deltas let hit/miss ratios fold without joins.
                self.emit_obs(|| EventKind::KnowledgeMiss {
                    queries: dq,
                    cost_units: dc,
                });
            }
        }
        if dsq > 0 || dsc > 0 {
            self.emit_obs(|| EventKind::KnowledgeHit {
                queries: dsq,
                cost_units: dsc,
            });
        }
        t
    }

    /// Fetch the next `h` tuples (shorter if `R(q)` is exhausted).
    ///
    /// Partial results survive failure: if the budget trips or the server
    /// errors mid-batch, the tuples already fetched — and paid for — are
    /// returned together with the error instead of being dropped.
    pub fn top(&mut self, h: usize) -> (Vec<RankedTuple>, Option<RerankError>) {
        let mut out = Vec::with_capacity(h);
        while out.len() < h {
            match self.next() {
                Ok(Some(r)) => out.push(r),
                Ok(None) => break,
                Err(e) => return (out, Some(e)),
            }
        }
        (out, None)
    }

    /// Like [`Session::top`] but all-or-error: partial results are dropped.
    /// Prefer `top` when the caller can use a partial batch.
    pub fn try_top(&mut self, h: usize) -> Result<Vec<RankedTuple>, RerankError> {
        match self.top(h) {
            (hits, None) => Ok(hits),
            (_, Some(e)) => Err(e),
        }
    }

    /// The service this session runs against (the federation layer needs
    /// each source's clock for circuit cool-downs).
    pub(crate) fn svc(&self) -> &'a RerankService {
        self.svc
    }

    /// Tuples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Queries this session has caused against the database — exact even
    /// under concurrency: the count is taken inside the shared-state lock
    /// around this session's own cursor calls, so interleaved queries from
    /// other sessions are never attributed here.
    pub fn queries_spent(&self) -> u64 {
        self.spent
    }

    /// Weighted cost units this session has been charged under the
    /// server's advertised cost model — same in-lock attribution guarantee
    /// as [`Session::queries_spent`]. On flat-model sites this equals the
    /// query count.
    pub fn cost_units_spent(&self) -> u64 {
        self.cost_spent
    }

    /// Queries this session answered from the knowledge plane instead of
    /// paying the server. Zero unless the service was built
    /// `with_knowledge`; same in-lock attribution as
    /// [`Session::queries_spent`]. The invariant a warm session exhibits:
    /// `queries_spent + queries_saved` equals what a cold session would
    /// have spent on the same request.
    pub fn queries_saved(&self) -> u64 {
        self.saved
    }

    /// Cost units those knowledge hits would have been billed, under the
    /// server's advertised cost model.
    pub fn cost_units_saved(&self) -> u64 {
        self.cost_saved
    }

    /// This session's query cap, if one was set at build time.
    pub fn budget_limit(&self) -> Option<u64> {
        self.budget_limit
    }

    /// Cursor-step attempts made so far, failed attempts included.
    pub fn attempts_made(&self) -> u64 {
        self.attempts
    }

    /// Retries spent so far (attempts beyond the first for a given step).
    pub fn retries_spent(&self) -> u64 {
        self.retries
    }

    /// Divergence-triggered mid-flight strategy switches (0 or 1). Nonzero
    /// only on services opted into the adaptive planner.
    pub fn strategy_switches(&self) -> u64 {
        self.switches
    }

    /// The strategy currently driving this session — the planned one, or
    /// the replacement after a divergence-triggered switch.
    pub fn strategy_name(&self) -> &str {
        self.strategy.name()
    }

    /// Full accounting snapshot. Exact even when the last `top` returned
    /// `(hits, Some(err))`: attempts and spend are counted in-lock per
    /// cursor call, so failed and retried steps are attributed too.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            emitted: self.emitted,
            queries_spent: self.spent,
            cost_units_spent: self.cost_spent,
            queries_saved: self.saved,
            cost_units_saved: self.cost_saved,
            attempts_made: self.attempts,
            retries_spent: self.retries,
            strategy_switches: self.switches,
            budget_limit: self.budget_limit,
        }
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        // Close the calibration loop: file this session's actual-vs-
        // predicted spend under the strategy it was planned with. Switched
        // sessions are excluded (their blended ledger describes neither
        // strategy), as are sessions that emitted nothing or paid nothing
        // (a fully knowledge-replayed run says nothing about the site's
        // prices).
        if let Some(ad) = &self.adaptive {
            if ad.cfg.calibrate && !ad.switched && self.emitted > 0 && self.spent > 0 {
                self.svc.calibration().observe_session(
                    &ad.planned_name,
                    ad.predicted,
                    self.spent,
                    self.cost_spent,
                    self.emitted as u64,
                );
            }
        }
        // The final ledger rides out on the close event, so subscribers
        // need not track running sums; the monitor also unregisters the
        // session ordinal here. One branch and nothing else when disabled.
        self.emit_obs(|| EventKind::SessionClose {
            emitted: self.emitted as u64,
            queries_spent: self.spent,
            cost_units_spent: self.cost_spent,
            queries_saved: self.saved,
            cost_units_saved: self.cost_saved,
        });
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("strategy", &self.strategy.name())
            .field("emitted", &self.emitted)
            .field("queries_spent", &self.spent)
            .field("cost_units_spent", &self.cost_spent)
            .field("queries_saved", &self.saved)
            .field("cost_units_saved", &self.cost_saved)
            .field("attempts_made", &self.attempts)
            .field("retries_spent", &self.retries)
            .field("strategy_switches", &self.switches)
            .field("budget_limit", &self.budget_limit)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Algorithm;
    use qrs_datagen::synthetic::uniform;
    use qrs_ranking::LinearRank;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::{AttrId, Capability};

    fn service(n: usize, k: usize) -> RerankService {
        let data = uniform(n, 2, 1, 501);
        let server = SimServer::new(data, SystemRank::pseudo_random(7), k);
        RerankService::new(Arc::new(server), n)
    }

    fn anti_service(n: usize, k: usize) -> RerankService {
        let data = uniform(n, 2, 1, 503);
        // Adversarial system ranking to force real query spend.
        let server = SimServer::new(
            data,
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            k,
        );
        RerankService::new(Arc::new(server), n)
    }

    fn rank2() -> Arc<dyn RankFn> {
        Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]))
    }

    #[test]
    fn session_streams_ranked_results() {
        let svc = service(200, 5);
        let mut s = svc.session(Query::all(), rank2()).open().unwrap();
        let (top, err) = s.top(5);
        assert!(err.is_none());
        assert_eq!(top.len(), 5);
        assert!(top.windows(2).all(|w| w[0].score <= w[1].score));
        assert_eq!(top[0].rank, 1);
        assert_eq!(top[4].rank, 5);
        assert_eq!(s.emitted(), 5);
        assert!(s.queries_spent() > 0);
    }

    #[test]
    fn one_d_auto_for_single_attribute() {
        let svc = service(200, 5);
        let rank = Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0)]));
        let mut s = svc.session(Query::all(), rank).open().unwrap();
        let (top, err) = s.top(3);
        assert!(err.is_none());
        let vals: Vec<f64> = top.iter().map(|r| r.tuple.ord(AttrId(0))).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn budget_stops_the_session() {
        let svc = anti_service(500, 3).with_budget(2);
        let mut s = svc.session(Query::all(), rank2()).open().unwrap();
        let mut hit_budget = false;
        for _ in 0..100 {
            match s.next() {
                Err(RerankError::BudgetExhausted { spent, limit }) => {
                    assert_eq!(limit, 2);
                    assert!(spent >= 2);
                    hit_budget = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
                Ok(Some(_)) => {}
                Ok(None) => break,
            }
        }
        assert!(hit_budget, "budget of 2 queries never tripped");
    }

    #[test]
    fn per_session_budget_is_independent() {
        let svc = anti_service(500, 3);
        let mut constrained = svc.session(Query::all(), rank2()).budget(2).open().unwrap();
        let mut err = None;
        for _ in 0..100 {
            match constrained.next() {
                Err(e) => {
                    err = Some(e);
                    break;
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
            }
        }
        assert!(
            matches!(err, Some(RerankError::BudgetExhausted { limit: 2, .. })),
            "per-session budget never tripped: {err:?}"
        );
        // The service itself is unconstrained: a fresh session keeps going.
        let mut free = svc.session(Query::all(), rank2()).open().unwrap();
        let (top, err) = free.top(3);
        assert!(err.is_none());
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn one_d_rejects_multi_attribute_rank_with_typed_error() {
        let svc = service(50, 5);
        let err = svc
            .session(Query::all(), rank2())
            .algorithm(Algorithm::OneD(qrs_core::OneDStrategy::Rerank))
            .open()
            .unwrap_err();
        assert!(
            matches!(err, RerankError::InvalidAlgorithm { ref reason } if reason.contains("single-attribute")),
            "wrong error: {err}"
        );
        // No session was counted for the refused open.
        assert_eq!(svc.stats().sessions_started, 0);
    }

    #[test]
    fn plan_reflects_explicit_algorithm_choice() {
        let svc = service(50, 5);
        // Explicit choice: plan() reports it verbatim, full selection.
        let builder = svc
            .session(Query::all(), rank2())
            .algorithm(Algorithm::Md(qrs_core::MdOptions::rerank()));
        let plan = builder.plan().unwrap();
        assert!(matches!(plan.algorithm, Algorithm::Md(_)));
        assert!(plan.residual.is_none());
        assert!(plan.rationale.contains("explicit"));
        // And plan() fails exactly where open() would: an explicit TA over
        // public ORDER BY on a server that lacks it.
        let err = svc
            .session(Query::all(), rank2())
            .algorithm(Algorithm::Ta(qrs_core::md::ta::SortedAccess::PublicOrderBy))
            .plan()
            .unwrap_err();
        assert!(matches!(err, RerankError::UnsupportedCapability(_)));
        // TA over 1D sorted access carries its own name and is priced in
        // the top-k request class it actually issues, not as ORDER BY.
        let plan = svc
            .session(Query::all(), rank2())
            .algorithm(Algorithm::Ta(qrs_core::md::ta::SortedAccess::OneD(
                qrs_core::OneDStrategy::Rerank,
            )))
            .plan()
            .unwrap();
        assert_eq!(plan.candidates[0].name, "ta-over-1d");
    }

    #[test]
    fn ta_public_order_by_requires_capability() {
        let svc = service(50, 5); // SimServer without with_order_by
        let err = svc
            .session(Query::all(), rank2())
            .algorithm(Algorithm::Ta(qrs_core::md::ta::SortedAccess::PublicOrderBy))
            .open()
            .unwrap_err();
        assert_eq!(
            err,
            RerankError::UnsupportedCapability(Capability::OrderBy(AttrId(0)))
        );
    }

    #[test]
    fn knowledge_accumulates_across_sessions() {
        let svc = service(300, 5);
        let rank = rank2();
        let mut s1 = svc.session(Query::all(), Arc::clone(&rank)).open().unwrap();
        let (got, err) = s1.top(3);
        assert!(err.is_none() && got.len() == 3);
        drop(s1);
        let (h1, _, _) = svc.knowledge();
        assert!(h1 > 0);
        let cost_before = svc.queries_issued();
        // Same request again: shared knowledge should make it cheaper.
        let mut s2 = svc.session(Query::all(), rank).open().unwrap();
        let (got, err) = s2.top(3);
        assert!(err.is_none() && got.len() == 3);
        let second_cost = svc.queries_issued() - cost_before;
        assert!(
            second_cost <= cost_before,
            "no amortization: {second_cost} vs {cost_before}"
        );
        assert_eq!(svc.stats().sessions_started, 2);
    }

    #[test]
    fn top_preserves_partials_on_budget_trip() {
        let svc = anti_service(500, 3).with_budget(30);
        let mut s = svc.session(Query::all(), rank2()).open().unwrap();
        let (hits, err) = s.top(1000);
        let err = err.expect("budget of 30 must trip before 1000 tuples");
        assert!(matches!(err, RerankError::BudgetExhausted { .. }));
        assert!(
            !hits.is_empty(),
            "tuples fetched before the trip must be preserved"
        );
        // The partial batch is still correctly ranked.
        assert!(hits.windows(2).all(|w| w[0].score <= w[1].score));
        // try_top is the all-or-error variant.
        assert!(s.try_top(10).is_err());
    }

    #[test]
    fn retries_absorb_an_outage_storm_without_wall_clock_sleeps() {
        use qrs_server::{Clock, Fault, FaultyServer, MockClock, SearchInterface};
        use qrs_types::RetryPolicy;
        let data = uniform(200, 2, 1, 601);
        let inner = Arc::new(SimServer::new(
            data,
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        ));
        // Three consecutive outages starting at call 2.
        let faulty = FaultyServer::new(Arc::clone(&inner) as Arc<dyn SearchInterface>).with_storm(
            2,
            3,
            Fault::Outage,
        );
        let clock = Arc::new(MockClock::new());
        let svc = RerankService::new(Arc::new(faulty), 200)
            .with_retry_policy(RetryPolicy::none().attempts(5).backoff(100, 10_000))
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let mut s = svc.session(Query::all(), rank2()).open().unwrap();
        let (hits, err) = s.top(5);
        assert!(err.is_none(), "storm should be absorbed: {err:?}");
        assert_eq!(hits.len(), 5);
        assert!(hits.windows(2).all(|w| w[0].score <= w[1].score));
        // The three faulted calls each cost one backoff sleep on the mock
        // clock (pure exponential, zero jitter). The storm struck within a
        // single cursor step or across a few, so the recorded sleeps are a
        // prefix-reset exponential sequence — but never wall-clock.
        assert_eq!(clock.sleeps().iter().sum::<u64>() % 100, 0);
        assert_eq!(s.retries_spent(), 3);
        assert!(s.attempts_made() > s.retries_spent());
        assert_eq!(svc.stats().retries_spent, 3);
        assert_eq!(svc.retry_budget().spent(), 3);
    }

    #[test]
    fn retry_after_hint_dominates_backoff_and_is_honored_exactly() {
        use qrs_server::{Clock, Fault, FaultyServer, MockClock, SearchInterface};
        use qrs_types::RetryPolicy;
        let data = uniform(200, 2, 1, 607);
        let inner = Arc::new(SimServer::new(
            data,
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        ));
        let clock = Arc::new(MockClock::new());
        // The fault carries a 7300 ms hint and the server *enforces* it:
        // any retry before the window elapses is refused again.
        let faulty = FaultyServer::new(Arc::clone(&inner) as Arc<dyn SearchInterface>)
            .with_fault_at(
                1,
                Fault::RateLimit {
                    retry_after_ms: Some(7300),
                },
            )
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let svc = RerankService::new(Arc::new(faulty), 200)
            // Computed backoff would be 50 ms — far below the hint.
            .with_retry_policy(
                RetryPolicy::none()
                    .attempts(4)
                    .backoff(50, 100_000)
                    .jitter(25),
            )
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let mut s = svc.session(Query::all(), rank2()).open().unwrap();
        let (hits, err) = s.top(3);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(hits.len(), 3);
        // Exactly one retry, slept for exactly the server's hint: had the
        // session retried early, the enforcing server would have refused
        // again and the retry count would exceed 1.
        assert_eq!(clock.sleeps(), vec![7300]);
        assert_eq!(s.retries_spent(), 1);
    }

    #[test]
    fn session_retry_limit_surfaces_typed_exhaustion_not_a_hang() {
        use qrs_server::{Clock, FaultyServer, MockClock, SearchInterface};
        use qrs_types::RetryPolicy;
        let data = uniform(100, 2, 1, 611);
        let inner = Arc::new(SimServer::new(data, SystemRank::pseudo_random(7), 3));
        let faulty = FaultyServer::new(Arc::clone(&inner) as Arc<dyn SearchInterface>)
            .with_permanent_outage_from(0);
        let clock = Arc::new(MockClock::new());
        let svc = RerankService::new(Arc::new(faulty), 100)
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let mut s = svc
            .session(Query::all(), rank2())
            .retry(RetryPolicy::none().attempts(1000).backoff(10, 1000))
            .retry_limit(3)
            .open()
            .unwrap();
        let err = s.next().unwrap_err();
        match err {
            RerankError::RetryBudgetExhausted {
                retries_spent,
                limit,
                last,
            } => {
                assert_eq!((retries_spent, limit), (3, 3));
                assert!(last.is_retryable());
            }
            other => panic!("expected RetryBudgetExhausted, got {other}"),
        }
        // Bounded recovery effort: 3 sleeps, all virtual.
        assert_eq!(clock.sleeps().len(), 3);
        assert_eq!(s.stats().retries_spent, 3);
        assert_eq!(s.stats().attempts_made, 4);
    }

    #[test]
    fn service_retry_limit_is_shared_across_sessions() {
        use qrs_server::{Clock, FaultyServer, MockClock, SearchInterface};
        use qrs_types::RetryPolicy;
        let data = uniform(100, 2, 1, 613);
        let inner = Arc::new(SimServer::new(data, SystemRank::pseudo_random(7), 3));
        let faulty = FaultyServer::new(Arc::clone(&inner) as Arc<dyn SearchInterface>)
            .with_permanent_outage_from(0);
        let clock = Arc::new(MockClock::new());
        let svc = RerankService::new(Arc::new(faulty), 100)
            .with_retry_policy(RetryPolicy::none().attempts(1000).backoff(10, 1000))
            .with_retry_limit(5)
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let mut a = svc.session(Query::all(), rank2()).open().unwrap();
        let err = a.next().unwrap_err();
        assert!(
            matches!(err, RerankError::RetryBudgetExhausted { limit: 5, .. }),
            "{err}"
        );
        // The whole service budget is gone: a second session gets no retries.
        let mut b = svc.session(Query::all(), rank2()).open().unwrap();
        let err = b.next().unwrap_err();
        match err {
            RerankError::RetryBudgetExhausted {
                retries_spent,
                limit,
                ..
            } => assert_eq!((retries_spent, limit), (5, 5)),
            other => panic!("expected RetryBudgetExhausted, got {other}"),
        }
        assert_eq!(b.retries_spent(), 0);
        assert_eq!(svc.retry_budget().spent(), 5);
    }

    #[test]
    fn failed_attempts_keep_in_lock_query_attribution_exact() {
        use qrs_server::{Fault, FaultyServer, SearchInterface};
        use qrs_types::RetryPolicy;
        // Truncated pages are charged by the backend but error out: the
        // session must still attribute those queries to itself, so spend
        // sums to the global counter even under retries. Regression for
        // counting outside the lock / only on the happy path.
        let data = uniform(300, 2, 1, 617);
        let inner = Arc::new(SimServer::new(
            data,
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        ));
        let faulty = Arc::new(
            FaultyServer::new(Arc::clone(&inner) as Arc<dyn SearchInterface>)
                .with_fault_at(3, Fault::TruncatedPage)
                .with_fault_at(7, Fault::TruncatedPage),
        );
        let svc = RerankService::new(Arc::clone(&faulty) as Arc<dyn SearchInterface>, 300)
            .with_retry_policy(RetryPolicy::none().attempts(4));
        let mut s = svc.session(Query::all(), rank2()).open().unwrap();
        let (hits, err) = s.top(6);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(hits.len(), 6);
        assert_eq!(
            s.queries_spent(),
            svc.queries_issued(),
            "failed attempts' spend must be attributed to the session"
        );
        assert_eq!(s.retries_spent(), 2);
        let stats = s.stats();
        assert_eq!(stats.queries_spent, s.queries_spent());
        assert_eq!(stats.retries_spent, 2);
        assert!(stats.attempts_made >= 2 + hits.len() as u64);
    }

    #[test]
    fn decorrelated_jitter_sleeps_are_bounded_and_seeded_on_the_mock_clock() {
        use qrs_server::{Clock, Fault, FaultyServer, MockClock, SearchInterface};
        use qrs_types::RetryPolicy;
        let run = |policy_seed: u64| -> Vec<u64> {
            let data = uniform(200, 2, 1, 619);
            let inner = Arc::new(SimServer::new(
                data,
                SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
                3,
            ));
            // Five consecutive outages: five decorrelated sleeps.
            let faulty = FaultyServer::new(Arc::clone(&inner) as Arc<dyn SearchInterface>)
                .with_storm(1, 5, Fault::Outage);
            let clock = Arc::new(MockClock::new());
            let svc = RerankService::new(Arc::new(faulty), 200)
                .with_retry_policy(
                    RetryPolicy::decorrelated_jitter(policy_seed)
                        .attempts(10)
                        .backoff(100, 1_500),
                )
                .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
            let mut s = svc.session(Query::all(), rank2()).open().unwrap();
            let (hits, err) = s.top(3);
            assert!(err.is_none(), "storm should be absorbed: {err:?}");
            assert_eq!(hits.len(), 3);
            assert_eq!(s.retries_spent(), 5);
            clock.sleeps()
        };
        let sleeps = run(42);
        assert_eq!(sleeps.len(), 5);
        // Bounded: every sleep within [base, cap], and chained below 3x
        // the previous draw (the decorrelated distribution's support).
        let mut prev = 100u64;
        for &ms in &sleeps {
            assert!((100..=1_500).contains(&ms), "sleep {ms} out of bounds");
            assert!(ms <= prev.saturating_mul(3).min(1_500));
            prev = ms;
        }
        // Seeded: an identical service replays the identical sequence; a
        // different policy seed draws a different one.
        assert_eq!(sleeps, run(42));
        assert_ne!(sleeps, run(43));
    }

    #[test]
    fn server_rate_limit_surfaces_with_partials() {
        let data = uniform(400, 2, 1, 509);
        let server = SimServer::new(
            data,
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        )
        .with_rate_limit(25);
        let svc = RerankService::new(Arc::new(server), 400);
        let mut s = svc.session(Query::all(), rank2()).open().unwrap();
        let (hits, err) = s.top(1000);
        match err {
            Some(RerankError::Server(e)) => assert!(e.is_transient()),
            other => panic!("expected a server error, got {other:?}"),
        }
        // Whatever was fetched before the 429 is kept and ranked.
        assert!(hits.windows(2).all(|w| w[0].score <= w[1].score));
    }
}
