//! Incremental Get-Next sessions (§2.2's problem interface).
//!
//! A session binds one user query + ranking function to a cursor; each
//! [`Session::next`] returns the next-ranked tuple, charging only the
//! incremental query cost ("progressively return top answers while paying
//! only the incremental cost"). The shared service state is locked per call,
//! so concurrent sessions interleave cleanly.

use crate::budget::BudgetError;
use crate::service::{Algorithm, RerankService};
use qrs_core::md::ta::TaCursor;
use qrs_core::{MdCursor, OneDCursor, OneDSpec, TiePolicy};
use qrs_ranking::RankFn;
use qrs_types::{Query, Tuple};
use std::sync::Arc;

/// One emitted answer: global rank (1-based), user score, tuple.
#[derive(Debug, Clone)]
pub struct RankedTuple {
    pub rank: usize,
    pub score: f64,
    pub tuple: Arc<Tuple>,
}

enum Cursor {
    OneD(OneDCursor),
    Md(MdCursor),
    Ta(TaCursor),
}

/// A user's incremental reranked query.
pub struct Session<'a> {
    svc: &'a RerankService,
    rank: Arc<dyn RankFn>,
    cursor: Cursor,
    emitted: usize,
    start_counter: u64,
}

impl<'a> Session<'a> {
    pub(crate) fn new(
        svc: &'a RerankService,
        sel: Query,
        rank: Arc<dyn RankFn>,
        algo: Algorithm,
        tie: TiePolicy,
    ) -> Self {
        let schema = svc.server().schema();
        let cursor = match algo {
            Algorithm::OneD(strategy) => Cursor::OneD(OneDCursor::new(
                OneDSpec::new(rank.attrs()[0], rank.directions()[0], sel),
                strategy,
                tie,
            )),
            Algorithm::Md(opts) => {
                Cursor::Md(MdCursor::new(Arc::clone(&rank), sel, opts, schema))
            }
            Algorithm::Ta(access) => Cursor::Ta(TaCursor::with_server_caps(
                Arc::clone(&rank),
                sel,
                access,
                schema,
                &svc.server().order_by_attrs(),
            )),
            Algorithm::Auto => unreachable!("resolved by RerankService::session"),
        };
        let start_counter = svc.server().queries_issued();
        Session {
            svc,
            rank,
            cursor,
            emitted: 0,
            start_counter,
        }
    }

    /// The next tuple under the user ranking, or `Ok(None)` when exhausted.
    ///
    /// Not an `Iterator`: each step can fail on the query budget, and
    /// callers need that error, not a silent stop.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<RankedTuple>, BudgetError> {
        self.svc
            .budget()
            .check(self.svc.server().queries_issued())?;
        let server = Arc::clone(self.svc.server());
        let mut st = self.svc.state().lock();
        let t = match &mut self.cursor {
            Cursor::OneD(c) => c.next(server.as_ref(), &mut st),
            Cursor::Md(c) => c.next(server.as_ref(), &mut st),
            Cursor::Ta(c) => c.next(server.as_ref(), &mut st),
        };
        drop(st);
        Ok(t.map(|tuple| {
            self.emitted += 1;
            self.svc.stats_ref().on_emit();
            RankedTuple {
                rank: self.emitted,
                score: self.rank.score(&tuple),
                tuple,
            }
        }))
    }

    /// Fetch the next `h` tuples (shorter if exhausted).
    pub fn top(&mut self, h: usize) -> Result<Vec<RankedTuple>, BudgetError> {
        let mut out = Vec::with_capacity(h);
        for _ in 0..h {
            match self.next()? {
                Some(r) => out.push(r),
                None => break,
            }
        }
        Ok(out)
    }

    /// Tuples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Queries this session has (so far) caused against the database.
    ///
    /// Under concurrency this attributes interleaved queries to whichever
    /// session observes them; exact per-session attribution would need
    /// per-call counters.
    pub fn queries_spent(&self) -> u64 {
        self.svc.server().queries_issued() - self.start_counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_datagen::synthetic::uniform;
    use qrs_ranking::LinearRank;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::AttrId;

    fn service(n: usize, k: usize) -> RerankService {
        let data = uniform(n, 2, 1, 501);
        let server = SimServer::new(data, SystemRank::pseudo_random(7), k);
        RerankService::new(Arc::new(server), n)
    }

    #[test]
    fn session_streams_ranked_results() {
        let svc = service(200, 5);
        let rank = Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]));
        let mut s = svc.session(Query::all(), rank, Algorithm::Auto);
        let top = s.top(5).unwrap();
        assert_eq!(top.len(), 5);
        assert!(top.windows(2).all(|w| w[0].score <= w[1].score));
        assert_eq!(top[0].rank, 1);
        assert_eq!(top[4].rank, 5);
        assert_eq!(s.emitted(), 5);
        assert!(s.queries_spent() > 0);
    }

    #[test]
    fn one_d_auto_for_single_attribute() {
        let svc = service(200, 5);
        let rank = Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0)]));
        let mut s = svc.session(Query::all(), rank, Algorithm::Auto);
        let top = s.top(3).unwrap();
        let vals: Vec<f64> = top.iter().map(|r| r.tuple.ord(AttrId(0))).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn budget_stops_the_session() {
        let data = uniform(500, 2, 1, 503);
        // Adversarial system ranking to force real query spend.
        let server = SimServer::new(
            data,
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        );
        let svc = RerankService::new(Arc::new(server), 500).with_budget(2);
        let rank = Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]));
        let mut s = svc.session(Query::all(), rank, Algorithm::Auto);
        let mut hit_budget = false;
        for _ in 0..100 {
            match s.next() {
                Err(e) => {
                    assert!(e.spent >= 2);
                    hit_budget = true;
                    break;
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
            }
        }
        assert!(hit_budget, "budget of 2 queries never tripped");
    }

    #[test]
    #[should_panic(expected = "single-attribute")]
    fn one_d_rejects_multi_attribute_rank() {
        let svc = service(50, 5);
        let rank = Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]));
        let _ = svc.session(
            Query::all(),
            rank,
            Algorithm::OneD(qrs_core::OneDStrategy::Rerank),
        );
    }

    #[test]
    fn knowledge_accumulates_across_sessions() {
        let svc = service(300, 5);
        let rank = Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]));
        let mut s1 = svc.session(Query::all(), Arc::clone(&rank) as _, Algorithm::Auto);
        s1.top(3).unwrap();
        drop(s1);
        let (h1, _, _) = svc.knowledge();
        assert!(h1 > 0);
        let cost_before = svc.queries_issued();
        // Same request again: shared knowledge should make it cheaper.
        let mut s2 = svc.session(Query::all(), rank, Algorithm::Auto);
        s2.top(3).unwrap();
        let second_cost = svc.queries_issued() - cost_before;
        assert!(second_cost <= cost_before, "no amortization: {second_cost} vs {cost_before}");
        assert_eq!(svc.stats().sessions_started, 2);
    }
}
