//! The reranking service facade and its capability-preflighted session
//! builder.
//!
//! [`RerankService::session`] returns a [`SessionBuilder`]; nothing talks to
//! the hidden database until [`SessionBuilder::open`], which validates the
//! algorithm/ranking pairing and negotiates required server capabilities
//! *up front* — misconfiguration surfaces as a typed
//! [`RerankError`] at open time, never as a panic deep inside an algorithm.

use crate::budget::QueryBudget;
use crate::calibration::Calibration;
use crate::maintained::{MaintainedConfig, MaintainedSession};
use crate::planner::{Plan, Planner, RankedCandidate};
use crate::retry::{RetryBudget, RetryRunner};
use crate::session::{AdaptiveState, Session, SessionKnowledge};
use crate::stats::ServiceStats;
use parking_lot::Mutex;
use qrs_core::md::ta::SortedAccess;
use qrs_core::strategy::{
    MdCursorStrategy, OneDCursorStrategy, PageDownStrategy, RerankStrategy, TaCursorStrategy,
};
use qrs_core::{
    KnowledgeGate, MdOptions, OneDSpec, OneDStrategy, RerankParams, SharedState, TiePolicy,
};
use qrs_knowledge::{query_key, KnowledgePlane, ResultKey};
use qrs_obs::{EventKind, MonitorReport, ObsHandle, QueryClass};
use qrs_ranking::RankFn;
use qrs_server::{Clock, SearchInterface, SystemClock};
use qrs_types::{AdaptiveConfig, Capability, Query, RerankError, RetryPolicy};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A service's hookup to the cross-session knowledge plane: the shared
/// plane, the source name this service's server is registered under, and
/// the [`KnowledgeGate`] every opted-in session routes its requests
/// through.
struct KnowledgeHandle {
    plane: Arc<KnowledgePlane>,
    source: String,
    gate: Arc<KnowledgeGate>,
}

/// Which reranking algorithm a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Choose automatically: 1D-RERANK for single-attribute ranking
    /// functions, MD-RERANK otherwise.
    Auto,
    /// A §3 algorithm (ranking function must be single-attribute).
    OneD(OneDStrategy),
    /// A §4 box-partitioning algorithm (baseline/binary/rerank via options).
    Md(MdOptions),
    /// TA over per-attribute sorted access (§4.1 / §5). With
    /// [`SortedAccess::PublicOrderBy`] the server must advertise `ORDER BY`
    /// on every ranking attribute (checked at [`SessionBuilder::open`]).
    Ta(SortedAccess),
    /// Strict page-down: page the system ranking to the end of `R(q)` and
    /// rerank locally. The exact fallback for sites whose filters are too
    /// weak for the cursor algorithms; requires [`Capability::Paging`] and
    /// errors (typed) instead of going approximate if `max_pages` runs out
    /// before the result drains. The planner only selects it when the
    /// advertised depth provably suffices.
    PageDown {
        /// Deepest page the cursor may request (`usize::MAX` = unlimited).
        max_pages: usize,
    },
    /// A user-registered [`RerankStrategy`] object, supplied via
    /// [`SessionBuilder::strategy`]. The planner is bypassed (the strategy
    /// object itself is the plan); budgets, retries and ledger attribution
    /// apply exactly as for the built-in algorithms.
    Custom,
}

/// A third-party reranking service fronting one client-server database.
///
/// The shared state (history, complete regions, dense indexes) lives behind
/// a mutex and is reused by every session — concurrent sessions interleave
/// at Get-Next granularity.
pub struct RerankService {
    server: Arc<dyn SearchInterface>,
    state: Mutex<SharedState>,
    stats: ServiceStats,
    budget: QueryBudget,
    /// Default retry policy for sessions that don't override it.
    retry_policy: RetryPolicy,
    /// Service-wide cap on retries, shared across all sessions.
    retry_budget: RetryBudget,
    /// Time source for backoff sleeps (a mock clock in tests).
    clock: Arc<dyn Clock>,
    /// Cross-session knowledge hookup, when built `with_knowledge`.
    kplane: Option<KnowledgeHandle>,
    /// The observability plane (disabled by default: one branch per
    /// emission site, nothing constructed).
    obs: ObsHandle,
    /// The adaptive-planner knobs: calibration + mid-flight re-planning.
    /// [`AdaptiveConfig::disabled`] by default — the static planner, bit
    /// for bit.
    adaptive: AdaptiveConfig,
    /// Observed-cost store the adaptive loops train and consult. Always
    /// present (it is inert until `adaptive.calibrate` turns it on) so
    /// callers can pre-train or share one across services.
    calibration: Arc<Calibration>,
    /// The server's mutation sequence number the shared state was built
    /// against. When the feed moves past it, the history and dense indexes
    /// describe an older snapshot and are rebuilt empty at the next open.
    state_watermark: AtomicU64,
}

impl RerankService {
    /// Service with the paper's default dense-index parameters, sized by
    /// `n_estimate` (a third party estimates the database size out of band).
    pub fn new(server: Arc<dyn SearchInterface>, n_estimate: usize) -> Self {
        let params = RerankParams::paper_defaults(n_estimate, server.k());
        Self::with_params(server, params)
    }

    /// Service with explicit dense-index parameters.
    pub fn with_params(server: Arc<dyn SearchInterface>, params: RerankParams) -> Self {
        let state = SharedState::new(server.schema(), params);
        let state_watermark = AtomicU64::new(server.mutation_seq());
        RerankService {
            server,
            state: Mutex::new(state),
            stats: ServiceStats::default(),
            budget: QueryBudget::unlimited(),
            retry_policy: RetryPolicy::none(),
            retry_budget: RetryBudget::unlimited(),
            clock: Arc::new(SystemClock::new()),
            kplane: None,
            obs: ObsHandle::disabled(),
            adaptive: AdaptiveConfig::disabled(),
            calibration: Calibration::shared(),
            state_watermark,
        }
    }

    /// Poll the server's mutation feed and, if it moved past the watermark
    /// the shared state was built against, rebuild the state empty: the
    /// history tuples, completeness proofs and dense indexes all describe
    /// the pre-mutation snapshot, and an algorithm trusting them after a
    /// delete would emit vanished tuples. Called by every
    /// [`SessionBuilder::open`]; a no-op on servers without a mutation
    /// feed (their sequence number is 0 forever). Returns the sequence
    /// number seen.
    pub(crate) fn sync_state(&self) -> u64 {
        let seq = self.server.mutation_seq();
        if seq > self.state_watermark.load(Ordering::Acquire) {
            let mut st = self.state.lock();
            // Re-check under the lock: a racing open may have rebuilt.
            if seq > self.state_watermark.load(Ordering::Acquire) {
                *st = SharedState::new(self.server.schema(), st.params);
                self.state_watermark.store(seq, Ordering::Release);
            }
        }
        seq
    }

    /// Attach a cross-session [`KnowledgePlane`], registering this
    /// service's server under `source`. Every session opened afterwards
    /// (unless it opts out via [`SessionBuilder::knowledge`]) consults the
    /// plane's shard for `source` before paying the server, and records
    /// what it learns for later sessions — including sessions of *other*
    /// services built with the same plane and source name, which is how a
    /// federation amortizes across tenants (§3.1.1's cross-session
    /// amortization, lifted out of one process-wide `SharedState`).
    ///
    /// Staleness has two regimes. Servers advertising
    /// [`Capability::MutationFeed`] handle it automatically: the gate polls
    /// the feed's sequence number before every request and at session open,
    /// and the shard's epoch bumps the moment the watermark advances — no
    /// manual call, and sealed result streams are never replayed across a
    /// data change. For servers *without* a feed the old contract stands:
    /// when the underlying site is known to have changed, call
    /// [`KnowledgePlane::invalidate`] for the source (one atomic epoch
    /// bump) and every cached fact is re-earned.
    pub fn with_knowledge(mut self, plane: Arc<KnowledgePlane>, source: impl Into<String>) -> Self {
        let source = source.into();
        let gate = Arc::new(KnowledgeGate::new(
            Arc::clone(&self.server),
            plane.shard(&source),
        ));
        self.kplane = Some(KnowledgeHandle {
            plane,
            source,
            gate,
        });
        self
    }

    /// Enforce a service-wide query cap (e.g. the API's daily limit).
    pub fn with_budget(mut self, limit: u64) -> Self {
        self.budget = QueryBudget::limited(limit, self.server.queries_issued());
        self
    }

    /// Default retry policy for every session opened on this service
    /// (sessions may override via [`SessionBuilder::retry`]). The default
    /// is [`RetryPolicy::none`]: fail fast, errors surface unchanged.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = policy;
        self
    }

    /// Cap retries *service-wide*: once `limit` retries have been spent
    /// across all sessions, further transient failures surface as
    /// [`RerankError::RetryBudgetExhausted`] instead of sleeping.
    pub fn with_retry_limit(mut self, limit: u64) -> Self {
        self.retry_budget = RetryBudget::limited(limit);
        self
    }

    /// Inject the time source used for backoff sleeps. Tests pass a
    /// [`qrs_server::MockClock`] so whole rate-limit storms run without
    /// wall-clock sleeping.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Attach an observability plane: every session opened afterwards
    /// emits the typed [`qrs_obs`] event stream (plan chosen, requests
    /// charged, retries, circuit trips, knowledge hits, budget trips,
    /// open/close) through the handle, timestamped on the service's
    /// injectable clock. Services built without one hold
    /// [`ObsHandle::disabled`]: each emission site costs a single branch
    /// and constructs nothing, leaving ledgers and result streams
    /// byte-identical to an uninstrumented build.
    ///
    /// Several services may share one handle (or one caller-built
    /// [`qrs_obs::Monitor`] attached to several handles) to aggregate a
    /// fleet-wide view.
    pub fn with_observer(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Opt into the closed-loop adaptive planner: with
    /// [`AdaptiveConfig::enabled`] (or any config whose
    /// [`AdaptiveConfig::is_active`] holds), the service's
    /// [`Calibration`] store learns per-strategy actual/predicted spend
    /// ratios from the charged ledger deltas, [`RerankService::planner`]
    /// scales candidate estimates by them before ranking, and a running
    /// [`Algorithm::Auto`] session whose weighted spend exceeds
    /// `divergence_ratio ×` its calibrated prediction re-plans among the
    /// remaining feasible candidates and switches strategies mid-flight
    /// (at most once, keeping every paid-for row). The default is
    /// [`AdaptiveConfig::disabled`]: static planning, bit for bit.
    pub fn with_adaptive(mut self, cfg: AdaptiveConfig) -> Self {
        self.adaptive = cfg;
        self
    }

    /// Share a caller-owned [`Calibration`] store: several services (or a
    /// bench's before/after phases) training and consulting one model —
    /// the same cross-tenant amortization argument as
    /// [`RerankService::with_knowledge`].
    pub fn with_calibration(mut self, store: Arc<Calibration>) -> Self {
        self.calibration = store;
        self
    }

    /// The observed-cost calibration store (inert unless the service was
    /// opted in via [`RerankService::with_adaptive`]). Inspect it with
    /// [`Calibration::snapshot`].
    pub fn calibration(&self) -> &Arc<Calibration> {
        &self.calibration
    }

    /// The adaptive-planner knobs this service runs under.
    pub fn adaptive(&self) -> &AdaptiveConfig {
        &self.adaptive
    }

    /// The attached observability handle (disabled unless the service was
    /// built [`RerankService::with_observer`]). Use it to snapshot
    /// [`qrs_obs::MetricsSnapshot`] counters and histograms.
    pub fn observer(&self) -> &ObsHandle {
        &self.obs
    }

    /// Snapshot the fleet monitor's per-(site, strategy)
    /// predicted-vs-actual spend table — plan-time estimates against
    /// charged ledgers, with knowledge savings alongside. Empty when no
    /// observer is attached.
    pub fn monitor_report(&self) -> MonitorReport {
        self.obs.monitor_report()
    }

    /// Begin a Get-Next session for `sel` ranked by `rank`.
    ///
    /// Returns a [`SessionBuilder`]; configure it and call
    /// [`SessionBuilder::open`], which preflights the request and returns a
    /// typed [`RerankError`] for misuse (wrong algorithm arity, missing
    /// server capability) instead of panicking later.
    pub fn session(&self, sel: Query, rank: Arc<dyn RankFn>) -> SessionBuilder<'_> {
        SessionBuilder {
            svc: self,
            sel,
            rank,
            algo: Algorithm::Auto,
            tie: TiePolicy::Exact,
            budget: None,
            retry: None,
            retry_limit: None,
            horizon: None,
            custom: None,
            use_knowledge: true,
        }
    }

    /// The underlying search interface.
    pub fn server(&self) -> &Arc<dyn SearchInterface> {
        &self.server
    }

    /// Total queries the service has issued to the database.
    pub fn queries_issued(&self) -> u64 {
        self.server.queries_issued()
    }

    /// Point-in-time snapshot of the service-wide activity counters.
    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        self.stats.snapshot()
    }

    pub(crate) fn stats_ref(&self) -> &ServiceStats {
        &self.stats
    }

    /// A capability-aware [`Planner`] for this service's server: preflight
    /// query shapes against the site model without opening a session.
    /// [`SessionBuilder::open`] runs the same planner for
    /// [`Algorithm::Auto`] sessions.
    pub fn planner(&self) -> Planner {
        let planner = Planner::new(
            self.server.capabilities(),
            Arc::clone(self.server.schema()),
            self.server.k(),
            self.n_estimate(),
        );
        if self.adaptive.calibrate {
            planner.with_calibration(Arc::clone(&self.calibration))
        } else {
            planner
        }
    }

    /// The database-size estimate the service was built with (drives the
    /// planner's drain proofs and cost estimates).
    pub(crate) fn n_estimate(&self) -> usize {
        self.state.lock().params.n as usize
    }

    /// The service-wide query budget — inspect spend or open a new
    /// accounting window via [`QueryBudget::reset`].
    pub fn budget(&self) -> &QueryBudget {
        &self.budget
    }

    /// The service-wide retry budget — inspect spend or reset the window,
    /// mirroring [`RerankService::budget`].
    pub fn retry_budget(&self) -> &RetryBudget {
        &self.retry_budget
    }

    /// The injectable clock this service runs on — the same time base as
    /// backoff sleeps, batch latency, and the observability plane. Front
    /// ends (like the HTTP edge) stamp their own events on it so a whole
    /// stack shares one notion of time under a `MockClock`.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    pub(crate) fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    pub(crate) fn default_retry_policy(&self) -> &RetryPolicy {
        &self.retry_policy
    }

    pub(crate) fn state(&self) -> &Mutex<SharedState> {
        &self.state
    }

    /// The cross-session knowledge plane this service publishes to, if it
    /// was built [`RerankService::with_knowledge`].
    pub fn knowledge_plane(&self) -> Option<&Arc<KnowledgePlane>> {
        self.kplane.as_ref().map(|h| &h.plane)
    }

    /// The source name this service's server is registered under on the
    /// knowledge plane, if any.
    pub fn knowledge_source(&self) -> Option<&str> {
        self.kplane.as_ref().map(|h| h.source.as_str())
    }

    pub(crate) fn knowledge_gate(&self) -> Option<&Arc<KnowledgeGate>> {
        self.kplane.as_ref().map(|h| &h.gate)
    }

    /// Size of the shared knowledge accumulated so far: (history tuples,
    /// 1D dense intervals, MD dense boxes).
    pub fn knowledge(&self) -> (usize, usize, usize) {
        let st = self.state.lock();
        (
            st.history.len(),
            st.dense1d.num_intervals(),
            st.densemd.num_boxes(),
        )
    }
}

impl std::fmt::Debug for RerankService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RerankService")
            .field("queries_issued", &self.queries_issued())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

/// Configures and preflights one Get-Next session.
///
/// Defaults: [`Algorithm::Auto`], [`TiePolicy::Exact`], no per-session
/// budget (the service-wide budget still applies).
///
/// ```
/// use qrs_ranking::LinearRank;
/// use qrs_server::{SimServer, SystemRank};
/// use qrs_service::RerankService;
/// use qrs_types::{AttrId, Query};
/// use std::sync::Arc;
///
/// let data = qrs_datagen::synthetic::uniform(200, 2, 1, 7);
/// let server = SimServer::new(data, SystemRank::pseudo_random(1), 5);
/// let service = RerankService::new(Arc::new(server), 200);
///
/// // Preflighted open: the capability-aware planner picks the algorithm;
/// // misuse surfaces as a typed error here, never as a panic mid-stream.
/// let rank = Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]));
/// let mut session = service
///     .session(Query::all(), rank)
///     .budget(500) // per-session query cap, on top of the service budget
///     .open()?;
///
/// // `top` keeps everything already paid for: on a budget trip or server
/// // failure you get the partial batch *and* the error.
/// let (hits, err) = session.top(5);
/// assert!(err.is_none());
/// assert_eq!(hits.len(), 5);
/// assert!(hits.windows(2).all(|w| w[0].score <= w[1].score));
/// # Ok::<(), qrs_types::RerankError>(())
/// ```
#[must_use = "a session builder does nothing until .open() is called"]
pub struct SessionBuilder<'a> {
    svc: &'a RerankService,
    sel: Query,
    rank: Arc<dyn RankFn>,
    algo: Algorithm,
    tie: TiePolicy,
    budget: Option<u64>,
    retry: Option<RetryPolicy>,
    retry_limit: Option<u64>,
    /// Pull-horizon hint for cost estimation (`None` = one page, `k`).
    horizon: Option<usize>,
    /// A user-registered strategy object; when set, the session drives it
    /// instead of a planner- or caller-chosen built-in algorithm.
    custom: Option<Box<dyn RerankStrategy>>,
    /// Consult the service's knowledge plane, when it has one (default
    /// true; a no-op on plane-less services).
    use_knowledge: bool,
}

impl<'a> SessionBuilder<'a> {
    /// Pick the reranking algorithm (default [`Algorithm::Auto`]).
    pub fn algorithm(mut self, algo: Algorithm) -> Self {
        self.algo = algo;
        self
    }

    /// Hint how many tuples this session expects to pull (the `h` of
    /// top-`h`). Only cost estimation reads it — feasibility never does —
    /// but it can flip the planner's ranking: a page-down drain costs the
    /// same for any horizon, cursors pay per tuple. Defaults to one page
    /// (`k`). The `planner_cost` experiment validates the ranking at the
    /// horizon it runs, so sessions that state theirs get the validated
    /// choice.
    pub fn horizon(mut self, h: usize) -> Self {
        self.horizon = Some(h);
        self
    }

    /// Register a custom [`RerankStrategy`] for this session: the session
    /// drives the supplied object instead of a built-in algorithm. The
    /// planner is bypassed — [`SessionBuilder::plan`] reports
    /// [`Algorithm::Custom`] with the strategy's own
    /// [`RerankStrategy::estimate`] — but everything else applies
    /// unchanged: per-session and service budgets gate every step, retries
    /// absorb transient failures, and the queries the strategy issues are
    /// charged to this session's ledger. Exactness (emission order) is the
    /// strategy's own responsibility.
    pub fn strategy(mut self, strategy: Box<dyn RerankStrategy>) -> Self {
        self.custom = Some(strategy);
        self
    }

    /// Opt this session in or out of the service's knowledge plane
    /// (default in). Opting out makes the session pay the server for every
    /// request and record nothing — useful as a cold-cost control, or when
    /// the caller suspects the plane is stale but cannot afford an
    /// invalidation that would evict other tenants' knowledge.
    pub fn knowledge(mut self, on: bool) -> Self {
        self.use_knowledge = on;
        self
    }

    /// Pick how equal ranking values are treated (default
    /// [`TiePolicy::Exact`]).
    pub fn tie_policy(mut self, tie: TiePolicy) -> Self {
        self.tie = tie;
        self
    }

    /// Cap the queries this one session may cause (on top of the service
    /// budget). Exceeding it returns [`RerankError::BudgetExhausted`] from
    /// `Session::next`, with the partial batch preserved by `Session::top`.
    pub fn budget(mut self, limit: u64) -> Self {
        self.budget = Some(limit);
        self
    }

    /// Override the service's default retry policy for this session.
    /// Transient server failures ([`RerankError::is_retryable`]) are
    /// retried with exponential backoff + jitter, honoring the server's
    /// `retry_after_ms` hint; non-retryable errors surface immediately.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Cap the retries this one session may spend (on top of the
    /// service-wide retry budget). Exceeding it surfaces
    /// [`RerankError::RetryBudgetExhausted`].
    pub fn retry_limit(mut self, limit: u64) -> Self {
        self.retry_limit = Some(limit);
        self
    }

    /// The cost-estimation context for this request: the server's
    /// advertised site model, the service's size estimate, a one-page
    /// horizon.
    fn plan_context(&self) -> qrs_core::strategy::PlanContext {
        let server = self.svc.server();
        qrs_core::strategy::PlanContext {
            caps: server.capabilities(),
            schema: Arc::clone(server.schema()),
            k: server.k(),
            n_estimate: self.svc.n_estimate(),
            horizon: self.horizon.unwrap_or(server.k()).max(1),
            server_query: self.sel.clone(),
            rank_attrs: self.rank.attrs().to_vec(),
        }
    }

    /// Dry-run the decision [`SessionBuilder::open`] will execute, without
    /// opening a session or touching the server.
    ///
    /// Under [`Algorithm::Auto`] this runs the capability-aware
    /// [`Planner`], which cost-ranks every feasible candidate under the
    /// site's advertised cost model; with an explicit
    /// [`SessionBuilder::algorithm`] choice it returns that choice
    /// verbatim (full selection, no residual) after the same
    /// hard-requirement preflights `open` performs — so what `plan`
    /// reports is always what `open` runs. A registered
    /// [`SessionBuilder::strategy`] reports [`Algorithm::Custom`] with the
    /// strategy's own estimate.
    pub fn plan(&self) -> Result<Plan, RerankError> {
        // NaN range endpoints poison every comparison downstream (a
        // predicate that matches nothing, region arithmetic that never
        // converges) — refuse them here, typed, before anything is spent.
        self.sel.validate()?;
        if let Some(custom) = &self.custom {
            let estimate = custom.estimate(&self.plan_context());
            return Ok(Plan {
                algorithm: Algorithm::Custom,
                server_query: self.sel.clone(),
                residual: None,
                estimate,
                calibrated_estimate: estimate,
                candidates: vec![RankedCandidate {
                    name: custom.name().to_string(),
                    algorithm: Algorithm::Custom,
                    estimate,
                    calibrated: estimate,
                    server_query: self.sel.clone(),
                    residual: None,
                    relaxed: false,
                }],
                rationale: format!(
                    "user-registered strategy `{}`: planner bypassed, the caller \
                     takes responsibility for exactness",
                    custom.name()
                ),
            });
        }
        match self.algo {
            Algorithm::Auto => {
                let mut planner = self.svc.planner();
                if let Some(h) = self.horizon {
                    planner = planner.with_horizon(h);
                }
                planner.plan(&self.sel, self.rank.as_ref(), self.tie)
            }
            explicit => {
                self.preflight(explicit)?;
                let estimate = Planner::estimate_for(&explicit, &self.plan_context());
                Ok(Plan {
                    algorithm: explicit,
                    server_query: self.sel.clone(),
                    residual: None,
                    estimate,
                    calibrated_estimate: estimate,
                    candidates: vec![RankedCandidate {
                        name: algorithm_name(&explicit).to_string(),
                        algorithm: explicit,
                        estimate,
                        calibrated: estimate,
                        server_query: self.sel.clone(),
                        residual: None,
                        relaxed: false,
                    }],
                    rationale: "explicit algorithm choice: planner bypassed, the caller \
                                takes responsibility; hard requirements preflighted"
                        .to_string(),
                })
            }
        }
    }

    /// The classic hard-requirement preflights, run for every session
    /// regardless of how its algorithm was chosen.
    fn preflight(&self, algo: Algorithm) -> Result<(), RerankError> {
        if matches!(algo, Algorithm::OneD(_)) && self.rank.dims() != 1 {
            return Err(RerankError::invalid_algorithm(format!(
                "1D algorithms require a single-attribute ranking function, \
                 got {} attributes",
                self.rank.dims()
            )));
        }
        if matches!(algo, Algorithm::Custom) && self.custom.is_none() {
            return Err(RerankError::invalid_algorithm(
                "Algorithm::Custom requires a strategy object; register one \
                 via SessionBuilder::strategy",
            ));
        }
        if let Algorithm::Ta(SortedAccess::PublicOrderBy) = algo {
            let caps = self.svc.server().capabilities();
            for &a in self.rank.attrs() {
                caps.require(Capability::OrderBy(a))?;
            }
        }
        if let Algorithm::PageDown { .. } = algo {
            self.svc
                .server()
                .capabilities()
                .require(Capability::Paging)?;
        }
        Ok(())
    }

    /// Construct the strategy object the session will drive, from a plan's
    /// algorithm and (possibly relaxed) server-side query.
    fn build_strategy(&self, plan: &Plan) -> Box<dyn RerankStrategy> {
        build_strategy_for(
            self.svc,
            Arc::clone(&self.rank),
            self.tie,
            &plan.algorithm,
            plan.server_query.clone(),
        )
    }

    /// Validate the request and open the session.
    ///
    /// Under [`Algorithm::Auto`] the capability-aware [`Planner`] picks the
    /// algorithm from the server's advertised site model, relaxing
    /// predicates the site cannot evaluate (they are re-applied
    /// client-side — exactness is preserved). An explicit algorithm choice
    /// skips the planner: the caller takes responsibility for the pairing,
    /// and only the classic preflights run. Either way the executed plan
    /// is exactly what [`SessionBuilder::plan`] reports.
    ///
    /// # Errors
    /// * [`RerankError::Unplannable`] — [`Algorithm::Auto`] and no
    ///   algorithm fits the site's capabilities; the error names what is
    ///   missing.
    /// * [`RerankError::InvalidAlgorithm`] — a 1D algorithm with a
    ///   multi-attribute ranking function.
    /// * [`RerankError::UnsupportedCapability`] — `Ta(PublicOrderBy)`
    ///   against a server whose [`qrs_server::Capabilities`] lack `ORDER
    ///   BY` on a ranking attribute, or `PageDown` against one that does
    ///   not page.
    pub fn open(mut self) -> Result<Session<'a>, RerankError> {
        // Catch up with the server's mutation feed before anything trusts
        // cached knowledge: a stale shared state is rebuilt empty here, and
        // the knowledge gate below re-syncs its shard's watermark so sealed
        // result streams recorded before a data change can never replay.
        self.svc.sync_state();
        let plan = self.plan()?;
        // Defense in depth: planner-produced algorithms satisfy these by
        // construction, but the check is cheap and keeps the invariant
        // local.
        self.preflight(plan.algorithm)?;
        let strategy = match self.custom.take() {
            Some(custom) => custom,
            None => self.build_strategy(&plan),
        };
        self.svc.stats_ref().on_session();
        let mut retry = self
            .retry
            .unwrap_or_else(|| self.svc.default_retry_policy().clone());
        // Decorrelate jitter across sessions: every session cloning the
        // same policy would otherwise draw identical jitter sequences and
        // retry in lockstep during a shared outage — the thundering herd
        // jitter exists to prevent. The session ordinal keeps the mix
        // deterministic for replayable tests (same open order, same seeds).
        let nonce = self.svc.stats_ref().snapshot().sessions_started;
        retry.seed ^= nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let knowledge = if self.use_knowledge {
            self.svc.knowledge_gate().map(|gate| {
                // The stale-replay fix: observe the feed *before* looking
                // up a sealed stream, so a post-mutation open bumps the
                // shard epoch first and the lookup below rejects anything
                // recorded against the older snapshot.
                gate.sync();
                // Custom strategies never key the result cache: their
                // exactness is the author's promise, so their streams are
                // neither recorded nor replayed (the request-level gate
                // still serves them).
                let result_key =
                    (!matches!(plan.algorithm, Algorithm::Custom)).then(|| ResultKey {
                        sel: query_key(&self.sel),
                        rank: self.rank.fingerprint(),
                        tie: match self.tie {
                            TiePolicy::Exact => 0,
                            TiePolicy::AssumeDistinct => 1,
                        },
                        strategy: strategy.name().to_string(),
                    });
                let (replay, exhausted, ledger) = match result_key
                    .as_ref()
                    .and_then(|key| gate.shard().lookup_result(key))
                {
                    Some(entry) => (
                        VecDeque::from(entry.items),
                        entry.exhausted,
                        (entry.queries_full, entry.cost_units_full),
                    ),
                    None => (VecDeque::new(), false, (0, 0)),
                };
                SessionKnowledge::new(Arc::clone(gate), result_key, replay, exhausted, ledger)
            })
        } else {
            None
        };
        // Announce the session on the observability plane. The ordinal is
        // allocated here (0 when disabled) and travels on every event the
        // session emits; `PlanChosen` carries the plan-time estimate that
        // seeds the monitor's *predicted* column.
        let obs_id = self.svc.obs().open_session();
        if self.svc.obs().enabled() {
            let now = self.svc.clock().now_ms();
            self.svc.obs().emit(
                now,
                obs_id,
                EventKind::SessionOpen {
                    strategy: strategy.name().to_string(),
                },
            );
            self.svc.obs().emit(
                now,
                obs_id,
                EventKind::PlanChosen {
                    strategy: strategy.name().to_string(),
                    predicted_queries: plan.estimate.queries,
                    predicted_cost_units: plan.estimate.cost_units,
                    calibrated_queries: plan.calibrated_estimate.queries,
                    calibrated_cost_units: plan.calibrated_estimate.cost_units,
                },
            );
        }
        // Arm the adaptive loops for this session: built-in strategies
        // only (a custom strategy's spend describes nothing the planner
        // priced). The alternates come from the plan's cost ranking —
        // empty under an explicit algorithm choice or a custom strategy,
        // which therefore never switch.
        let adaptive =
            if self.svc.adaptive().is_active() && !matches!(plan.algorithm, Algorithm::Custom) {
                Some(AdaptiveState::new(
                    self.svc.adaptive().clone(),
                    strategy.name().to_string(),
                    plan.estimate,
                    plan.calibrated_estimate,
                    self.horizon.unwrap_or_else(|| self.svc.server().k()).max(1),
                    plan.candidates.get(1..).unwrap_or_default().to_vec(),
                    self.tie,
                ))
            } else {
                None
            };
        Ok(Session::new(
            self.svc,
            self.rank,
            strategy,
            self.budget,
            RetryRunner::new(retry, self.retry_limit),
            plan.residual,
            knowledge,
            obs_id,
            query_class(&plan.algorithm),
            adaptive,
        ))
    }

    /// Open a [`MaintainedSession`]: an exact materialized top-`horizon`
    /// kept current across data change by consuming the server's mutation
    /// feed — deletes delta-repair by pulling one replacement, inserts are
    /// rank-tested locally, and only a compacted feed (or a positional
    /// strategy that must pull live) forces a full re-drive. See
    /// [`crate::maintained`] for the repair rules and exactness argument.
    ///
    /// # Errors
    /// * [`RerankError::UnsupportedCapability`] — the server does not
    ///   advertise [`Capability::MutationFeed`].
    /// * [`RerankError::InvalidAlgorithm`] — a custom strategy was
    ///   registered (the service cannot repair a stream whose exactness is
    ///   the author's private contract), or a non-exact tie policy was
    ///   chosen (delta repair splices by `(score, id)`, the emission order
    ///   only [`TiePolicy::Exact`] guarantees).
    /// * Anything [`SessionBuilder::open`] can return — the same plan
    ///   preflights run underneath.
    pub fn open_maintained(self, horizon: usize) -> Result<MaintainedSession<'a>, RerankError> {
        self.svc
            .server()
            .capabilities()
            .require(Capability::MutationFeed)?;
        if self.custom.is_some() {
            return Err(RerankError::invalid_algorithm(
                "maintained sessions drive built-in strategies only: the \
                 service cannot delta-repair a custom strategy whose \
                 exactness contract it does not know",
            ));
        }
        if self.tie != TiePolicy::Exact {
            return Err(RerankError::invalid_algorithm(
                "maintained sessions require TiePolicy::Exact: delta repair \
                 splices tuples into the stream by (score, id), which is \
                 the emission order only under exact tie-breaking",
            ));
        }
        let concrete = self.plan()?.algorithm;
        let cfg = MaintainedConfig {
            algo: self.algo,
            concrete,
            budget: self.budget,
            retry: self.retry.clone(),
            retry_limit: self.retry_limit,
            use_knowledge: self.use_knowledge,
        };
        MaintainedSession::open(self.svc, self.sel, self.rank, cfg, horizon.max(1))
    }
}

/// Construct the strategy object driving `algorithm` over `server_query`
/// for a session on `svc` — shared between [`SessionBuilder::open`] and
/// the mid-flight re-planner, which rebuilds a strategy for an alternate
/// candidate while the session is already running.
pub(crate) fn build_strategy_for(
    svc: &RerankService,
    rank: Arc<dyn RankFn>,
    tie: TiePolicy,
    algorithm: &Algorithm,
    server_query: Query,
) -> Box<dyn RerankStrategy> {
    let server = svc.server();
    let sel = server_query;
    match *algorithm {
        Algorithm::OneD(strategy) => Box::new(OneDCursorStrategy::new(
            OneDSpec::new(rank.attrs()[0], rank.directions()[0], sel),
            strategy,
            tie,
        )),
        Algorithm::Md(opts) => Box::new(MdCursorStrategy::new(rank, sel, opts, server.schema())),
        Algorithm::Ta(access) => Box::new(TaCursorStrategy::new(
            rank,
            sel,
            access,
            server.schema(),
            &server.capabilities(),
        )),
        Algorithm::PageDown { max_pages } => Box::new(PageDownStrategy::new(sel, rank, max_pages)),
        Algorithm::Auto => unreachable!("resolved by the planner"),
        Algorithm::Custom => unreachable!("custom strategies are supplied, not built"),
    }
}

/// Stable display name of a built-in algorithm — the shared
/// [`qrs_core::strategy::names`] vocabulary, so plans, strategy objects
/// and experiment rows can never drift apart.
pub(crate) fn algorithm_name(algo: &Algorithm) -> &'static str {
    use qrs_core::strategy::names;
    match algo {
        Algorithm::Auto => names::AUTO,
        Algorithm::OneD(_) => names::ONE_D,
        Algorithm::Md(_) => names::MD,
        Algorithm::Ta(SortedAccess::PublicOrderBy) => names::TA_ORDER_BY,
        Algorithm::Ta(SortedAccess::OneD(_)) => names::TA_OVER_1D,
        Algorithm::PageDown { .. } => names::PAGE_DOWN,
        Algorithm::Custom => names::CUSTOM,
    }
}

/// The request class a resolved algorithm issues against the hidden
/// database — the bucket its charges land in on the metrics plane. The
/// cursor families probe the top-`k` interface, TA over public order
/// issues `ORDER BY` scans, page-down pages; a custom strategy's mix is
/// unknowable, so it gets its own bucket.
pub(crate) fn query_class(algo: &Algorithm) -> QueryClass {
    match algo {
        Algorithm::OneD(_) | Algorithm::Md(_) | Algorithm::Ta(SortedAccess::OneD(_)) => {
            QueryClass::TopK
        }
        Algorithm::Ta(SortedAccess::PublicOrderBy) => QueryClass::Ordered,
        Algorithm::PageDown { .. } => QueryClass::Page,
        // `Auto` is resolved by the planner before any event is emitted.
        Algorithm::Auto | Algorithm::Custom => QueryClass::Mixed,
    }
}
