//! The reranking service facade.

use crate::budget::QueryBudget;
use crate::session::Session;
use crate::stats::ServiceStats;
use parking_lot::Mutex;
use qrs_core::md::ta::SortedAccess;
use qrs_core::{MdOptions, OneDStrategy, RerankParams, SharedState, TiePolicy};
use qrs_ranking::RankFn;
use qrs_server::SearchInterface;
use qrs_types::Query;
use std::sync::Arc;

/// Which reranking algorithm a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Choose automatically: 1D-RERANK for single-attribute ranking
    /// functions, MD-RERANK otherwise.
    Auto,
    /// A §3 algorithm (ranking function must be single-attribute).
    OneD(OneDStrategy),
    /// A §4 box-partitioning algorithm (baseline/binary/rerank via options).
    Md(MdOptions),
    /// TA over per-attribute sorted access (§4.1 / §5).
    Ta(SortedAccess),
}

/// A third-party reranking service fronting one client-server database.
///
/// The shared state (history, complete regions, dense indexes) lives behind
/// a mutex and is reused by every session — concurrent sessions interleave
/// at Get-Next granularity.
pub struct RerankService {
    server: Arc<dyn SearchInterface>,
    state: Mutex<SharedState>,
    stats: ServiceStats,
    budget: QueryBudget,
}

impl RerankService {
    /// Service with the paper's default dense-index parameters, sized by
    /// `n_estimate` (a third party estimates the database size out of band).
    pub fn new(server: Arc<dyn SearchInterface>, n_estimate: usize) -> Self {
        let params = RerankParams::paper_defaults(n_estimate, server.k());
        Self::with_params(server, params)
    }

    /// Service with explicit dense-index parameters.
    pub fn with_params(server: Arc<dyn SearchInterface>, params: RerankParams) -> Self {
        let state = SharedState::new(server.schema(), params);
        RerankService {
            server,
            state: Mutex::new(state),
            stats: ServiceStats::default(),
            budget: QueryBudget::unlimited(),
        }
    }

    /// Enforce a query cap (e.g. the API's daily limit).
    pub fn with_budget(mut self, limit: u64) -> Self {
        self.budget = QueryBudget::limited(limit, self.server.queries_issued());
        self
    }

    /// Open a Get-Next session for `sel` ranked by `rank`.
    ///
    /// # Panics
    /// If `Algorithm::OneD` is requested for a multi-attribute ranking
    /// function.
    pub fn session(&self, sel: Query, rank: Arc<dyn RankFn>, algo: Algorithm) -> Session<'_> {
        self.stats.on_session();
        let algo = match algo {
            Algorithm::Auto => {
                if rank.dims() == 1 {
                    Algorithm::OneD(OneDStrategy::Rerank)
                } else {
                    Algorithm::Md(MdOptions::rerank())
                }
            }
            other => other,
        };
        if let Algorithm::OneD(_) = algo {
            assert_eq!(
                rank.dims(),
                1,
                "1D algorithms require a single-attribute ranking function"
            );
        }
        Session::new(self, sel, rank, algo, TiePolicy::Exact)
    }

    /// The underlying search interface.
    pub fn server(&self) -> &Arc<dyn SearchInterface> {
        &self.server
    }

    /// Total queries the service has issued to the database.
    pub fn queries_issued(&self) -> u64 {
        self.server.queries_issued()
    }

    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        self.stats.snapshot()
    }

    pub(crate) fn stats_ref(&self) -> &ServiceStats {
        &self.stats
    }

    pub(crate) fn budget(&self) -> &QueryBudget {
        &self.budget
    }

    pub(crate) fn state(&self) -> &Mutex<SharedState> {
        &self.state
    }

    /// Size of the shared knowledge accumulated so far: (history tuples,
    /// 1D dense intervals, MD dense boxes).
    pub fn knowledge(&self) -> (usize, usize, usize) {
        let st = self.state.lock();
        (
            st.history.len(),
            st.dense1d.num_intervals(),
            st.densemd.num_boxes(),
        )
    }
}

impl std::fmt::Debug for RerankService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RerankService")
            .field("queries_issued", &self.queries_issued())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}
