//! Query-budget accounting.
//!
//! §1: "many real-world \[databases\] enforce stringent rate limits on queries
//! from the same IP address or API user (e.g., Google Flight Search API
//! allows only 50 free queries per user per day)". The service tracks its
//! spend against such a cap and refuses to start work it cannot finish
//! observably, surfacing [`RerankError::BudgetExhausted`] instead of
//! silently wrong answers.

use qrs_types::RerankError;
use std::sync::atomic::{AtomicU64, Ordering};

/// A (possibly unlimited) cap on queries issued to the hidden database.
#[derive(Debug)]
pub struct QueryBudget {
    limit: Option<u64>,
    /// Server counter value when this budget started.
    baseline: AtomicU64,
}

impl QueryBudget {
    /// No cap.
    pub fn unlimited() -> Self {
        QueryBudget {
            limit: None,
            baseline: AtomicU64::new(0),
        }
    }

    /// Cap at `limit` queries (counted from `current_counter`).
    pub fn limited(limit: u64, current_counter: u64) -> Self {
        QueryBudget {
            limit: Some(limit),
            baseline: AtomicU64::new(current_counter),
        }
    }

    /// Queries spent since the budget began.
    pub fn spent(&self, current_counter: u64) -> u64 {
        current_counter.saturating_sub(self.baseline.load(Ordering::Relaxed))
    }

    /// Check the budget; [`RerankError::BudgetExhausted`] once the cap is
    /// hit.
    pub fn check(&self, current_counter: u64) -> Result<(), RerankError> {
        match self.limit {
            None => Ok(()),
            Some(limit) => {
                let spent = self.spent(current_counter);
                if spent >= limit {
                    Err(RerankError::BudgetExhausted { spent, limit })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Restart the accounting window (e.g. a new day).
    pub fn reset(&self, current_counter: u64) {
        self.baseline.store(current_counter, Ordering::Relaxed);
    }

    /// The cap, or `None` for an unlimited budget.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_errs() {
        let b = QueryBudget::unlimited();
        assert!(b.check(u64::MAX).is_ok());
        assert_eq!(b.limit(), None);
    }

    #[test]
    fn limited_counts_from_baseline() {
        let b = QueryBudget::limited(10, 100);
        assert!(b.check(100).is_ok());
        assert!(b.check(109).is_ok());
        let e = b.check(110).unwrap_err();
        assert_eq!(
            e,
            RerankError::BudgetExhausted {
                spent: 10,
                limit: 10
            }
        );
        assert_eq!(b.spent(105), 5);
    }

    #[test]
    fn reset_opens_a_new_window() {
        let b = QueryBudget::limited(5, 0);
        assert!(b.check(5).is_err());
        b.reset(5);
        assert!(b.check(9).is_ok());
        assert!(b.check(10).is_err());
    }
}
