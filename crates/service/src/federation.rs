//! Federated reranking across multiple hidden databases.
//!
//! §1's motivating application ranks the same preference "across multiple
//! web databases (e.g., multiple car dealers)". A [`FederatedSession`] owns
//! one [`Session`] per backing service and merges their Get-Next streams by
//! user score — a k-way merge that stays *exact* because each stream is
//! exact and emitted in non-decreasing score order.
//!
//! The sources may have different system rankings, different `k`s and
//! different inventories; they only need schemas carrying the ranking
//! function's attributes.

use crate::budget::BudgetError;
use crate::service::{Algorithm, RerankService};
use crate::session::{RankedTuple, Session};
use qrs_ranking::RankFn;
use qrs_types::Query;
use std::sync::Arc;

/// A hit from a federated stream: which source produced it, plus the tuple.
#[derive(Debug, Clone)]
pub struct FederatedHit {
    /// Index into the sources passed to [`FederatedSession::open`].
    pub source: usize,
    pub hit: RankedTuple,
}

/// One user query + ranking function over several services, merged exactly.
pub struct FederatedSession<'a> {
    sessions: Vec<Session<'a>>,
    /// Head of each stream, pulled lazily.
    heads: Vec<Option<RankedTuple>>,
    primed: bool,
    emitted: usize,
}

impl<'a> FederatedSession<'a> {
    /// Open one session per service with the same selection and ranking
    /// function.
    pub fn open(
        services: &'a [&'a RerankService],
        sel: Query,
        rank: Arc<dyn RankFn>,
        algo: Algorithm,
    ) -> Self {
        let sessions: Vec<Session<'a>> = services
            .iter()
            .map(|svc| svc.session(sel.clone(), Arc::clone(&rank), algo))
            .collect();
        let heads = (0..sessions.len()).map(|_| None).collect();
        FederatedSession {
            sessions,
            heads,
            primed: false,
            emitted: 0,
        }
    }

    fn prime(&mut self) -> Result<(), BudgetError> {
        if !self.primed {
            for i in 0..self.sessions.len() {
                self.heads[i] = self.sessions[i].next()?;
            }
            self.primed = true;
        }
        Ok(())
    }

    /// The globally next-best tuple across all sources.
    pub fn next(&mut self) -> Result<Option<FederatedHit>, BudgetError> {
        self.prime()?;
        let best = self
            .heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.as_ref().map(|r| (i, r.score)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i);
        let Some(i) = best else {
            return Ok(None);
        };
        let hit = self.heads[i].take().expect("head checked above");
        self.heads[i] = self.sessions[i].next()?;
        self.emitted += 1;
        Ok(Some(FederatedHit {
            source: i,
            hit: RankedTuple {
                rank: self.emitted,
                ..hit
            },
        }))
    }

    /// The federated top `h`.
    pub fn top(&mut self, h: usize) -> Result<Vec<FederatedHit>, BudgetError> {
        let mut out = Vec::with_capacity(h);
        while out.len() < h {
            match self.next()? {
                Some(f) => out.push(f),
                None => break,
            }
        }
        Ok(out)
    }

    /// Tuples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_datagen::synthetic::uniform;
    use qrs_ranking::LinearRank;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::value::cmp_f64;
    use qrs_types::AttrId;

    fn svc(seed: u64, n: usize) -> (RerankService, qrs_types::Dataset) {
        let data = uniform(n, 2, 1, seed);
        let server = SimServer::new(data.clone(), SystemRank::pseudo_random(seed), 5);
        (RerankService::new(Arc::new(server), n), data)
    }

    fn rank() -> Arc<dyn RankFn> {
        Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]))
    }

    #[test]
    fn merge_is_globally_sorted_and_complete() {
        let (a, da) = svc(1, 120);
        let (b, db) = svc(2, 80);
        let services = [&a, &b];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto);
        let got = fed.top(30).unwrap();
        assert_eq!(got.len(), 30);
        // Non-decreasing scores, ranks 1..=30.
        for (i, f) in got.iter().enumerate() {
            assert_eq!(f.hit.rank, i + 1);
            if i > 0 {
                assert!(got[i - 1].hit.score <= f.hit.score);
            }
        }
        // Matches the brute-force union ranking.
        let r = rank();
        let mut union: Vec<f64> = da
            .tuples()
            .iter()
            .chain(db.tuples().iter())
            .map(|t| r.score(t))
            .collect();
        union.sort_by(|x, y| cmp_f64(*x, *y));
        let want: Vec<f64> = union.into_iter().take(30).collect();
        let gots: Vec<f64> = got.iter().map(|f| f.hit.score).collect();
        assert_eq!(gots, want);
        // Both sources contribute.
        assert!(got.iter().any(|f| f.source == 0));
        assert!(got.iter().any(|f| f.source == 1));
    }

    #[test]
    fn exhausts_all_sources() {
        let (a, _) = svc(3, 25);
        let (b, _) = svc(4, 15);
        let services = [&a, &b];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto);
        let got = fed.top(1000).unwrap();
        assert_eq!(got.len(), 40);
        assert!(fed.next().unwrap().is_none());
        assert_eq!(fed.emitted(), 40);
    }

    #[test]
    fn budget_error_propagates_from_any_source() {
        let data = uniform(400, 2, 1, 5);
        let server = SimServer::new(
            data.clone(),
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        );
        let constrained = RerankService::new(Arc::new(server), 400).with_budget(2);
        let (free, _) = svc(6, 50);
        let services = [&constrained, &free];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto);
        let mut saw_err = false;
        for _ in 0..100 {
            match fed.next() {
                Err(e) => {
                    assert_eq!(e.limit, 2);
                    saw_err = true;
                    break;
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
            }
        }
        assert!(saw_err, "constrained source never tripped its budget");
    }
}
