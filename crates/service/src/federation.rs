//! Federated reranking across multiple hidden databases.
//!
//! §1's motivating application ranks the same preference "across multiple
//! web databases (e.g., multiple car dealers)". A [`FederatedSession`] owns
//! one [`Session`] per backing service and merges their Get-Next streams by
//! user score — a k-way merge that stays *exact* because each stream is
//! exact and emitted in non-decreasing score order.
//!
//! The sources may have different system rankings, different `k`s and
//! different inventories; they only need schemas carrying the ranking
//! function's attributes.

use crate::service::{Algorithm, RerankService};
use crate::session::{RankedTuple, Session};
use qrs_ranking::RankFn;
use qrs_types::{Query, RerankError};
use std::sync::Arc;

/// A hit from a federated stream: which source produced it, plus the tuple.
#[derive(Debug, Clone)]
pub struct FederatedHit {
    /// Index into the sources passed to [`FederatedSession::open`].
    pub source: usize,
    pub hit: RankedTuple,
}

/// One user query + ranking function over several services, merged exactly.
pub struct FederatedSession<'a> {
    sessions: Vec<Session<'a>>,
    /// Head of each stream, pulled lazily.
    heads: Vec<Option<RankedTuple>>,
    /// Per-source: has `heads[i]` been filled at least once? Tracked per
    /// index so an error priming one source never re-pulls (and thereby
    /// skips tuples of) sources already primed.
    primed: Vec<bool>,
    emitted: usize,
}

impl<'a> FederatedSession<'a> {
    /// Open one session per service with the same selection and ranking
    /// function. Fails fast if any source refuses the request (capability
    /// or algorithm preflight) — a federation with a silently missing
    /// source would return wrong global ranks.
    pub fn open(
        services: &'a [&'a RerankService],
        sel: Query,
        rank: Arc<dyn RankFn>,
        algo: Algorithm,
    ) -> Result<Self, RerankError> {
        let sessions: Vec<Session<'a>> = services
            .iter()
            .map(|svc| {
                svc.session(sel.clone(), Arc::clone(&rank))
                    .algorithm(algo)
                    .open()
            })
            .collect::<Result<_, _>>()?;
        let heads = (0..sessions.len()).map(|_| None).collect();
        let primed = vec![false; sessions.len()];
        Ok(FederatedSession {
            sessions,
            heads,
            primed,
            emitted: 0,
        })
    }

    fn prime(&mut self) -> Result<(), RerankError> {
        for i in 0..self.sessions.len() {
            if !self.primed[i] {
                self.heads[i] = self.sessions[i].next()?;
                self.primed[i] = true;
            }
        }
        Ok(())
    }

    /// The globally next-best tuple across all sources.
    ///
    /// Not an `Iterator`: each step can fail on a source's budget or
    /// server, and callers need that error, not a silent stop. An `Err`
    /// consumes nothing: the winning head stays buffered, so a retry
    /// after a transient failure resumes the merge without skipping or
    /// dropping any source's tuples.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<FederatedHit>, RerankError> {
        self.prime()?;
        let best = self
            .heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.as_ref().map(|r| (i, r.score)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i);
        let Some(i) = best else {
            return Ok(None);
        };
        // Refill *before* taking the current head: if the refill fails, the
        // head is still in place and a retry re-enters here cleanly.
        let refill = self.sessions[i].next()?;
        let hit = std::mem::replace(&mut self.heads[i], refill).expect("head checked above");
        self.emitted += 1;
        Ok(Some(FederatedHit {
            source: i,
            hit: RankedTuple {
                rank: self.emitted,
                ..hit
            },
        }))
    }

    /// The federated top `h` (shorter if all sources are exhausted).
    ///
    /// Partial results survive failure, mirroring `Session::top`: hits
    /// merged before a source failed are returned alongside the error.
    pub fn top(&mut self, h: usize) -> (Vec<FederatedHit>, Option<RerankError>) {
        let mut out = Vec::with_capacity(h);
        while out.len() < h {
            match self.next() {
                Ok(Some(f)) => out.push(f),
                Ok(None) => break,
                Err(e) => return (out, Some(e)),
            }
        }
        (out, None)
    }

    /// Tuples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_datagen::synthetic::uniform;
    use qrs_ranking::LinearRank;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::value::cmp_f64;
    use qrs_types::AttrId;

    fn svc(seed: u64, n: usize) -> (RerankService, qrs_types::Dataset) {
        let data = uniform(n, 2, 1, seed);
        let server = SimServer::new(data.clone(), SystemRank::pseudo_random(seed), 5);
        (RerankService::new(Arc::new(server), n), data)
    }

    fn rank() -> Arc<dyn RankFn> {
        Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]))
    }

    #[test]
    fn merge_is_globally_sorted_and_complete() {
        let (a, da) = svc(1, 120);
        let (b, db) = svc(2, 80);
        let services = [&a, &b];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let (got, err) = fed.top(30);
        assert!(err.is_none());
        assert_eq!(got.len(), 30);
        // Non-decreasing scores, ranks 1..=30.
        for (i, f) in got.iter().enumerate() {
            assert_eq!(f.hit.rank, i + 1);
            if i > 0 {
                assert!(got[i - 1].hit.score <= f.hit.score);
            }
        }
        // Matches the brute-force union ranking.
        let r = rank();
        let mut union: Vec<f64> = da
            .tuples()
            .iter()
            .chain(db.tuples().iter())
            .map(|t| r.score(t))
            .collect();
        union.sort_by(|x, y| cmp_f64(*x, *y));
        let want: Vec<f64> = union.into_iter().take(30).collect();
        let gots: Vec<f64> = got.iter().map(|f| f.hit.score).collect();
        assert_eq!(gots, want);
        // Both sources contribute.
        assert!(got.iter().any(|f| f.source == 0));
        assert!(got.iter().any(|f| f.source == 1));
    }

    #[test]
    fn exhausts_all_sources() {
        let (a, _) = svc(3, 25);
        let (b, _) = svc(4, 15);
        let services = [&a, &b];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let (got, err) = fed.top(1000);
        assert!(err.is_none());
        assert_eq!(got.len(), 40);
        assert!(fed.next().unwrap().is_none());
        assert_eq!(fed.emitted(), 40);
    }

    #[test]
    fn merge_resumes_without_gaps_after_transient_errors() {
        // One source keeps tripping a tiny service budget; after each trip
        // the budget window is reset (a "new day") and the merge retried.
        // The final merged stream must equal the brute-force union ranking
        // exactly — no tuple dropped with the taken head, none skipped by
        // re-priming an already-primed source.
        let data_a = uniform(60, 2, 1, 7);
        let server_a = SimServer::new(
            data_a.clone(),
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        );
        let constrained = RerankService::new(Arc::new(server_a), 60).with_budget(5);
        let (free, data_b) = svc(8, 40);
        let services = [&free, &constrained];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let mut got = Vec::new();
        let mut trips = 0;
        loop {
            match fed.next() {
                Ok(Some(f)) => got.push(f.hit.score),
                Ok(None) => break,
                Err(e) => {
                    assert!(e.is_transient(), "unexpected terminal error {e}");
                    trips += 1;
                    assert!(trips < 1000, "merge never completed");
                    constrained.budget().reset(constrained.queries_issued());
                }
            }
        }
        assert!(trips > 0, "budget of 5 never tripped — test is vacuous");
        let r = rank();
        let mut want: Vec<f64> = data_a
            .tuples()
            .iter()
            .chain(data_b.tuples().iter())
            .map(|t| r.score(t))
            .collect();
        want.sort_by(|x, y| cmp_f64(*x, *y));
        assert_eq!(got, want, "resumed merge has gaps or duplicates");
    }

    #[test]
    fn budget_error_propagates_from_any_source() {
        let data = uniform(400, 2, 1, 5);
        let server = SimServer::new(
            data.clone(),
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        );
        let constrained = RerankService::new(Arc::new(server), 400).with_budget(2);
        let (free, _) = svc(6, 50);
        let services = [&constrained, &free];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let mut saw_err = false;
        for _ in 0..100 {
            match fed.next() {
                Err(e) => {
                    match e {
                        qrs_types::RerankError::BudgetExhausted { spent, limit } => {
                            assert_eq!(limit, 2);
                            assert!(spent >= 2);
                        }
                        other => panic!("expected budget error, got {other}"),
                    }
                    saw_err = true;
                    break;
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
            }
        }
        assert!(saw_err, "constrained source never tripped its budget");
    }
}
