//! Federated reranking across multiple hidden databases.
//!
//! §1's motivating application ranks the same preference "across multiple
//! web databases (e.g., multiple car dealers)". A [`FederatedSession`] owns
//! one [`Session`] per backing service and merges their Get-Next streams by
//! user score — a k-way merge that stays *exact* because each stream is
//! exact and emitted in non-decreasing score order.
//!
//! The sources may have different system rankings, different `k`s and
//! different inventories; they only need schemas carrying the ranking
//! function's attributes.
//!
//! ## Per-source health and degraded merges
//!
//! By default an error from any source propagates (and the merge resumes
//! exactly on retry). With a failure threshold set
//! ([`FederatedSession::with_failure_threshold`]), each source carries
//! consecutive-failure circuit state instead: a source that keeps failing
//! **trips** and silently leaves the merge, which completes over the
//! healthy sources and reports the casualty in a typed per-source
//! [`SourceReport`] — one failing dealer degrades the federation, it does
//! not kill it. Retryable failures below the threshold are re-pulled
//! immediately (each source's own session-level retry policy has already
//! done the backoff); errors a re-pull can never heal — capability
//! mismatches, exhausted budgets, a session that already consumed its
//! whole retry policy — trip the circuit at once. If *every* source trips,
//! the merge surfaces the last error instead of masquerading as an empty
//! result.

use crate::service::{Algorithm, RerankService};
use crate::session::{RankedTuple, Session};
use qrs_ranking::RankFn;
use qrs_types::{Query, RerankError};
use std::sync::Arc;

/// A hit from a federated stream: which source produced it, plus the tuple.
#[derive(Debug, Clone)]
pub struct FederatedHit {
    /// Index into the sources passed to [`FederatedSession::open`].
    pub source: usize,
    pub hit: RankedTuple,
}

/// Per-source circuit state, reported by [`FederatedSession::report`].
#[derive(Debug, Clone)]
pub struct SourceReport {
    /// Index into the sources passed to [`FederatedSession::open`].
    pub source: usize,
    /// Failures since the last successful pull from this source.
    pub consecutive_failures: u32,
    /// The circuit is open: the source has been dropped from the merge.
    pub tripped: bool,
    /// The most recent error this source produced, if any.
    pub last_error: Option<RerankError>,
}

#[derive(Debug, Clone, Default)]
struct SourceHealth {
    consecutive_failures: u32,
    tripped: bool,
    last_error: Option<RerankError>,
}

/// One user query + ranking function over several services, merged exactly.
pub struct FederatedSession<'a> {
    sessions: Vec<Session<'a>>,
    /// Head of each stream, pulled lazily.
    heads: Vec<Option<RankedTuple>>,
    /// Per-source: has `heads[i]` been filled at least once? Tracked per
    /// index so an error priming one source never re-pulls (and thereby
    /// skips tuples of) sources already primed.
    primed: Vec<bool>,
    emitted: usize,
    /// Consecutive failures after which a source's circuit trips and the
    /// merge degrades around it. `None` (default) propagates every error.
    failure_threshold: Option<u32>,
    health: Vec<SourceHealth>,
}

impl<'a> FederatedSession<'a> {
    /// Open one session per service with the same selection and ranking
    /// function. Fails fast if any source refuses the request (capability
    /// or algorithm preflight) — a federation with a silently missing
    /// source would return wrong global ranks.
    pub fn open(
        services: &'a [&'a RerankService],
        sel: Query,
        rank: Arc<dyn RankFn>,
        algo: Algorithm,
    ) -> Result<Self, RerankError> {
        let sessions: Vec<Session<'a>> = services
            .iter()
            .map(|svc| {
                svc.session(sel.clone(), Arc::clone(&rank))
                    .algorithm(algo)
                    .open()
            })
            .collect::<Result<_, _>>()?;
        let heads = (0..sessions.len()).map(|_| None).collect();
        let primed = vec![false; sessions.len()];
        let health = vec![SourceHealth::default(); sessions.len()];
        Ok(FederatedSession {
            sessions,
            heads,
            primed,
            emitted: 0,
            failure_threshold: None,
            health,
        })
    }

    /// Degrade instead of dying: a source whose pulls fail `threshold`
    /// times in a row (or fail non-retryably even once) trips its
    /// circuit and leaves the merge; the remaining sources' exact merged
    /// stream continues and [`FederatedSession::report`] carries the typed
    /// per-source post-mortem. `threshold` is clamped to at least 1.
    pub fn with_failure_threshold(mut self, threshold: u32) -> Self {
        self.failure_threshold = Some(threshold.max(1));
        self
    }

    /// Pull the next tuple from source `i`, tracking circuit state.
    ///
    /// Returns `Ok(None)` when the source is exhausted *or* its circuit is
    /// open. Without a threshold configured, errors propagate untouched
    /// (the legacy resume-exactly contract). With one, retryable failures
    /// below the threshold strike and re-pull immediately — the source's
    /// own session retry policy has already slept through backoff — and
    /// the loop is bounded by the threshold, so it can never hang. An
    /// error that an immediate re-pull can never heal
    /// (`!RerankError::is_retryable()`: capability mismatches, budget
    /// exhaustion, a session that already burned its whole retry policy)
    /// trips the circuit on the first strike instead of wasting the
    /// threshold on deterministic failures.
    fn pull(&mut self, i: usize) -> Result<Option<RankedTuple>, RerankError> {
        loop {
            if self.health[i].tripped {
                return Ok(None);
            }
            match self.sessions[i].next() {
                Ok(t) => {
                    self.health[i].consecutive_failures = 0;
                    return Ok(t);
                }
                Err(e) => {
                    let terminal = !e.is_retryable();
                    let h = &mut self.health[i];
                    h.consecutive_failures += 1;
                    h.last_error = Some(e.clone());
                    match self.failure_threshold {
                        None => return Err(e),
                        Some(t) => {
                            if terminal || h.consecutive_failures >= t {
                                h.tripped = true;
                                return Ok(None);
                            }
                        }
                    }
                }
            }
        }
    }

    fn prime(&mut self) -> Result<(), RerankError> {
        for i in 0..self.sessions.len() {
            if !self.primed[i] {
                self.heads[i] = self.pull(i)?;
                self.primed[i] = true;
            }
        }
        Ok(())
    }

    /// The globally next-best tuple across all sources.
    ///
    /// Not an `Iterator`: each step can fail on a source's budget or
    /// server, and callers need that error, not a silent stop. An `Err`
    /// consumes nothing: the winning head stays buffered, so a retry
    /// after a transient failure resumes the merge without skipping or
    /// dropping any source's tuples.
    ///
    /// With [`FederatedSession::with_failure_threshold`] set, source
    /// failures are absorbed into circuit state instead of surfacing here:
    /// a persistently failing source trips and leaves the merge, and this
    /// method keeps returning the remaining sources' exact merged stream.
    /// The one exception is total failure — *every* source tripped: that
    /// surfaces the last recorded error instead of `Ok(None)`, so a dead
    /// federation is never mistaken for a legitimately empty result.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<FederatedHit>, RerankError> {
        self.prime()?;
        let best = self
            .heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.as_ref().map(|r| (i, r.score)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i);
        let Some(i) = best else {
            if !self.health.is_empty() && self.health.iter().all(|h| h.tripped) {
                let e = self
                    .health
                    .iter()
                    .rev()
                    .find_map(|h| h.last_error.clone())
                    .expect("a tripped source always records its error");
                return Err(e);
            }
            return Ok(None);
        };
        // Refill *before* taking the current head: if the refill fails, the
        // head is still in place and a retry re-enters here cleanly.
        let refill = self.pull(i)?;
        let hit = std::mem::replace(&mut self.heads[i], refill).expect("head checked above");
        self.emitted += 1;
        Ok(Some(FederatedHit {
            source: i,
            hit: RankedTuple {
                rank: self.emitted,
                ..hit
            },
        }))
    }

    /// The federated top `h` (shorter if all sources are exhausted).
    ///
    /// Partial results survive failure, mirroring `Session::top`: hits
    /// merged before a source failed are returned alongside the error.
    pub fn top(&mut self, h: usize) -> (Vec<FederatedHit>, Option<RerankError>) {
        let mut out = Vec::with_capacity(h);
        while out.len() < h {
            match self.next() {
                Ok(Some(f)) => out.push(f),
                Ok(None) => break,
                Err(e) => return (out, Some(e)),
            }
        }
        (out, None)
    }

    /// Tuples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Typed per-source health report: circuit state, consecutive-failure
    /// count, and the last error each source produced.
    pub fn report(&self) -> Vec<SourceReport> {
        self.health
            .iter()
            .enumerate()
            .map(|(source, h)| SourceReport {
                source,
                consecutive_failures: h.consecutive_failures,
                tripped: h.tripped,
                last_error: h.last_error.clone(),
            })
            .collect()
    }

    /// Indices of sources whose circuit has tripped (dropped from the merge).
    pub fn tripped_sources(&self) -> Vec<usize> {
        self.health
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.tripped.then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_datagen::synthetic::uniform;
    use qrs_ranking::LinearRank;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::value::cmp_f64;
    use qrs_types::AttrId;

    fn svc(seed: u64, n: usize) -> (RerankService, qrs_types::Dataset) {
        let data = uniform(n, 2, 1, seed);
        let server = SimServer::new(data.clone(), SystemRank::pseudo_random(seed), 5);
        (RerankService::new(Arc::new(server), n), data)
    }

    fn rank() -> Arc<dyn RankFn> {
        Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]))
    }

    #[test]
    fn merge_is_globally_sorted_and_complete() {
        let (a, da) = svc(1, 120);
        let (b, db) = svc(2, 80);
        let services = [&a, &b];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let (got, err) = fed.top(30);
        assert!(err.is_none());
        assert_eq!(got.len(), 30);
        // Non-decreasing scores, ranks 1..=30.
        for (i, f) in got.iter().enumerate() {
            assert_eq!(f.hit.rank, i + 1);
            if i > 0 {
                assert!(got[i - 1].hit.score <= f.hit.score);
            }
        }
        // Matches the brute-force union ranking.
        let r = rank();
        let mut union: Vec<f64> = da
            .tuples()
            .iter()
            .chain(db.tuples().iter())
            .map(|t| r.score(t))
            .collect();
        union.sort_by(|x, y| cmp_f64(*x, *y));
        let want: Vec<f64> = union.into_iter().take(30).collect();
        let gots: Vec<f64> = got.iter().map(|f| f.hit.score).collect();
        assert_eq!(gots, want);
        // Both sources contribute.
        assert!(got.iter().any(|f| f.source == 0));
        assert!(got.iter().any(|f| f.source == 1));
    }

    #[test]
    fn exhausts_all_sources() {
        let (a, _) = svc(3, 25);
        let (b, _) = svc(4, 15);
        let services = [&a, &b];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let (got, err) = fed.top(1000);
        assert!(err.is_none());
        assert_eq!(got.len(), 40);
        assert!(fed.next().unwrap().is_none());
        assert_eq!(fed.emitted(), 40);
    }

    #[test]
    fn merge_resumes_without_gaps_after_transient_errors() {
        // One source keeps tripping a tiny service budget; after each trip
        // the budget window is reset (a "new day") and the merge retried.
        // The final merged stream must equal the brute-force union ranking
        // exactly — no tuple dropped with the taken head, none skipped by
        // re-priming an already-primed source.
        let data_a = uniform(60, 2, 1, 7);
        let server_a = SimServer::new(
            data_a.clone(),
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        );
        let constrained = RerankService::new(Arc::new(server_a), 60).with_budget(5);
        let (free, data_b) = svc(8, 40);
        let services = [&free, &constrained];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let mut got = Vec::new();
        let mut trips = 0;
        loop {
            match fed.next() {
                Ok(Some(f)) => got.push(f.hit.score),
                Ok(None) => break,
                Err(e) => {
                    assert!(e.is_transient(), "unexpected terminal error {e}");
                    trips += 1;
                    assert!(trips < 1000, "merge never completed");
                    constrained.budget().reset(constrained.queries_issued());
                }
            }
        }
        assert!(trips > 0, "budget of 5 never tripped — test is vacuous");
        let r = rank();
        let mut want: Vec<f64> = data_a
            .tuples()
            .iter()
            .chain(data_b.tuples().iter())
            .map(|t| r.score(t))
            .collect();
        want.sort_by(|x, y| cmp_f64(*x, *y));
        assert_eq!(got, want, "resumed merge has gaps or duplicates");
    }

    #[test]
    fn one_dead_dealer_degrades_the_merge_instead_of_killing_it() {
        use qrs_server::{FaultyServer, SearchInterface};
        // Source 1's backend is permanently down from the very first call.
        let (a, data_a) = svc(21, 80);
        let dead_inner = Arc::new(SimServer::new(
            uniform(50, 2, 1, 22),
            SystemRank::pseudo_random(22),
            5,
        ));
        let dead = Arc::new(
            FaultyServer::new(dead_inner as Arc<dyn SearchInterface>).with_permanent_outage_from(0),
        );
        let dead_svc = RerankService::new(dead as Arc<dyn SearchInterface>, 50);
        let (c, data_c) = svc(23, 60);
        let services = [&a, &dead_svc, &c];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto)
            .unwrap()
            .with_failure_threshold(3);
        let (got, err) = fed.top(25);
        assert!(err.is_none(), "degraded merge must complete: {err:?}");
        assert_eq!(got.len(), 25);
        // Exactly the merged top-25 of the two healthy sources.
        let r = rank();
        let mut want: Vec<f64> = data_a
            .tuples()
            .iter()
            .chain(data_c.tuples().iter())
            .map(|t| r.score(t))
            .collect();
        want.sort_by(|x, y| cmp_f64(*x, *y));
        want.truncate(25);
        let gots: Vec<f64> = got.iter().map(|f| f.hit.score).collect();
        assert_eq!(gots, want);
        assert!(got.iter().all(|f| f.source != 1));
        // The typed per-source post-mortem.
        assert_eq!(fed.tripped_sources(), vec![1]);
        let report = fed.report();
        assert!(!report[0].tripped && report[0].last_error.is_none());
        assert!(report[1].tripped);
        assert_eq!(report[1].consecutive_failures, 3);
        assert!(matches!(
            report[1].last_error,
            Some(RerankError::Server(ref e)) if e.is_transient()
        ));
        assert!(!report[2].tripped && report[2].last_error.is_none());
    }

    #[test]
    fn non_transient_failure_trips_the_circuit_immediately() {
        // A source whose attribute only accepts point predicates dies
        // mid-stream with InvalidQuery (the MD subdivision needs ranges) —
        // non-transient, so the circuit must trip on the first strike
        // instead of burning the whole threshold on re-pulls.
        let (a, _) = svc(31, 40);
        let schema_pt = qrs_types::Schema::new(
            vec![
                {
                    let mut at = qrs_types::OrdinalAttr::new("x", 0.0, 9.0);
                    at.point_only = true;
                    at
                },
                qrs_types::OrdinalAttr::new("y", 0.0, 9.0),
            ],
            vec![],
        );
        let tuples = (0..40u32)
            .map(|i| {
                qrs_types::Tuple::new(
                    qrs_types::TupleId(i),
                    vec![f64::from(i % 10), f64::from((i * 7) % 10)],
                    vec![],
                )
            })
            .collect();
        let ds = qrs_types::Dataset::new(schema_pt, tuples).unwrap();
        let server = SimServer::new(ds, SystemRank::pseudo_random(31), 5);
        let point_only = RerankService::new(Arc::new(server), 40);
        let services = [&a, &point_only];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto)
            .unwrap()
            .with_failure_threshold(10);
        let (got, err) = fed.top(10);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(got.len(), 10);
        let report = fed.report();
        // The point-only source died on an InvalidQuery — non-transient, so
        // the circuit tripped on the first strike, not the tenth.
        assert!(report[1].tripped);
        assert_eq!(report[1].consecutive_failures, 1);
        assert!(matches!(
            report[1].last_error,
            Some(RerankError::Server(
                qrs_types::ServerError::InvalidQuery { .. }
            ))
        ));
    }

    #[test]
    fn total_failure_surfaces_an_error_not_an_empty_result() {
        use qrs_server::{FaultyServer, SearchInterface};
        // Every source dead: the degraded merge must NOT masquerade as a
        // legitimately empty stream — callers get the last typed error.
        let mk_dead = |seed: u64| {
            let inner = Arc::new(SimServer::new(
                uniform(30, 2, 1, seed),
                SystemRank::pseudo_random(seed),
                5,
            ));
            let dead = Arc::new(
                FaultyServer::new(inner as Arc<dyn SearchInterface>).with_permanent_outage_from(0),
            );
            RerankService::new(dead as Arc<dyn SearchInterface>, 30)
        };
        let (a, b) = (mk_dead(51), mk_dead(52));
        let services = [&a, &b];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto)
            .unwrap()
            .with_failure_threshold(2);
        let (got, err) = fed.top(5);
        assert!(got.is_empty());
        let err = err.expect("a fully-dead federation must surface an error");
        assert!(
            matches!(err, RerankError::Server(ref e) if e.is_transient()),
            "{err}"
        );
        assert_eq!(fed.tripped_sources(), vec![0, 1]);
        // The merge stays dead-but-usable: asking again keeps erroring
        // instead of flipping to a silent empty stream.
        assert!(fed.next().is_err());
    }

    #[test]
    fn budget_exhaustion_trips_the_circuit_without_futile_repulls() {
        // BudgetExhausted is transient (windows reset) but an immediate
        // re-pull can never heal it — the circuit must trip on the first
        // strike, not after burning the whole threshold.
        let data = uniform(400, 2, 1, 61);
        let server = SimServer::new(
            data,
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        );
        let constrained = RerankService::new(Arc::new(server), 400).with_budget(2);
        let (free, _) = svc(62, 50);
        let services = [&constrained, &free];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto)
            .unwrap()
            .with_failure_threshold(100);
        let (got, err) = fed.top(20);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(got.len(), 20, "the free source carries the merge");
        let report = fed.report();
        assert!(report[0].tripped);
        assert_eq!(
            report[0].consecutive_failures, 1,
            "budget exhaustion must trip on the first strike"
        );
        assert!(matches!(
            report[0].last_error,
            Some(RerankError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn healthy_source_recovers_consecutive_failure_count() {
        use qrs_server::{Fault, FaultyServer, SearchInterface};
        // One transient outage early on: with session-level fail-fast and a
        // fed threshold of 3, the strike is absorbed by an immediate
        // re-pull, the count resets on success, and nothing trips.
        let inner = Arc::new(SimServer::new(
            uniform(60, 2, 1, 41),
            SystemRank::pseudo_random(41),
            5,
        ));
        let flaky = Arc::new(
            FaultyServer::new(inner as Arc<dyn SearchInterface>).with_fault_at(1, Fault::Outage),
        );
        let flaky_svc = RerankService::new(flaky as Arc<dyn SearchInterface>, 60);
        let (b, _) = svc(42, 40);
        let services = [&flaky_svc, &b];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto)
            .unwrap()
            .with_failure_threshold(3);
        let (got, err) = fed.top(30);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(got.len(), 30);
        let report = fed.report();
        assert!(!report[0].tripped);
        assert_eq!(report[0].consecutive_failures, 0, "success must reset");
        assert!(report[0].last_error.is_some(), "the strike was recorded");
        assert!(got.iter().any(|f| f.source == 0));
    }

    #[test]
    fn budget_error_propagates_from_any_source() {
        let data = uniform(400, 2, 1, 5);
        let server = SimServer::new(
            data.clone(),
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        );
        let constrained = RerankService::new(Arc::new(server), 400).with_budget(2);
        let (free, _) = svc(6, 50);
        let services = [&constrained, &free];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let mut saw_err = false;
        for _ in 0..100 {
            match fed.next() {
                Err(e) => {
                    match e {
                        qrs_types::RerankError::BudgetExhausted { spent, limit } => {
                            assert_eq!(limit, 2);
                            assert!(spent >= 2);
                        }
                        other => panic!("expected budget error, got {other}"),
                    }
                    saw_err = true;
                    break;
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
            }
        }
        assert!(saw_err, "constrained source never tripped its budget");
    }
}
