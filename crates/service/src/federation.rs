//! Federated reranking across multiple hidden databases.
//!
//! §1's motivating application ranks the same preference "across multiple
//! web databases (e.g., multiple car dealers)". A [`FederatedSession`] owns
//! one [`Session`] per backing service and merges their Get-Next streams by
//! user score — a k-way merge that stays *exact* because each stream is
//! exact and emitted in non-decreasing score order.
//!
//! The sources may have different system rankings, different `k`s and
//! different inventories; they only need schemas carrying the ranking
//! function's attributes.
//!
//! ## Per-source health and degraded merges
//!
//! By default an error from any source propagates (and the merge resumes
//! exactly on retry). With a circuit policy set
//! ([`FederatedSession::with_failure_threshold`] /
//! [`FederatedSession::with_circuit`]), each source carries
//! consecutive-failure circuit state instead: a source that keeps failing
//! **trips** and silently leaves the merge, which completes over the
//! healthy sources and reports the casualty in a typed per-source
//! [`SourceReport`] — one failing dealer degrades the federation, it does
//! not kill it. Retryable failures below the threshold are re-pulled
//! immediately (each source's own session-level retry policy has already
//! done the backoff); errors a re-pull can never heal — capability
//! mismatches, exhausted budgets, a session that already consumed its
//! whole retry policy — trip the circuit at once. If *every* source trips,
//! the merge surfaces the last error instead of masquerading as an empty
//! result.
//!
//! ## Half-open circuits
//!
//! With a cool-down configured ([`qrs_types::CircuitPolicy::cooldown`]), a
//! tripped source is not gone for good: once the cool-down elapses on its
//! service's injectable clock, the merge admits exactly **one probe pull**.
//! Success closes the circuit — the source rejoins the merge mid-stream,
//! its cursor resuming exactly where the failures struck (queries already
//! paid for are never re-paid). Failure re-trips the circuit and restarts
//! the cool-down, so a permanently dead backend costs one probe per window
//! instead of one failed pull per merge step.
//!
//! ## Parallel fan-out
//!
//! With an executor attached ([`FederatedSession::with_executor`]), the
//! merge fans its per-source pulls — the initial priming of every head,
//! and due half-open probes — across the pool instead of visiting sources
//! one by one. Merge *semantics* are untouched: results are committed in
//! source order after the fan-out joins, each source still sees exactly
//! the same sequence of pulls it would serially (its own session/circuit
//! state advances under its own service's locks), and the winner-refill
//! step stays single-source. Against slow (network-latency) backends the
//! fan-out overlaps the waits — see the `scaling` experiment in
//! `qrs-bench`.
//!
//! Per-source *retry policies* are configured up front via
//! [`FederatedSession::builder`]: a fast dealer can afford aggressive
//! retries while a slow one fails over to the circuit quickly.
//!
//! ## Shared knowledge across sources
//!
//! A federation amortizes across *tenants* the same way a single service
//! does: build every source's [`RerankService`] with the **same**
//! [`crate::KnowledgePlane`] (each under its own source name) and every
//! federated session records what it learns per source while consulting
//! what earlier sessions — federated or not — already bought there. The
//! plane shards per source, so dealers never pollute each other's caches,
//! and one dealer's inventory change is one epoch bump
//! ([`crate::KnowledgePlane::invalidate`]) that leaves the other sources'
//! knowledge intact. Per-source savings surface in
//! [`FederatedSession::session_stats`] as `queries_saved` /
//! `cost_units_saved`.

use crate::service::{Algorithm, RerankService};
use crate::session::{RankedTuple, Session, SessionStats};
use qrs_exec::Executor;
use qrs_ranking::RankFn;
use qrs_types::{CircuitPolicy, Query, RerankError, RetryPolicy};
use std::sync::Arc;

/// A hit from a federated stream: which source produced it, plus the tuple.
#[derive(Debug, Clone)]
pub struct FederatedHit {
    /// Index into the sources passed to [`FederatedSession::open`].
    pub source: usize,
    /// The tuple, with its federation-wide rank and user score.
    pub hit: RankedTuple,
}

/// Per-source circuit state, reported by [`FederatedSession::report`].
#[derive(Debug, Clone)]
pub struct SourceReport {
    /// Index into the sources passed to [`FederatedSession::open`].
    pub source: usize,
    /// Failures since the last successful pull from this source.
    pub consecutive_failures: u32,
    /// The circuit is open: the source has been dropped from the merge
    /// (until a cool-down admits a probe, if one is configured).
    pub tripped: bool,
    /// Times this source's circuit has tripped over the session's lifetime
    /// (re-trips after failed half-open probes included).
    pub trips: u64,
    /// Half-open probe pulls admitted after cool-downs.
    pub probes_admitted: u64,
    /// The most recent error this source produced, if any.
    pub last_error: Option<RerankError>,
    /// The source session's full accounting snapshot — emitted tuples,
    /// raw queries *and* weighted cost units spent — so a federation
    /// post-mortem reads what each source actually billed, not just
    /// whether it tripped.
    pub stats: SessionStats,
}

#[derive(Debug, Clone, Default)]
struct SourceHealth {
    consecutive_failures: u32,
    tripped: bool,
    last_error: Option<RerankError>,
    /// The source's service-clock reading at the moment of the last trip
    /// (drives the half-open cool-down).
    tripped_at_ms: Option<u64>,
    trips: u64,
    probes_admitted: u64,
}

/// Pull the next tuple from one source, tracking its circuit state.
///
/// A free function over *disjoint* per-source state so the parallel
/// fan-out can run one call per source concurrently — each source's
/// session and health advance independently, exactly as they would
/// serially.
///
/// Returns `Ok(None)` when the source is exhausted *or* its circuit is
/// open (and no probe is due). Without a circuit policy, errors propagate
/// untouched (the legacy resume-exactly contract). With one, retryable
/// failures below the threshold strike and re-pull immediately — the
/// source's own session retry policy has already slept through backoff —
/// and the loop is bounded by the threshold, so it can never hang. An
/// error that an immediate re-pull can never heal
/// (`!RerankError::is_retryable()`: capability mismatches, budget
/// exhaustion, a session that already burned its whole retry policy)
/// trips the circuit on the first strike instead of wasting the
/// threshold on deterministic failures.
///
/// A tripped source whose cool-down has elapsed (on its own service's
/// clock) admits exactly one probe pull: success closes the circuit and
/// returns the tuple, failure re-trips and restarts the cool-down.
fn pull_source(
    sess: &mut Session<'_>,
    h: &mut SourceHealth,
    circuit: Option<CircuitPolicy>,
) -> Result<Option<RankedTuple>, RerankError> {
    loop {
        if h.tripped {
            let probe_due = match (circuit.and_then(|c| c.cooldown_ms), h.tripped_at_ms) {
                (Some(cd), Some(at)) => sess.svc().clock().now_ms() >= at.saturating_add(cd),
                _ => false,
            };
            if !probe_due {
                return Ok(None);
            }
            h.probes_admitted += 1;
            match sess.next() {
                Ok(t) => {
                    h.tripped = false;
                    h.tripped_at_ms = None;
                    h.consecutive_failures = 0;
                    sess.emit_obs(|| qrs_obs::EventKind::CircuitProbe { reopened: true });
                    return Ok(t);
                }
                Err(e) => {
                    h.consecutive_failures += 1;
                    h.last_error = Some(e);
                    h.trips += 1;
                    h.tripped_at_ms = Some(sess.svc().clock().now_ms());
                    sess.emit_obs(|| qrs_obs::EventKind::CircuitProbe { reopened: false });
                    let trips = h.trips;
                    sess.emit_obs(|| qrs_obs::EventKind::CircuitTrip { trips });
                    return Ok(None);
                }
            }
        }
        match sess.next() {
            Ok(t) => {
                h.consecutive_failures = 0;
                return Ok(t);
            }
            Err(e) => {
                let terminal = !e.is_retryable();
                h.consecutive_failures += 1;
                h.last_error = Some(e.clone());
                match circuit {
                    None => return Err(e),
                    Some(c) => {
                        if terminal || h.consecutive_failures >= c.failure_threshold {
                            h.tripped = true;
                            h.trips += 1;
                            h.tripped_at_ms = Some(sess.svc().clock().now_ms());
                            let trips = h.trips;
                            sess.emit_obs(|| qrs_obs::EventKind::CircuitTrip { trips });
                            return Ok(None);
                        }
                    }
                }
            }
        }
    }
}

/// Configures per-source overrides before opening a [`FederatedSession`].
/// Obtained from [`FederatedSession::builder`].
#[must_use = "a federation builder does nothing until .open() is called"]
pub struct FederationBuilder<'a> {
    services: &'a [&'a RerankService],
    sel: Query,
    rank: Arc<dyn RankFn>,
    algo: Algorithm,
    source_retries: Vec<(usize, RetryPolicy)>,
}

impl<'a> FederationBuilder<'a> {
    /// Override the retry policy for source `source` (an index into the
    /// services slice). Sources without an override keep their service's
    /// default — fast dealers can retry harder than slow ones. Repeated
    /// overrides for the same source: the last one wins. An out-of-range
    /// index is rejected at [`FederationBuilder::open`].
    pub fn source_retry(mut self, source: usize, policy: RetryPolicy) -> Self {
        self.source_retries.push((source, policy));
        self
    }

    /// Preflight every source and open the federation. Fails fast if any
    /// source refuses the request — a federation with a silently missing
    /// source would return wrong global ranks — or if a
    /// [`FederationBuilder::source_retry`] override targets a source that
    /// does not exist (a typoed index must not silently fail fast where
    /// the caller configured retries).
    pub fn open(self) -> Result<FederatedSession<'a>, RerankError> {
        if let Some((i, _)) = self
            .source_retries
            .iter()
            .find(|(i, _)| *i >= self.services.len())
        {
            return Err(RerankError::invalid_algorithm(format!(
                "per-source retry override targets source {i}, but the \
                 federation has only {} sources",
                self.services.len()
            )));
        }
        let sessions: Vec<Session<'a>> = self
            .services
            .iter()
            .enumerate()
            .map(|(i, svc)| {
                let mut b = svc
                    .session(self.sel.clone(), Arc::clone(&self.rank))
                    .algorithm(self.algo);
                // .rev(): the LAST override for an index wins, as builder
                // conventions promise.
                if let Some((_, p)) = self.source_retries.iter().rev().find(|(j, _)| *j == i) {
                    b = b.retry(p.clone());
                }
                b.open()
            })
            .collect::<Result<_, _>>()?;
        let heads = (0..sessions.len()).map(|_| None).collect();
        let primed = vec![false; sessions.len()];
        let health = vec![SourceHealth::default(); sessions.len()];
        Ok(FederatedSession {
            sessions,
            heads,
            primed,
            emitted: 0,
            circuit: None,
            health,
            executor: None,
        })
    }
}

/// One user query + ranking function over several services, merged exactly.
pub struct FederatedSession<'a> {
    sessions: Vec<Session<'a>>,
    /// Head of each stream, pulled lazily.
    heads: Vec<Option<RankedTuple>>,
    /// Per-source: has `heads[i]` been filled at least once? Tracked per
    /// index so an error priming one source never re-pulls (and thereby
    /// skips tuples of) sources already primed.
    primed: Vec<bool>,
    emitted: usize,
    /// Circuit-breaker policy. `None` (default) propagates every error.
    circuit: Option<CircuitPolicy>,
    health: Vec<SourceHealth>,
    /// Fan per-source pulls (priming, due probes) across this executor.
    /// `None` (default) pulls serially.
    executor: Option<Arc<Executor>>,
}

impl<'a> FederatedSession<'a> {
    /// Open one session per service with the same selection and ranking
    /// function. Fails fast if any source refuses the request (capability
    /// or algorithm preflight). Use [`FederatedSession::builder`] for
    /// per-source retry overrides.
    pub fn open(
        services: &'a [&'a RerankService],
        sel: Query,
        rank: Arc<dyn RankFn>,
        algo: Algorithm,
    ) -> Result<Self, RerankError> {
        Self::builder(services, sel, rank, algo).open()
    }

    /// A builder for federations needing per-source configuration.
    pub fn builder(
        services: &'a [&'a RerankService],
        sel: Query,
        rank: Arc<dyn RankFn>,
        algo: Algorithm,
    ) -> FederationBuilder<'a> {
        FederationBuilder {
            services,
            sel,
            rank,
            algo,
            source_retries: Vec::new(),
        }
    }

    /// Degrade instead of dying: a source whose pulls fail `threshold`
    /// times in a row (or fail non-retryably even once) trips its
    /// circuit and leaves the merge; the remaining sources' exact merged
    /// stream continues and [`FederatedSession::report`] carries the typed
    /// per-source post-mortem. `threshold` is clamped to at least 1.
    /// Adjusts only the trip threshold: a cool-down already configured via
    /// [`FederatedSession::with_circuit`] is kept (and absent one, sources
    /// never probe). Use `with_circuit` directly for full control.
    pub fn with_failure_threshold(self, threshold: u32) -> Self {
        let cooldown = self.circuit.and_then(|c| c.cooldown_ms);
        let mut policy = CircuitPolicy::trip_after(threshold);
        policy.cooldown_ms = cooldown;
        self.with_circuit(policy)
    }

    /// Full circuit-breaker control, including the half-open cool-down
    /// ([`CircuitPolicy::cooldown`]): a tripped source admits one probe
    /// pull per elapsed cool-down window and rejoins the merge on success.
    pub fn with_circuit(mut self, policy: CircuitPolicy) -> Self {
        self.circuit = Some(policy);
        self
    }

    /// Fan per-source pulls (head priming, due half-open probes) across
    /// `executor` instead of visiting sources serially. Results are
    /// committed in source order after the fan-out joins, so the merged
    /// stream is exactly the serial one.
    pub fn with_executor(mut self, executor: Arc<Executor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Pull the next tuple from source `i` (serial path).
    fn pull(&mut self, i: usize) -> Result<Option<RankedTuple>, RerankError> {
        pull_source(&mut self.sessions[i], &mut self.health[i], self.circuit)
    }

    /// Whether source `i` needs a pull before the next merge step: never
    /// primed, or tripped with its head empty and a half-open probe *due*
    /// on its service clock. Tripped sources that can never rejoin (no
    /// cool-down) or are still cooling must not defeat the steady-state
    /// fast path — one clock read here is far cheaper than a fan-out task
    /// per merge step. (`pull_source` re-checks the clock; this test only
    /// gates whether a pull is attempted at all.)
    fn needs_pull(&self, i: usize) -> bool {
        if !self.primed[i] {
            return true;
        }
        if self.heads[i].is_some() || !self.health[i].tripped {
            return false;
        }
        match (
            self.circuit.and_then(|c| c.cooldown_ms),
            self.health[i].tripped_at_ms,
        ) {
            (Some(cd), Some(at)) => {
                self.sessions[i].svc().clock().now_ms() >= at.saturating_add(cd)
            }
            _ => false,
        }
    }

    /// Fill every head that needs filling — the initial prime and any due
    /// half-open probes — serially or fanned across the executor.
    ///
    /// Both paths commit results in source order and leave successfully
    /// pulled heads in place even when another source errors, so no paid
    /// tuple is ever dropped and a retry after a transient failure
    /// resumes exactly. (The parallel path may have advanced sources the
    /// serial path would not have reached before erroring — each source's
    /// own pull sequence is unchanged either way, and those heads are
    /// buffered, not lost.)
    fn fill_heads(&mut self) -> Result<(), RerankError> {
        let n = self.sessions.len();
        // Steady state — every head primed, nothing probe-due — is one
        // allocation-free scan per merge step; the `need` vector is only
        // materialized (and each source only tested once) when some source
        // actually wants a pull.
        let mut need: Option<Vec<bool>> = None;
        for i in 0..n {
            if self.needs_pull(i) {
                need.get_or_insert_with(|| vec![false; n])[i] = true;
            }
        }
        let Some(need) = need else {
            return Ok(());
        };
        let fanout = need.iter().filter(|&&b| b).count() > 1;
        match self.executor.clone() {
            Some(exec) if fanout => {
                let circuit = self.circuit;
                let pulls: Vec<Option<Result<Option<RankedTuple>, RerankError>>> = {
                    let sessions = &mut self.sessions;
                    let health = &mut self.health;
                    exec.scope(|s| {
                        let handles: Vec<_> = sessions
                            .iter_mut()
                            .zip(health.iter_mut())
                            .zip(&need)
                            .map(|((sess, h), &go)| {
                                go.then(|| s.spawn(move || pull_source(sess, h, circuit)))
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|o| o.map(qrs_exec::TaskHandle::join))
                            .collect()
                    })
                };
                let mut first_err = None;
                for (i, pull) in pulls.into_iter().enumerate() {
                    match pull {
                        None => {}
                        Some(Ok(head)) => {
                            self.heads[i] = head;
                            self.primed[i] = true;
                        }
                        Some(Err(e)) if first_err.is_none() => first_err = Some(e),
                        Some(Err(_)) => {}
                    }
                }
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            _ => {
                for (i, &go) in need.iter().enumerate() {
                    if go {
                        self.heads[i] = self.pull(i)?;
                        self.primed[i] = true;
                    }
                }
                Ok(())
            }
        }
    }

    /// The globally next-best tuple across all sources.
    ///
    /// Not an `Iterator`: each step can fail on a source's budget or
    /// server, and callers need that error, not a silent stop. An `Err`
    /// consumes nothing: the winning head stays buffered, so a retry
    /// after a transient failure resumes the merge without skipping or
    /// dropping any source's tuples.
    ///
    /// With [`FederatedSession::with_failure_threshold`] set, source
    /// failures are absorbed into circuit state instead of surfacing here:
    /// a persistently failing source trips and leaves the merge, and this
    /// method keeps returning the remaining sources' exact merged stream.
    /// The one exception is total failure — *every* source tripped: that
    /// surfaces the last recorded error instead of `Ok(None)`, so a dead
    /// federation is never mistaken for a legitimately empty result (a
    /// tripped source may still recover through a half-open probe once its
    /// cool-down elapses, after which this method resumes returning hits).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<FederatedHit>, RerankError> {
        self.fill_heads()?;
        let best = self
            .heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.as_ref().map(|r| (i, r.score)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i);
        let Some(i) = best else {
            if !self.health.is_empty() && self.health.iter().all(|h| h.tripped) {
                let e = self
                    .health
                    .iter()
                    .rev()
                    .find_map(|h| h.last_error.clone())
                    .expect("a tripped source always records its error");
                return Err(e);
            }
            return Ok(None);
        };
        // Refill *before* taking the current head: if the refill fails, the
        // head is still in place and a retry re-enters here cleanly.
        let refill = self.pull(i)?;
        let hit = std::mem::replace(&mut self.heads[i], refill).expect("head checked above");
        self.emitted += 1;
        Ok(Some(FederatedHit {
            source: i,
            hit: RankedTuple {
                rank: self.emitted,
                ..hit
            },
        }))
    }

    /// The federated top `h` (shorter if all sources are exhausted).
    ///
    /// Partial results survive failure, mirroring `Session::top`: hits
    /// merged before a source failed are returned alongside the error.
    pub fn top(&mut self, h: usize) -> (Vec<FederatedHit>, Option<RerankError>) {
        let mut out = Vec::with_capacity(h);
        while out.len() < h {
            match self.next() {
                Ok(Some(f)) => out.push(f),
                Ok(None) => break,
                Err(e) => return (out, Some(e)),
            }
        }
        (out, None)
    }

    /// Tuples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Typed per-source health report: circuit state, consecutive-failure
    /// count, trip/probe tallies, the last error each source produced, and
    /// the source session's spend accounting (queries and weighted cost
    /// units).
    pub fn report(&self) -> Vec<SourceReport> {
        self.health
            .iter()
            .zip(&self.sessions)
            .enumerate()
            .map(|(source, (h, sess))| SourceReport {
                source,
                consecutive_failures: h.consecutive_failures,
                tripped: h.tripped,
                trips: h.trips,
                probes_admitted: h.probes_admitted,
                last_error: h.last_error.clone(),
                stats: sess.stats(),
            })
            .collect()
    }

    /// Per-source session accounting (emitted, queries/attempts/retries
    /// spent), aligned with the sources passed to
    /// [`FederatedSession::open`]. Summing `queries_spent` across sources
    /// reconciles the federation against each backend's ledger — the
    /// consistency the parallel-vs-serial equivalence tests assert.
    pub fn session_stats(&self) -> Vec<SessionStats> {
        self.sessions.iter().map(Session::stats).collect()
    }

    /// Indices of sources whose circuit has tripped (dropped from the merge).
    pub fn tripped_sources(&self) -> Vec<usize> {
        self.health
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.tripped.then_some(i))
            .collect()
    }
}

impl std::fmt::Debug for FederatedSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederatedSession")
            .field("sources", &self.sessions.len())
            .field("emitted", &self.emitted)
            .field("circuit", &self.circuit)
            .field("tripped", &self.tripped_sources())
            .field("parallel", &self.executor.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_datagen::synthetic::uniform;
    use qrs_ranking::LinearRank;
    use qrs_server::{SimServer, SystemRank};
    use qrs_types::value::cmp_f64;
    use qrs_types::AttrId;

    fn svc(seed: u64, n: usize) -> (RerankService, qrs_types::Dataset) {
        let data = uniform(n, 2, 1, seed);
        let server = SimServer::new(data.clone(), SystemRank::pseudo_random(seed), 5);
        (RerankService::new(Arc::new(server), n), data)
    }

    fn rank() -> Arc<dyn RankFn> {
        Arc::new(LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]))
    }

    #[test]
    fn merge_is_globally_sorted_and_complete() {
        let (a, da) = svc(1, 120);
        let (b, db) = svc(2, 80);
        let services = [&a, &b];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let (got, err) = fed.top(30);
        assert!(err.is_none());
        assert_eq!(got.len(), 30);
        // Non-decreasing scores, ranks 1..=30.
        for (i, f) in got.iter().enumerate() {
            assert_eq!(f.hit.rank, i + 1);
            if i > 0 {
                assert!(got[i - 1].hit.score <= f.hit.score);
            }
        }
        // Matches the brute-force union ranking.
        let r = rank();
        let mut union: Vec<f64> = da
            .tuples()
            .iter()
            .chain(db.tuples().iter())
            .map(|t| r.score(t))
            .collect();
        union.sort_by(|x, y| cmp_f64(*x, *y));
        let want: Vec<f64> = union.into_iter().take(30).collect();
        let gots: Vec<f64> = got.iter().map(|f| f.hit.score).collect();
        assert_eq!(gots, want);
        // Both sources contribute.
        assert!(got.iter().any(|f| f.source == 0));
        assert!(got.iter().any(|f| f.source == 1));
    }

    #[test]
    fn exhausts_all_sources() {
        let (a, _) = svc(3, 25);
        let (b, _) = svc(4, 15);
        let services = [&a, &b];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let (got, err) = fed.top(1000);
        assert!(err.is_none());
        assert_eq!(got.len(), 40);
        assert!(fed.next().unwrap().is_none());
        assert_eq!(fed.emitted(), 40);
    }

    #[test]
    fn report_carries_weighted_spend_per_source() {
        use qrs_types::CostModel;
        // Source 0 is flat; source 1 meters page turns — a post-mortem
        // must show each source's weighted bill, not just query counts.
        let (flat, _) = svc(31, 40);
        let metered_data = uniform(40, 2, 1, 32);
        let metered_server = SimServer::new(
            metered_data,
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            5,
        )
        .with_cost_model(CostModel::flat().with_range_cost(2));
        let metered = RerankService::new(Arc::new(metered_server), 40);
        let services = [&flat, &metered];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let (got, err) = fed.top(10);
        assert!(err.is_none());
        assert_eq!(got.len(), 10);
        let report = fed.report();
        let stats = fed.session_stats();
        for (r, s) in report.iter().zip(&stats) {
            assert_eq!(r.stats, *s, "report and session_stats must agree");
        }
        // Flat source: cost == queries. Metered source: range-filtered MD
        // box queries cost more than their raw count.
        assert_eq!(
            report[0].stats.cost_units_spent,
            report[0].stats.queries_spent
        );
        assert!(report[1].stats.queries_spent > 0);
        assert!(report[1].stats.cost_units_spent > report[1].stats.queries_spent);
        // Per-source attribution reconciles against each backend's ledger.
        assert_eq!(
            report[1].stats.cost_units_spent,
            metered.server().cost_units_issued()
        );
    }

    #[test]
    fn merge_resumes_without_gaps_after_transient_errors() {
        // One source keeps tripping a tiny service budget; after each trip
        // the budget window is reset (a "new day") and the merge retried.
        // The final merged stream must equal the brute-force union ranking
        // exactly — no tuple dropped with the taken head, none skipped by
        // re-priming an already-primed source.
        let data_a = uniform(60, 2, 1, 7);
        let server_a = SimServer::new(
            data_a.clone(),
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        );
        let constrained = RerankService::new(Arc::new(server_a), 60).with_budget(5);
        let (free, data_b) = svc(8, 40);
        let services = [&free, &constrained];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let mut got = Vec::new();
        let mut trips = 0;
        loop {
            match fed.next() {
                Ok(Some(f)) => got.push(f.hit.score),
                Ok(None) => break,
                Err(e) => {
                    assert!(e.is_transient(), "unexpected terminal error {e}");
                    trips += 1;
                    assert!(trips < 1000, "merge never completed");
                    constrained.budget().reset(constrained.queries_issued());
                }
            }
        }
        assert!(trips > 0, "budget of 5 never tripped — test is vacuous");
        let r = rank();
        let mut want: Vec<f64> = data_a
            .tuples()
            .iter()
            .chain(data_b.tuples().iter())
            .map(|t| r.score(t))
            .collect();
        want.sort_by(|x, y| cmp_f64(*x, *y));
        assert_eq!(got, want, "resumed merge has gaps or duplicates");
    }

    #[test]
    fn one_dead_dealer_degrades_the_merge_instead_of_killing_it() {
        use qrs_server::{FaultyServer, SearchInterface};
        // Source 1's backend is permanently down from the very first call.
        let (a, data_a) = svc(21, 80);
        let dead_inner = Arc::new(SimServer::new(
            uniform(50, 2, 1, 22),
            SystemRank::pseudo_random(22),
            5,
        ));
        let dead = Arc::new(
            FaultyServer::new(dead_inner as Arc<dyn SearchInterface>).with_permanent_outage_from(0),
        );
        let dead_svc = RerankService::new(dead as Arc<dyn SearchInterface>, 50);
        let (c, data_c) = svc(23, 60);
        let services = [&a, &dead_svc, &c];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto)
            .unwrap()
            .with_failure_threshold(3);
        let (got, err) = fed.top(25);
        assert!(err.is_none(), "degraded merge must complete: {err:?}");
        assert_eq!(got.len(), 25);
        // Exactly the merged top-25 of the two healthy sources.
        let r = rank();
        let mut want: Vec<f64> = data_a
            .tuples()
            .iter()
            .chain(data_c.tuples().iter())
            .map(|t| r.score(t))
            .collect();
        want.sort_by(|x, y| cmp_f64(*x, *y));
        want.truncate(25);
        let gots: Vec<f64> = got.iter().map(|f| f.hit.score).collect();
        assert_eq!(gots, want);
        assert!(got.iter().all(|f| f.source != 1));
        // The typed per-source post-mortem.
        assert_eq!(fed.tripped_sources(), vec![1]);
        let report = fed.report();
        assert!(!report[0].tripped && report[0].last_error.is_none());
        assert!(report[1].tripped);
        assert_eq!(report[1].consecutive_failures, 3);
        assert!(matches!(
            report[1].last_error,
            Some(RerankError::Server(ref e)) if e.is_transient()
        ));
        assert!(!report[2].tripped && report[2].last_error.is_none());
    }

    #[test]
    fn non_transient_failure_trips_the_circuit_immediately() {
        // A source whose attribute only accepts point predicates dies
        // mid-stream with InvalidQuery (the MD subdivision needs ranges) —
        // non-transient, so the circuit must trip on the first strike
        // instead of burning the whole threshold on re-pulls.
        let (a, _) = svc(31, 40);
        let schema_pt = qrs_types::Schema::new(
            vec![
                {
                    let mut at = qrs_types::OrdinalAttr::new("x", 0.0, 9.0);
                    at.point_only = true;
                    at
                },
                qrs_types::OrdinalAttr::new("y", 0.0, 9.0),
            ],
            vec![],
        );
        let tuples = (0..40u32)
            .map(|i| {
                qrs_types::Tuple::new(
                    qrs_types::TupleId(i),
                    vec![f64::from(i % 10), f64::from((i * 7) % 10)],
                    vec![],
                )
            })
            .collect();
        let ds = qrs_types::Dataset::new(schema_pt, tuples).unwrap();
        let server = SimServer::new(ds, SystemRank::pseudo_random(31), 5);
        let point_only = RerankService::new(Arc::new(server), 40);
        let services = [&a, &point_only];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto)
            .unwrap()
            .with_failure_threshold(10);
        let (got, err) = fed.top(10);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(got.len(), 10);
        let report = fed.report();
        // The point-only source died on an InvalidQuery — non-transient, so
        // the circuit tripped on the first strike, not the tenth.
        assert!(report[1].tripped);
        assert_eq!(report[1].consecutive_failures, 1);
        assert!(matches!(
            report[1].last_error,
            Some(RerankError::Server(
                qrs_types::ServerError::InvalidQuery { .. }
            ))
        ));
    }

    #[test]
    fn total_failure_surfaces_an_error_not_an_empty_result() {
        use qrs_server::{FaultyServer, SearchInterface};
        // Every source dead: the degraded merge must NOT masquerade as a
        // legitimately empty stream — callers get the last typed error.
        let mk_dead = |seed: u64| {
            let inner = Arc::new(SimServer::new(
                uniform(30, 2, 1, seed),
                SystemRank::pseudo_random(seed),
                5,
            ));
            let dead = Arc::new(
                FaultyServer::new(inner as Arc<dyn SearchInterface>).with_permanent_outage_from(0),
            );
            RerankService::new(dead as Arc<dyn SearchInterface>, 30)
        };
        let (a, b) = (mk_dead(51), mk_dead(52));
        let services = [&a, &b];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto)
            .unwrap()
            .with_failure_threshold(2);
        let (got, err) = fed.top(5);
        assert!(got.is_empty());
        let err = err.expect("a fully-dead federation must surface an error");
        assert!(
            matches!(err, RerankError::Server(ref e) if e.is_transient()),
            "{err}"
        );
        assert_eq!(fed.tripped_sources(), vec![0, 1]);
        // The merge stays dead-but-usable: asking again keeps erroring
        // instead of flipping to a silent empty stream.
        assert!(fed.next().is_err());
    }

    #[test]
    fn budget_exhaustion_trips_the_circuit_without_futile_repulls() {
        // BudgetExhausted is transient (windows reset) but an immediate
        // re-pull can never heal it — the circuit must trip on the first
        // strike, not after burning the whole threshold.
        let data = uniform(400, 2, 1, 61);
        let server = SimServer::new(
            data,
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        );
        let constrained = RerankService::new(Arc::new(server), 400).with_budget(2);
        let (free, _) = svc(62, 50);
        let services = [&constrained, &free];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto)
            .unwrap()
            .with_failure_threshold(100);
        let (got, err) = fed.top(20);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(got.len(), 20, "the free source carries the merge");
        let report = fed.report();
        assert!(report[0].tripped);
        assert_eq!(
            report[0].consecutive_failures, 1,
            "budget exhaustion must trip on the first strike"
        );
        assert!(matches!(
            report[0].last_error,
            Some(RerankError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn healthy_source_recovers_consecutive_failure_count() {
        use qrs_server::{Fault, FaultyServer, SearchInterface};
        // One transient outage early on: with session-level fail-fast and a
        // fed threshold of 3, the strike is absorbed by an immediate
        // re-pull, the count resets on success, and nothing trips.
        let inner = Arc::new(SimServer::new(
            uniform(60, 2, 1, 41),
            SystemRank::pseudo_random(41),
            5,
        ));
        let flaky = Arc::new(
            FaultyServer::new(inner as Arc<dyn SearchInterface>).with_fault_at(1, Fault::Outage),
        );
        let flaky_svc = RerankService::new(flaky as Arc<dyn SearchInterface>, 60);
        let (b, _) = svc(42, 40);
        let services = [&flaky_svc, &b];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto)
            .unwrap()
            .with_failure_threshold(3);
        let (got, err) = fed.top(30);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(got.len(), 30);
        let report = fed.report();
        assert!(!report[0].tripped);
        assert_eq!(report[0].consecutive_failures, 0, "success must reset");
        assert!(report[0].last_error.is_some(), "the strike was recorded");
        assert!(got.iter().any(|f| f.source == 0));
    }

    #[test]
    fn half_open_circuit_readmits_a_recovered_source() {
        use qrs_server::{Clock, FaultyServer, MockClock, SearchInterface};
        // Source 1's backend is down for its first 3 calls, then healthy.
        // With threshold 2 it trips on the first two; after a cool-down a
        // probe hits the storm tail and re-trips; after a second cool-down
        // the probe lands on a healthy backend and the source rejoins.
        let (a, data_a) = svc(71, 40);
        let clock = Arc::new(MockClock::new());
        let inner = Arc::new(SimServer::new(
            uniform(30, 2, 1, 72),
            SystemRank::pseudo_random(72),
            5,
        ));
        let flaky = Arc::new(
            FaultyServer::new(inner as Arc<dyn SearchInterface>).with_storm(
                0,
                3,
                qrs_server::Fault::Outage,
            ),
        );
        let data_b = uniform(30, 2, 1, 72);
        let flaky_svc = RerankService::new(flaky as Arc<dyn SearchInterface>, 30)
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let services = [&a, &flaky_svc];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto)
            .unwrap()
            .with_circuit(qrs_types::CircuitPolicy::trip_after(2).cooldown(1_000));
        // Priming trips source 1 (2 consecutive outages, fail-fast retries).
        let (first, err) = fed.top(5);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(first.len(), 5);
        assert!(first.iter().all(|f| f.source == 0), "source 1 must be out");
        assert!(fed.report()[1].tripped);
        assert_eq!(fed.report()[1].trips, 1);
        // Cool-down passes; the next merge step admits ONE probe. The
        // storm has 1 fault left, so the first probe fails and re-trips…
        clock.advance(1_000);
        let (more, err) = fed.top(3);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(more.len(), 3);
        let r1 = fed.report()[1].clone();
        assert!(r1.tripped, "probe hit the storm tail: must re-trip");
        assert_eq!(r1.probes_admitted, 1);
        assert_eq!(r1.trips, 2);
        // …and only after another full cool-down does the next probe land
        // on a healthy backend and close the circuit for good.
        clock.advance(1_000);
        let (rest, err) = fed.top(1_000);
        assert!(err.is_none(), "{err:?}");
        let r1 = fed.report()[1].clone();
        assert!(!r1.tripped, "recovered source must close its circuit");
        assert_eq!(r1.probes_admitted, 2);
        assert_eq!(r1.consecutive_failures, 0);
        assert!(
            rest.iter().any(|f| f.source == 1),
            "the recovered source must contribute tuples again"
        );
        // Everything emitted after recovery is still exactly merged: the
        // full stream is the sorted union minus what source 0 emitted
        // while source 1 was out (those went out in source-0 order, which
        // is globally sorted for source 0 alone).
        let all: Vec<f64> = first
            .iter()
            .chain(more.iter())
            .chain(rest.iter())
            .map(|f| f.hit.score)
            .collect();
        let r = rank();
        let mut want: Vec<f64> = data_a
            .tuples()
            .iter()
            .chain(data_b.tuples().iter())
            .map(|t| r.score(t))
            .collect();
        want.sort_by(|x, y| cmp_f64(*x, *y));
        let mut got_sorted = all.clone();
        got_sorted.sort_by(|x, y| cmp_f64(*x, *y));
        assert_eq!(got_sorted, want, "no tuple lost or duplicated end to end");
    }

    #[test]
    fn tripped_source_without_cooldown_never_probes() {
        use qrs_server::{FaultyServer, SearchInterface};
        let (a, _) = svc(81, 60);
        let dead_inner = Arc::new(SimServer::new(
            uniform(40, 2, 1, 82),
            SystemRank::pseudo_random(82),
            5,
        ));
        let dead = Arc::new(
            FaultyServer::new(dead_inner as Arc<dyn SearchInterface>).with_permanent_outage_from(0),
        );
        let dead_svc = RerankService::new(dead as Arc<dyn SearchInterface>, 40);
        let services = [&a, &dead_svc];
        let mut fed = FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto)
            .unwrap()
            .with_failure_threshold(2);
        let (got, err) = fed.top(30);
        assert!(err.is_none(), "{err:?}");
        assert_eq!(got.len(), 30);
        let r1 = fed.report()[1].clone();
        assert!(r1.tripped);
        assert_eq!(r1.probes_admitted, 0, "no cool-down ⇒ no probes, ever");
        assert_eq!(r1.trips, 1);
    }

    #[test]
    fn per_source_retry_policy_overrides_apply_per_source() {
        use qrs_server::{Clock, Fault, FaultyServer, MockClock, SearchInterface};
        use qrs_types::RetryPolicy;
        // Source 0's backend drops two pages in transit mid-stream; its
        // override policy absorbs them. Source 1 keeps the service default
        // (fail fast) and never spends a retry.
        let clock = Arc::new(MockClock::new());
        let inner = Arc::new(SimServer::new(
            uniform(60, 2, 1, 91),
            SystemRank::pseudo_random(91),
            5,
        ));
        let flaky = Arc::new(
            FaultyServer::new(Arc::clone(&inner) as Arc<dyn SearchInterface>)
                .with_fault_at(2, Fault::Outage)
                .with_fault_at(3, Fault::Outage),
        );
        let flaky_svc = RerankService::new(flaky as Arc<dyn SearchInterface>, 60)
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let (steady, _) = svc(92, 40);
        let services = [&flaky_svc, &steady];
        let mut fed = FederatedSession::builder(&services, Query::all(), rank(), Algorithm::Auto)
            .source_retry(0, RetryPolicy::none().attempts(5).backoff(10, 1_000))
            .open()
            .unwrap();
        let (got, err) = fed.top(40);
        assert!(err.is_none(), "the override must absorb the storm: {err:?}");
        assert_eq!(got.len(), 40);
        let stats = fed.session_stats();
        assert!(
            stats[0].retries_spent >= 1,
            "source 0 had to retry: {stats:?}"
        );
        assert_eq!(stats[1].retries_spent, 0, "source 1 stays fail-fast");
        assert!(
            !clock.sleeps().is_empty(),
            "backoff slept on the mock clock"
        );
    }

    #[test]
    fn source_retry_rejects_out_of_range_indices_at_open() {
        let (a, _) = svc(95, 40);
        let services = [&a];
        let err = FederatedSession::builder(&services, Query::all(), rank(), Algorithm::Auto)
            .source_retry(1, qrs_types::RetryPolicy::standard())
            .open()
            .unwrap_err();
        assert!(
            matches!(err, RerankError::InvalidAlgorithm { ref reason }
                if reason.contains("source 1") && reason.contains("1 sources")),
            "typoed index must be refused, got: {err}"
        );
    }

    #[test]
    fn later_source_retry_overrides_win() {
        use qrs_server::{Clock, Fault, FaultyServer, MockClock, SearchInterface};
        use qrs_types::RetryPolicy;
        // First override says fail fast; the later one absorbs the storm.
        // The merge only completes if the LAST override is in force.
        let clock = Arc::new(MockClock::new());
        let inner = Arc::new(SimServer::new(
            uniform(50, 2, 1, 96),
            SystemRank::pseudo_random(96),
            5,
        ));
        let flaky = Arc::new(
            FaultyServer::new(Arc::clone(&inner) as Arc<dyn SearchInterface>)
                .with_fault_at(2, Fault::Outage)
                .with_fault_at(3, Fault::Outage),
        );
        let flaky_svc = RerankService::new(flaky as Arc<dyn SearchInterface>, 50)
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let services = [&flaky_svc];
        let mut fed = FederatedSession::builder(&services, Query::all(), rank(), Algorithm::Auto)
            .source_retry(0, RetryPolicy::none())
            .source_retry(0, RetryPolicy::none().attempts(5).backoff(10, 1_000))
            .open()
            .unwrap();
        let (got, err) = fed.top(50);
        assert!(err.is_none(), "the later override must be applied: {err:?}");
        assert_eq!(got.len(), 50);
        assert!(fed.session_stats()[0].retries_spent >= 1);
    }

    #[test]
    fn parallel_fan_out_matches_the_serial_merge_exactly() {
        use qrs_exec::Executor;
        // Same seeds, two stacks: serial vs pooled fan-out must produce
        // byte-identical streams and identical per-source ledgers.
        let run = |executor: Option<Arc<Executor>>| {
            let (a, _) = svc(101, 90);
            let (b, _) = svc(102, 70);
            let (c, _) = svc(103, 50);
            let services = [&a, &b, &c];
            let mut fed =
                FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
            if let Some(e) = executor {
                fed = fed.with_executor(e);
            }
            let (got, err) = fed.top(60);
            assert!(err.is_none(), "{err:?}");
            let stream: Vec<(usize, usize, u32)> = got
                .iter()
                .map(|f| (f.source, f.hit.rank, f.hit.tuple.id.0))
                .collect();
            (stream, fed.session_stats())
        };
        let (serial_stream, serial_stats) = run(None);
        let (pool_stream, pool_stats) = run(Some(Arc::new(Executor::pool(4))));
        let (imm_stream, imm_stats) = run(Some(Arc::new(Executor::immediate(7))));
        assert_eq!(serial_stream, pool_stream);
        assert_eq!(serial_stats, pool_stats);
        assert_eq!(serial_stream, imm_stream);
        assert_eq!(serial_stats, imm_stats);
    }

    #[test]
    fn budget_error_propagates_from_any_source() {
        let data = uniform(400, 2, 1, 5);
        let server = SimServer::new(
            data.clone(),
            SystemRank::linear("anti", vec![(AttrId(0), -1.0), (AttrId(1), -1.0)]),
            3,
        );
        let constrained = RerankService::new(Arc::new(server), 400).with_budget(2);
        let (free, _) = svc(6, 50);
        let services = [&constrained, &free];
        let mut fed =
            FederatedSession::open(&services, Query::all(), rank(), Algorithm::Auto).unwrap();
        let mut saw_err = false;
        for _ in 0..100 {
            match fed.next() {
                Err(e) => {
                    match e {
                        qrs_types::RerankError::BudgetExhausted { spent, limit } => {
                            assert_eq!(limit, 2);
                            assert!(spent >= 2);
                        }
                        other => panic!("expected budget error, got {other}"),
                    }
                    saw_err = true;
                    break;
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
            }
        }
        assert!(saw_err, "constrained source never tripped its budget");
    }
}
