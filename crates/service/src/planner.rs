//! The capability-aware query planner.
//!
//! Real restricted sites differ in *which* algorithms can run at all: a 1D
//! or MD cursor needs range predicates on the attributes it binary-searches,
//! TA-over-`ORDER BY` needs the public sort plus enough page depth to drain
//! a stream, and the page-down fallback needs paging deep enough to provably
//! cover the relation. The [`Planner`] preflights a session's query shape
//! against the server's advertised [`Capabilities`] and either produces a
//! [`Plan`] — algorithm choice, the (possibly relaxed) query to send
//! server-side, and the residual predicate to re-apply client-side — or
//! fails fast with [`RerankError::Unplannable`] naming the missing
//! capabilities. A session that opens cleanly never hits a capability
//! refusal mid-stream, and every plan is **exact**: predicates the site
//! cannot evaluate are relaxed server-side and re-applied client-side,
//! which preserves rank order (filtering a ranked stream never reorders
//! it), and the page-down fallback is only chosen when the advertised page
//! depth provably drains the result.
//!
//! One precondition bounds the mid-stream guarantee: the drain proof for
//! the paging candidates is relative to the service's `n_estimate`. If the
//! estimate *under*states the real database (a real adapter can only
//! estimate `|D|`), a depth-capped site can still refuse a page mid-stream
//! — the failure stays **typed** (`UnsupportedCapability(PageDepth)` from
//! the strict cursor; never a silently truncated ranking), but pages
//! fetched up to the wall are paid for. Prefer a generous estimate on
//! depth-capped sites; overstating only makes the planner more
//! conservative.
//!
//! Among the *feasible* candidates — the §3/§4 cursor for the ranking
//! arity, TA over public `ORDER BY`, strict page-down — the planner does
//! not follow a fixed preference order: each candidate is cost-estimated
//! under the site's advertised [`qrs_types::CostModel`] (its own
//! [`qrs_core::RerankStrategy::estimate`] heuristic, priced by the same
//! model the server's ledger charges by) and the cheapest wins.
//! [`Plan::candidates`] reports the full ranking; equal-cost ties keep the
//! paper's order (cursor, then TA, then page-down). The `planner_cost`
//! experiment in `qrs-bench` sweeps this choice against actually-charged
//! ledgers across the site-profile catalog.

use crate::calibration::Calibration;
use crate::service::Algorithm;
use qrs_core::md::ta::SortedAccess;
use qrs_core::strategy::{
    names, CostEstimate, MdCursorStrategy, OneDCursorStrategy, PageDownStrategy, PlanContext,
    TaCursorStrategy,
};
use qrs_core::{MdOptions, OneDStrategy, TiePolicy};
use qrs_ranking::RankFn;
use qrs_server::Capabilities;
use qrs_types::{AttrId, Capability, Query, RerankError, Schema};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;

/// One *feasible* candidate algorithm, with its predicted spend under the
/// site's advertised cost model. Produced by [`Planner::plan`] in
/// cheapest-first order.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// Stable candidate name (`"1d-rerank"`, `"ta-order-by"`, …; a custom
    /// strategy's own name when one was registered).
    pub name: String,
    /// The algorithm this candidate runs.
    pub algorithm: Algorithm,
    /// Predicted spend to the plan horizon, priced under the advertised
    /// [`qrs_types::CostModel`].
    pub estimate: CostEstimate,
    /// The static estimate scaled by the calibration store's learned
    /// actual/predicted ratio for this strategy family. Equal to
    /// [`RankedCandidate::estimate`] when no store is attached or the
    /// family is untrained. *This* is the number candidates are ranked by.
    pub calibrated: CostEstimate,
    /// The selection this candidate would send server-side (its own
    /// relaxation of the user query) — what a mid-flight switch to this
    /// candidate drives with.
    pub server_query: Query,
    /// Predicates this candidate's relaxation leaves for the client to
    /// re-apply. `None` when the site evaluates the full selection.
    pub residual: Option<Query>,
    /// Whether this candidate needs predicates relaxed server-side (and
    /// re-applied client-side).
    pub relaxed: bool,
}

/// A planned session: which algorithm runs, what the server sees, and what
/// the session re-checks client-side.
///
/// Every plan is exact by construction — see the module docs.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The algorithm the planner selected — the cheapest feasible
    /// candidate by predicted cost (first entry of [`Plan::candidates`]).
    pub algorithm: Algorithm,
    /// The selection actually sent to the server: the user's query with
    /// every predicate the site cannot evaluate relaxed away.
    pub server_query: Query,
    /// Predicates relaxed out of [`Plan::server_query`], re-applied
    /// client-side by the session before emitting a tuple. `None` when the
    /// site evaluated the full selection.
    pub residual: Option<Query>,
    /// Predicted spend of the chosen candidate.
    pub estimate: CostEstimate,
    /// Calibration-scaled predicted spend of the chosen candidate —
    /// equals [`Plan::estimate`] without a trained calibration store.
    pub calibrated_estimate: CostEstimate,
    /// Every feasible candidate, ranked cheapest-first under the site's
    /// advertised cost model; `candidates[0]` is the chosen one. Explicit
    /// [`crate::SessionBuilder::algorithm`] overrides and custom
    /// strategies produce a single-entry list.
    pub candidates: Vec<RankedCandidate>,
    /// One verdict per considered candidate — the cost ranking of the
    /// feasible ones, and why each infeasible one was rejected.
    pub rationale: String,
}

/// Preflights query shapes against a site's advertised [`Capabilities`].
///
/// Obtain one from [`crate::RerankService::planner`], or construct it
/// directly to plan against a hypothetical site model:
///
/// ```
/// use qrs_service::{Algorithm, Planner};
/// use qrs_server::Capabilities;
/// use qrs_ranking::LinearRank;
/// use qrs_types::{AttrId, FilterSupport, Query, RerankError, Schema, OrdinalAttr};
/// use std::sync::Arc;
///
/// let schema = Arc::new(Schema::new(
///     vec![OrdinalAttr::new("price", 0.0, 100.0)],
///     vec![],
/// ));
/// let rank = LinearRank::asc(vec![(AttrId(0), 1.0)]);
///
/// // A site with a full price slider: the 1D cursor plans, and the plan
/// // carries its predicted spend under the site's advertised cost model.
/// let open = Planner::new(Capabilities::none(), Arc::clone(&schema), 10, 1_000);
/// let plan = open.plan(&Query::all(), &rank, Default::default())?;
/// assert!(matches!(plan.algorithm, Algorithm::OneD(_)));
/// assert!(plan.estimate.cost_units > 0);
/// assert_eq!(plan.candidates[0].name, "1d-rerank");
///
/// // A dropdown-only site without paging: nothing fits, and the error
/// // names what is missing.
/// let dropdown = Planner::new(
///     Capabilities::none().with_filter(AttrId(0), FilterSupport::Point),
///     schema, 10, 1_000,
/// );
/// let err = dropdown.plan(&Query::all(), &rank, Default::default()).unwrap_err();
/// assert!(matches!(err, RerankError::Unplannable { .. }));
/// # Ok::<(), RerankError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Planner {
    caps: Capabilities,
    schema: Arc<Schema>,
    k: usize,
    n_estimate: usize,
    /// Tuples the caller expects to pull — the horizon cost estimates are
    /// computed for. Defaults to `k` (one page of answers).
    horizon: usize,
    /// Observed-cost store scaling the static estimates before ranking
    /// (`None` = static planning).
    calibration: Option<Arc<Calibration>>,
}

/// Why one candidate algorithm cannot run, for the rationale trace.
struct Rejection {
    candidate: &'static str,
    missing: Vec<Capability>,
}

impl Planner {
    /// A planner for a site advertising `caps`, page size `k`, over a
    /// database of (estimated) `n_estimate` tuples. The size estimate only
    /// gates the paging-based fallbacks — how many pages provably drain
    /// the relation — so it must be an *upper bound* on `|D|` for the
    /// no-mid-stream-refusal guarantee to hold on depth-capped sites (see
    /// the module docs; an underestimate degrades to a typed, never
    /// silent, mid-stream `PageDepth` refusal).
    pub fn new(caps: Capabilities, schema: Arc<Schema>, k: usize, n_estimate: usize) -> Self {
        Planner {
            caps,
            schema,
            k: k.max(1),
            n_estimate: n_estimate.max(1),
            horizon: k.max(1),
            calibration: None,
        }
    }

    /// Estimate costs for pulling `h` tuples instead of the default one
    /// page (`k`). The horizon only scales the per-candidate
    /// [`CostEstimate`]s — feasibility is horizon-independent — but it can
    /// flip the ranking: drains (page-down) cost the same for any `h`,
    /// cursors pay per tuple.
    pub fn with_horizon(mut self, h: usize) -> Self {
        self.horizon = h.max(1);
        self
    }

    /// Rank candidates by calibration-scaled cost: each family's static
    /// estimate is multiplied by `store`'s learned actual/predicted ratio
    /// ([`Calibration::calibrate`]) before the cheapest-wins sort.
    /// Untrained families rank by their static estimate unchanged.
    pub fn with_calibration(mut self, store: Arc<Calibration>) -> Self {
        self.calibration = Some(store);
        self
    }

    /// The filter capability an algorithm needs to constrain `attr`: a
    /// point-only attribute (with its value list in the schema) is driven
    /// by point probes, anything else by range binary search.
    fn filter_req(&self, attr: AttrId) -> Capability {
        if self.schema.ordinal(attr).point_only {
            Capability::PointFilter(attr)
        } else {
            Capability::RangeFilter(attr)
        }
    }

    /// Page depth that provably drains any result set on this site.
    fn depth_to_drain(&self) -> usize {
        self.n_estimate.div_ceil(self.k)
    }

    /// The [`PlanContext`] cost estimates run in, for the given (possibly
    /// relaxed) server-side query shape.
    fn plan_context(&self, server_query: Query, rank_attrs: Vec<AttrId>) -> PlanContext {
        PlanContext {
            caps: self.caps.clone(),
            schema: Arc::clone(&self.schema),
            k: self.k,
            n_estimate: self.n_estimate,
            horizon: self.horizon,
            server_query,
            rank_attrs,
        }
    }

    /// Predicted spend of running `algo` in `ctx` — the built-in
    /// strategies' own estimators, the same ones
    /// [`qrs_core::RerankStrategy::estimate`] exposes on the constructed
    /// objects.
    pub(crate) fn estimate_for(algo: &Algorithm, ctx: &PlanContext) -> CostEstimate {
        match algo {
            Algorithm::OneD(_) => OneDCursorStrategy::estimate_in(ctx),
            Algorithm::Md(_) => MdCursorStrategy::estimate_in(ctx),
            Algorithm::Ta(access) => TaCursorStrategy::estimate_with_access(
                ctx,
                matches!(access, SortedAccess::PublicOrderBy),
            ),
            Algorithm::PageDown { .. } => PageDownStrategy::estimate_in(ctx),
            Algorithm::Auto | Algorithm::Custom => {
                unreachable!("estimate_for is only called on concrete built-in algorithms")
            }
        }
    }

    /// Plan a session for selection `sel` under ranking `rank` with tie
    /// policy `tie`: every feasible candidate is cost-estimated under the
    /// site's advertised [`qrs_types::CostModel`] and the cheapest one is
    /// chosen ([`Plan::candidates`] carries the full ranking). Ties keep
    /// the paper's preference order (cursor, then TA, then page-down).
    ///
    /// # Errors
    /// [`RerankError::Unplannable`] when no candidate algorithm fits,
    /// carrying the deduplicated missing capabilities in candidate order.
    pub fn plan(
        &self,
        sel: &Query,
        rank: &dyn RankFn,
        tie: TiePolicy,
    ) -> Result<Plan, RerankError> {
        struct Feasible {
            name: &'static str,
            algorithm: Algorithm,
            server_query: Query,
            residual: Option<Query>,
            estimate: CostEstimate,
            calibrated: CostEstimate,
        }
        let mut feasible: Vec<Feasible> = Vec::new();
        let mut rejections: Vec<Rejection> = Vec::new();

        for candidate in self.candidates(rank, tie) {
            match self.try_candidate(&candidate, sel) {
                Ok((server_query, residual)) => {
                    let ctx = self.plan_context(server_query.clone(), rank.attrs().to_vec());
                    let estimate = Self::estimate_for(&candidate.algorithm, &ctx);
                    let calibrated = match &self.calibration {
                        Some(store) => store.calibrate(candidate.name, estimate),
                        None => estimate,
                    };
                    feasible.push(Feasible {
                        name: candidate.name,
                        algorithm: candidate.algorithm,
                        server_query,
                        residual,
                        estimate,
                        calibrated,
                    });
                }
                Err(missing) => rejections.push(Rejection {
                    candidate: candidate.name,
                    missing,
                }),
            }
        }

        if feasible.is_empty() {
            let mut reason = String::new();
            let mut missing: Vec<Capability> = Vec::new();
            for (i, r) in rejections.iter().enumerate() {
                if i > 0 {
                    reason.push_str("; ");
                }
                let _ = write!(reason, "{} needs ", r.candidate);
                push_caps(&mut reason, &r.missing);
                for c in &r.missing {
                    if !missing.contains(c) {
                        missing.push(*c);
                    }
                }
            }
            return Err(RerankError::unplannable(missing, reason));
        }

        // Cheapest *calibrated* predicted cost wins (equal to the static
        // cost without a trained store); the sort is stable, so equal-cost
        // candidates keep the paper's preference order.
        feasible.sort_by_key(|f| f.calibrated.cost_units);

        let calibrating = feasible
            .iter()
            .any(|f| f.calibrated.cost_units != f.estimate.cost_units);
        let mut rationale = String::new();
        let _ = write!(
            rationale,
            "{}: cheapest feasible at {}{}{}",
            feasible[0].name,
            feasible[0].calibrated,
            if calibrating {
                format!(" (calibrated from {})", feasible[0].estimate)
            } else {
                String::new()
            },
            match &feasible[0].residual {
                Some(r) => format!(" (relaxed `{r}` server-side; re-applied client-side)"),
                None => String::new(),
            }
        );
        if feasible.len() > 1 {
            rationale.push_str("; ranked");
            for f in &feasible {
                let _ = write!(rationale, " {} {},", f.name, f.calibrated);
            }
            rationale.pop();
        }
        for r in &rejections {
            let _ = write!(rationale, "; rejected {}: ", r.candidate);
            push_caps(&mut rationale, &r.missing);
        }

        let candidates = feasible
            .iter()
            .map(|f| RankedCandidate {
                name: f.name.to_string(),
                algorithm: f.algorithm,
                estimate: f.estimate,
                calibrated: f.calibrated,
                server_query: f.server_query.clone(),
                residual: f.residual.clone(),
                relaxed: f.residual.is_some(),
            })
            .collect();
        let chosen = feasible.swap_remove(0);
        Ok(Plan {
            algorithm: chosen.algorithm,
            server_query: chosen.server_query,
            residual: chosen.residual,
            estimate: chosen.estimate,
            calibrated_estimate: chosen.calibrated,
            candidates,
            rationale,
        })
    }

    /// The candidate algorithms for this ranking arity, most query-efficient
    /// first.
    fn candidates(&self, rank: &dyn RankFn, tie: TiePolicy) -> Vec<Candidate> {
        let rank_attrs: Vec<AttrId> = rank.attrs().to_vec();
        let all_attrs: BTreeSet<AttrId> = self.schema.attr_ids().collect();
        let mut out = Vec::new();
        if rank.dims() == 1 {
            // Exact tie handling may sub-crawl a value slab over the other
            // attributes, so it conservatively needs filters on all of
            // them; AssumeDistinct only binary-searches the ranking
            // attribute.
            let constrained = match tie {
                TiePolicy::Exact => all_attrs.clone(),
                TiePolicy::AssumeDistinct => rank_attrs.iter().copied().collect(),
            };
            out.push(Candidate {
                name: names::ONE_D,
                algorithm: Algorithm::OneD(OneDStrategy::Rerank),
                constrained,
                order_by: Vec::new(),
            });
        } else {
            // The MD cursor box-partitions the ranking space and, for
            // exact duplicate handling, may sub-crawl cells over the
            // remaining attributes: conservatively all of them.
            out.push(Candidate {
                name: names::MD,
                algorithm: Algorithm::Md(MdOptions::rerank()),
                constrained: all_attrs,
                order_by: Vec::new(),
            });
        }
        out.push(Candidate {
            name: names::TA_ORDER_BY,
            algorithm: Algorithm::Ta(SortedAccess::PublicOrderBy),
            constrained: BTreeSet::new(),
            order_by: rank_attrs,
        });
        out.push(Candidate {
            name: names::PAGE_DOWN,
            algorithm: Algorithm::PageDown {
                max_pages: self.caps.max_pages.unwrap_or(usize::MAX),
            },
            constrained: BTreeSet::new(),
            order_by: Vec::new(),
        });
        out
    }

    /// Check one candidate: collect its missing capabilities, or shape the
    /// selection it will run with (server-side query + client-side
    /// residual).
    #[allow(clippy::type_complexity)]
    fn try_candidate(
        &self,
        c: &Candidate,
        sel: &Query,
    ) -> Result<(Query, Option<Query>), Vec<Capability>> {
        let mut missing = Vec::new();

        // Paging-driven candidates (TA streams, page-down) must be able to
        // drain a worst-case result within the advertised page depth —
        // otherwise they would fail (typed, but mid-stream) or go inexact.
        match c.algorithm {
            Algorithm::PageDown { .. } => {
                let depth = self.depth_to_drain();
                if !self.caps.paging {
                    missing.push(Capability::Paging);
                } else if !self.caps.supports(Capability::PageDepth(depth)) {
                    missing.push(Capability::PageDepth(depth));
                }
            }
            Algorithm::Ta(_) => {
                // TA pages via public ORDER BY, which the depth cap also
                // governs (the `paging` flag itself does not: ORDER BY
                // paging is a separate site feature).
                let depth = self.depth_to_drain();
                if self.caps.max_pages.is_some_and(|m| depth > m) {
                    missing.push(Capability::PageDepth(depth));
                }
            }
            _ => {}
        }
        for &a in &c.order_by {
            if !self.caps.supports(Capability::OrderBy(a)) {
                missing.push(Capability::OrderBy(a));
            }
        }
        // Filters on every attribute the cursor itself constrains.
        for &a in &c.constrained {
            let req = self.filter_req(a);
            if !self.caps.supports(req) {
                missing.push(req);
            }
        }
        if !missing.is_empty() {
            return Err(missing);
        }

        // Shape the selection: relax predicates the site cannot evaluate
        // (wrong filter level) or will not accept (arity cap), re-applied
        // client-side. Predicates on cursor-constrained attributes are
        // always expressible here — the filter requirements above passed.
        let mut server_query = Query::all();
        let mut residual = Query::all();
        let mut relaxed = false;
        for p in sel.ranges() {
            if p.interval.is_all() {
                continue;
            }
            let sup = self.caps.filter_support(p.attr);
            let expressible = sup.allows_range() || (sup.allows_point() && p.interval.is_point());
            if expressible {
                server_query.add_range(p.attr, p.interval);
            } else {
                residual.add_range(p.attr, p.interval);
                relaxed = true;
            }
        }
        for p in sel.cats() {
            server_query.add_cat(p.clone());
        }

        // Conjunct arity: the cursor's own predicates plus whatever of the
        // selection survived. Relax optional selection predicates (those
        // not on cursor-constrained attributes) until the worst-case query
        // fits; if the cursor's intrinsic arity alone exceeds the cap, the
        // candidate cannot run.
        if let Some(cap) = self.caps.max_predicates {
            let intrinsic = c.constrained.len();
            if intrinsic > cap {
                return Err(vec![Capability::PredicateArity(intrinsic)]);
            }
            let arity = |q: &Query| -> usize {
                let attrs: BTreeSet<AttrId> = q
                    .ranges()
                    .iter()
                    .map(|p| p.attr)
                    .chain(c.constrained.iter().copied())
                    .collect();
                attrs.len() + q.cats().len()
            };
            while arity(&server_query) > cap {
                // Prefer relaxing a range predicate on an attribute the
                // cursor does not need, then categorical predicates.
                let victim = server_query
                    .ranges()
                    .iter()
                    .find(|p| !c.constrained.contains(&p.attr))
                    .map(|p| (p.attr, p.interval));
                if let Some((attr, iv)) = victim {
                    residual.add_range(attr, iv);
                    relaxed = true;
                    server_query = strip_range(&server_query, attr);
                } else if let Some(p) = server_query.cats().last().cloned() {
                    residual.add_cat(p.clone());
                    relaxed = true;
                    server_query = strip_cat(&server_query, p.attr);
                } else {
                    // Nothing left to relax: the cursor's own predicates
                    // plus mandatory selection predicates exceed the cap.
                    return Err(vec![Capability::PredicateArity(arity(&server_query))]);
                }
            }
        }

        Ok((server_query, relaxed.then_some(residual)))
    }
}

/// One candidate algorithm and the capabilities it leans on.
struct Candidate {
    name: &'static str,
    algorithm: Algorithm,
    /// Ordinal attributes the cursor itself will put predicates on.
    constrained: BTreeSet<AttrId>,
    /// Attributes that must be publicly `ORDER BY`-able.
    order_by: Vec<AttrId>,
}

/// Rebuild `q` without its range predicate on `attr`.
fn strip_range(q: &Query, attr: AttrId) -> Query {
    let mut out = Query::all();
    for p in q.ranges() {
        if p.attr != attr {
            out.add_range(p.attr, p.interval);
        }
    }
    for p in q.cats() {
        out.add_cat(p.clone());
    }
    out
}

/// Rebuild `q` without its categorical predicate on `attr`.
fn strip_cat(q: &Query, attr: qrs_types::CatId) -> Query {
    let mut out = Query::all();
    for p in q.ranges() {
        out.add_range(p.attr, p.interval);
    }
    for p in q.cats() {
        if p.attr != attr {
            out.add_cat(p.clone());
        }
    }
    out
}

/// Append a human-readable capability list.
fn push_caps(buf: &mut String, caps: &[Capability]) {
    for (i, cap) in caps.iter().enumerate() {
        if i > 0 {
            buf.push_str(", ");
        }
        let _ = write!(buf, "{cap}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_ranking::LinearRank;
    use qrs_types::{CatPredicate, FilterSupport, Interval, OrdinalAttr};

    fn schema2() -> Arc<Schema> {
        Arc::new(Schema::new(
            vec![
                OrdinalAttr::new("x", 0.0, 10.0),
                OrdinalAttr::new("y", 0.0, 10.0),
            ],
            vec![
                qrs_types::CatAttr::new("color", 4),
                qrs_types::CatAttr::new("brand", 4),
            ],
        ))
    }

    fn rank1() -> LinearRank {
        LinearRank::asc(vec![(AttrId(0), 1.0)])
    }

    fn rank2() -> LinearRank {
        LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)])
    }

    #[test]
    fn open_site_plans_the_paper_cursors() {
        let p = Planner::new(Capabilities::none(), schema2(), 5, 1_000);
        let plan = p.plan(&Query::all(), &rank1(), TiePolicy::Exact).unwrap();
        assert!(matches!(plan.algorithm, Algorithm::OneD(_)));
        assert!(plan.residual.is_none());
        let plan = p.plan(&Query::all(), &rank2(), TiePolicy::Exact).unwrap();
        assert!(matches!(plan.algorithm, Algorithm::Md(_)));
    }

    #[test]
    fn point_only_site_falls_back_to_page_down_when_paging_drains() {
        let caps = Capabilities::none()
            .with_paging()
            .with_filter(AttrId(0), FilterSupport::Point)
            .with_filter(AttrId(1), FilterSupport::Point);
        let p = Planner::new(caps, schema2(), 5, 100);
        let plan = p.plan(&Query::all(), &rank2(), TiePolicy::Exact).unwrap();
        assert!(matches!(
            plan.algorithm,
            Algorithm::PageDown {
                max_pages: usize::MAX
            }
        ));
        assert!(plan.rationale.contains("rejected md-rerank"));
    }

    #[test]
    fn unplannable_names_every_missing_capability() {
        // Point filters, no paging, no order-by: nothing can run.
        let caps = Capabilities::none()
            .with_filter(AttrId(0), FilterSupport::Point)
            .with_filter(AttrId(1), FilterSupport::Point);
        let p = Planner::new(caps, schema2(), 5, 100);
        let err = p
            .plan(&Query::all(), &rank2(), TiePolicy::Exact)
            .unwrap_err();
        match err {
            RerankError::Unplannable { missing, reason } => {
                assert!(missing.contains(&Capability::RangeFilter(AttrId(0))));
                assert!(missing.contains(&Capability::OrderBy(AttrId(0))));
                assert!(missing.contains(&Capability::Paging));
                assert!(reason.contains("md-rerank"));
                assert!(reason.contains("page-down"));
            }
            other => panic!("expected Unplannable, got {other}"),
        }
    }

    #[test]
    fn page_depth_cap_gates_the_paging_fallbacks() {
        // 20-page cap at k = 5 covers 100 tuples — not 10 000.
        let caps = Capabilities::none()
            .with_paging()
            .with_max_pages(20)
            .with_filter(AttrId(0), FilterSupport::None)
            .with_filter(AttrId(1), FilterSupport::None);
        let deep = Planner::new(caps.clone(), schema2(), 5, 10_000);
        let err = deep
            .plan(&Query::all(), &rank2(), TiePolicy::Exact)
            .unwrap_err();
        assert!(matches!(err, RerankError::Unplannable { ref missing, .. }
            if missing.contains(&Capability::PageDepth(2_000))));
        // A shallow database fits inside the cap.
        let shallow = Planner::new(caps, schema2(), 5, 100);
        let plan = shallow
            .plan(&Query::all(), &rank2(), TiePolicy::Exact)
            .unwrap();
        assert!(matches!(
            plan.algorithm,
            Algorithm::PageDown { max_pages: 20 }
        ));
    }

    #[test]
    fn order_by_site_plans_ta_with_residual_filters() {
        let caps = Capabilities::none()
            .with_paging()
            .with_order_by(vec![AttrId(0), AttrId(1)])
            .with_filter(AttrId(0), FilterSupport::None)
            .with_filter(AttrId(1), FilterSupport::None);
        let p = Planner::new(caps, schema2(), 5, 100);
        let sel = Query::all().and_range(AttrId(0), Interval::open(1.0, 9.0));
        let plan = p.plan(&sel, &rank2(), TiePolicy::Exact).unwrap();
        assert!(matches!(
            plan.algorithm,
            Algorithm::Ta(SortedAccess::PublicOrderBy)
        ));
        // The inexpressible range went client-side.
        assert!(plan.server_query.ranges().is_empty());
        let residual = plan.residual.expect("range must be relaxed");
        assert_eq!(residual.ranges().len(), 1);
    }

    #[test]
    fn arity_cap_relaxes_optional_predicates_in_order() {
        // Flight-style: 3 predicates max, range filters everywhere.
        let caps = Capabilities::none().with_max_predicates(3);
        let p = Planner::new(caps, schema2(), 5, 1_000);
        // MD constrains both ordinal attributes (2); sel adds a cat (3) and
        // nothing must be relaxed.
        let sel = Query::all().and_cat(CatPredicate::eq(qrs_types::CatId(0), 1));
        let plan = p.plan(&sel, &rank2(), TiePolicy::Exact).unwrap();
        assert!(plan.residual.is_none());
        assert_eq!(plan.server_query.cats().len(), 1);
        // A predicate on a second cat attribute exceeds the cap: it goes
        // residual (the range on a cursor-constrained attribute stays).
        let sel = sel
            .and_range(AttrId(0), Interval::open(0.0, 9.0))
            .and_cat(CatPredicate::one_of(qrs_types::CatId(1), vec![1, 2]));
        let plan = p.plan(&sel, &rank2(), TiePolicy::Exact).unwrap();
        let residual = plan.residual.expect("cat must be relaxed");
        assert_eq!(residual.cats().len(), 1);
        assert_eq!(plan.server_query.cats().len(), 1);
        assert_eq!(plan.server_query.ranges().len(), 1);
    }

    #[test]
    fn trained_calibration_reorders_candidates_and_keeps_static_numbers() {
        let caps = Capabilities::none()
            .with_paging()
            .with_order_by(vec![AttrId(0)]);
        let p = Planner::new(caps, schema2(), 5, 100);
        let static_plan = p.plan(&Query::all(), &rank1(), TiePolicy::Exact).unwrap();
        assert!(static_plan.candidates.len() > 1);
        let static_first = static_plan.candidates[0].name.clone();
        assert_eq!(static_plan.calibrated_estimate, static_plan.estimate);

        // Train the store: the statically-cheapest family's sessions
        // actually cost 1000× what the advertised model predicted.
        let store = Calibration::shared();
        store.observe_session(
            &static_first,
            CostEstimate {
                queries: 10,
                cost_units: 10,
            },
            10_000,
            10_000,
            5,
        );
        let plan = p
            .clone()
            .with_calibration(Arc::clone(&store))
            .plan(&Query::all(), &rank1(), TiePolicy::Exact)
            .unwrap();
        // The drifted family loses the cost race; the static estimate
        // stays reported beside the calibrated one.
        assert_ne!(plan.candidates[0].name, static_first);
        assert!(plan.rationale.contains("calibrated"));
        let demoted = plan
            .candidates
            .iter()
            .find(|c| c.name == static_first)
            .unwrap();
        assert_eq!(
            demoted.calibrated.cost_units,
            demoted.estimate.cost_units * 1000
        );
        assert_eq!(
            plan.candidates[0].estimate.cost_units,
            plan.candidates[0].calibrated.cost_units
        );
    }

    #[test]
    fn arity_cap_below_cursor_needs_is_unplannable_for_cursors() {
        // 1 predicate max: MD (needs 2 attrs) cannot run; with paging the
        // page-down fallback takes over.
        let caps = Capabilities::none().with_max_predicates(1).with_paging();
        let p = Planner::new(caps, schema2(), 5, 100);
        let plan = p.plan(&Query::all(), &rank2(), TiePolicy::Exact).unwrap();
        assert!(matches!(plan.algorithm, Algorithm::PageDown { .. }));
        assert!(plan.rationale.contains("rejected md-rerank"));
    }
}
