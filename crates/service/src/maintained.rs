//! Incremental top-k maintenance under data change.
//!
//! A [`crate::Session`] answers against the snapshot it was opened on; when
//! the hidden database mutates, its materialized prefix goes stale. The
//! obvious repair — re-drive the whole strategy — re-pays the entire query
//! bill for what is usually a one-tuple change. [`MaintainedSession`]
//! instead consumes the server's mutation feed
//! ([`qrs_types::Capability::MutationFeed`]) and **delta-repairs** an exact
//! materialized top-`h`:
//!
//! * a **delete** above the horizon evicts its tuple and pulls one
//!   replacement from the frontier (the live strategy or the local `below`
//!   buffer of previously displaced tuples);
//! * an **insert** is rank-tested locally against the cached ranking
//!   function — no server traffic at all when it lands outside the top-`h`;
//! * an **update** is delete-then-insert of the same id.
//!
//! Exactness rests on a *suppressed-overlay* argument. Every mutated tuple
//! id is suppressed from the live stream and served from the locally held
//! authoritative copy, so any error a cursor strategy's pre-mutation state
//! could make is confined to ids the overlay already owns; untouched tuples
//! score and order identically on both snapshots. Two cases void the
//! argument and force a full re-drive instead: the server compacted its
//! delta log past our watermark ([`qrs_types::MutationLog::gap`] — replay
//! is incomplete), or the strategy is *positional*
//! ([`Algorithm::Ta`]/[`Algorithm::PageDown`] page by rank position, which
//! every mutation shifts) and the repair needs live pulls. Re-drives open a
//! fresh session — [`crate::SessionBuilder::open`] re-syncs the knowledge
//! plane and the shared state, so the new drive answers against the new
//! snapshot by construction.

use crate::service::{Algorithm, RerankService};
use crate::session::{RankedTuple, Session};
use qrs_core::TiePolicy;
use qrs_ranking::RankFn;
use qrs_types::value::cmp_f64;
use qrs_types::{MutationKind, Query, RerankError, RetryPolicy, Tuple, TupleId};
use std::cmp::Ordering;
use std::collections::HashSet;
use std::sync::Arc;

/// The session settings a [`MaintainedSession`] re-applies when it must
/// open a fresh inner session for a full re-drive.
pub(crate) struct MaintainedConfig {
    /// The algorithm as the caller configured it (`Auto` stays `Auto`, so
    /// a re-drive re-runs the same planner decision, relaxation included).
    pub(crate) algo: Algorithm,
    /// The concrete algorithm the initial plan resolved to — drives the
    /// positional-hazard classification.
    pub(crate) concrete: Algorithm,
    pub(crate) budget: Option<u64>,
    pub(crate) retry: Option<RetryPolicy>,
    pub(crate) retry_limit: Option<u64>,
    pub(crate) use_knowledge: bool,
}

/// What one [`MaintainedSession::refresh`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshOutcome {
    /// Deltas consumed from the feed.
    pub applied: usize,
    /// Replacement tuples pulled from the live strategy (not the local
    /// `below` buffer) to repair delete evictions.
    pub replacement_pulls: usize,
    /// True when the repair fell back to a full strategy re-drive (log
    /// gap, or a positional strategy needing live pulls).
    pub redrove: bool,
    /// Server queries this refresh spent, delta-repair and re-drive alike.
    pub queries_spent: u64,
}

/// An ordered overlay entry: user score + tuple, compared exactly as
/// [`TiePolicy::Exact`] emits — score ascending by total order, then id.
type Entry = (f64, Arc<Tuple>);

fn entry_cmp(a: &Entry, b: &Entry) -> Ordering {
    cmp_f64(a.0, b.0).then(a.1.id.cmp(&b.1.id))
}

fn sorted_insert(v: &mut Vec<Entry>, e: Entry) {
    let pos = v
        .binary_search_by(|probe| entry_cmp(probe, &e))
        .unwrap_or_else(|p| p);
    v.insert(pos, e);
}

fn remove_id(v: &mut Vec<Entry>, id: TupleId) {
    v.retain(|(_, t)| t.id != id);
}

/// An exact materialized top-`h` kept current across data change. Built by
/// [`crate::SessionBuilder::open_maintained`]; see the module docs for the
/// repair rules and the exactness argument.
pub struct MaintainedSession<'a> {
    svc: &'a RerankService,
    sel: Query,
    rank: Arc<dyn RankFn>,
    cfg: MaintainedConfig,
    horizon: usize,
    session: Session<'a>,
    /// One-slot lookahead: the next live emission, pulled but not yet
    /// placed (refill must compare it against the `below` head).
    peeked: Option<Entry>,
    live_exhausted: bool,
    /// The materialized top-`h`, sorted by [`entry_cmp`].
    result: Vec<Entry>,
    /// Displaced and locally ranked tuples beyond the current result,
    /// sorted; invariant: every element ≥ the result's maximum.
    below: Vec<Entry>,
    /// Ids mutated since the inner session opened: filtered out of the
    /// live stream, their authoritative copies served from the overlay.
    suppressed: HashSet<TupleId>,
    /// The feed sequence number this materialization is exact as of.
    watermark: u64,
    redrives: u64,
    /// Queries spent by inner sessions already replaced by a re-drive.
    spent_acc: u64,
    /// Cost units spent by inner sessions already replaced by a re-drive.
    cost_acc: u64,
}

impl<'a> MaintainedSession<'a> {
    pub(crate) fn open(
        svc: &'a RerankService,
        sel: Query,
        rank: Arc<dyn RankFn>,
        cfg: MaintainedConfig,
        horizon: usize,
    ) -> Result<Self, RerankError> {
        // Read the watermark *before* the initial drive: a mutation landing
        // mid-drive is then re-applied by the next refresh, and every
        // absorb is idempotent, so nothing is lost to the race.
        let watermark = svc.server().mutation_seq();
        let session = Self::build_session(svc, &sel, &rank, &cfg, horizon)?;
        let mut s = MaintainedSession {
            svc,
            sel,
            rank,
            cfg,
            horizon,
            session,
            peeked: None,
            live_exhausted: false,
            result: Vec::with_capacity(horizon),
            below: Vec::new(),
            suppressed: HashSet::new(),
            watermark,
            redrives: 0,
            spent_acc: 0,
            cost_acc: 0,
        };
        s.refill()?;
        Ok(s)
    }

    fn build_session(
        svc: &'a RerankService,
        sel: &Query,
        rank: &Arc<dyn RankFn>,
        cfg: &MaintainedConfig,
        horizon: usize,
    ) -> Result<Session<'a>, RerankError> {
        let mut b = svc
            .session(sel.clone(), Arc::clone(rank))
            .algorithm(cfg.algo)
            .tie_policy(TiePolicy::Exact)
            .horizon(horizon)
            .knowledge(cfg.use_knowledge);
        if let Some(limit) = cfg.budget {
            b = b.budget(limit);
        }
        if let Some(policy) = &cfg.retry {
            b = b.retry(policy.clone());
        }
        if let Some(limit) = cfg.retry_limit {
            b = b.retry_limit(limit);
        }
        b.open()
    }

    /// Positional strategies address tuples by rank position (sorted-access
    /// depth, page number), which every mutation shifts — their untouched
    /// emissions can skip or duplicate under data change, so the
    /// suppressed-overlay argument does not cover them.
    fn positional(&self) -> bool {
        matches!(
            self.cfg.concrete,
            Algorithm::Ta(_) | Algorithm::PageDown { .. }
        )
    }

    /// Apply one delta to the overlay. Idempotent: re-applying a delta the
    /// snapshot already reflects changes nothing.
    fn absorb(&mut self, kind: &MutationKind) {
        match kind {
            MutationKind::Delete(id) => self.evict(*id),
            MutationKind::Insert(t) | MutationKind::Update(t) => {
                self.evict(t.id);
                if !self.sel.matches(t) {
                    return;
                }
                let entry = (self.rank.score(t), Arc::clone(t));
                match self.result.last() {
                    Some(last) if entry_cmp(&entry, last) == Ordering::Less => {
                        sorted_insert(&mut self.result, entry);
                        if self.result.len() > self.horizon {
                            let displaced = self.result.pop().expect("len > horizon ≥ 1");
                            sorted_insert(&mut self.below, displaced);
                        }
                    }
                    _ => sorted_insert(&mut self.below, entry),
                }
            }
        }
    }

    /// Suppress an id from the live stream and drop any overlay copy.
    fn evict(&mut self, id: TupleId) {
        self.suppressed.insert(id);
        remove_id(&mut self.result, id);
        remove_id(&mut self.below, id);
        if self.peeked.as_ref().is_some_and(|(_, t)| t.id == id) {
            self.peeked = None;
        }
    }

    /// Top up the result to the horizon by merging the `below` buffer with
    /// the live stream (suppressed ids filtered). Returns how many entries
    /// came from the live side.
    fn refill(&mut self) -> Result<usize, RerankError> {
        let mut live_pulls = 0;
        while self.result.len() < self.horizon {
            while self.peeked.is_none() && !self.live_exhausted {
                match self.session.next()? {
                    None => self.live_exhausted = true,
                    Some(rt) if self.suppressed.contains(&rt.tuple.id) => {}
                    Some(rt) => self.peeked = Some((rt.score, rt.tuple)),
                }
            }
            let from_below = match (self.below.first(), &self.peeked) {
                (Some(b), Some(p)) => entry_cmp(b, p) == Ordering::Less,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break, // both dry: result is complete
            };
            let entry = if from_below {
                self.below.remove(0)
            } else {
                live_pulls += 1;
                self.peeked.take().expect("peeked checked above")
            };
            // Append preserves the sort: the entry is the minimum of every
            // remaining candidate, and all of those are ≥ the result's max
            // (the `below` invariant; live emissions arrive score-ordered).
            self.result.push(entry);
        }
        Ok(live_pulls)
    }

    /// Discard the overlay and the inner session and answer from scratch
    /// against the current snapshot.
    fn redrive(&mut self) -> Result<(), RerankError> {
        self.spent_acc += self.session.queries_spent();
        self.cost_acc += self.session.cost_units_spent();
        self.result.clear();
        self.below.clear();
        self.suppressed.clear();
        self.peeked = None;
        self.live_exhausted = false;
        self.watermark = self.svc.server().mutation_seq();
        self.session =
            Self::build_session(self.svc, &self.sel, &self.rank, &self.cfg, self.horizon)?;
        self.redrives += 1;
        self.refill()?;
        Ok(())
    }

    /// Poll the mutation feed and repair the materialized top-`h` to be
    /// exact as of the server's current sequence number. Delta-repairs when
    /// it can; falls back to a full re-drive when it must (see module
    /// docs). Call after the underlying data may have changed; a no-change
    /// poll costs zero server queries.
    pub fn refresh(&mut self) -> Result<RefreshOutcome, RerankError> {
        let out = self.refresh_inner()?;
        // A no-change poll is not a repair; everything else lands on the
        // observability plane, attributed to the current inner session
        // (after a re-drive, that is the replacement session's ordinal).
        if out.applied > 0 || out.redrove || out.replacement_pulls > 0 {
            self.session
                .emit_obs(|| qrs_obs::EventKind::MutationRepair {
                    applied: out.applied as u64,
                    replacement_pulls: out.replacement_pulls as u64,
                    redrove: out.redrove,
                    queries_spent: out.queries_spent,
                });
        }
        Ok(out)
    }

    fn refresh_inner(&mut self) -> Result<RefreshOutcome, RerankError> {
        let log = self.svc.server().mutations_since(self.watermark)?;
        if !log.gap && log.deltas.is_empty() {
            return Ok(RefreshOutcome::default());
        }
        let spent_before = self.queries_spent();
        if log.gap {
            self.redrive()?;
            return Ok(RefreshOutcome {
                applied: 0,
                replacement_pulls: 0,
                redrove: true,
                queries_spent: self.queries_spent() - spent_before,
            });
        }
        let applied = log.deltas.len();
        for m in &log.deltas {
            self.absorb(&m.kind);
        }
        self.watermark = log.max_seq().expect("deltas is non-empty");
        if self.positional() && self.result.len() < self.horizon && !self.live_exhausted {
            self.redrive()?;
            return Ok(RefreshOutcome {
                applied,
                replacement_pulls: 0,
                redrove: true,
                queries_spent: self.queries_spent() - spent_before,
            });
        }
        let replacement_pulls = self.refill()?;
        Ok(RefreshOutcome {
            applied,
            replacement_pulls,
            redrove: false,
            queries_spent: self.queries_spent() - spent_before,
        })
    }

    /// The materialized top-`h` (shorter when fewer tuples match), exact
    /// as of [`MaintainedSession::watermark`]. Ranks are 1-based.
    pub fn top(&self) -> Vec<RankedTuple> {
        self.result
            .iter()
            .enumerate()
            .map(|(i, (score, tuple))| RankedTuple {
                rank: i + 1,
                score: *score,
                tuple: Arc::clone(tuple),
            })
            .collect()
    }

    /// The feed sequence number the materialization is exact as of.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// The maintenance horizon `h` this session was opened with.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Full re-drives performed so far.
    pub fn redrives(&self) -> u64 {
        self.redrives
    }

    /// Server queries spent across the initial drive, every repair, and
    /// every re-drive.
    pub fn queries_spent(&self) -> u64 {
        self.spent_acc + self.session.queries_spent()
    }

    /// Cost units spent across the initial drive, every repair, and every
    /// re-drive (the server's per-query pricing, not the query count).
    pub fn cost_units_spent(&self) -> u64 {
        self.cost_acc + self.session.cost_units_spent()
    }

    /// Queries the *current* inner session answered from the knowledge
    /// plane instead of paying the server.
    pub fn queries_saved(&self) -> u64 {
        self.session.queries_saved()
    }
}

impl std::fmt::Debug for MaintainedSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintainedSession")
            .field("horizon", &self.horizon)
            .field("materialized", &self.result.len())
            .field("below", &self.below.len())
            .field("suppressed", &self.suppressed.len())
            .field("watermark", &self.watermark)
            .field("redrives", &self.redrives)
            .field("queries_spent", &self.queries_spent())
            .finish()
    }
}
