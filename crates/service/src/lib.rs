//! # qrs-service
//!
//! The "as a service" layer (§1, §2.2): a thread-safe facade that fronts one
//! client-server database and serves many users' reranked queries, sharing
//! the query history and the on-the-fly dense indexes across all of them —
//! the amortization that makes the middleware economical.
//!
//! * [`RerankService`] — owns the shared state behind a [`parking_lot`]
//!   mutex and hands out [`session::Session`]s through a preflighted
//!   [`SessionBuilder`]: algorithm/ranking mismatches and missing server
//!   capabilities surface as typed [`qrs_types::RerankError`]s at
//!   [`SessionBuilder::open`], never as panics mid-stream,
//! * [`session::Session`] — one user query + ranking function, consumed
//!   incrementally Get-Next-style; `top` returns partial results alongside
//!   the error when a budget trips or the server fails mid-batch,
//! * [`budget::QueryBudget`] — rate-limit accounting mirroring real sites'
//!   per-user daily query caps (the paper's motivating constraint),
//! * [`profiles`] — named, reusable ranking preferences,
//! * [`federation`] — one preference over *multiple* hidden databases with
//!   exact score-merged results: the paper's "personalized ranking across
//!   multiple web databases" application, end to end.

pub mod budget;
pub mod federation;
pub mod profiles;
pub mod service;
pub mod session;
pub mod stats;

pub use budget::QueryBudget;
pub use federation::{FederatedHit, FederatedSession};
pub use profiles::ProfileStore;
pub use service::{Algorithm, RerankService, SessionBuilder};
pub use session::{RankedTuple, Session};
pub use stats::ServiceStats;
