//! # qrs-service
//!
//! The "as a service" layer (§1, §2.2): a thread-safe facade that fronts one
//! client-server database and serves many users' reranked queries, sharing
//! the query history and the on-the-fly dense indexes across all of them —
//! the amortization that makes the middleware economical.
//!
//! * [`RerankService`] — owns the shared state behind a [`parking_lot`]
//!   mutex and hands out [`session::Session`]s,
//! * [`session::Session`] — one user query + ranking function, consumed
//!   incrementally Get-Next-style,
//! * [`budget::QueryBudget`] — rate-limit accounting mirroring real sites'
//!   per-user daily query caps (the paper's motivating constraint),
//! * [`profiles`] — named, reusable ranking preferences,
//! * [`federation`] — one preference over *multiple* hidden databases with
//!   exact score-merged results: the paper's "personalized ranking across
//!   multiple web databases" application, end to end.

pub mod budget;
pub mod federation;
pub mod profiles;
pub mod service;
pub mod session;
pub mod stats;

pub use budget::{BudgetError, QueryBudget};
pub use federation::{FederatedHit, FederatedSession};
pub use profiles::ProfileStore;
pub use service::{Algorithm, RerankService};
pub use session::Session;
pub use stats::ServiceStats;
