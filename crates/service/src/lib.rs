//! # qrs-service
//!
//! The "as a service" layer (§1, §2.2): a thread-safe facade that fronts one
//! client-server database and serves many users' reranked queries, sharing
//! the query history and the on-the-fly dense indexes across all of them —
//! the amortization that makes the middleware economical.
//!
//! * [`RerankService`] — owns the shared state behind a [`parking_lot`]
//!   mutex and hands out [`session::Session`]s through a preflighted
//!   [`SessionBuilder`]: algorithm/ranking mismatches and missing server
//!   capabilities surface as typed [`qrs_types::RerankError`]s at
//!   [`SessionBuilder::open`], never as panics mid-stream,
//! * [`session::Session`] — one user query + ranking function, consumed
//!   incrementally Get-Next-style; `top` returns partial results alongside
//!   the error when a budget trips or the server fails mid-batch,
//! * [`budget::QueryBudget`] — rate-limit accounting mirroring real sites'
//!   per-user daily query caps (the paper's motivating constraint),
//! * [`retry`] — the retry/backoff engine: transient server failures are
//!   retried in place with exponential backoff + deterministic jitter,
//!   honoring `retry_after_ms`, metered by per-session and service-wide
//!   [`retry::RetryBudget`]s, sleeping on an injectable clock so tests
//!   never wait wall-clock time,
//! * [`profiles`] — named, reusable ranking preferences,
//! * [`federation`] — one preference over *multiple* hidden databases with
//!   exact score-merged results: the paper's "personalized ranking across
//!   multiple web databases" application, end to end — with per-source
//!   circuit-breaker health (half-open probes after a cool-down on the
//!   injectable clock, per-source retry policies) so one failing dealer
//!   degrades the merge (typed [`SourceReport`]s) instead of killing it,
//!   and optional parallel fan-out of source pulls over a
//!   [`qrs_exec::Executor`],
//! * [`batch`] — the concurrent front-end: [`RerankService::serve_batch`]
//!   runs many sessions in parallel on a `qrs-exec` pool against the
//!   shared knowledge and budgets, with cooperative cancellation and
//!   exact per-request accounting,
//! * [`maintained`] — incremental top-k maintenance under data change: a
//!   [`MaintainedSession`] consumes the server's mutation feed and
//!   delta-repairs an exact materialized top-`h` (paying per *change*),
//!   falling back to a full re-drive only on a compacted delta log or a
//!   positional strategy,
//! * observability — [`RerankService::with_observer`] attaches a
//!   [`qrs_obs::ObsHandle`]: the session lifecycle, every charged request,
//!   retries, circuit trips, knowledge hits and budget trips stream out as
//!   typed events, and [`RerankService::monitor_report`] folds them into
//!   the fleet's predicted-vs-actual spend table. Disabled (the default),
//!   every emission site is a single branch that constructs nothing.
//! * adaptive planning — [`RerankService::with_adaptive`] closes the
//!   predict-observe loop: a [`calibration::Calibration`] store learns
//!   per-strategy actual/predicted spend ratios from the charged ledger
//!   deltas and scales future plan-time estimates, and a running `Auto`
//!   session whose spend diverges past the configured ratio re-plans
//!   mid-flight and switches strategies without losing paid-for rows
//!   (emitting a typed [`EventKind::Replanned`]). Off by default —
//!   [`qrs_types::AdaptiveConfig::disabled`] keeps the static planner bit
//!   for bit.

#![deny(missing_docs)]

pub mod batch;
pub mod budget;
pub mod calibration;
pub mod federation;
pub mod maintained;
pub mod planner;
pub mod profiles;
pub mod retry;
pub mod service;
pub mod session;
pub mod stats;

pub use batch::{drive, BatchOutcome, BatchRequest};
pub use budget::QueryBudget;
pub use calibration::{Calibration, StrategyCalibration};
pub use federation::{FederatedHit, FederatedSession, FederationBuilder, SourceReport};
pub use maintained::{MaintainedSession, RefreshOutcome};
pub use planner::{Plan, Planner, RankedCandidate};
pub use profiles::ProfileStore;
pub use retry::RetryBudget;
pub use service::{Algorithm, RerankService, SessionBuilder};
pub use session::{RankedTuple, Session, SessionStats};
pub use stats::ServiceStats;
// The strategy vocabulary sessions are driven by — re-exported so callers
// registering a custom strategy need only this crate.
pub use qrs_core::strategy::{CostEstimate, PlanContext, RerankStrategy, StrategyIo, StrategyStep};
// The adaptive-planner knobs — re-exported so opting a service in needs
// only this crate.
pub use qrs_types::AdaptiveConfig;
// The knowledge plane: build one, share it across services (and processes'
// worth of tenants) via `RerankService::with_knowledge`.
pub use qrs_knowledge::{KnowledgePlane, PlaneStats, ShardStats, SourceShard};
// The observability plane: build an `ObsHandle` (optionally with extra
// subscribers), attach via `RerankService::with_observer`, read the fleet
// table via `RerankService::monitor_report`.
pub use qrs_obs::{
    Event, EventKind, JsonLinesExporter, MetricsSnapshot, Monitor, MonitorReport, MonitorRow,
    ObsHandle, Recorder, Subscriber,
};
