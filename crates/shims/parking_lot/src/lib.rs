//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! local crate wraps `std::sync` primitives behind `parking_lot`'s
//! non-poisoning API subset the workspace uses: `Mutex::lock`,
//! `RwLock::read` / `RwLock::write` returning guards directly (a poisoned
//! std lock is recovered rather than propagated — the data is plain state,
//! never left in a torn intermediate by the holders in this workspace).
//! Swap back to the real crate with a one-line `Cargo.toml` change.

use std::fmt;
use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutual exclusion over `std::sync::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Non-poisoning reader-writer lock over `std::sync::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(sync::TryLockError::Poisoned(p)) => {
                f.debug_tuple("RwLock").field(&&*p.into_inner()).finish()
            }
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn debug_does_not_deadlock() {
        let m = Mutex::new(7);
        let _g = m.lock();
        assert_eq!(format!("{m:?}"), "Mutex(<locked>)");
    }
}
