//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! local crate provides the exact API subset the workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! methods `random` / `random_range` — backed by SplitMix64. Output quality
//! is plenty for dataset generation and randomized tests (the only users);
//! it is **not** cryptographic. The module layout mirrors the real crate so
//! swapping back is a one-line `Cargo.toml` change.

use std::ops::{Range, RangeInclusive};

/// Sources of raw 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "natural" range.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable uniformly. Uses multiply-shift reduction; the modulo
/// bias over a 64-bit draw is negligible for the small spans used here.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// The convenience methods every call site uses (`rand`'s `Rng`/`RngExt`).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard the first few outputs so low-entropy seeds decorrelate.
            for _ in 0..4 {
                rng.next_u64();
            }
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>().to_bits(), b.random::<f64>().to_bits());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_covers_it() {
        let mut r = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..10_000).map(|_| r.random::<f64>()).collect();
        assert!(samples.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.random_range(0..4u32) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for _ in 0..100 {
            let v = r.random_range(3..=5usize);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn helper(rng: &mut impl RngExt) -> f64 {
            rng.random::<f64>()
        }
        let mut r = StdRng::seed_from_u64(1);
        let v = helper(&mut r);
        assert!((0.0..1.0).contains(&v));
    }
}
