//! Weighted p-th-power distance from an ideal point.
//!
//! `S(u) = Σ wᵢ·max(0, uᵢ - idealᵢ)^p` with `p ≥ 1`. With `ideal` at the
//! normalized domain minimum this is monotone non-decreasing in each
//! coordinate, making it a valid user ranking function under §2.2. Exercises
//! the *generic* contour solvers (no closed-form overrides), so it doubles as
//! a stress test that the default bisection machinery is sufficient for
//! non-linear monotone functions.

use crate::rankfn::RankFn;
use qrs_types::{AttrId, Direction};

/// `S(u) = Σ wᵢ·max(0, uᵢ - idealᵢ)^p`.
#[derive(Debug, Clone)]
pub struct LpRank {
    attrs: Vec<AttrId>,
    dirs: Vec<Direction>,
    weights: Vec<f64>,
    ideal: Vec<f64>,
    p: f64,
}

impl LpRank {
    /// # Panics
    /// If arities disagree, `p < 1`, or any weight is not strictly positive.
    pub fn new(
        attrs: Vec<AttrId>,
        dirs: Vec<Direction>,
        weights: Vec<f64>,
        ideal: Vec<f64>,
        p: f64,
    ) -> Self {
        assert!(!attrs.is_empty());
        assert_eq!(attrs.len(), dirs.len());
        assert_eq!(attrs.len(), weights.len());
        assert_eq!(attrs.len(), ideal.len());
        assert!(p >= 1.0, "LpRank requires p >= 1, got {p}");
        assert!(weights.iter().all(|w| *w > 0.0 && w.is_finite()));
        LpRank {
            attrs,
            dirs,
            weights,
            ideal,
            p,
        }
    }

    /// Euclidean-style (p = 2) all-ascending constructor with the ideal point
    /// at the given normalized minima.
    pub fn l2(attrs: Vec<AttrId>, ideal: Vec<f64>) -> Self {
        let n = attrs.len();
        LpRank::new(attrs, vec![Direction::Asc; n], vec![1.0; n], ideal, 2.0)
    }
}

impl RankFn for LpRank {
    fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    fn directions(&self) -> &[Direction] {
        &self.dirs
    }

    fn score_norm(&self, u: &[f64]) -> f64 {
        u.iter()
            .zip(&self.ideal)
            .zip(&self.weights)
            .map(|((&v, &i), &w)| w * (v - i).max(0.0).powf(self.p))
            .sum()
    }

    fn label(&self) -> String {
        format!("L{}-distance({} attrs)", self.p, self.attrs.len())
    }

    /// Full-bit `p`, weights and ideal point — the label carries only `p`.
    fn fingerprint(&self) -> String {
        let params: Vec<f64> = std::iter::once(self.p)
            .chain(self.weights.iter().copied())
            .chain(self.ideal.iter().copied())
            .collect();
        crate::rankfn::fingerprint_with_params("lp", &self.attrs, &self.dirs, &params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::{Tuple, TupleId};

    fn f() -> LpRank {
        LpRank::l2(vec![AttrId(0), AttrId(1)], vec![0.0, 0.0])
    }

    #[test]
    fn scoring_is_squared_distance() {
        let t = Tuple::new(TupleId(0), vec![3.0, 4.0], vec![]);
        assert_eq!(f().score(&t), 25.0);
    }

    #[test]
    fn below_ideal_contributes_zero() {
        let g = LpRank::l2(vec![AttrId(0)], vec![5.0]);
        let t = Tuple::new(TupleId(0), vec![2.0], vec![]);
        assert_eq!(g.score(&t), 0.0);
    }

    #[test]
    fn generic_ell_works_nonlinearly() {
        // S = v^2 along dim 0 from base (0,0); ell for target 9 is 3.
        let e = f().ell(0, 9.0, &[0.0, 0.0], 100.0).unwrap();
        assert_eq!(e, 3.0);
    }

    #[test]
    fn generic_corner_invariants() {
        let fun = f();
        let w = [4.0, 4.0]; // S = 32
        let b = fun.corner(&w, 20.0, &[0.0, 0.0]);
        assert!(fun.score_norm(&b) >= 20.0);
        assert!(b[0] <= 4.0 && b[1] <= 4.0);
        // Cumulative: b0^2 + 16 >= 20 → b0 ≈ 2 (exact w.r.t. the computed
        // predicate, a few ULPs off the algebraic root); then b1 stays 4.
        assert!((b[0] - 2.0).abs() < 1e-12, "b0 = {}", b[0]);
        assert!((b[1] - 4.0).abs() < 1e-12, "b1 = {}", b[1]);
    }

    #[test]
    fn generic_contour_point() {
        let fun = f();
        let v = fun.contour_point(&[0.0, 0.0], &[10.0, 10.0], 50.0).unwrap();
        assert!(fun.score_norm(&v) >= 50.0);
        assert!(v.iter().all(|&x| (0.0..=10.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn rejects_sub_one_p() {
        LpRank::new(
            vec![AttrId(0)],
            vec![Direction::Asc],
            vec![1.0],
            vec![0.0],
            0.5,
        );
    }
}
