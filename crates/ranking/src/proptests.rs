//! Property-based tests for the contour solvers: the safety conditions the
//! MD pruning proofs rely on, fuzzed over random linear and Lp functions.

#![cfg(test)]

use crate::{LinearRank, LpRank, RankFn};
use proptest::prelude::*;
use qrs_types::{AttrId, Direction};

fn linear_strategy(m: usize) -> impl Strategy<Value = LinearRank> {
    proptest::collection::vec(1u32..100, m).prop_map(|ws| {
        LinearRank::new(
            ws.into_iter()
                .enumerate()
                .map(|(i, w)| (AttrId(i), Direction::Asc, f64::from(w) / 10.0))
                .collect(),
        )
    })
}

fn box_strategy(m: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    proptest::collection::vec((0u32..50, 1u32..50), m).prop_map(|pairs| {
        let lo: Vec<f64> = pairs.iter().map(|(a, _)| f64::from(*a) / 10.0).collect();
        let hi: Vec<f64> = pairs
            .iter()
            .map(|(a, b)| f64::from(a + b) / 10.0)
            .collect();
        (lo, hi)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ℓ safety: any point with `u_dim ≥ ell` scores at least the target.
    #[test]
    fn ell_prunes_safely(
        f in linear_strategy(3),
        (lo, hi) in box_strategy(3),
        dim in 0usize..3,
        tfrac in 0.0f64..1.0,
        probe in 0.0f64..1.0,
    ) {
        let smin = f.score_norm(&lo);
        let smax = f.score_norm(&hi);
        let target = smin + tfrac * (smax - smin);
        if let Some(e) = f.ell(dim, target, &lo, hi[dim]) {
            // Any coordinate at or above e (others at the box floor or
            // anywhere higher) scores >= target.
            let mut p = lo.clone();
            p[dim] = e + probe * (hi[dim] - e).max(0.0);
            prop_assert!(f.score_norm(&p) >= target);
        } else {
            // No cap means even the box edge stays under target.
            let mut p = lo.clone();
            p[dim] = hi[dim];
            prop_assert!(f.score_norm(&p) < target);
        }
    }

    /// Corner safety: `lo ≤ corner ≤ witness` and `S(corner) ≥ target`.
    #[test]
    fn corner_is_safe_and_dominated(
        f in linear_strategy(4),
        (lo, hi) in box_strategy(4),
        wfrac in proptest::collection::vec(0.0f64..=1.0, 4),
        tfrac in 0.0f64..1.0,
    ) {
        let w: Vec<f64> = lo.iter().zip(&hi).zip(&wfrac)
            .map(|((&l, &h), &fr)| l + fr * (h - l))
            .collect();
        let sw = f.score_norm(&w);
        let smin = f.score_norm(&lo);
        let target = smin + tfrac * (sw - smin);
        let b = f.corner(&w, target, &lo);
        prop_assert!(f.score_norm(&b) >= target);
        for j in 0..4 {
            prop_assert!(b[j] <= w[j] + 1e-12);
            prop_assert!(b[j] >= lo[j] - 1e-12);
        }
    }

    /// Virtual tuple: inside the box, scoring ≥ target; and the dominated
    /// probe corner {u ⪯ v'} only contains points scoring ≤ S(v').
    #[test]
    fn contour_point_is_on_target_side(
        f in linear_strategy(3),
        (lo, hi) in box_strategy(3),
        tfrac in 0.01f64..0.99,
    ) {
        let smin = f.score_norm(&lo);
        let smax = f.score_norm(&hi);
        prop_assume!(smax > smin);
        let target = smin + tfrac * (smax - smin);
        if let Some(v) = f.contour_point(&lo, &hi, target) {
            prop_assert!(f.score_norm(&v) >= target);
            for j in 0..3 {
                prop_assert!(v[j] >= lo[j] - 1e-12 && v[j] <= hi[j] + 1e-12);
            }
            // One ULP-ish back along the diagonal toward lo scores < target
            // is NOT guaranteed for the waterfilled point, but lo itself is.
            prop_assert!(f.score_norm(&lo) < target);
        }
    }

    /// The generic solvers hold for non-linear monotone functions too.
    #[test]
    fn lp_solvers_safe(
        (lo, hi) in box_strategy(2),
        tfrac in 0.01f64..0.99,
        dim in 0usize..2,
    ) {
        let f = LpRank::l2(vec![AttrId(0), AttrId(1)], lo.clone());
        let smin = f.score_norm(&lo);
        let smax = f.score_norm(&hi);
        prop_assume!(smax > smin);
        let target = smin + tfrac * (smax - smin);
        if let Some(e) = f.ell(dim, target, &lo, hi[dim]) {
            let mut p = lo.clone();
            p[dim] = e;
            prop_assert!(f.score_norm(&p) >= target);
        }
        if let Some(v) = f.contour_point(&lo, &hi, target) {
            prop_assert!(f.score_norm(&v) >= target);
        }
    }
}
