//! Randomized property tests for the contour solvers: the safety conditions
//! the MD pruning proofs rely on, fuzzed over random linear and Lp functions.
//!
//! Written against the local `rand` stand-in (no registry access for
//! `proptest`): each property runs a deterministic seeded sweep.

#![cfg(test)]

use crate::{LinearRank, LpRank, RankFn};
use qrs_types::{AttrId, Direction};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CASES: usize = 256;

fn linear(rng: &mut StdRng, m: usize) -> LinearRank {
    LinearRank::new(
        (0..m)
            .map(|i| {
                (
                    AttrId(i),
                    Direction::Asc,
                    f64::from(rng.random_range(1..100u32)) / 10.0,
                )
            })
            .collect(),
    )
}

fn boxed(rng: &mut StdRng, m: usize) -> (Vec<f64>, Vec<f64>) {
    let lo: Vec<f64> = (0..m)
        .map(|_| f64::from(rng.random_range(0..50u32)) / 10.0)
        .collect();
    let hi: Vec<f64> = lo
        .iter()
        .map(|&l| l + f64::from(rng.random_range(1..50u32)) / 10.0)
        .collect();
    (lo, hi)
}

/// ℓ safety: any point with `u_dim ≥ ell` scores at least the target.
#[test]
fn ell_prunes_safely() {
    let mut rng = StdRng::seed_from_u64(0x111);
    for _ in 0..CASES {
        let f = linear(&mut rng, 3);
        let (lo, hi) = boxed(&mut rng, 3);
        let dim = rng.random_range(0..3usize);
        let tfrac: f64 = rng.random();
        let probe: f64 = rng.random();
        let smin = f.score_norm(&lo);
        let smax = f.score_norm(&hi);
        let target = smin + tfrac * (smax - smin);
        if let Some(e) = f.ell(dim, target, &lo, hi[dim]) {
            // Any coordinate at or above e (others at the box floor or
            // anywhere higher) scores >= target.
            let mut p = lo.clone();
            p[dim] = e + probe * (hi[dim] - e).max(0.0);
            assert!(
                f.score_norm(&p) >= target,
                "ell cap unsafe: {f:?} dim {dim}"
            );
        } else {
            // No cap means even the box edge stays under target.
            let mut p = lo.clone();
            p[dim] = hi[dim];
            assert!(
                f.score_norm(&p) < target,
                "missing ell cap: {f:?} dim {dim}"
            );
        }
    }
}

/// Corner safety: `lo ≤ corner ≤ witness` and `S(corner) ≥ target`.
#[test]
fn corner_is_safe_and_dominated() {
    let mut rng = StdRng::seed_from_u64(0x222);
    for _ in 0..CASES {
        let f = linear(&mut rng, 4);
        let (lo, hi) = boxed(&mut rng, 4);
        let w: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| l + rng.random::<f64>() * (h - l))
            .collect();
        let sw = f.score_norm(&w);
        let smin = f.score_norm(&lo);
        let target = smin + rng.random::<f64>() * (sw - smin);
        let b = f.corner(&w, target, &lo);
        assert!(f.score_norm(&b) >= target, "corner under target: {f:?}");
        for j in 0..4 {
            assert!(b[j] <= w[j] + 1e-12, "corner above witness on dim {j}");
            assert!(b[j] >= lo[j] - 1e-12, "corner below floor on dim {j}");
        }
    }
}

/// Virtual tuple: inside the box, scoring ≥ target; and the box floor stays
/// strictly below the target.
#[test]
fn contour_point_is_on_target_side() {
    let mut rng = StdRng::seed_from_u64(0x333);
    for _ in 0..CASES {
        let f = linear(&mut rng, 3);
        let (lo, hi) = boxed(&mut rng, 3);
        let tfrac = 0.01 + 0.98 * rng.random::<f64>();
        let smin = f.score_norm(&lo);
        let smax = f.score_norm(&hi);
        if smax <= smin {
            continue;
        }
        let target = smin + tfrac * (smax - smin);
        if let Some(v) = f.contour_point(&lo, &hi, target) {
            assert!(f.score_norm(&v) >= target, "contour point under target");
            for j in 0..3 {
                assert!(
                    v[j] >= lo[j] - 1e-12 && v[j] <= hi[j] + 1e-12,
                    "contour point outside box on dim {j}"
                );
            }
            // One ULP-ish back along the diagonal toward lo scores < target
            // is NOT guaranteed for the waterfilled point, but lo itself is.
            assert!(f.score_norm(&lo) < target);
        }
    }
}

/// The generic solvers hold for non-linear monotone functions too.
#[test]
fn lp_solvers_safe() {
    let mut rng = StdRng::seed_from_u64(0x444);
    for _ in 0..CASES {
        let (lo, hi) = boxed(&mut rng, 2);
        let tfrac = 0.01 + 0.98 * rng.random::<f64>();
        let dim = rng.random_range(0..2usize);
        let f = LpRank::l2(vec![AttrId(0), AttrId(1)], lo.clone());
        let smin = f.score_norm(&lo);
        let smax = f.score_norm(&hi);
        if smax <= smin {
            continue;
        }
        let target = smin + tfrac * (smax - smin);
        if let Some(e) = f.ell(dim, target, &lo, hi[dim]) {
            let mut p = lo.clone();
            p[dim] = e;
            assert!(f.score_norm(&p) >= target, "Lp ell cap unsafe on dim {dim}");
        }
        if let Some(v) = f.contour_point(&lo, &hi, target) {
            assert!(f.score_norm(&v) >= target, "Lp contour point under target");
        }
    }
}
