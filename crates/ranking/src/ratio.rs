//! Ratio ranking functions: `minimize numerator / denominator`.
//!
//! These are the paper's motivating unsupported rankings — *cost per
//! mileage* on flight search sites, *mileage per year* on Yahoo! Autos,
//! *price per carat* on Blue Nile. A ratio prefers a small numerator and a
//! large denominator, i.e. directions `[Asc, Desc]`; in normalized space
//! `u = (num, -den)` the score `u₀ / (-u₁)` is monotone non-decreasing in
//! both coordinates provided the raw domains satisfy `num ≥ 0`, `den > 0`.

use crate::rankfn::RankFn;
use qrs_types::{AttrId, Direction};

/// `S(t) = t[num] / t[den]`, minimized. Requires `num ≥ 0` and `den > 0`
/// over the data domain (asserted against the normalized coordinates at
/// scoring time in debug builds).
#[derive(Debug, Clone)]
pub struct RatioRank {
    attrs: [AttrId; 2],
    dirs: [Direction; 2],
}

impl RatioRank {
    /// Minimize `num / den` (e.g. price per carat).
    pub fn minimize(num: AttrId, den: AttrId) -> Self {
        assert_ne!(num, den, "ratio needs two distinct attributes");
        RatioRank {
            attrs: [num, den],
            dirs: [Direction::Asc, Direction::Desc],
        }
    }

    /// Maximize `a / b` — equivalent to minimizing `b / a` (e.g. maximize
    /// carat per dollar).
    pub fn maximize(a: AttrId, b: AttrId) -> Self {
        RatioRank::minimize(b, a)
    }

    /// Numerator attribute.
    pub fn num(&self) -> AttrId {
        self.attrs[0]
    }

    /// Denominator attribute.
    pub fn den(&self) -> AttrId {
        self.attrs[1]
    }
}

impl RankFn for RatioRank {
    fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    fn directions(&self) -> &[Direction] {
        &self.dirs
    }

    fn score_norm(&self, u: &[f64]) -> f64 {
        let num = u[0];
        let den = -u[1]; // denormalize: dir Desc
        debug_assert!(num >= 0.0, "RatioRank numerator must be >= 0, got {num}");
        if den <= 0.0 {
            // Outside the valid domain (can be probed by generic solvers
            // scanning the full normalized box): worst possible score keeps
            // monotonicity — increasing u₁ further keeps it at +inf.
            return f64::INFINITY;
        }
        num / den
    }

    fn label(&self) -> String {
        format!("{} per {}", self.attrs[0], self.attrs[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::{Tuple, TupleId};

    fn price_per_carat() -> RatioRank {
        RatioRank::minimize(AttrId(0), AttrId(1))
    }

    #[test]
    fn scores_ratio() {
        let f = price_per_carat();
        let t = Tuple::new(TupleId(0), vec![1000.0, 2.0], vec![]);
        assert_eq!(f.score(&t), 500.0);
    }

    #[test]
    fn monotone_in_normalized_coords() {
        let f = price_per_carat();
        // u = (num, -den). Increasing num increases score.
        assert!(f.score_norm(&[10.0, -2.0]) < f.score_norm(&[20.0, -2.0]));
        // Increasing u1 (shrinking den) increases score.
        assert!(f.score_norm(&[10.0, -2.0]) < f.score_norm(&[10.0, -1.0]));
    }

    #[test]
    fn maximize_flips() {
        // Maximize carat per dollar == minimize dollar per carat.
        let f = RatioRank::maximize(AttrId(1), AttrId(0));
        assert_eq!(f.num(), AttrId(0));
        assert_eq!(f.den(), AttrId(1));
    }

    #[test]
    fn invalid_denominator_is_worst() {
        let f = price_per_carat();
        assert_eq!(f.score_norm(&[10.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn generic_solvers_apply() {
        let f = price_per_carat();
        // Box in normalized space: num in [0, 100], den in [1, 10] → u1 in
        // [-10, -1]. Contour for target 5.
        let v = f.contour_point(&[0.0, -10.0], &[100.0, -1.0], 5.0).unwrap();
        assert!(f.score_norm(&v) >= 5.0);
        // Corner from a witness scoring >= target.
        let w = [50.0, -5.0]; // score 10
        let b = f.corner(&w, 5.0, &[0.0, -10.0]);
        assert!(f.score_norm(&b) >= 5.0);
        assert!(b[0] <= w[0] && b[1] <= w[1]);
    }
}
