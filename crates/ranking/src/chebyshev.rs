//! Weighted Chebyshev (L∞) ranking: `S(u) = max wᵢ·(uᵢ - idealᵢ)`.
//!
//! Monotone *non-decreasing* (weakly: flat in a coordinate while another
//! dominates the max), which §2.2's monotonicity definition permits. Its
//! plateaus make it the adversarial test case for the contour solvers, whose
//! bit-bisection handles non-strict monotonicity exactly.

use crate::rankfn::RankFn;
use qrs_types::{AttrId, Direction};

/// `S(u) = maxᵢ wᵢ·(uᵢ - idealᵢ)`.
#[derive(Debug, Clone)]
pub struct ChebyshevRank {
    attrs: Vec<AttrId>,
    dirs: Vec<Direction>,
    weights: Vec<f64>,
    ideal: Vec<f64>,
}

impl ChebyshevRank {
    /// # Panics
    /// On arity mismatch or non-positive weights.
    pub fn new(
        attrs: Vec<AttrId>,
        dirs: Vec<Direction>,
        weights: Vec<f64>,
        ideal: Vec<f64>,
    ) -> Self {
        assert!(!attrs.is_empty());
        assert_eq!(attrs.len(), dirs.len());
        assert_eq!(attrs.len(), weights.len());
        assert_eq!(attrs.len(), ideal.len());
        assert!(weights.iter().all(|w| *w > 0.0 && w.is_finite()));
        ChebyshevRank {
            attrs,
            dirs,
            weights,
            ideal,
        }
    }

    /// Unit weights, ascending, ideal at the given minima.
    pub fn uniform(attrs: Vec<AttrId>, ideal: Vec<f64>) -> Self {
        let n = attrs.len();
        ChebyshevRank::new(attrs, vec![Direction::Asc; n], vec![1.0; n], ideal)
    }
}

impl RankFn for ChebyshevRank {
    fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    fn directions(&self) -> &[Direction] {
        &self.dirs
    }

    fn score_norm(&self, u: &[f64]) -> f64 {
        u.iter()
            .zip(&self.ideal)
            .zip(&self.weights)
            .map(|((&v, &i), &w)| w * (v - i))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn label(&self) -> String {
        format!("Chebyshev({} attrs)", self.attrs.len())
    }

    /// Full-bit weights and ideal point — the label carries neither.
    fn fingerprint(&self) -> String {
        let params: Vec<f64> = self.weights.iter().chain(&self.ideal).copied().collect();
        crate::rankfn::fingerprint_with_params("chebyshev", &self.attrs, &self.dirs, &params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::{Tuple, TupleId};

    fn f() -> ChebyshevRank {
        ChebyshevRank::uniform(vec![AttrId(0), AttrId(1)], vec![0.0, 0.0])
    }

    #[test]
    fn scoring_takes_max() {
        let t = Tuple::new(TupleId(0), vec![3.0, 7.0], vec![]);
        assert_eq!(f().score(&t), 7.0);
    }

    #[test]
    fn ell_on_plateau() {
        // base = (0, 9): S = 9 regardless of dim-0 until it exceeds 9.
        // ell(dim 0, target 9) = 0 because score already >= 9 at base.
        assert_eq!(f().ell(0, 9.0, &[0.0, 9.0], 100.0), Some(0.0));
        // target 12: dim 0 must itself reach 12.
        assert_eq!(f().ell(0, 12.0, &[0.0, 9.0], 100.0), Some(12.0));
    }

    #[test]
    fn corner_on_plateau_is_safe() {
        let fun = f();
        let w = [8.0, 6.0]; // S = 8
        let b = fun.corner(&w, 8.0, &[0.0, 0.0]);
        assert!(fun.score_norm(&b) >= 8.0);
        assert!(b[0] <= 8.0 && b[1] <= 6.0);
        // b0 stays at 8 (lowering it drops the max below 8 once past dim 1's
        // 6); b1 can fall to 0.
        assert_eq!(b[0], 8.0);
        assert_eq!(b[1], 0.0);
    }

    #[test]
    fn contour_point_exists() {
        let fun = f();
        let v = fun.contour_point(&[0.0, 0.0], &[10.0, 10.0], 5.0).unwrap();
        assert!(fun.score_norm(&v) >= 5.0);
    }
}
