//! The [`RankFn`] trait: monotonic user-specified ranking functions.
//!
//! §2.2 of the paper: a ranking function `S(q, t)` is *monotonic* iff there is
//! a per-attribute order `≺` such that no tuple can outrank another that
//! dominates it. We realize the order as a [`Direction`] per attribute and
//! require [`RankFn::score_norm`] to be non-decreasing in every *normalized*
//! coordinate (smaller normalized value = more preferred).
//!
//! Besides scoring, a `RankFn` supplies the three geometric primitives the MD
//! algorithms need, each with an exact default implementation via bit-level
//! bisection and overridable with closed forms:
//!
//! * [`RankFn::ell`] — the axis intercept `ℓ(Ai)` of a rank contour (Eq. 6),
//! * [`RankFn::corner`] — a contour corner `b ≤ witness` with
//!   `S(b) ≥ target`, generalizing `b(Aj)` of Eq. 8 (see *Completeness note*
//!   below),
//! * [`RankFn::contour_point`] — a balanced point on the contour inside a
//!   box, the *virtual tuple* `v'` of §4.3.2.
//!
//! ### Completeness note (deviation from the paper's Eq. 9)
//!
//! Eq. 8 defines each `b(Aj)` by replacing a *single* coordinate of the
//! witness. For `m ≥ 3` the resulting partition (Eq. 9 plus the dominating
//! box) does not cover the whole sub-contour region: e.g. with
//! `S = u1+u2+u3`, witness `(10,10,10)` and `S(t) = 25`, the point
//! `(6,6,11)` scores 23 < 25 but falls in no partition query. We therefore
//! compute `b` *cumulatively*: `b_j` is the smallest value `v` with
//! `S(b_1,…,b_{j-1}, v, w_{j+1},…,w_m) ≥ target`. This coincides with the
//! paper's definition for `m ≤ 2`, guarantees `S(b) ≥ target` (so the corner
//! `{u ⪰ b}` is safely prunable), and makes the `m` prefix-split queries a
//! complete cover — the extra "dominating box" query of Eq. 9 becomes
//! unnecessary.

use crate::solvers::partition_point_f64;
use qrs_types::{AttrId, Direction, Tuple};

/// Per-dimension bounds of the normalized search space (derived from the
/// schema domains by `qrs-core`). `lo[i] ≤ hi[i]`; `lo` is the *ideal* corner.
#[derive(Debug, Clone, PartialEq)]
pub struct NormBounds {
    pub lo: Vec<f64>,
    pub hi: Vec<f64>,
}

impl NormBounds {
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        debug_assert_eq!(lo.len(), hi.len());
        debug_assert!(lo.iter().zip(&hi).all(|(l, h)| l <= h));
        NormBounds { lo, hi }
    }

    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }
}

/// A monotonic user-specified ranking function. Lower score = higher rank.
pub trait RankFn: Send + Sync {
    /// The ordinal attributes the function ranks on, in coordinate order.
    fn attrs(&self) -> &[AttrId];

    /// Preferred direction of each ranking attribute, aligned with
    /// [`RankFn::attrs`].
    fn directions(&self) -> &[Direction];

    /// Score of a point given by its *normalized* coordinates (aligned with
    /// [`RankFn::attrs`]). Must be monotone non-decreasing in every
    /// coordinate.
    fn score_norm(&self, u: &[f64]) -> f64;

    /// Human-readable label for logs and experiment output.
    fn label(&self) -> String {
        "rank".to_owned()
    }

    /// Injective identity of this ranking function, suitable as a cache key
    /// (the knowledge plane keys cached exact result streams by it).
    ///
    /// Two functions with equal fingerprints **must** rank every tuple set
    /// identically; two observably different functions must differ. The
    /// default renders `label + attrs + directions` — enough for parameter
    /// -free functions, but families whose labels round their parameters
    /// (e.g. [`crate::LinearRank`] prints weights at two decimals) override
    /// it with full-bit parameter renderings. Custom implementations with
    /// numeric parameters should do the same via something like
    /// `format!("{:016x}", w.to_bits())`.
    fn fingerprint(&self) -> String {
        let mut out = self.label();
        out.push('|');
        for (a, d) in self.attrs().iter().zip(self.directions()) {
            out.push_str(&a.0.to_string());
            out.push(match d {
                Direction::Asc => 'a',
                Direction::Desc => 'd',
            });
        }
        out
    }

    /// Number of ranking dimensions `m`.
    fn dims(&self) -> usize {
        self.attrs().len()
    }

    /// Normalized coordinates of a tuple.
    fn norm_coords(&self, t: &Tuple) -> Vec<f64> {
        self.attrs()
            .iter()
            .zip(self.directions())
            .map(|(&a, &d)| d.normalize(t.ord(a)))
            .collect()
    }

    /// Score of a tuple — the paper's `S(t)`.
    fn score(&self, t: &Tuple) -> f64 {
        self.score_norm(&self.norm_coords(t))
    }

    /// Axis intercept of the `target` contour along `dim`, relative to the
    /// anchor point `base` (Eq. 6 generalized from the origin to an arbitrary
    /// box corner): the smallest normalized `v ∈ [base[dim], hi]` such that
    /// the point `base[dim ← v]` scores `≥ target`.
    ///
    /// Returns `None` when even `v = hi` stays below `target` (the contour
    /// does not cut this edge of the box — no cap applies). Exact: the
    /// returned value satisfies the predicate and its predecessor float does
    /// not (unless it equals `base[dim]`).
    fn ell(&self, dim: usize, target: f64, base: &[f64], hi: f64) -> Option<f64> {
        let mut buf = base.to_vec();
        partition_point_f64(base[dim], hi, |v| {
            buf[dim] = v;
            self.score_norm(&buf) >= target
        })
    }

    /// Cumulative contour corner: a point `b` with `lo ≤ b ≤ witness`
    /// (component-wise, normalized) and `S(b) ≥ target`, computed by lowering
    /// coordinates left-to-right as far as the contour allows.
    ///
    /// Precondition: `S(witness) ≥ target` and `lo ≤ witness`. The prefix
    /// split of a box around `b` then covers every point scoring `< target`
    /// while pruning the corner `{u ⪰ b}` — see the module docs for why this
    /// is the completeness-correct generalization of Eq. 8.
    fn corner(&self, witness: &[f64], target: f64, lo: &[f64]) -> Vec<f64> {
        debug_assert!(self.score_norm(witness) >= target);
        let mut b = witness.to_vec();
        for j in 0..witness.len() {
            let wj = b[j];
            // Invariant: with coords 0..j set to b[0..j] and j.. at witness,
            // the score is >= target, so the predicate holds at v = wj.
            let found = {
                let buf = &mut b;
                partition_point_f64(lo[j].min(wj), wj, |v| {
                    buf[j] = v;
                    let s = self.score_norm(buf) >= target;
                    buf[j] = wj;
                    s
                })
            };
            b[j] = found.unwrap_or(wj);
        }
        b
    }

    /// A point `v'` inside the box `[lo, hi]` with `S(v') ≥ target`, sitting
    /// (one ULP above) the contour — the *virtual tuple* of §4.3.2.
    ///
    /// Returns `None` when the contour misses the box: either
    /// `S(lo) ≥ target` (the whole box is prunable) or `S(hi) < target`
    /// (every point in the box outranks the threshold).
    ///
    /// The default walks the main diagonal; implementations with more
    /// structure (e.g. [`crate::LinearRank`]) override it with the
    /// max-volume point, which is what makes virtual-tuple pruning
    /// effective.
    fn contour_point(&self, lo: &[f64], hi: &[f64], target: f64) -> Option<Vec<f64>> {
        if self.score_norm(lo) >= target || self.score_norm(hi) < target {
            return None;
        }
        let point_at = |lam: f64| -> Vec<f64> {
            lo.iter()
                .zip(hi)
                .map(|(&l, &h)| l + lam * (h - l))
                .collect()
        };
        let lam = partition_point_f64(0.0, 1.0, |lam| self.score_norm(&point_at(lam)) >= target)?;
        Some(point_at(lam))
    }
}

/// Shared fingerprint renderer for the built-in families: family tag, then
/// per-coordinate `attr`/`direction`, then every numeric parameter as its
/// raw bit pattern (injective where `Display` rounding is not).
pub(crate) fn fingerprint_with_params(
    family: &str,
    attrs: &[AttrId],
    dirs: &[Direction],
    params: &[f64],
) -> String {
    let mut out = String::with_capacity(family.len() + 4 * attrs.len() + 17 * params.len());
    out.push_str(family);
    out.push('|');
    for (a, d) in attrs.iter().zip(dirs) {
        out.push_str(&a.0.to_string());
        out.push(match d {
            Direction::Asc => 'a',
            Direction::Desc => 'd',
        });
    }
    out.push('|');
    for p in params {
        out.push_str(&format!("{:016x};", p.to_bits()));
    }
    out
}

/// Exactify a candidate contour point: pull `p` back toward `lo` along the
/// segment `lo → p` until it sits exactly at the first float position whose
/// score reaches `target`. Helper for closed-form `contour_point` overrides
/// whose arithmetic may land a few ULPs off the contour.
pub(crate) fn snap_to_contour(
    f: &(impl RankFn + ?Sized),
    lo: &[f64],
    p: &[f64],
    target: f64,
) -> Option<Vec<f64>> {
    let point_at =
        |lam: f64| -> Vec<f64> { lo.iter().zip(p).map(|(&l, &x)| l + lam * (x - l)).collect() };
    if f.score_norm(p) >= target {
        let lam = partition_point_f64(0.0, 1.0, |lam| f.score_norm(&point_at(lam)) >= target)?;
        Some(point_at(lam))
    } else {
        // p fell short of the contour (rounding); it cannot be snapped along
        // lo → p. The caller falls back to the diagonal.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal monotone function for exercising the default solvers:
    /// S(u) = u0 + 2·u1 (+ u2 …).
    struct Sum(Vec<AttrId>, Vec<Direction>);

    impl RankFn for Sum {
        fn attrs(&self) -> &[AttrId] {
            &self.0
        }
        fn directions(&self) -> &[Direction] {
            &self.1
        }
        fn score_norm(&self, u: &[f64]) -> f64 {
            u.iter()
                .enumerate()
                .map(|(i, &v)| (i as f64 + 1.0) * v)
                .sum()
        }
    }

    fn sum2() -> Sum {
        Sum(
            vec![AttrId(0), AttrId(1)],
            vec![Direction::Asc, Direction::Asc],
        )
    }

    #[test]
    fn score_uses_normalization() {
        let f = Sum(
            vec![AttrId(0), AttrId(1)],
            vec![Direction::Asc, Direction::Desc],
        );
        let t = Tuple::new(qrs_types::TupleId(0), vec![3.0, 4.0], vec![]);
        // u = (3, -4); S = 3 + 2·(-4) = -5.
        assert_eq!(f.score(&t), -5.0);
    }

    #[test]
    fn ell_exact_boundary() {
        let f = sum2();
        // base = (1, 1): S = 3. Along dim 1: S = 1 + 2v >= 10 ⟺ v >= 4.5.
        let e = f.ell(1, 10.0, &[1.0, 1.0], 100.0).unwrap();
        assert_eq!(e, 4.5);
        // Contour above the edge: no cap.
        assert_eq!(f.ell(1, 1000.0, &[1.0, 1.0], 100.0), None);
        // Already at/above target at base.
        assert_eq!(f.ell(1, 2.0, &[1.0, 1.0], 100.0), Some(1.0));
    }

    #[test]
    fn corner_invariants() {
        let f = Sum(
            vec![AttrId(0), AttrId(1), AttrId(2)],
            vec![Direction::Asc; 3],
        );
        let witness = [10.0, 10.0, 10.0]; // S = 60
        let lo = [0.0, 0.0, 0.0];
        let target = 45.0;
        let b = f.corner(&witness, target, &lo);
        assert!(f.score_norm(&b) >= target);
        for j in 0..3 {
            assert!(b[j] <= witness[j]);
            assert!(b[j] >= lo[j]);
        }
        // Cumulative semantics: b0 = (45 - 20 - 30) / 1 = -5 → clamped to 0,
        // b1 = (45 - 0 - 30)/2 = 7.5, b2 = (45 - 0 - 15)/3 = 10.
        assert_eq!(b[0], 0.0);
        assert!((b[1] - 7.5).abs() < 1e-12);
        assert!((b[2] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn contour_point_in_box_and_on_contour() {
        let f = sum2();
        let lo = [0.0, 0.0];
        let hi = [10.0, 10.0];
        let v = f.contour_point(&lo, &hi, 15.0).unwrap();
        assert!(f.score_norm(&v) >= 15.0);
        // One step back along the diagonal scores below target.
        for (i, x) in v.iter().enumerate() {
            assert!(*x >= lo[i] && *x <= hi[i]);
        }
        // Degenerate cases.
        assert!(f.contour_point(&lo, &hi, -1.0).is_none()); // S(lo)=0 >= -1
        assert!(f.contour_point(&lo, &hi, 100.0).is_none()); // S(hi)=30 < 100
    }

    #[test]
    fn fingerprints_survive_label_rounding() {
        use crate::LinearRank;
        let a = LinearRank::asc(vec![(AttrId(0), 1.001), (AttrId(1), 1.0)]);
        let b = LinearRank::asc(vec![(AttrId(0), 1.002), (AttrId(1), 1.0)]);
        // The display label rounds both to "1.00*..." — it aliases.
        assert_eq!(a.label(), b.label());
        // The fingerprint does not.
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint());
        // Default fingerprint distinguishes attrs/directions.
        let f = sum2();
        let g = Sum(
            vec![AttrId(0), AttrId(1)],
            vec![Direction::Asc, Direction::Desc],
        );
        assert_ne!(f.fingerprint(), g.fingerprint());
    }

    #[test]
    fn snap_helper() {
        let f = sum2();
        let lo = [0.0, 0.0];
        let p = [10.0, 10.0]; // S = 30
        let v = snap_to_contour(&f, &lo, &p, 15.0).unwrap();
        assert!(f.score_norm(&v) >= 15.0);
        assert!(v[0] <= 10.0 && v[1] <= 10.0);
        assert!(snap_to_contour(&f, &lo, &[1.0, 1.0], 15.0).is_none());
    }
}
