//! Exact monotone root isolation on `f64`.
//!
//! The contour quantities in §4 of the paper (`ℓ(Ai)` of Eq. 6, `b(Aj)` of
//! Eq. 8) are boundaries of monotone predicates over one attribute. Instead
//! of numeric bisection with an epsilon, we bisect over the *bit
//! representation* of `f64`, which yields the exact smallest float satisfying
//! the predicate in ≤ 64 steps. The reranking algorithms rely on this
//! exactness: regions are pruned only when *provably* scoreless, so a solver
//! that overshoots by one ULP could prune the true top tuple.

/// Map an `f64` to a `u64` such that the `u64` order matches IEEE total
/// order. Standard sign-flip trick.
#[inline]
fn to_ordered_bits(f: f64) -> u64 {
    let b = f.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | 0x8000_0000_0000_0000
    }
}

/// Inverse of [`to_ordered_bits`].
#[inline]
fn from_ordered_bits(b: u64) -> f64 {
    if b >> 63 == 1 {
        f64::from_bits(b & 0x7fff_ffff_ffff_ffff)
    } else {
        f64::from_bits(!b)
    }
}

/// Smallest `x` in `[lo, hi]` with `pred(x) == true`, for a monotone
/// predicate (`false…false true…true` along the axis).
///
/// Returns `None` when `pred(hi)` is false (no satisfying value in range).
/// When `pred(lo)` is already true, returns `lo`.
///
/// The result is *exact*: `pred(result)` holds and `pred(prev_float(result))`
/// does not (unless `result == lo`).
pub fn partition_point_f64(lo: f64, hi: f64, mut pred: impl FnMut(f64) -> bool) -> Option<f64> {
    debug_assert!(lo <= hi, "partition_point_f64: lo {lo} > hi {hi}");
    if pred(lo) {
        return Some(lo);
    }
    if !pred(hi) {
        return None;
    }
    let mut lo_b = to_ordered_bits(lo); // pred false here
    let mut hi_b = to_ordered_bits(hi); // pred true here
    while hi_b - lo_b > 1 {
        let mid = lo_b + (hi_b - lo_b) / 2;
        if pred(from_ordered_bits(mid)) {
            hi_b = mid;
        } else {
            lo_b = mid;
        }
    }
    Some(from_ordered_bits(hi_b))
}

/// Largest `x` in `[lo, hi]` with `pred(x) == true`, for an anti-monotone
/// predicate (`true…true false…false`). Dual of [`partition_point_f64`].
pub fn last_point_f64(lo: f64, hi: f64, mut pred: impl FnMut(f64) -> bool) -> Option<f64> {
    debug_assert!(lo <= hi);
    if pred(hi) {
        return Some(hi);
    }
    if !pred(lo) {
        return None;
    }
    let mut lo_b = to_ordered_bits(lo); // pred true here
    let mut hi_b = to_ordered_bits(hi); // pred false here
    while hi_b - lo_b > 1 {
        let mid = lo_b + (hi_b - lo_b) / 2;
        if pred(from_ordered_bits(mid)) {
            lo_b = mid;
        } else {
            hi_b = mid;
        }
    }
    Some(from_ordered_bits(lo_b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_bits_roundtrip_and_order() {
        for v in [-1e300, -2.5, -0.0, 0.0, 1e-300, 3.7, f64::MAX] {
            assert_eq!(from_ordered_bits(to_ordered_bits(v)), v);
        }
        assert!(to_ordered_bits(-1.0) < to_ordered_bits(-0.5));
        assert!(to_ordered_bits(-0.5) < to_ordered_bits(0.5));
        assert!(to_ordered_bits(0.5) < to_ordered_bits(1.5));
    }

    #[test]
    fn finds_exact_boundary() {
        // pred: x >= 1/3 — boundary not representable exactly.
        let t = 1.0 / 3.0;
        let r = partition_point_f64(0.0, 1.0, |x| x >= t).unwrap();
        assert_eq!(r, t);
        // One ULP below must fail the predicate.
        let below = f64::from_bits(r.to_bits() - 1);
        assert!(below < t);
    }

    #[test]
    fn boundary_at_endpoints() {
        assert_eq!(partition_point_f64(2.0, 5.0, |x| x >= 0.0), Some(2.0));
        assert_eq!(partition_point_f64(2.0, 5.0, |x| x >= 10.0), None);
        assert_eq!(partition_point_f64(2.0, 5.0, |x| x >= 5.0), Some(5.0));
    }

    #[test]
    fn last_point_dual() {
        let t = 2.0 / 7.0;
        let r = last_point_f64(0.0, 1.0, |x| x <= t).unwrap();
        assert_eq!(r, t);
        assert_eq!(last_point_f64(0.0, 1.0, |x| x <= -1.0), None);
        assert_eq!(last_point_f64(0.0, 1.0, |x| x <= 2.0), Some(1.0));
    }

    #[test]
    fn negative_ranges() {
        let r = partition_point_f64(-10.0, -1.0, |x| x >= -4.5).unwrap();
        assert_eq!(r, -4.5);
        let r2 = partition_point_f64(-10.0, 10.0, |x| x * 3.0 >= 1.0).unwrap();
        assert!(r2 * 3.0 >= 1.0);
        assert!(f64::from_bits(r2.to_bits() - 1) * 3.0 < 1.0);
    }
}
