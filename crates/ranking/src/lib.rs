//! # qrs-ranking
//!
//! User-specified monotonic ranking functions (§2.2 of *Query Reranking As A
//! Service*) and the contour geometry the MD reranking algorithms need (§4).
//!
//! ## Normalized space
//!
//! A monotonic ranking function fixes a preference order per attribute
//! ([`qrs_types::Direction`]). All geometry in this crate lives in
//! **normalized space**: the value of attribute `i` is mapped through
//! [`qrs_types::Direction::normalize`] so that *smaller is always better*,
//! and every [`RankFn`] is monotone **non-decreasing** in each normalized
//! coordinate. `qrs-core` translates normalized boxes back into real server
//! predicates.
//!
//! ## Exactness
//!
//! Contour solvers ([`RankFn::ell`], [`RankFn::corner`], …) drive *pruning*
//! decisions: a region is discarded when every point in it scores at least
//! the current threshold. A solver that rounds the wrong way by one ULP can
//! discard the true answer, so the default implementations use bit-level
//! bisection ([`solvers::partition_point_f64`]) which returns the exact
//! floating-point boundary of a monotone predicate — no epsilon tuning.
//!
//! ## Provided families
//!
//! * [`LinearRank`] — weighted sums, the paper's primary family (also covers
//!   the "sum of depth and table percent" Blue Nile example),
//! * [`LpRank`] — weighted p-th-power distances from an ideal point,
//! * [`ChebyshevRank`] — weighted max (L∞),
//! * [`RatioRank`] — quotients like *cost per mileage* or *price per carat*
//!   (the paper's motivating unsupported ranking functions).

pub mod chebyshev;
pub mod linear;
pub mod lp;
pub mod rankfn;
pub mod ratio;
pub mod solvers;

pub use chebyshev::ChebyshevRank;
pub use linear::LinearRank;
pub use lp::LpRank;
pub use rankfn::{NormBounds, RankFn};
pub use ratio::RatioRank;

#[cfg(test)]
mod proptests;
