//! Linear ranking functions — the paper's primary family.
//!
//! §6.3: "the ranking functions are constructed by selecting a subset from
//! the set of all ranking attributes and choosing different weights between
//! 0 and 1". [`LinearRank`] is `S(u) = Σ wᵢ·uᵢ` over normalized coordinates
//! with strictly positive weights, which also covers the motivating examples
//! "summation of depth and table percent" (unit weights) and any
//! `maximize`/`minimize` single attribute (one weight).

use crate::rankfn::{snap_to_contour, NormBounds, RankFn};
use qrs_types::{AttrId, Direction};

/// `S(u) = Σ wᵢ·uᵢ` in normalized space, `wᵢ > 0`.
#[derive(Debug, Clone)]
pub struct LinearRank {
    attrs: Vec<AttrId>,
    dirs: Vec<Direction>,
    weights: Vec<f64>,
    label: String,
}

impl LinearRank {
    /// Build from `(attribute, direction, weight)` triples.
    ///
    /// # Panics
    /// If no triples are given, a weight is not strictly positive, or an
    /// attribute repeats.
    pub fn new(terms: Vec<(AttrId, Direction, f64)>) -> Self {
        assert!(!terms.is_empty(), "LinearRank needs at least one term");
        let mut attrs = Vec::with_capacity(terms.len());
        let mut dirs = Vec::with_capacity(terms.len());
        let mut weights = Vec::with_capacity(terms.len());
        for (a, d, w) in terms {
            assert!(
                w > 0.0 && w.is_finite(),
                "LinearRank weights must be finite and > 0, got {w}"
            );
            assert!(!attrs.contains(&a), "duplicate ranking attribute {a}");
            attrs.push(a);
            dirs.push(d);
            weights.push(w);
        }
        let label = attrs
            .iter()
            .zip(&dirs)
            .zip(&weights)
            .map(|((a, d), w)| {
                format!(
                    "{w:.2}*{a}{}",
                    if *d == Direction::Desc { "(desc)" } else { "" }
                )
            })
            .collect::<Vec<_>>()
            .join(" + ");
        LinearRank {
            attrs,
            dirs,
            weights,
            label,
        }
    }

    /// All-ascending convenience constructor.
    pub fn asc(terms: Vec<(AttrId, f64)>) -> Self {
        LinearRank::new(
            terms
                .into_iter()
                .map(|(a, w)| (a, Direction::Asc, w))
                .collect(),
        )
    }

    /// Rank by a single attribute — the 1D case of §3.
    pub fn single(attr: AttrId, dir: Direction) -> Self {
        LinearRank::new(vec![(attr, dir, 1.0)])
    }

    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Max-volume point on the `target` contour within `[lo, hi]` by
    /// water-filling (see [`RankFn::contour_point`] docs): maximize
    /// `Π (vᵢ - loᵢ)` subject to `Σ wᵢ vᵢ = target`, `v ≤ hi`.
    fn waterfill(&self, lo: &[f64], hi: &[f64], target: f64) -> Option<Vec<f64>> {
        let m = self.weights.len();
        let base: f64 = self.weights.iter().zip(lo).map(|(w, l)| w * l).sum();
        let mut budget = target - base; // Σ wᵢ·xᵢ with xᵢ = vᵢ - loᵢ
        if budget <= 0.0 {
            return None; // S(lo) >= target — whole box prunable
        }
        // active[i]: coordinate still unclamped.
        let mut x = vec![0.0_f64; m];
        let mut active: Vec<usize> = (0..m).collect();
        loop {
            if active.is_empty() {
                // Everything clamped yet budget remains: S(hi) < target.
                return None;
            }
            let share = budget / active.len() as f64;
            // Clamp coords whose equal share exceeds their cap.
            let mut clamped_any = false;
            active.retain(|&i| {
                let cap = hi[i] - lo[i];
                if share / self.weights[i] >= cap {
                    x[i] = cap;
                    budget -= self.weights[i] * cap;
                    clamped_any = true;
                    false
                } else {
                    true
                }
            });
            if !clamped_any {
                for &i in &active {
                    x[i] = share / self.weights[i];
                }
                break;
            }
            if budget <= 0.0 {
                // All budget consumed by clamped coordinates; leave the rest
                // at lo. The point may sit slightly above the contour — the
                // snap below corrects it.
                break;
            }
        }
        Some(x.iter().zip(lo).map(|(xi, l)| l + xi).collect())
    }
}

impl RankFn for LinearRank {
    fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    fn directions(&self) -> &[Direction] {
        &self.dirs
    }

    #[inline]
    fn score_norm(&self, u: &[f64]) -> f64 {
        debug_assert_eq!(u.len(), self.weights.len());
        self.weights.iter().zip(u).map(|(w, v)| w * v).sum()
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    /// Full-bit weights — the display label rounds to two decimals, which
    /// would alias nearby weight vectors.
    fn fingerprint(&self) -> String {
        crate::rankfn::fingerprint_with_params("linear", &self.attrs, &self.dirs, &self.weights)
    }

    /// Closed-form `ℓ`: `v = (target - Σ_{j≠dim} wⱼ·baseⱼ) / w_dim`, then
    /// exactified by the default bisection (cheap; keeps the ULP guarantee).
    fn ell(&self, dim: usize, target: f64, base: &[f64], hi: f64) -> Option<f64> {
        // The default is already exact and O(64) score evaluations; for the
        // linear case we keep it — closed-form would need the same fix-up.
        let mut buf = base.to_vec();
        crate::solvers::partition_point_f64(base[dim], hi, |v| {
            buf[dim] = v;
            self.score_norm(&buf) >= target
        })
    }

    /// Max-volume virtual tuple via water-filling, snapped exactly onto the
    /// contour; falls back to the diagonal when degenerate.
    fn contour_point(&self, lo: &[f64], hi: &[f64], target: f64) -> Option<Vec<f64>> {
        if self.score_norm(lo) >= target || self.score_norm(hi) < target {
            return None;
        }
        if let Some(p) = self.waterfill(lo, hi, target) {
            if let Some(v) = snap_to_contour(self, lo, &p, target) {
                return Some(v);
            }
        }
        // Degenerate arithmetic: fall back to the exact diagonal point.
        let point_at = |lam: f64| -> Vec<f64> {
            lo.iter()
                .zip(hi)
                .map(|(&l, &h)| l + lam * (h - l))
                .collect()
        };
        let lam = crate::solvers::partition_point_f64(0.0, 1.0, |lam| {
            self.score_norm(&point_at(lam)) >= target
        })?;
        Some(point_at(lam))
    }
}

/// Convenience: the normalized bounds of a linear function's ranking
/// attributes given raw domain bounds.
pub fn norm_bounds_for(f: &dyn RankFn, raw: &[(f64, f64)]) -> NormBounds {
    let mut lo = Vec::with_capacity(raw.len());
    let mut hi = Vec::with_capacity(raw.len());
    for (i, &(rl, rh)) in raw.iter().enumerate() {
        let d = f.directions()[i];
        let (a, b) = (d.normalize(rl), d.normalize(rh));
        lo.push(a.min(b));
        hi.push(a.max(b));
    }
    NormBounds::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::{Tuple, TupleId};

    fn f2() -> LinearRank {
        LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 2.0)])
    }

    #[test]
    fn scoring() {
        let f = f2();
        let t = Tuple::new(TupleId(0), vec![3.0, 4.0], vec![]);
        assert_eq!(f.score(&t), 11.0);
    }

    #[test]
    #[should_panic(expected = "weights must be finite and > 0")]
    fn rejects_nonpositive_weight() {
        LinearRank::asc(vec![(AttrId(0), 0.0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate ranking attribute")]
    fn rejects_duplicate_attr() {
        LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(0), 2.0)]);
    }

    #[test]
    fn waterfill_max_volume_beats_diagonal() {
        // Asymmetric weights: the max-volume point is off-diagonal.
        let f = LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 4.0)]);
        let lo = [0.0, 0.0];
        let hi = [100.0, 100.0];
        let target = 40.0;
        let v = f.contour_point(&lo, &hi, target).unwrap();
        assert!(f.score_norm(&v) >= target);
        // Unclamped water-filling: x0 = 20/1, x1 = 20/4 = 5.
        assert!((v[0] - 20.0).abs() < 1e-9, "v0 = {}", v[0]);
        assert!((v[1] - 5.0).abs() < 1e-9, "v1 = {}", v[1]);
        // Volume >= diagonal's volume.
        let lam = 40.0 / 500.0; // diagonal point scale
        let diag_vol = (lam * 100.0) * (lam * 100.0);
        assert!(v[0] * v[1] >= diag_vol);
    }

    #[test]
    fn waterfill_clamps_at_box_edge() {
        let f = LinearRank::asc(vec![(AttrId(0), 1.0), (AttrId(1), 1.0)]);
        let lo = [0.0, 0.0];
        let hi = [1.0, 100.0];
        let target = 50.0;
        // Unclamped share would be 25 on each, but dim0 caps at 1.
        let v = f.contour_point(&lo, &hi, target).unwrap();
        assert!(f.score_norm(&v) >= target);
        assert!(v[0] <= 1.0 + 1e-12);
        assert!((v[1] - 49.0).abs() < 1e-9, "v1 = {}", v[1]);
    }

    #[test]
    fn contour_point_none_when_contour_outside() {
        let f = f2();
        assert!(f.contour_point(&[0.0, 0.0], &[1.0, 1.0], -5.0).is_none());
        assert!(f.contour_point(&[0.0, 0.0], &[1.0, 1.0], 50.0).is_none());
    }

    #[test]
    fn single_is_one_dimensional() {
        let f = LinearRank::single(AttrId(3), Direction::Desc);
        assert_eq!(f.dims(), 1);
        let t = Tuple::new(TupleId(0), vec![0.0, 0.0, 0.0, 7.0], vec![]);
        assert_eq!(f.score(&t), -7.0);
    }

    #[test]
    fn norm_bounds_flips_desc() {
        let f = LinearRank::new(vec![
            (AttrId(0), Direction::Asc, 1.0),
            (AttrId(1), Direction::Desc, 1.0),
        ]);
        let b = norm_bounds_for(&f, &[(0.0, 10.0), (1990.0, 2020.0)]);
        assert_eq!(b.lo, vec![0.0, -2020.0]);
        assert_eq!(b.hi, vec![10.0, -1990.0]);
    }
}
