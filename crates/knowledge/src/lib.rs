//! # qrs-knowledge
//!
//! The cross-session **knowledge plane**: a concurrent, sharded store of
//! everything the reranking service has already *paid* to learn about each
//! source, so overlapping sessions stop re-buying it.
//!
//! The paper's premise (§3.1.1) is that third-party queries against a
//! hidden database are the scarce resource; a reranking *service* amortizes
//! them across users by remembering query history. This crate is that
//! memory, organized for many concurrent tenants:
//!
//! * [`KnowledgePlane`] — the top-level handle. Source names hash to one of
//!   a fixed set of **stripes**, each an independently-locked map of
//!   shards, so shard lookup never funnels through a global lock and the
//!   hot path (existing shard, read-mode) takes exactly one striped read
//!   lock plus the shard's own read lock.
//! * [`SourceShard`] — per-source knowledge: an exact **response cache**,
//!   **drained regions** (selections whose complete match set in system
//!   order is known, from which subsumed requests are synthesized for
//!   free), **page runs** (drains in progress), **learned result streams**
//!   (exact top-k outputs keyed by `(selection, rank, tie, strategy)`), and
//!   the set of observed tuples.
//! * **Epoch invalidation** — every shard carries a generation counter;
//!   entries are stamped with the epoch they were recorded under and
//!   lookups reject older stamps. Invalidation is one atomic increment:
//!   O(1), no scan, and atomically covers *all* dependent entries.
//!
//! The crate is std-only (the workspace's `parking_lot` is the offline
//! shim over `std::sync`) and depends only on `qrs-types`; `qrs-core`'s
//! `KnowledgeGate` adapts it to the `SearchInterface` request path and
//! `qrs-service` wires it into sessions and federation.

#![deny(missing_docs)]

pub mod key;
pub mod shard;

pub use key::{query_key, RequestKey, ResultKey};
pub use shard::{CachedResponse, ResultEntry, ShardStats, SourceShard};

use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Number of independently-locked stripes in the plane's shard map. Shard
/// *contents* have their own locks; these stripes only guard name → shard
/// resolution, so a small fixed power of two is plenty.
const STRIPES: usize = 16;

/// Aggregated statistics across every shard in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlaneStats {
    /// Number of source shards.
    pub sources: u64,
    /// Exact response-cache hits, summed over shards.
    pub hits: u64,
    /// Synthesized answers, summed over shards.
    pub synthesized: u64,
    /// Misses, summed over shards.
    pub misses: u64,
    /// Result-stream replays served, summed over shards.
    pub result_hits: u64,
}

/// The service-wide knowledge plane: one shard per source, striped so
/// concurrent sessions over different sources never contend on a global
/// lock.
///
/// Cloneable by `Arc`: `RerankService` instances and `FederatedSession`s
/// share one plane by cloning the same `Arc<KnowledgePlane>`.
#[derive(Debug)]
pub struct KnowledgePlane {
    stripes: Box<[Stripe]>,
}

/// One lock stripe of the source map.
type Stripe = RwLock<HashMap<String, Arc<SourceShard>>>;

impl Default for KnowledgePlane {
    fn default() -> Self {
        KnowledgePlane::new()
    }
}

impl KnowledgePlane {
    /// An empty plane.
    pub fn new() -> Self {
        let stripes = (0..STRIPES)
            .map(|_| RwLock::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        KnowledgePlane { stripes }
    }

    fn stripe(&self, source: &str) -> &Stripe {
        let mut h = DefaultHasher::new();
        source.hash(&mut h);
        &self.stripes[(h.finish() as usize) % STRIPES]
    }

    /// The shard for `source`, created empty on first use.
    pub fn shard(&self, source: &str) -> Arc<SourceShard> {
        let stripe = self.stripe(source);
        if let Some(s) = stripe.read().get(source) {
            return Arc::clone(s);
        }
        let mut w = stripe.write();
        Arc::clone(
            w.entry(source.to_string())
                .or_insert_with(|| Arc::new(SourceShard::new())),
        )
    }

    /// The shard for `source`, if one exists.
    pub fn get(&self, source: &str) -> Option<Arc<SourceShard>> {
        self.stripe(source).read().get(source).cloned()
    }

    /// Bump `source`'s epoch, invalidating all knowledge recorded about it.
    /// A no-op (returning `None`) when the source has no shard yet.
    pub fn invalidate(&self, source: &str) -> Option<u64> {
        self.get(source).map(|s| s.invalidate())
    }

    /// Invalidate every source in the plane.
    pub fn invalidate_all(&self) {
        for stripe in self.stripes.iter() {
            for shard in stripe.read().values() {
                shard.invalidate();
            }
        }
    }

    /// Names of every source with a shard, sorted for determinism.
    pub fn sources(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .stripes
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        out.sort();
        out
    }

    /// Aggregated hit/miss statistics across all shards.
    pub fn stats(&self) -> PlaneStats {
        let mut out = PlaneStats::default();
        for stripe in self.stripes.iter() {
            for shard in stripe.read().values() {
                let s = shard.stats();
                out.sources += 1;
                out.hits += s.hits;
                out.synthesized += s.synthesized;
                out.misses += s.misses;
                out.result_hits += s.result_hits;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::{AttrId, Interval, Query, Tuple, TupleId};
    use std::thread;

    #[test]
    fn shards_are_per_source_and_stable() {
        let plane = KnowledgePlane::new();
        let a1 = plane.shard("aggregator");
        let a2 = plane.shard("aggregator");
        let b = plane.shard("storefront");
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(!Arc::ptr_eq(&a1, &b));
        assert_eq!(plane.sources(), vec!["aggregator", "storefront"]);
        assert!(plane.get("missing").is_none());
        assert_eq!(plane.invalidate("missing"), None);
        assert_eq!(plane.invalidate("aggregator"), Some(1));
        assert_eq!(a1.epoch(), 1);
        assert_eq!(b.epoch(), 0);
        plane.invalidate_all();
        assert_eq!(a1.epoch(), 2);
        assert_eq!(b.epoch(), 1);
    }

    #[test]
    fn concurrent_first_touch_yields_one_shard() {
        let plane = Arc::new(KnowledgePlane::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let p = Arc::clone(&plane);
                thread::spawn(move || p.shard("contended"))
            })
            .collect();
        let shards: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for s in &shards[1..] {
            assert!(Arc::ptr_eq(&shards[0], s));
        }
        assert_eq!(plane.stats().sources, 1);
    }

    #[test]
    fn plane_stats_aggregate_over_shards() {
        let plane = KnowledgePlane::new();
        let q = Query::all().and_range(AttrId(0), Interval::closed(0.0, 1.0));
        let key = RequestKey::top_k(&q);
        let s = plane.shard("site");
        assert!(s.lookup_response(&key, &q, 2).is_none()); // miss
        s.record_response(
            key.clone(),
            &q,
            2,
            &[Arc::new(Tuple::new(TupleId(0), vec![0.5], vec![]))],
            false,
        );
        assert!(s.lookup_response(&key, &q, 2).is_some()); // hit
        let ps = plane.stats();
        assert_eq!(ps.sources, 1);
        assert_eq!(ps.hits, 1);
        assert_eq!(ps.misses, 1);
    }
}
