//! Canonical cache keys.
//!
//! The plane's caches are keyed by *values* — a selection, a request shape,
//! a ranking fingerprint — so keys must be (a) hashable, (b) injective
//! (two semantically different requests must never collide), and
//! (c) canonical (the same request built in a different predicate order
//! must collide). [`query_key`] renders a [`Query`] into a canonical string
//! using the exact bit pattern of every float endpoint: `1.0` and the next
//! representable double apart stay apart, and predicate order is normalized
//! by sorting on attribute id.

use qrs_types::{AttrId, Direction, Endpoint, Query};

/// Render one interval endpoint with full bit fidelity.
///
/// The one exception to "raw bits": `-0.0` is canonicalized to `0.0`.
/// IEEE equality makes the two interchangeable as predicate bounds (and
/// `Interval::negate`, used by direction normalization, routinely turns a
/// `0.0` endpoint into `-0.0`), but their bit patterns differ — without the
/// fold, semantically identical selections would miss the cache.
fn endpoint_key(e: &Endpoint, out: &mut String) {
    fn bits(v: f64) -> u64 {
        if v == 0.0 { 0.0f64 } else { v }.to_bits()
    }
    match e {
        Endpoint::Unbounded => out.push('u'),
        Endpoint::Open(v) => {
            out.push('o');
            out.push_str(&format!("{:016x}", bits(*v)));
        }
        Endpoint::Closed(v) => {
            out.push('c');
            out.push_str(&format!("{:016x}", bits(*v)));
        }
    }
}

/// Canonical, injective string form of a selection.
///
/// Range predicates are sorted by attribute id (a [`Query`] holds at most
/// one interval per attribute, intersected on insertion, so the sort is a
/// total canonicalization); categorical predicates likewise, with their
/// already-sorted code sets rendered verbatim. Float endpoints are rendered
/// as raw bit patterns, so the mapping is injective.
pub fn query_key(q: &Query) -> String {
    let mut ranges: Vec<_> = q.ranges().iter().collect();
    ranges.sort_by_key(|p| p.attr.0);
    let mut cats: Vec<_> = q.cats().iter().collect();
    cats.sort_by_key(|p| p.attr.0);
    let mut out = String::with_capacity(16 + 40 * (ranges.len() + cats.len()));
    for p in ranges {
        out.push('r');
        out.push_str(&p.attr.0.to_string());
        out.push(':');
        endpoint_key(&p.interval.lo, &mut out);
        endpoint_key(&p.interval.hi, &mut out);
        out.push(';');
    }
    for p in cats {
        out.push('k');
        out.push_str(&p.attr.0.to_string());
        out.push(':');
        for c in p.codes() {
            out.push_str(&c.to_string());
            out.push(',');
        }
        out.push(';');
    }
    out
}

/// One request against a source's restricted interface, in canonical form —
/// the key of the shard's response cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RequestKey {
    /// A one-shot top-`k` query.
    TopK {
        /// Canonical selection ([`query_key`]).
        sel: String,
    },
    /// Page `page` of the system ranking.
    Page {
        /// Canonical selection ([`query_key`]).
        sel: String,
        /// 0-based page index.
        page: usize,
    },
    /// Page `page` of a public `ORDER BY` view.
    Ordered {
        /// Canonical selection ([`query_key`]).
        sel: String,
        /// The ordering attribute.
        attr: AttrId,
        /// Ascending or descending.
        asc: bool,
        /// 0-based page index.
        page: usize,
    },
}

impl RequestKey {
    /// Key of a top-`k` request for `q`.
    pub fn top_k(q: &Query) -> Self {
        RequestKey::TopK { sel: query_key(q) }
    }

    /// Key of a system-ranking page request.
    pub fn page(q: &Query, page: usize) -> Self {
        RequestKey::Page {
            sel: query_key(q),
            page,
        }
    }

    /// Key of a public `ORDER BY` page request.
    pub fn ordered(q: &Query, attr: AttrId, dir: Direction, page: usize) -> Self {
        RequestKey::Ordered {
            sel: query_key(q),
            attr,
            asc: dir == Direction::Asc,
            page,
        }
    }
}

/// Key of one cached exact result stream: `(selection, ranking, tie,
/// strategy)` — the site is implicit in the shard holding the entry.
///
/// The strategy name is part of the key on purpose: every built-in
/// algorithm emits the same exact stream for the same `(selection, rank,
/// tie)`, but keying per strategy keeps the invariant local (a cached
/// stream is only ever replayed to a session that would have recomputed it
/// with the very same state machine) and keeps user-registered strategies —
/// whose exactness is their author's promise, not ours — from poisoning the
/// built-ins' entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Canonical selection ([`query_key`]).
    pub sel: String,
    /// The ranking function's injective fingerprint
    /// (`RankFn::fingerprint` in `qrs-ranking`).
    pub rank: String,
    /// Tie policy discriminant, rendered by the caller.
    pub tie: u8,
    /// `RerankStrategy::name` of the emitting strategy.
    pub strategy: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::Interval;

    #[test]
    fn query_key_is_canonical_and_injective() {
        let a = Query::all()
            .and_range(AttrId(0), Interval::open(1.0, 5.0))
            .and_range(AttrId(1), Interval::at_most(2.0));
        let b = Query::all()
            .and_range(AttrId(1), Interval::at_most(2.0))
            .and_range(AttrId(0), Interval::open(1.0, 5.0));
        assert_eq!(
            query_key(&a),
            query_key(&b),
            "predicate order canonicalizes"
        );
        let c = Query::all()
            .and_range(AttrId(0), Interval::open(1.0, 5.0 + f64::EPSILON * 8.0))
            .and_range(AttrId(1), Interval::at_most(2.0));
        assert_ne!(query_key(&a), query_key(&c), "nearby floats stay distinct");
        let closed = Query::all().and_range(AttrId(0), Interval::closed(1.0, 5.0));
        let open = Query::all().and_range(AttrId(0), Interval::open(1.0, 5.0));
        assert_ne!(query_key(&closed), query_key(&open), "bound kinds distinct");
        assert_eq!(query_key(&Query::all()), "");
    }

    #[test]
    fn negative_zero_endpoints_share_a_key() {
        // `Interval::negate` (direction normalization) turns 0.0 endpoints
        // into -0.0; the two are IEEE-equal and must not split the cache.
        let neg = Query::all().and_range(AttrId(0), Interval::open(-0.0, 5.0));
        let pos = Query::all().and_range(AttrId(0), Interval::open(0.0, 5.0));
        assert_eq!(query_key(&neg), query_key(&pos));
        let neg = Query::all().and_range(AttrId(0), Interval::at_most(-0.0));
        let pos = Query::all().and_range(AttrId(0), Interval::at_most(0.0));
        assert_eq!(query_key(&neg), query_key(&pos));
        assert_eq!(
            RequestKey::top_k(&Query::all().and_range(AttrId(1), Interval::closed(-0.0, -0.0))),
            RequestKey::top_k(&Query::all().and_range(AttrId(1), Interval::point(0.0))),
        );
        // Canonicalization must not collapse genuinely distinct values.
        let tiny = Query::all().and_range(AttrId(0), Interval::at_most(f64::MIN_POSITIVE));
        let zero = Query::all().and_range(AttrId(0), Interval::at_most(0.0));
        assert_ne!(query_key(&tiny), query_key(&zero));
    }

    #[test]
    fn request_keys_separate_entry_points() {
        let q = Query::all().and_range(AttrId(0), Interval::at_least(3.0));
        let t = RequestKey::top_k(&q);
        let p0 = RequestKey::page(&q, 0);
        let p1 = RequestKey::page(&q, 1);
        let o = RequestKey::ordered(&q, AttrId(0), Direction::Asc, 0);
        let od = RequestKey::ordered(&q, AttrId(0), Direction::Desc, 0);
        assert_ne!(t, p0);
        assert_ne!(p0, p1);
        assert_ne!(o, od);
    }
}
