//! One source's shard: everything the service has learned about a site.
//!
//! A [`SourceShard`] holds four stores behind a single reader-writer lock:
//!
//! * a **response cache** — exact request → response replays,
//! * **drained regions** — selections whose full match set (in system
//!   order) is known, from which answers to *subsumed* requests are
//!   synthesized without contacting the site,
//! * **page runs** — partially-drained selections accumulating contiguous
//!   pages until the run completes and is promoted to a drained region,
//! * a **result cache** — exact top-k output streams keyed by
//!   `(selection, rank, tie, strategy)`, replayed to warm sessions.
//!
//! Every store is guarded by the shard's **epoch**: entries remember the
//! epoch they were recorded under, and lookups reject entries born under
//! an older epoch. [`SourceShard::invalidate`] is therefore a single atomic
//! increment — O(1), no scanning — and stale entries are reclaimed lazily
//! by [`SourceShard::purge_stale`] or overwritten by fresh recordings.

use crate::key::{RequestKey, ResultKey};
use parking_lot::RwLock;
use qrs_types::{Query, Tuple, TupleId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cached (or synthesized) answer to one restricted-interface request.
///
/// `more` carries the overflow/`has_more` bit: for top-k and page requests
/// it reconstructs the underflow/valid/overflow trichotomy via
/// `QueryResponse::new(tuples, more)`, for `ORDER BY` pages it is the
/// `has_more` flag verbatim.
#[derive(Debug, Clone)]
pub struct CachedResponse {
    /// Returned tuples, in the order the site produced (or would produce)
    /// them.
    pub tuples: Vec<Arc<Tuple>>,
    /// Overflow / has-more bit.
    pub more: bool,
    /// `true` when the answer was synthesized from a drained region rather
    /// than replayed from an exact recording.
    pub synthesized: bool,
}

/// One fully-drained selection: the complete match set in system order.
#[derive(Debug, Clone)]
struct DrainedRun {
    query: Query,
    tuples: Vec<Arc<Tuple>>,
}

/// A selection being drained page by page. Pages must arrive contiguously
/// from 0; the run is promoted to a [`DrainedRun`] when a page reports no
/// further matches.
#[derive(Debug, Clone)]
struct PageRun {
    query: Query,
    k: usize,
    tuples: Vec<Arc<Tuple>>,
    pages_seen: usize,
}

/// One cached exact output stream. `items` holds `(tuple, score bits)` in
/// emission order; `exhausted` records that the stream ended after
/// `items.len()` emissions (so a replay can report exhaustion without
/// re-running the strategy).
#[derive(Debug, Clone, Default)]
pub struct ResultEntry {
    /// Emitted tuples with the bit pattern of their score, in order.
    pub items: Vec<(Arc<Tuple>, u64)>,
    /// The stream is known to end after `items.len()` tuples.
    pub exhausted: bool,
    /// Queries the sealing run paid-or-saved end to end — what a session
    /// replaying this exhausted stream avoids spending. Zero until sealed.
    pub queries_full: u64,
    /// Cost units of the same full run, under the site's cost model.
    pub cost_units_full: u64,
}

/// Epoch-stamped store entry.
#[derive(Debug, Clone)]
struct Stamped<T> {
    epoch: u64,
    value: T,
}

#[derive(Debug, Default)]
struct ShardInner {
    responses: HashMap<RequestKey, Stamped<CachedResponse>>,
    drained: HashMap<String, Stamped<DrainedRun>>,
    page_runs: HashMap<String, Stamped<PageRun>>,
    results: HashMap<ResultKey, Stamped<ResultEntry>>,
    observed: HashMap<TupleId, Arc<Tuple>>,
}

/// Point-in-time statistics for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Current epoch (number of invalidations so far).
    pub epoch: u64,
    /// Highest source mutation sequence number observed
    /// ([`SourceShard::observe_watermark`]); 0 until a mutation-aware
    /// client reports one.
    pub watermark: u64,
    /// Requests answered from an exact cached response.
    pub hits: u64,
    /// Requests answered by synthesis from a drained region.
    pub synthesized: u64,
    /// Requests the shard could not answer.
    pub misses: u64,
    /// Result-cache lookups that found a live entry.
    pub result_hits: u64,
    /// Live exact-response entries.
    pub responses: u64,
    /// Live drained regions.
    pub drained: u64,
    /// Live cached result streams.
    pub results: u64,
    /// Distinct tuples observed from this source.
    pub observed: u64,
}

/// Everything learned about one source, behind one lock + one epoch.
///
/// The hot path ([`lookup_response`](SourceShard::lookup_response)) takes
/// the lock in read mode only; recordings and result-stream extensions take
/// it in write mode. Invalidation never takes the lock at all.
#[derive(Debug, Default)]
pub struct SourceShard {
    epoch: AtomicU64,
    /// Highest source mutation sequence number any client has reported.
    /// Advancing it bumps the epoch — data change invalidates knowledge
    /// automatically, no manual `invalidate` call required.
    watermark: AtomicU64,
    hits: AtomicU64,
    synthesized: AtomicU64,
    misses: AtomicU64,
    result_hits: AtomicU64,
    inner: RwLock<ShardInner>,
}

impl SourceShard {
    /// A fresh, empty shard at epoch 0.
    pub fn new() -> Self {
        SourceShard::default()
    }

    /// Current epoch. Any knowledge consumer holding derived state should
    /// compare against the epoch it derived under.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Bump the epoch, atomically invalidating every entry recorded so far.
    /// O(1): stale entries are rejected lazily on lookup and reclaimed by
    /// [`purge_stale`](SourceShard::purge_stale).
    pub fn invalidate(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The highest source mutation sequence number observed so far.
    #[inline]
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Report the source's current mutation sequence number. If `seq`
    /// advances the recorded watermark, everything in the shard describes
    /// an older snapshot and the epoch is bumped — by exactly one thread,
    /// however many gates race the same advance (the CAS loser observes
    /// the new watermark and does nothing). Returns whether this call
    /// advanced it.
    pub fn observe_watermark(&self, seq: u64) -> bool {
        let advanced = self
            .watermark
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |w| {
                (seq > w).then_some(seq)
            })
            .is_ok();
        if advanced {
            self.invalidate();
        }
        advanced
    }

    /// Try to answer a request from knowledge. Returns an exact replay when
    /// one was recorded under the current epoch, else — for top-k and
    /// system-ranking page requests — an answer synthesized from a drained
    /// region that subsumes `q`. `ORDER BY` requests are only ever replayed
    /// exactly (a drained region fixes system order, not attribute order).
    ///
    /// `k` must be the site's advertised page size; synthesis mirrors the
    /// site's own semantics (skip `page·k` matches, return up to `k`, set
    /// the more-bit iff a further match exists).
    pub fn lookup_response(&self, key: &RequestKey, q: &Query, k: usize) -> Option<CachedResponse> {
        let now = self.epoch();
        let inner = self.inner.read();
        if let Some(e) = inner.responses.get(key) {
            if e.epoch == now {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(e.value.clone());
            }
        }
        let page = match key {
            RequestKey::TopK { .. } => 0,
            RequestKey::Page { page, .. } => *page,
            RequestKey::Ordered { .. } => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if k > 0 {
            for run in inner.drained.values() {
                if run.epoch != now || !q.is_subsumed_by(&run.value.query) {
                    continue;
                }
                let skip = page * k;
                let mut out = Vec::with_capacity(k);
                let mut seen = 0usize;
                let mut more = false;
                for t in &run.value.tuples {
                    if !q.matches(t) {
                        continue;
                    }
                    if seen >= skip {
                        if out.len() == k {
                            more = true;
                            break;
                        }
                        out.push(Arc::clone(t));
                    }
                    seen += 1;
                }
                self.synthesized.fetch_add(1, Ordering::Relaxed);
                return Some(CachedResponse {
                    tuples: out,
                    more,
                    synthesized: true,
                });
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Record the site's answer to one paid request. Observes every
    /// returned tuple, caches the exact response, and grows the drained
    /// map: a non-overflowing top-k answer *is* the full match set of its
    /// selection, and a contiguous page run is promoted once its final
    /// page arrives.
    pub fn record_response(
        &self,
        key: RequestKey,
        q: &Query,
        k: usize,
        tuples: &[Arc<Tuple>],
        more: bool,
    ) {
        let now = self.epoch();
        let mut inner = self.inner.write();
        for t in tuples {
            inner.observed.entry(t.id).or_insert_with(|| Arc::clone(t));
        }
        match &key {
            RequestKey::TopK { sel } => {
                if !more {
                    inner.drained.insert(
                        sel.clone(),
                        Stamped {
                            epoch: now,
                            value: DrainedRun {
                                query: q.clone(),
                                tuples: tuples.to_vec(),
                            },
                        },
                    );
                }
            }
            RequestKey::Page { sel, page } => {
                let run = inner
                    .page_runs
                    .entry(sel.clone())
                    .or_insert_with(|| Stamped {
                        epoch: now,
                        value: PageRun {
                            query: q.clone(),
                            k,
                            tuples: Vec::new(),
                            pages_seen: 0,
                        },
                    });
                if run.epoch != now || run.value.k != k {
                    // Stale or re-keyed run: restart from scratch.
                    run.epoch = now;
                    run.value = PageRun {
                        query: q.clone(),
                        k,
                        tuples: Vec::new(),
                        pages_seen: 0,
                    };
                }
                if *page == run.value.pages_seen {
                    run.value.tuples.extend(tuples.iter().cloned());
                    run.value.pages_seen += 1;
                    if !more {
                        let done = inner.page_runs.remove(sel).expect("run just touched");
                        inner.drained.insert(
                            sel.clone(),
                            Stamped {
                                epoch: now,
                                value: DrainedRun {
                                    query: done.value.query,
                                    tuples: done.value.tuples,
                                },
                            },
                        );
                    }
                }
            }
            RequestKey::Ordered { .. } => {}
        }
        inner.responses.insert(
            key,
            Stamped {
                epoch: now,
                value: CachedResponse {
                    tuples: tuples.to_vec(),
                    more,
                    synthesized: false,
                },
            },
        );
    }

    /// Look up a cached exact result stream recorded under the current
    /// epoch. Returns a clone (tuples are `Arc`-shared, so this is cheap).
    pub fn lookup_result(&self, key: &ResultKey) -> Option<ResultEntry> {
        let now = self.epoch();
        let inner = self.inner.read();
        let e = inner.results.get(key)?;
        if e.epoch != now || (e.value.items.is_empty() && !e.value.exhausted) {
            return None;
        }
        self.result_hits.fetch_add(1, Ordering::Relaxed);
        Some(e.value.clone())
    }

    /// Append the `index`-th emission of a result stream. The append is
    /// accepted only when it is contiguous (`index` equals the entry's
    /// current length under the current epoch) — concurrent sessions racing
    /// on the same stream therefore converge on one consistent prefix
    /// instead of interleaving.
    pub fn extend_result(&self, key: &ResultKey, index: usize, tuple: Arc<Tuple>, score_bits: u64) {
        let now = self.epoch();
        let mut inner = self.inner.write();
        let e = inner.results.entry(key.clone()).or_insert_with(|| Stamped {
            epoch: now,
            value: ResultEntry::default(),
        });
        if e.epoch != now {
            e.epoch = now;
            e.value = ResultEntry::default();
        }
        if e.value.exhausted {
            return;
        }
        if e.value.items.len() == index {
            e.value.items.push((tuple, score_bits));
        }
    }

    /// Mark a result stream as complete after `len` emissions, recording
    /// what the sealing run cost end to end (`queries_full` /
    /// `cost_units_full`, paid and saved combined) so fully-replayed
    /// sessions can attribute their savings. Ignored unless the entry's
    /// recorded prefix has exactly that length under the current epoch (a
    /// shorter racing prefix must not be sealed early).
    pub fn mark_result_exhausted(
        &self,
        key: &ResultKey,
        len: usize,
        queries_full: u64,
        cost_units_full: u64,
    ) {
        let now = self.epoch();
        let mut inner = self.inner.write();
        let e = inner.results.entry(key.clone()).or_insert_with(|| Stamped {
            epoch: now,
            value: ResultEntry::default(),
        });
        if e.epoch != now {
            e.epoch = now;
            e.value = ResultEntry::default();
        }
        if e.value.items.len() == len {
            e.value.exhausted = true;
            e.value.queries_full = queries_full;
            e.value.cost_units_full = cost_units_full;
        }
    }

    /// Does a live drained region subsume `q` (i.e. could the shard answer
    /// any top-k/page request over `q` without spending)?
    pub fn covers(&self, q: &Query) -> bool {
        let now = self.epoch();
        let inner = self.inner.read();
        inner
            .drained
            .values()
            .any(|r| r.epoch == now && q.is_subsumed_by(&r.value.query))
    }

    /// A tuple previously observed from this source, by id.
    pub fn observed(&self, id: TupleId) -> Option<Arc<Tuple>> {
        self.inner.read().observed.get(&id).cloned()
    }

    /// Reclaim entries recorded under older epochs. Observed tuples are
    /// facts about the old snapshot too, so they are dropped as well when
    /// anything else was stale.
    pub fn purge_stale(&self) {
        let now = self.epoch();
        let mut inner = self.inner.write();
        let before = inner.responses.len()
            + inner.drained.len()
            + inner.page_runs.len()
            + inner.results.len();
        inner.responses.retain(|_, e| e.epoch == now);
        inner.drained.retain(|_, e| e.epoch == now);
        inner.page_runs.retain(|_, e| e.epoch == now);
        inner.results.retain(|_, e| e.epoch == now);
        let after = inner.responses.len()
            + inner.drained.len()
            + inner.page_runs.len()
            + inner.results.len();
        if after < before {
            inner.observed.clear();
        }
    }

    /// Point-in-time statistics (live-entry counts are computed under the
    /// read lock; hit/miss counters are relaxed atomics).
    pub fn stats(&self) -> ShardStats {
        let now = self.epoch();
        let inner = self.inner.read();
        ShardStats {
            epoch: now,
            watermark: self.watermark(),
            hits: self.hits.load(Ordering::Relaxed),
            synthesized: self.synthesized.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            responses: inner.responses.values().filter(|e| e.epoch == now).count() as u64,
            drained: inner.drained.values().filter(|e| e.epoch == now).count() as u64,
            results: inner.results.values().filter(|e| e.epoch == now).count() as u64,
            observed: inner.observed.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::{AttrId, Interval};

    fn t(id: u32, v: f64) -> Arc<Tuple> {
        Arc::new(Tuple::new(TupleId(id), vec![v], vec![]))
    }

    fn sel(lo: f64, hi: f64) -> Query {
        Query::all().and_range(AttrId(0), Interval::closed(lo, hi))
    }

    #[test]
    fn exact_replay_roundtrips() {
        let s = SourceShard::new();
        let q = sel(0.0, 10.0);
        let key = RequestKey::top_k(&q);
        let tuples = vec![t(1, 3.0), t(2, 7.0)];
        assert!(s.lookup_response(&key, &q, 2).is_none());
        s.record_response(key.clone(), &q, 2, &tuples, true);
        let hit = s.lookup_response(&key, &q, 2).expect("recorded");
        assert!(!hit.synthesized);
        assert!(hit.more);
        assert_eq!(hit.tuples.len(), 2);
        assert_eq!(hit.tuples[0].id, TupleId(1));
    }

    #[test]
    fn non_overflow_topk_drains_and_synthesizes_subsumed() {
        let s = SourceShard::new();
        let wide = sel(0.0, 10.0);
        // Valid (non-overflow) answer: these three are ALL matches of `wide`.
        let all = vec![t(1, 1.0), t(2, 5.0), t(3, 9.0)];
        s.record_response(RequestKey::top_k(&wide), &wide, 5, &all, false);
        assert!(s.covers(&sel(2.0, 6.0)));
        // Narrower selection, k = 1: first match is t2, one more exists.
        let narrow = sel(2.0, 9.5);
        let r = s
            .lookup_response(&RequestKey::top_k(&narrow), &narrow, 1)
            .expect("synthesized");
        assert!(r.synthesized);
        assert!(r.more);
        assert_eq!(r.tuples.len(), 1);
        assert_eq!(r.tuples[0].id, TupleId(2));
        // Page 1 of the same narrow selection: the second match, no more.
        let r = s
            .lookup_response(&RequestKey::page(&narrow, 1), &narrow, 1)
            .expect("synthesized page");
        assert_eq!(r.tuples[0].id, TupleId(3));
        assert!(!r.more);
        // A selection escaping the drained region is a miss.
        assert!(s
            .lookup_response(&RequestKey::top_k(&sel(2.0, 20.0)), &sel(2.0, 20.0), 1)
            .is_none());
    }

    #[test]
    fn page_run_promotes_on_final_page() {
        let s = SourceShard::new();
        let q = sel(0.0, 10.0);
        s.record_response(
            RequestKey::page(&q, 0),
            &q,
            2,
            &[t(1, 1.0), t(2, 2.0)],
            true,
        );
        assert!(!s.covers(&q));
        s.record_response(RequestKey::page(&q, 1), &q, 2, &[t(3, 3.0)], false);
        assert!(s.covers(&q));
        let narrow = sel(1.5, 10.0);
        let r = s
            .lookup_response(&RequestKey::top_k(&narrow), &narrow, 5)
            .expect("drained via pages");
        assert_eq!(
            r.tuples.iter().map(|t| t.id.0).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(!r.more);
    }

    #[test]
    fn out_of_order_pages_do_not_poison_the_run() {
        let s = SourceShard::new();
        let q = sel(0.0, 10.0);
        // Page 1 before page 0: cached exactly, but no run accumulates.
        s.record_response(RequestKey::page(&q, 1), &q, 2, &[t(3, 3.0)], false);
        assert!(!s.covers(&q));
        s.record_response(
            RequestKey::page(&q, 0),
            &q,
            2,
            &[t(1, 1.0), t(2, 2.0)],
            true,
        );
        assert!(!s.covers(&q));
        // Now the contiguous tail arrives and the run completes.
        s.record_response(RequestKey::page(&q, 1), &q, 2, &[t(3, 3.0)], false);
        assert!(s.covers(&q));
    }

    #[test]
    fn epoch_bump_invalidates_everything() {
        let s = SourceShard::new();
        let q = sel(0.0, 10.0);
        let key = RequestKey::top_k(&q);
        s.record_response(key.clone(), &q, 2, &[t(1, 1.0)], false);
        let rk = ResultKey {
            sel: "s".into(),
            rank: "r".into(),
            tie: 0,
            strategy: "a".into(),
        };
        s.extend_result(&rk, 0, t(1, 1.0), 0);
        assert!(s.lookup_response(&key, &q, 2).is_some());
        assert!(s.lookup_result(&rk).is_some());
        assert!(s.covers(&q));
        let e = s.invalidate();
        assert_eq!(e, 1);
        assert_eq!(s.epoch(), 1);
        assert!(s.lookup_response(&key, &q, 2).is_none());
        assert!(s.lookup_result(&rk).is_none());
        assert!(!s.covers(&q));
        s.purge_stale();
        let st = s.stats();
        assert_eq!(st.responses, 0);
        assert_eq!(st.drained, 0);
        assert_eq!(st.results, 0);
        assert_eq!(st.observed, 0);
    }

    #[test]
    fn watermark_advance_bumps_the_epoch_once() {
        let s = SourceShard::new();
        let q = sel(0.0, 10.0);
        let key = RequestKey::top_k(&q);
        s.record_response(key.clone(), &q, 2, &[t(1, 1.0)], false);
        // Reporting the current (pristine) watermark changes nothing.
        assert!(!s.observe_watermark(0));
        assert_eq!(s.epoch(), 0);
        assert!(s.lookup_response(&key, &q, 2).is_some());
        // The source mutated: first reporter invalidates, the rest no-op.
        assert!(s.observe_watermark(3));
        assert!(!s.observe_watermark(3));
        assert!(!s.observe_watermark(2), "watermarks never regress");
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.watermark(), 3);
        assert!(s.lookup_response(&key, &q, 2).is_none());
        let st = s.stats();
        assert_eq!(st.watermark, 3);

        // Many threads racing the same advance bump the epoch exactly once.
        let s = std::sync::Arc::new(SourceShard::new());
        let advances: usize = (0..8)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || s.observe_watermark(7))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| usize::from(h.join().unwrap()))
            .sum();
        assert_eq!(advances, 1);
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn result_stream_appends_are_contiguous_only() {
        let s = SourceShard::new();
        let rk = ResultKey {
            sel: "s".into(),
            rank: "r".into(),
            tie: 0,
            strategy: "a".into(),
        };
        s.extend_result(&rk, 0, t(1, 1.0), 10);
        s.extend_result(&rk, 2, t(9, 9.0), 90); // gap: dropped
        s.extend_result(&rk, 1, t(2, 2.0), 20);
        let e = s.lookup_result(&rk).expect("live");
        assert_eq!(e.items.len(), 2);
        assert_eq!(e.items[1].0.id, TupleId(2));
        assert!(!e.exhausted);
        s.mark_result_exhausted(&rk, 1, 7, 7); // wrong length: ignored
        assert!(!s.lookup_result(&rk).unwrap().exhausted);
        s.mark_result_exhausted(&rk, 2, 7, 9);
        let sealed = s.lookup_result(&rk).unwrap();
        assert!(sealed.exhausted);
        assert_eq!(sealed.queries_full, 7);
        assert_eq!(sealed.cost_units_full, 9);
        // Sealed streams reject further appends.
        s.extend_result(&rk, 2, t(3, 3.0), 30);
        assert_eq!(s.lookup_result(&rk).unwrap().items.len(), 2);
    }

    #[test]
    fn ordered_requests_replay_exactly_but_never_synthesize() {
        let s = SourceShard::new();
        let wide = sel(0.0, 10.0);
        s.record_response(
            RequestKey::top_k(&wide),
            &wide,
            5,
            &[t(1, 1.0), t(2, 5.0)],
            false,
        );
        let narrow = sel(0.0, 6.0);
        let ok = RequestKey::ordered(&narrow, AttrId(0), qrs_types::Direction::Asc, 0);
        assert!(s.lookup_response(&ok, &narrow, 5).is_none());
        s.record_response(ok.clone(), &narrow, 5, &[t(1, 1.0)], true);
        let r = s.lookup_response(&ok, &narrow, 5).expect("exact ordered");
        assert!(r.more);
        assert_eq!(r.tuples.len(), 1);
    }
}
