//! In-memory datasets: a schema plus the tuples.
//!
//! The dataset is what the *server substrate* owns. Reranking algorithms
//! never touch it directly — they only see `QueryResponse`s — but tests and
//! experiment harnesses use it to compute ground-truth answers by brute
//! force.

use crate::error::TypeError;
use crate::query::Query;
use crate::schema::{AttrId, Schema};
use crate::tuple::{Tuple, TupleId};
use crate::value::cmp_f64;
use std::sync::Arc;

/// A schema plus tuples, shared immutably (`Arc`) between server and tests.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Arc<Schema>,
    tuples: Vec<Arc<Tuple>>,
}

impl Dataset {
    /// Validate tuples against the schema and build the dataset.
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Result<Self, TypeError> {
        let schema = Arc::new(schema);
        let mut out = Vec::with_capacity(tuples.len());
        for t in tuples {
            Dataset::validate_tuple(&schema, &t)?;
            out.push(Arc::new(t));
        }
        Ok(Dataset {
            schema,
            tuples: out,
        })
    }

    /// Check one tuple against a schema — the per-tuple half of
    /// [`Dataset::new`], reused by mutable stores admitting inserts/updates.
    pub fn validate_tuple(schema: &Schema, t: &Tuple) -> Result<(), TypeError> {
        if t.ords().len() != schema.num_ordinal() {
            return Err(TypeError::OrdinalArityMismatch {
                expected: schema.num_ordinal(),
                got: t.ords().len(),
            });
        }
        if t.cats().len() != schema.num_categorical() {
            return Err(TypeError::CategoricalArityMismatch {
                expected: schema.num_categorical(),
                got: t.cats().len(),
            });
        }
        for (i, &code) in t.cats().iter().enumerate() {
            let card = schema.categorical(crate::schema::CatId(i)).cardinality;
            if code >= card {
                return Err(TypeError::CategoricalCodeOutOfRange {
                    attr: i,
                    code,
                    cardinality: card,
                });
            }
        }
        Ok(())
    }

    /// Assemble from already-shared parts without re-validation — the
    /// snapshot constructor mutable stores use to expose their current
    /// contents as an ordinary (immutable) dataset.
    pub fn from_shared(schema: Arc<Schema>, tuples: Vec<Arc<Tuple>>) -> Self {
        Dataset { schema, tuples }
    }

    /// Build without validation (generators that construct values straight
    /// from the schema use this to skip the O(n·m) re-check).
    pub fn new_unchecked(schema: Schema, tuples: Vec<Tuple>) -> Self {
        Dataset {
            schema: Arc::new(schema),
            tuples: tuples.into_iter().map(Arc::new).collect(),
        }
    }

    /// The dataset's schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples (`n` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the dataset holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All tuples, in storage order.
    #[inline]
    pub fn tuples(&self) -> &[Arc<Tuple>] {
        &self.tuples
    }

    /// Look up a tuple by id.
    #[inline]
    pub fn get(&self, id: TupleId) -> Option<&Arc<Tuple>> {
        // TupleIds assigned by generators are positional; fall back to scan
        // for datasets assembled by hand.
        match self.tuples.get(id.0 as usize) {
            Some(t) if t.id == id => Some(t),
            _ => self.tuples.iter().find(|t| t.id == id),
        }
    }

    /// Brute-force evaluation of `R(q)`: every tuple matching the query.
    pub fn matching(&self, q: &Query) -> Vec<Arc<Tuple>> {
        self.tuples
            .iter()
            .filter(|t| q.matches(t))
            .cloned()
            .collect()
    }

    /// `|R(q)|` without materializing the result.
    pub fn count_matching(&self, q: &Query) -> usize {
        self.tuples.iter().filter(|t| q.matches(t)).count()
    }

    /// A sub-sample of the first `n` tuples (the paper's "simple random
    /// samples of a given size" are drawn upstream by the generator; this is
    /// the deterministic prefix variant used when the tuples are already in
    /// random order).
    pub fn prefix(&self, n: usize) -> Dataset {
        Dataset {
            schema: Arc::clone(&self.schema),
            tuples: self.tuples.iter().take(n).cloned().collect(),
        }
    }

    /// Ground-truth ranking: all matching tuples sorted ascending by `score`,
    /// ties broken by `TupleId` for determinism.
    pub fn rank_by(&self, q: &Query, score: impl Fn(&Tuple) -> f64) -> Vec<Arc<Tuple>> {
        let mut v = self.matching(q);
        v.sort_by(|a, b| cmp_f64(score(a), score(b)).then(a.id.cmp(&b.id)));
        v
    }

    /// Observed min/max of an attribute over the whole dataset.
    pub fn attr_extent(&self, a: AttrId) -> Option<(f64, f64)> {
        let mut it = self.tuples.iter();
        let first = it.next()?.ord(a);
        let mut lo = first;
        let mut hi = first;
        for t in it {
            let v = t.ord(a);
            if cmp_f64(v, lo) == std::cmp::Ordering::Less {
                lo = v;
            }
            if cmp_f64(v, hi) == std::cmp::Ordering::Greater {
                hi = v;
            }
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::schema::{CatAttr, OrdinalAttr};

    fn mini() -> Dataset {
        let schema = Schema::new(
            vec![OrdinalAttr::new("x", 0.0, 10.0)],
            vec![CatAttr::new("c", 2)],
        );
        let tuples = vec![
            Tuple::new(TupleId(0), vec![1.0], vec![0]),
            Tuple::new(TupleId(1), vec![5.0], vec![1]),
            Tuple::new(TupleId(2), vec![9.0], vec![0]),
        ];
        Dataset::new(schema, tuples).unwrap()
    }

    #[test]
    fn validation_rejects_bad_arity() {
        let schema = Schema::new(vec![OrdinalAttr::new("x", 0.0, 1.0)], vec![]);
        let err =
            Dataset::new(schema, vec![Tuple::new(TupleId(0), vec![0.1, 0.2], vec![])]).unwrap_err();
        assert_eq!(
            err,
            TypeError::OrdinalArityMismatch {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn validation_rejects_bad_code() {
        let schema = Schema::new(
            vec![OrdinalAttr::new("x", 0.0, 1.0)],
            vec![CatAttr::new("c", 2)],
        );
        let err =
            Dataset::new(schema, vec![Tuple::new(TupleId(0), vec![0.1], vec![5])]).unwrap_err();
        assert!(matches!(err, TypeError::CategoricalCodeOutOfRange { .. }));
    }

    #[test]
    fn matching_and_counting() {
        let d = mini();
        let q = Query::all().and_range(AttrId(0), Interval::open(0.0, 6.0));
        assert_eq!(d.count_matching(&q), 2);
        assert_eq!(d.matching(&q).len(), 2);
        assert_eq!(d.count_matching(&Query::all()), 3);
    }

    #[test]
    fn rank_by_orders_ascending_with_stable_ties() {
        let d = mini();
        let ranked = d.rank_by(&Query::all(), |t| -t.ord(AttrId(0)));
        let ids: Vec<u32> = ranked.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![2, 1, 0]);
    }

    #[test]
    fn extent_and_prefix() {
        let d = mini();
        assert_eq!(d.attr_extent(AttrId(0)), Some((1.0, 9.0)));
        assert_eq!(d.prefix(2).len(), 2);
        assert_eq!(d.get(TupleId(1)).unwrap().ord(AttrId(0)), 5.0);
    }
}
