//! The mutation (change-data-capture) vocabulary.
//!
//! The paper freezes the hidden database for the duration of a rerank, but
//! real inventories move — flights sell out, listings appear — and a
//! knowledge plane that replays sealed result streams forever would serve
//! tuples the server no longer holds. A server that offers
//! `Capability::MutationFeed` assigns every data change a **monotonically
//! increasing sequence number** and lets clients poll the delta log:
//!
//! * [`Mutation`] — one change, stamped with its sequence number,
//! * [`MutationKind`] — insert / delete / update (an update is semantically
//!   delete-then-insert of the same tuple id),
//! * [`MutationLog`] — the deltas after a watermark, plus a `gap` flag set
//!   when the server compacted its log past the watermark and exact replay
//!   of the missing prefix is impossible (clients must fall back to a full
//!   re-drive).
//!
//! Sequence numbers start at 1; watermark `0` means "nothing observed yet".

use crate::tuple::{Tuple, TupleId};
use std::sync::Arc;

/// The payload of one data change.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationKind {
    /// A new tuple appeared. Its id was not previously present.
    Insert(Arc<Tuple>),
    /// The tuple with this id disappeared.
    Delete(TupleId),
    /// The tuple with this id changed values: delete-then-insert under one
    /// sequence number, carrying the *new* version.
    Update(Arc<Tuple>),
}

impl MutationKind {
    /// The id of the tuple this change touches.
    pub fn tuple_id(&self) -> TupleId {
        match self {
            MutationKind::Insert(t) | MutationKind::Update(t) => t.id,
            MutationKind::Delete(id) => *id,
        }
    }
}

/// One data change, stamped with its server-assigned sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct Mutation {
    /// Monotonically increasing sequence number, starting at 1.
    pub seq: u64,
    /// What changed.
    pub kind: MutationKind,
}

/// The answer to "what changed since watermark `w`?".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MutationLog {
    /// Deltas with `seq > w`, in sequence order.
    pub deltas: Vec<Mutation>,
    /// True when the server compacted its log past `w`: some deltas after
    /// the watermark are gone, so `deltas` is *not* a complete replay and
    /// the client must rebuild from scratch instead of delta-repairing.
    pub gap: bool,
}

impl MutationLog {
    /// The highest sequence number in the log, if any.
    pub fn max_seq(&self) -> Option<u64> {
        self.deltas.last().map(|m| m.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_expose_their_tuple_id() {
        let t = Arc::new(Tuple::new(TupleId(7), vec![1.0], vec![]));
        assert_eq!(MutationKind::Insert(Arc::clone(&t)).tuple_id(), TupleId(7));
        assert_eq!(MutationKind::Update(t).tuple_id(), TupleId(7));
        assert_eq!(MutationKind::Delete(TupleId(3)).tuple_id(), TupleId(3));
    }

    #[test]
    fn log_reports_its_high_watermark() {
        assert_eq!(MutationLog::default().max_seq(), None);
        let log = MutationLog {
            deltas: vec![
                Mutation {
                    seq: 4,
                    kind: MutationKind::Delete(TupleId(0)),
                },
                Mutation {
                    seq: 6,
                    kind: MutationKind::Delete(TupleId(1)),
                },
            ],
            gap: true,
        };
        assert_eq!(log.max_seq(), Some(6));
    }
}
