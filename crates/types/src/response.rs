//! Top-k interface responses.
//!
//! §2.1 fixes the trichotomy every algorithm in the paper branches on:
//! *underflow* (`|R(q)| = 0`), *valid* (`1 ≤ |R(q)| ≤ k`, every matching tuple
//! returned) and *overflow* (`|R(q)| > k`, only the system's top-k returned).

use crate::tuple::Tuple;
use std::sync::Arc;

/// Which of the three cases a query landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryOutcome {
    /// No tuple matches.
    Underflow,
    /// All matching tuples were returned.
    Valid,
    /// More than `k` tuples match; only the system's top `k` were returned.
    Overflow,
}

/// What the server hands back for one query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Returned tuples, in the *system* ranking order (which the reranker
    /// must treat as arbitrary).
    pub tuples: Vec<Arc<Tuple>>,
    /// Which side of the underflow / valid / overflow trichotomy this
    /// response landed on.
    pub outcome: QueryOutcome,
}

impl QueryResponse {
    /// An empty response (`|R(q)| = 0`).
    pub fn underflow() -> Self {
        QueryResponse {
            tuples: Vec::new(),
            outcome: QueryOutcome::Underflow,
        }
    }

    /// A response classified from its payload: empty ⇒ underflow, else
    /// `overflow` decides between overflow and valid.
    pub fn new(tuples: Vec<Arc<Tuple>>, overflow: bool) -> Self {
        let outcome = if tuples.is_empty() {
            QueryOutcome::Underflow
        } else if overflow {
            QueryOutcome::Overflow
        } else {
            QueryOutcome::Valid
        };
        QueryResponse { tuples, outcome }
    }

    /// `|R(q)| = 0`: no tuple matched.
    #[inline]
    pub fn is_underflow(&self) -> bool {
        self.outcome == QueryOutcome::Underflow
    }

    /// `1 ≤ |R(q)| ≤ k`: every matching tuple is in the response.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.outcome == QueryOutcome::Valid
    }

    /// `|R(q)| > k`: only the system's top `k` came back.
    #[inline]
    pub fn is_overflow(&self) -> bool {
        self.outcome == QueryOutcome::Overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TupleId;

    fn some_tuple() -> Arc<Tuple> {
        Arc::new(Tuple::new(TupleId(0), vec![1.0], vec![]))
    }

    #[test]
    fn outcome_classification() {
        assert!(QueryResponse::underflow().is_underflow());
        assert!(QueryResponse::new(vec![some_tuple()], false).is_valid());
        assert!(QueryResponse::new(vec![some_tuple()], true).is_overflow());
        // Empty + overflow flag is nonsensical; classified as underflow.
        assert!(QueryResponse::new(vec![], true).is_underflow());
    }
}
