//! Retry configuration for the fallible pipeline.
//!
//! The middleware fronts *remote, rate-limited* databases, so transient
//! refusals — 429s with a `Retry-After` hint, 5xx outages, pages truncated
//! in transit — are expected operating conditions, not exceptional ones.
//! [`RetryPolicy`] is the declarative half of the retry subsystem: how many
//! attempts a single Get-Next step may consume and how long to back off
//! between them. The imperative half (the retry loop, the jitter draw, the
//! per-session and service-wide retry budgets) lives in `qrs-service`, which
//! also threads an injectable clock through so tests never sleep wall-clock
//! time.
//!
//! Which errors are worth retrying is decided by
//! [`RerankError::is_retryable`]: only *server-side* transient failures.
//! [`RerankError::BudgetExhausted`] is transient too (budgets reset on a new
//! day) but retrying it without an external reset can never succeed, so the
//! retry loop surfaces it immediately instead of sleeping on it.
//!
//! [`RerankError::is_retryable`]: crate::RerankError::is_retryable
//! [`RerankError::BudgetExhausted`]: crate::RerankError::BudgetExhausted

/// Which backoff schedule a [`RetryPolicy`] computes between attempts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackoffKind {
    /// Exponential doubling from `base_backoff_ms`, capped, plus a uniform
    /// jitter draw from `[0, jitter_ms]` — the classic schedule and the
    /// default.
    #[default]
    Exponential,
    /// Decorrelated "full jitter" (the AWS architecture-blog variant): each
    /// sleep is drawn uniformly from `[base_backoff_ms, 3 · previous]` and
    /// capped at `max_backoff_ms`. Consecutive sleeps are decorrelated from
    /// the retry index, so a fleet of clients that failed together does not
    /// re-converge on the same retry instants the way a shared exponential
    /// schedule does. `jitter_ms` is ignored: the whole draw is jitter.
    DecorrelatedJitter,
}

/// How a session retries transient server failures.
///
/// An exhausted policy surfaces [`RetriesExhausted`] carrying the attempt
/// count and the last underlying error, so callers keep full attribution.
///
/// ```
/// use qrs_types::RetryPolicy;
///
/// // 6 attempts per step, 50 ms doubling backoff capped at 5 s, up to
/// // 25 ms of seeded jitter.
/// let policy = RetryPolicy::standard()
///     .attempts(6)
///     .backoff(50, 5_000)
///     .jitter(25)
///     .seed(42);
/// assert!(policy.retries_enabled());
/// assert_eq!(policy.max_attempts, 6);
/// // Pure exponential schedule (before jitter): 50, 100, 200, …
/// assert_eq!(policy.base_delay_ms(1), 50);
/// assert_eq!(policy.base_delay_ms(3), 200);
///
/// // The default is fail-fast: retries are an explicit opt-in.
/// assert!(!RetryPolicy::none().retries_enabled());
/// ```
///
/// Backoff for the `i`-th retry (1-based) is
/// `min(max_backoff_ms, base_backoff_ms * 2^(i-1))` plus a uniform jitter
/// draw from `[0, jitter_ms]` — except when the server supplied
/// `retry_after_ms`, which *dominates*: the session sleeps exactly the
/// server's hint, no jitter (the backend told us precisely when capacity
/// returns).
///
/// [`RetriesExhausted`]: crate::RerankError::RetriesExhausted
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts one Get-Next step may consume, including the first.
    /// `1` means fail fast (the default): the first error surfaces as-is.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff_ms: u64,
    /// Cap on the exponential backoff (before jitter).
    pub max_backoff_ms: u64,
    /// Upper bound of the uniform jitter added to each computed backoff.
    pub jitter_ms: u64,
    /// Seed for the deterministic jitter draw (tests replay exact backoff
    /// sequences; production picks any seed).
    pub seed: u64,
    /// Which backoff schedule the sleeps follow (default
    /// [`BackoffKind::Exponential`]).
    pub kind: BackoffKind,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// Fail fast: no retries, errors surface unchanged. The default, so
    /// enabling retries is always an explicit opt-in.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            jitter_ms: 0,
            seed: 0,
            kind: BackoffKind::Exponential,
        }
    }

    /// A reasonable production default: 4 attempts, 100 ms doubling backoff
    /// capped at 10 s, up to 100 ms of jitter.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 100,
            max_backoff_ms: 10_000,
            jitter_ms: 100,
            seed: 0x9E37_79B9_7F4A_7C15,
            kind: BackoffKind::Exponential,
        }
    }

    /// Decorrelated "full jitter" backoff: 4 attempts, sleeps drawn
    /// uniformly from `[100 ms, 3 · previous]` capped at 10 s, seeded for
    /// replayable tests. Prefer this over [`RetryPolicy::standard`] when
    /// many clients share one backend: the schedule never re-synchronizes
    /// a failed fleet (see [`BackoffKind::DecorrelatedJitter`]).
    ///
    /// ```
    /// use qrs_types::{retry::BackoffKind, RetryPolicy};
    ///
    /// let p = RetryPolicy::decorrelated_jitter(42);
    /// assert_eq!(p.kind, BackoffKind::DecorrelatedJitter);
    /// assert_eq!(p.seed, 42);
    /// assert!(p.retries_enabled());
    /// ```
    pub fn decorrelated_jitter(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 100,
            max_backoff_ms: 10_000,
            jitter_ms: 0,
            seed,
            kind: BackoffKind::DecorrelatedJitter,
        }
    }

    /// Builder: switch the backoff schedule.
    pub fn backoff_kind(mut self, kind: BackoffKind) -> Self {
        self.kind = kind;
        self
    }

    /// Builder: total attempts per step (clamped to at least 1).
    pub fn attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Builder: exponential backoff base and cap.
    pub fn backoff(mut self, base_ms: u64, max_ms: u64) -> Self {
        self.base_backoff_ms = base_ms;
        self.max_backoff_ms = max_ms.max(base_ms);
        self
    }

    /// Builder: uniform jitter bound.
    pub fn jitter(mut self, jitter_ms: u64) -> Self {
        self.jitter_ms = jitter_ms;
        self
    }

    /// Builder: jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The computed (pre-jitter, pre-hint) backoff before retry
    /// `retry_index` (1-based): exponential doubling from
    /// `base_backoff_ms`, saturating at `max_backoff_ms`.
    pub fn base_delay_ms(&self, retry_index: u32) -> u64 {
        let exp = retry_index.saturating_sub(1).min(63);
        let factor = 1u64 << exp;
        self.base_backoff_ms
            .saturating_mul(factor)
            .min(self.max_backoff_ms)
    }

    /// Whether this policy ever retries.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fails_fast() {
        let p = RetryPolicy::default();
        assert_eq!(p, RetryPolicy::none());
        assert!(!p.retries_enabled());
        assert_eq!(p.max_attempts, 1);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy::standard().backoff(100, 1_000);
        assert_eq!(p.base_delay_ms(1), 100);
        assert_eq!(p.base_delay_ms(2), 200);
        assert_eq!(p.base_delay_ms(3), 400);
        assert_eq!(p.base_delay_ms(4), 800);
        assert_eq!(p.base_delay_ms(5), 1_000);
        assert_eq!(p.base_delay_ms(60), 1_000);
        // Huge retry indices must not overflow the shift.
        assert_eq!(p.base_delay_ms(u32::MAX), 1_000);
    }

    #[test]
    fn builders_clamp_degenerate_inputs() {
        let p = RetryPolicy::none().attempts(0);
        assert_eq!(p.max_attempts, 1);
        let p = RetryPolicy::none().backoff(500, 10);
        assert_eq!(p.max_backoff_ms, 500);
    }
}
