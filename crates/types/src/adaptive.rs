//! Adaptive-planning configuration and the EWMA primitive it runs on.
//!
//! The static planner prices candidates under the site's *advertised*
//! [`crate::CostModel`]. Real sites drift: the advertised prices go stale,
//! or the per-family estimators are systematically off for a particular
//! data distribution. The adaptive layer (`qrs-service`'s `Calibration`)
//! closes that loop by folding *observed* charges into exponentially
//! weighted moving averages and scaling future predictions by them; this
//! module holds the knobs ([`AdaptiveConfig`]) and the deterministic
//! [`Ewma`] accumulator both sides share.

/// Knobs for the closed-loop adaptive planner.
///
/// Two independently switchable behaviours:
///
/// * **calibration** (`calibrate`) — observed-cost statistics are fed from
///   the same in-lock ledger deltas the session stats use, and
///   `Planner::plan` scales each candidate's static estimate by the
///   learned actual/predicted ratio before ranking;
/// * **re-planning** (`replan`) — a running `Auto` session whose actual
///   weighted spend exceeds `divergence_ratio ×` its calibrated prediction
///   (once at least `min_spend` units were paid, and only before the plan
///   horizon is reached) re-plans among the remaining feasible candidates
///   and switches strategies mid-flight, without losing paid-for
///   knowledge.
///
/// The default is [`AdaptiveConfig::disabled`]: the service behaves
/// exactly like the static planner unless explicitly opted in.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Mid-flight switch trigger: re-plan when
    /// `cost_units_spent > divergence_ratio × calibrated prediction`.
    pub divergence_ratio: f64,
    /// Weighted cost units a session must have paid before the divergence
    /// trigger may fire — guards against switching on the first page of a
    /// front-loaded strategy.
    pub min_spend: u64,
    /// Feed and consult the calibration store at plan time.
    pub calibrate: bool,
    /// Allow divergence-triggered mid-flight strategy switches (at most
    /// one per session, `Auto` sessions only).
    pub replan: bool,
}

impl AdaptiveConfig {
    /// Both loops on, with the stock trigger: switch past 2× the
    /// calibrated prediction, once at least 8 cost units were paid.
    pub fn enabled() -> Self {
        AdaptiveConfig {
            divergence_ratio: 2.0,
            min_spend: 8,
            calibrate: true,
            replan: true,
        }
    }

    /// Everything off — the static planner, bit for bit. The default.
    pub fn disabled() -> Self {
        AdaptiveConfig {
            divergence_ratio: 2.0,
            min_spend: 8,
            calibrate: false,
            replan: false,
        }
    }

    /// Builder: override the divergence trigger ratio (values ≤ 1.0 make
    /// any deviation a trigger; NaN is clamped to the default 2.0).
    pub fn with_divergence_ratio(mut self, ratio: f64) -> Self {
        self.divergence_ratio = if ratio.is_nan() { 2.0 } else { ratio };
        self
    }

    /// Builder: override the minimum paid spend before a switch may fire.
    pub fn with_min_spend(mut self, units: u64) -> Self {
        self.min_spend = units;
        self
    }

    /// Builder: calibration opt-out — keep re-planning (against static
    /// predictions) but never scale plan-time estimates.
    pub fn without_calibration(mut self) -> Self {
        self.calibrate = false;
        self
    }

    /// Builder: re-planning opt-out — keep learning costs but never switch
    /// a running session.
    pub fn without_replan(mut self) -> Self {
        self.replan = false;
        self
    }

    /// True when either loop is on (the service only pays any adaptive
    /// bookkeeping at all in that case).
    pub fn is_active(&self) -> bool {
        self.calibrate || self.replan
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig::disabled()
    }
}

/// A deterministic exponentially weighted moving average.
///
/// The first observation seeds the average exactly; each later one folds
/// in as `value ← (1 − α)·value + α·x`. Plain IEEE `f64` arithmetic in a
/// fixed order, so identical observation sequences produce bit-identical
/// averages on every platform — the property the seed-swept calibration
/// tests lean on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    /// Smoothing factor α ∈ (0, 1]: the weight of the newest observation.
    alpha: f64,
    value: f64,
    samples: u64,
}

impl Ewma {
    /// An empty average with smoothing factor `alpha` (clamped into
    /// `(0, 1]`; non-finite values fall back to 0.5).
    pub fn new(alpha: f64) -> Self {
        let alpha = if alpha.is_finite() {
            alpha.clamp(f64::MIN_POSITIVE, 1.0)
        } else {
            0.5
        };
        Ewma {
            alpha,
            value: 0.0,
            samples: 0,
        }
    }

    /// An empty average whose smoothing factor is expressed as a
    /// **half-life in observations**: after `half_life` further samples, an
    /// old value's weight has decayed to one half (`(1 − α)^h = 1/2`, so
    /// `α = 1 − 2^(−1/h)`). The windowed way to say "forget drift that
    /// reverted": a site whose prices drift and then drift *back* halves
    /// its residual bias every `half_life` sessions. Non-positive or NaN
    /// half-lives collapse to `α = 1` (only the newest sample counts); an
    /// infinite one clamps to the smallest positive weight.
    pub fn with_half_life(half_life: f64) -> Self {
        let alpha = if half_life > 0.0 {
            // An infinite half-life drives α to 0, which `Ewma::new` clamps
            // to the smallest positive weight — "effectively never forget".
            1.0 - 2f64.powf(-1.0 / half_life)
        } else {
            1.0
        };
        Ewma::new(alpha)
    }

    /// The smoothing factor α ∈ (0, 1].
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Fold one observation in. Non-finite observations are ignored — a
    /// poisoned sample must never poison every later prediction.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.samples == 0 {
            self.value = x;
        } else {
            self.value = (1.0 - self.alpha) * self.value + self.alpha * x;
        }
        self.samples += 1;
    }

    /// The current average, or `None` before any observation landed.
    pub fn value(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.value)
    }

    /// Observations folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off_and_builders_toggle() {
        let d = AdaptiveConfig::default();
        assert!(!d.is_active());
        assert_eq!(d, AdaptiveConfig::disabled());
        let e = AdaptiveConfig::enabled();
        assert!(e.is_active() && e.calibrate && e.replan);
        assert!(!AdaptiveConfig::enabled().without_replan().replan);
        assert!(!AdaptiveConfig::enabled().without_calibration().calibrate);
        assert!(AdaptiveConfig::enabled().without_replan().is_active());
        let r = AdaptiveConfig::enabled()
            .with_divergence_ratio(3.5)
            .with_min_spend(100);
        assert_eq!((r.divergence_ratio, r.min_spend), (3.5, 100));
        assert_eq!(
            AdaptiveConfig::enabled()
                .with_divergence_ratio(f64::NAN)
                .divergence_ratio,
            2.0
        );
    }

    #[test]
    fn ewma_seeds_exactly_and_converges_deterministically() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.observe(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.observe(20.0);
        assert_eq!(e.value(), Some(15.0));
        e.observe(20.0);
        assert_eq!(e.value(), Some(17.5));
        assert_eq!(e.samples(), 3);
        // Bit-identical replay.
        let mut f = Ewma::new(0.5);
        for x in [10.0, 20.0, 20.0] {
            f.observe(x);
        }
        assert_eq!(e, f);
    }

    #[test]
    fn ewma_rejects_poisoned_samples_and_bad_alpha() {
        let mut e = Ewma::new(f64::NAN);
        e.observe(f64::INFINITY);
        e.observe(f64::NAN);
        assert_eq!(e.value(), None);
        e.observe(4.0);
        assert_eq!(e.value(), Some(4.0));
        // Alpha is clamped into (0, 1]: a huge alpha just tracks the
        // newest sample.
        let mut g = Ewma::new(9.0);
        g.observe(1.0);
        g.observe(7.0);
        assert_eq!(g.value(), Some(7.0));
    }

    #[test]
    fn half_life_halves_residual_bias_per_window() {
        // Seed at 3.0, then observe 1.0 forever: the deviation from 1.0
        // must halve every `half_life` observations, exactly.
        let h = 4.0;
        let mut e = Ewma::with_half_life(h);
        e.observe(3.0);
        for _ in 0..4 {
            e.observe(1.0);
        }
        let dev_after_one_window = e.value().unwrap() - 1.0;
        assert!(
            (dev_after_one_window - 1.0).abs() < 1e-12,
            "deviation 2.0 must halve to 1.0 after one half-life, got {dev_after_one_window}"
        );
        for _ in 0..4 {
            e.observe(1.0);
        }
        let dev_after_two = e.value().unwrap() - 1.0;
        assert!(
            (dev_after_two - 0.5).abs() < 1e-12,
            "deviation must halve again to 0.5, got {dev_after_two}"
        );
    }

    #[test]
    fn degenerate_half_lives_track_the_newest_sample() {
        for h in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let mut e = Ewma::with_half_life(h);
            e.observe(10.0);
            e.observe(2.0);
            // Infinity gives alpha → 0, clamped to MIN_POSITIVE: ~keeps
            // the seed; all others collapse to alpha = 1.
            if h.is_infinite() {
                assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
            } else {
                assert_eq!(e.value(), Some(2.0), "half_life {h}");
            }
        }
        // A sane half-life sits strictly inside (0, 1).
        let a = Ewma::with_half_life(4.0).alpha();
        assert!(a > 0.0 && a < 1.0);
    }
}
