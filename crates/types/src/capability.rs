//! Per-attribute filter support — one axis of the site model.
//!
//! Real restricted top-k interfaces differ not just in *whether* they
//! filter but in *how*: a flight site exposes a full price slider (range
//! predicates), a classifieds site only a dropdown of exact values (point
//! predicates), and a storefront's browse view may offer no attribute
//! filter at all. [`FilterSupport`] names those three levels; the
//! `Capabilities` model in `qrs-server` carries one per ordinal attribute,
//! and the `Planner` in `qrs-service` reads them to decide which reranking
//! algorithm can run at all — or to relax a predicate server-side and
//! re-apply it client-side.

use std::fmt;

/// What kind of predicate a search interface accepts on one ordinal
/// attribute.
///
/// The levels are ordered: [`FilterSupport::Range`] ⊃
/// [`FilterSupport::Point`] ⊃ [`FilterSupport::None`] — an interface that
/// takes ranges also takes the degenerate point range `Ai ∈ [v, v]`.
///
/// ```
/// use qrs_types::FilterSupport;
///
/// assert!(FilterSupport::Range.allows_range());
/// assert!(FilterSupport::Point.allows_point());
/// assert!(!FilterSupport::Point.allows_range());
/// assert!(!FilterSupport::None.allows_point());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FilterSupport {
    /// The attribute cannot appear in a predicate at all (browse-only).
    None,
    /// Only point predicates `Ai = v` are accepted (§5's point-predicate
    /// sites — dropdowns, not sliders).
    Point,
    /// Arbitrary range predicates `Ai ∈ (v, v')` are accepted — the
    /// paper's baseline assumption and the default.
    #[default]
    Range,
}

impl FilterSupport {
    /// Whether a point predicate `Ai = v` is accepted.
    pub fn allows_point(self) -> bool {
        self >= FilterSupport::Point
    }

    /// Whether a non-degenerate range predicate is accepted.
    pub fn allows_range(self) -> bool {
        self == FilterSupport::Range
    }
}

impl fmt::Display for FilterSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterSupport::None => write!(f, "no filter"),
            FilterSupport::Point => write!(f, "point filter"),
            FilterSupport::Range => write!(f, "range filter"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_levels_are_ordered() {
        assert!(FilterSupport::None < FilterSupport::Point);
        assert!(FilterSupport::Point < FilterSupport::Range);
        assert_eq!(FilterSupport::default(), FilterSupport::Range);
    }

    #[test]
    fn allows_helpers_match_the_lattice() {
        assert!(FilterSupport::Range.allows_range());
        assert!(FilterSupport::Range.allows_point());
        assert!(!FilterSupport::Point.allows_range());
        assert!(FilterSupport::Point.allows_point());
        assert!(!FilterSupport::None.allows_range());
        assert!(!FilterSupport::None.allows_point());
    }
}
