//! Circuit-breaker configuration for federated sources.
//!
//! The federation layer in `qrs-service` gives each source consecutive-
//! failure circuit state: a source that keeps failing *trips* and leaves
//! the merge. [`CircuitPolicy`] is the declarative half of that machinery
//! — when to trip, and (optionally) when a tripped source deserves another
//! chance:
//!
//! * **Closed** — healthy; failures increment a consecutive-failure count.
//! * **Open (tripped)** — the source is skipped by the merge. Without a
//!   cool-down it stays open forever (the legacy behavior).
//! * **Half-open** — with [`CircuitPolicy::cooldown_ms`] set, once the
//!   cool-down has elapsed on the service's injectable clock the source
//!   admits exactly **one probe pull**: success closes the circuit (the
//!   source rejoins the merge), failure re-trips it and restarts the
//!   cool-down — a recovering backend rejoins on its own, a dead one costs
//!   one query per cool-down window instead of one per merge step.

/// When a federated source's circuit trips, and whether it may half-open.
///
/// ```
/// use qrs_types::CircuitPolicy;
///
/// // Trip after 3 consecutive failures; admit one probe pull per 500 ms.
/// let policy = CircuitPolicy::trip_after(3).cooldown(500);
/// assert_eq!(policy.failure_threshold, 3);
/// assert_eq!(policy.cooldown_ms, Some(500));
///
/// // Without a cooldown a tripped source stays out of the merge forever.
/// assert_eq!(CircuitPolicy::trip_after(1).cooldown_ms, None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitPolicy {
    /// Consecutive retryable failures after which the circuit opens.
    /// Non-retryable failures (capability mismatches, exhausted budgets)
    /// trip immediately regardless. Clamped to at least 1.
    pub failure_threshold: u32,
    /// Cool-down after which an open circuit admits one probe pull, on the
    /// owning service's clock. `None` = never probe (trip forever).
    pub cooldown_ms: Option<u64>,
}

impl CircuitPolicy {
    /// Trip after `failure_threshold` consecutive failures; never probe.
    pub fn trip_after(failure_threshold: u32) -> Self {
        CircuitPolicy {
            failure_threshold: failure_threshold.max(1),
            cooldown_ms: None,
        }
    }

    /// Builder: admit one probe pull every `ms` milliseconds once tripped.
    pub fn cooldown(mut self, ms: u64) -> Self {
        self.cooldown_ms = Some(ms);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_and_composes() {
        let p = CircuitPolicy::trip_after(0);
        assert_eq!(p.failure_threshold, 1);
        assert_eq!(p.cooldown_ms, None);
        let p = CircuitPolicy::trip_after(3).cooldown(5_000);
        assert_eq!(p.failure_threshold, 3);
        assert_eq!(p.cooldown_ms, Some(5_000));
    }
}
