//! Property-based tests for the interval algebra — every reranking
//! algorithm's pruning correctness reduces to these identities.

#![cfg(test)]

use crate::interval::{Endpoint, Interval};
use crate::query::Query;
use crate::schema::AttrId;
use crate::tuple::{Tuple, TupleId};
use proptest::prelude::*;

fn endpoint_strategy() -> impl Strategy<Value = Endpoint> {
    prop_oneof![
        Just(Endpoint::Unbounded),
        (-50i32..50).prop_map(|v| Endpoint::Open(f64::from(v) / 4.0)),
        (-50i32..50).prop_map(|v| Endpoint::Closed(f64::from(v) / 4.0)),
    ]
}

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (endpoint_strategy(), endpoint_strategy()).prop_map(|(lo, hi)| Interval { lo, hi })
}

fn value_strategy() -> impl Strategy<Value = f64> {
    (-220i32..220).prop_map(|v| f64::from(v) / 8.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn intersection_is_conjunction(a in interval_strategy(), b in interval_strategy(), v in value_strategy()) {
        let c = a.intersect(&b);
        prop_assert_eq!(c.contains(v), a.contains(v) && b.contains(v));
    }

    #[test]
    fn empty_intervals_contain_nothing(a in interval_strategy(), v in value_strategy()) {
        if a.is_empty() {
            prop_assert!(!a.contains(v));
        }
    }

    #[test]
    fn subset_implies_membership(a in interval_strategy(), b in interval_strategy(), v in value_strategy()) {
        if a.is_subset_of(&b) && a.contains(v) {
            prop_assert!(b.contains(v), "{} ⊆ {} but {} only in the former", a, b, v);
        }
    }

    #[test]
    fn negate_mirrors_membership(a in interval_strategy(), v in value_strategy()) {
        prop_assert_eq!(a.negate().contains(-v), a.contains(v));
    }

    #[test]
    fn negate_is_involution(a in interval_strategy()) {
        prop_assert_eq!(a.negate().negate(), a);
    }

    #[test]
    fn intersection_subset_of_operands(a in interval_strategy(), b in interval_strategy()) {
        let c = a.intersect(&b);
        prop_assert!(c.is_subset_of(&a));
        prop_assert!(c.is_subset_of(&b));
    }

    #[test]
    fn query_subsumption_implies_match_implication(
        ivs_inner in proptest::collection::vec(interval_strategy(), 2),
        ivs_outer in proptest::collection::vec(interval_strategy(), 2),
        coords in proptest::collection::vec(value_strategy(), 2),
    ) {
        let mut inner = Query::all();
        let mut outer = Query::all();
        for (i, (a, b)) in ivs_inner.iter().zip(&ivs_outer).enumerate() {
            // inner gets both predicates (so it is at least as strict).
            inner.add_range(AttrId(i), *a);
            inner.add_range(AttrId(i), *b);
            outer.add_range(AttrId(i), *b);
        }
        prop_assert!(inner.is_subsumed_by(&outer));
        let t = Tuple::new(TupleId(0), coords, vec![]);
        if inner.matches(&t) {
            prop_assert!(outer.matches(&t));
        }
    }
}
