//! Randomized property tests for the interval algebra — every reranking
//! algorithm's pruning correctness reduces to these identities.
//!
//! Written against the local `rand` stand-in (no registry access for
//! `proptest`): each property is checked over a deterministic seeded sweep,
//! and failures print the offending case.

#![cfg(test)]

use crate::interval::{Endpoint, Interval};
use crate::query::Query;
use crate::schema::AttrId;
use crate::tuple::{Tuple, TupleId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CASES: usize = 512;

fn endpoint(rng: &mut StdRng) -> Endpoint {
    match rng.random_range(0..3u32) {
        0 => Endpoint::Unbounded,
        1 => Endpoint::Open(f64::from(rng.random_range(0..100u32) as i32 - 50) / 4.0),
        _ => Endpoint::Closed(f64::from(rng.random_range(0..100u32) as i32 - 50) / 4.0),
    }
}

fn interval(rng: &mut StdRng) -> Interval {
    Interval {
        lo: endpoint(rng),
        hi: endpoint(rng),
    }
}

fn value(rng: &mut StdRng) -> f64 {
    f64::from(rng.random_range(0..440u32) as i32 - 220) / 8.0
}

#[test]
fn intersection_is_conjunction() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..CASES {
        let (a, b, v) = (interval(&mut rng), interval(&mut rng), value(&mut rng));
        let c = a.intersect(&b);
        assert_eq!(
            c.contains(v),
            a.contains(v) && b.contains(v),
            "{a} ∩ {b} = {c} disagrees at {v}"
        );
    }
}

#[test]
fn empty_intervals_contain_nothing() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for _ in 0..CASES {
        let (a, v) = (interval(&mut rng), value(&mut rng));
        if a.is_empty() {
            assert!(!a.contains(v), "empty {a} contains {v}");
        }
    }
}

#[test]
fn subset_implies_membership() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..CASES {
        let (a, b, v) = (interval(&mut rng), interval(&mut rng), value(&mut rng));
        if a.is_subset_of(&b) && a.contains(v) {
            assert!(b.contains(v), "{a} ⊆ {b} but {v} only in the former");
        }
    }
}

#[test]
fn negate_mirrors_membership() {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for _ in 0..CASES {
        let (a, v) = (interval(&mut rng), value(&mut rng));
        assert_eq!(a.negate().contains(-v), a.contains(v), "{a} at {v}");
    }
}

#[test]
fn negate_is_involution() {
    let mut rng = StdRng::seed_from_u64(0xE66);
    for _ in 0..CASES {
        let a = interval(&mut rng);
        assert_eq!(a.negate().negate(), a, "double negation changed {a}");
    }
}

#[test]
fn intersection_subset_of_operands() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for _ in 0..CASES {
        let (a, b) = (interval(&mut rng), interval(&mut rng));
        let c = a.intersect(&b);
        assert!(c.is_subset_of(&a), "{a} ∩ {b} = {c} ⊄ {a}");
        assert!(c.is_subset_of(&b), "{a} ∩ {b} = {c} ⊄ {b}");
    }
}

#[test]
fn query_subsumption_implies_match_implication() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..CASES {
        let mut inner = Query::all();
        let mut outer = Query::all();
        let mut coords = Vec::new();
        for i in 0..2 {
            let a = interval(&mut rng);
            let b = interval(&mut rng);
            // inner gets both predicates (so it is at least as strict).
            inner.add_range(AttrId(i), a);
            inner.add_range(AttrId(i), b);
            outer.add_range(AttrId(i), b);
            coords.push(value(&mut rng));
        }
        assert!(inner.is_subsumed_by(&outer));
        let t = Tuple::new(TupleId(0), coords, vec![]);
        if inner.matches(&t) {
            assert!(outer.matches(&t), "inner matches {t:?} but outer does not");
        }
    }
}
