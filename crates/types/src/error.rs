//! Error types shared across the workspace.

use std::fmt;

/// Errors raised while assembling datasets/queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A tuple's ordinal arity does not match the schema.
    OrdinalArityMismatch { expected: usize, got: usize },
    /// A tuple's categorical arity does not match the schema.
    CategoricalArityMismatch { expected: usize, got: usize },
    /// A categorical code is out of the attribute's declared cardinality.
    CategoricalCodeOutOfRange { attr: usize, code: u32, cardinality: u32 },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::OrdinalArityMismatch { expected, got } => {
                write!(f, "tuple has {got} ordinal values, schema expects {expected}")
            }
            TypeError::CategoricalArityMismatch { expected, got } => {
                write!(f, "tuple has {got} categorical values, schema expects {expected}")
            }
            TypeError::CategoricalCodeOutOfRange { attr, code, cardinality } => {
                write!(f, "categorical code {code} out of range for B{attr} (cardinality {cardinality})")
            }
        }
    }
}

impl std::error::Error for TypeError {}
