//! The workspace-wide error taxonomy.
//!
//! The reranking middleware fronts *remote, rate-limited* hidden databases
//! (§1: "Google Flight Search API allows only 50 free queries per user per
//! day"), so every layer is fallible by design:
//!
//! * [`ServerError`] — what a [`SearchInterface`] adapter reports: rate
//!   limits, transient outages, and requests for capabilities the interface
//!   does not offer,
//! * [`RerankError`] — the unified error every cursor, session and service
//!   call returns. Server failures lift into it via `From`, with
//!   [`ServerError::Unsupported`] normalized to
//!   [`RerankError::UnsupportedCapability`] so callers match one variant
//!   regardless of whether negotiation failed at preflight or mid-stream.
//!
//! [`SearchInterface`]: https://docs.rs/qrs-server
//!
//! The contract the service layer upholds: **no misuse of the public API
//! panics** — unsupported capabilities, bad algorithm/ranking pairings,
//! budget exhaustion and server failures all surface as typed variants.

use crate::schema::AttrId;
use crate::tuple::TupleId;
use std::fmt;

/// Errors raised while assembling datasets/queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A tuple's ordinal arity does not match the schema.
    OrdinalArityMismatch {
        /// Ordinal arity the schema declares.
        expected: usize,
        /// Ordinal arity the tuple carries.
        got: usize,
    },
    /// A tuple's categorical arity does not match the schema.
    CategoricalArityMismatch {
        /// Categorical arity the schema declares.
        expected: usize,
        /// Categorical arity the tuple carries.
        got: usize,
    },
    /// A categorical code is out of the attribute's declared cardinality.
    CategoricalCodeOutOfRange {
        /// Index of the offending categorical attribute.
        attr: usize,
        /// The out-of-range code.
        code: u32,
        /// The attribute's declared cardinality.
        cardinality: u32,
    },
    /// An insert carries a tuple id the store already holds.
    DuplicateTupleId {
        /// The colliding id.
        id: TupleId,
    },
    /// An update names a tuple id the store does not hold.
    UnknownTupleId {
        /// The missing id.
        id: TupleId,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::OrdinalArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple has {got} ordinal values, schema expects {expected}"
                )
            }
            TypeError::CategoricalArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple has {got} categorical values, schema expects {expected}"
                )
            }
            TypeError::CategoricalCodeOutOfRange {
                attr,
                code,
                cardinality,
            } => {
                write!(
                    f,
                    "categorical code {code} out of range for B{attr} (cardinality {cardinality})"
                )
            }
            TypeError::DuplicateTupleId { id } => {
                write!(f, "insert collides with existing tuple id {}", id.0)
            }
            TypeError::UnknownTupleId { id } => {
                write!(f, "update names unknown tuple id {}", id.0)
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// An optional feature of a hidden database's search interface.
///
/// Real sites differ: some offer "next page" links, some let the user pick
/// a public `ORDER BY` attribute (§5 "Multiple/Known System Ranking
/// Functions"), many offer neither. Algorithms *negotiate* for these
/// instead of assuming them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Page turns on the proprietary system ranking.
    Paging,
    /// Public `ORDER BY` paging on the given attribute.
    OrderBy(AttrId),
    /// Range predicates `Ai ∈ (v, v')` on the given attribute (a site with
    /// only a dropdown offers point predicates at best).
    RangeFilter(AttrId),
    /// Point predicates `Ai = v` on the given attribute (a browse-only
    /// storefront may offer no attribute filter at all).
    PointFilter(AttrId),
    /// Conjunctive queries carrying this many predicates (flight sites
    /// commonly cap the number of simultaneous search criteria).
    PredicateArity(usize),
    /// Paging down to this many result pages under one query (many sites
    /// stop serving pages past a fixed depth).
    PageDepth(usize),
    /// A change-data-capture feed: `mutation_seq` watermarks plus
    /// `mutations_since` deltas, the substrate of incremental top-k
    /// maintenance under data change.
    MutationFeed,
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Capability::Paging => write!(f, "page turns on the system ranking"),
            Capability::OrderBy(a) => write!(f, "public ORDER BY on attribute {a}"),
            Capability::RangeFilter(a) => write!(f, "range predicates on attribute {a}"),
            Capability::PointFilter(a) => write!(f, "point predicates on attribute {a}"),
            Capability::PredicateArity(n) => write!(f, "queries with {n} predicates"),
            Capability::PageDepth(p) => write!(f, "paging down to page {p}"),
            Capability::MutationFeed => write!(f, "a mutation (change-data-capture) feed"),
        }
    }
}

/// A failure reported by a search-interface adapter.
///
/// The in-process simulators only produce these when explicitly configured
/// to; a real HTTP adapter maps 429s, 5xxs and malformed requests here
/// instead of panicking inside the middleware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The backend refused the query (quota, throttling). `retry_after_ms`
    /// is the backend's hint, when it gave one.
    RateLimited {
        /// The backend's `Retry-After` hint in milliseconds, if any.
        retry_after_ms: Option<u64>,
    },
    /// Transient failure: network error, 5xx, timeout.
    Unavailable {
        /// Human-readable failure description.
        reason: String,
    },
    /// The interface does not offer the requested capability.
    Unsupported(Capability),
    /// The query violates the interface contract (e.g. a range predicate on
    /// an attribute that only accepts point predicates, §5).
    InvalidQuery {
        /// Human-readable contract-violation description.
        reason: String,
    },
}

impl ServerError {
    /// Convenience constructor for transient failures.
    pub fn unavailable(reason: impl Into<String>) -> Self {
        ServerError::Unavailable {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for contract violations.
    pub fn invalid_query(reason: impl Into<String>) -> Self {
        ServerError::InvalidQuery {
            reason: reason.into(),
        }
    }

    /// Whether retrying the same request later could succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServerError::RateLimited { .. } | ServerError::Unavailable { .. }
        )
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::RateLimited {
                retry_after_ms: Some(ms),
            } => {
                write!(f, "server rate-limited the request (retry after {ms} ms)")
            }
            ServerError::RateLimited {
                retry_after_ms: None,
            } => {
                write!(f, "server rate-limited the request")
            }
            ServerError::Unavailable { reason } => write!(f, "server unavailable: {reason}"),
            ServerError::Unsupported(c) => write!(f, "server does not support {c}"),
            ServerError::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// The unified error type of the reranking workspace.
///
/// Everything downstream of a [`ServerError`] — cursors, sessions, the
/// federated merge — returns this. Budget exhaustion carries the spend so
/// callers can report "x of y queries used"; capability and algorithm
/// mismatches are caught at session preflight *and* surfaced from deep
/// inside algorithms if a server's behavior changes mid-stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RerankError {
    /// The query budget ran out. Results fetched before the trip are
    /// retained by the caller (see `Session::top`).
    BudgetExhausted {
        /// Queries spent inside the tripped budget window.
        spent: u64,
        /// The budget cap that tripped.
        limit: u64,
    },
    /// The backing server does not offer a capability the chosen algorithm
    /// requires.
    UnsupportedCapability(Capability),
    /// The requested algorithm cannot serve the requested ranking function
    /// (e.g. a 1D algorithm with a multi-attribute ranking function).
    InvalidAlgorithm {
        /// Human-readable mismatch description.
        reason: String,
    },
    /// The backing server failed.
    Server(ServerError),
    /// A transient server failure persisted through every attempt the
    /// session's retry policy allows. Carries the attempt count and the
    /// last underlying error so budget attribution stays exact.
    RetriesExhausted {
        /// Attempts consumed, the first included.
        attempts: u32,
        /// The last underlying failure.
        last: Box<RerankError>,
    },
    /// The per-session or service-wide *retry* budget ran out while
    /// recovering from the carried error. Distinct from
    /// [`RerankError::BudgetExhausted`], which meters queries, not retries.
    RetryBudgetExhausted {
        /// Retries spent inside the tripped budget window.
        retries_spent: u64,
        /// The retry cap that tripped.
        limit: u64,
        /// The last underlying failure.
        last: Box<RerankError>,
    },
    /// The caller cancelled the request (via a cancellation token) before
    /// it completed. Partial results fetched before the cancellation are
    /// preserved by batch drivers, mirroring the budget-trip contract.
    Cancelled,
    /// A range predicate carries a `NaN` endpoint. NaN compares as *after
    /// every real* under the workspace's total order, so such a predicate
    /// silently matches a surprising set and corrupts canonical cache keys;
    /// sessions and the simulator reject it up front instead.
    NanPredicate {
        /// Attribute whose range predicate carries the NaN endpoint.
        attr: AttrId,
    },
    /// No reranking algorithm fits the site's advertised capabilities for
    /// this query shape. `missing` names the capabilities that would have
    /// unblocked a candidate algorithm; `reason` narrates the planner's
    /// per-candidate verdicts. Raised at preflight (`Planner::plan` /
    /// `SessionBuilder::open`), never mid-stream — a session that opens
    /// cleanly has a working plan.
    Unplannable {
        /// Capabilities that would have let some candidate algorithm run,
        /// deduplicated, in planner preference order.
        missing: Vec<Capability>,
        /// Human-readable planning trace (one verdict per candidate).
        reason: String,
    },
}

impl RerankError {
    /// Convenience constructor for algorithm/ranking mismatches.
    pub fn invalid_algorithm(reason: impl Into<String>) -> Self {
        RerankError::InvalidAlgorithm {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for planner dead ends.
    pub fn unplannable(missing: Vec<Capability>, reason: impl Into<String>) -> Self {
        RerankError::Unplannable {
            missing,
            reason: reason.into(),
        }
    }

    /// Whether retrying the same call later could succeed (rate limits,
    /// transient server failures, refreshed budgets).
    pub fn is_transient(&self) -> bool {
        match self {
            RerankError::BudgetExhausted { .. } => true,
            RerankError::Server(e) => e.is_transient(),
            RerankError::RetriesExhausted { last, .. }
            | RerankError::RetryBudgetExhausted { last, .. } => last.is_transient(),
            // Re-issuing a cancelled request can succeed, but only the
            // caller who cancelled it can decide to — not a retry loop.
            RerankError::Cancelled => true,
            RerankError::UnsupportedCapability(_)
            | RerankError::InvalidAlgorithm { .. }
            | RerankError::NanPredicate { .. }
            | RerankError::Unplannable { .. } => false,
        }
    }

    /// Whether an *automatic* retry (sleep and re-issue, no external
    /// intervention) could succeed. Strictly narrower than
    /// [`RerankError::is_transient`]: budget exhaustion is transient — the
    /// caller can reset the budget window on a new day — but sleeping on it
    /// can never help, so the retry loop in `qrs-service` surfaces it
    /// immediately instead of burning backoff time.
    pub fn is_retryable(&self) -> bool {
        matches!(self, RerankError::Server(e) if e.is_transient())
    }

    /// The server's `Retry-After` hint, when this error (or the failure it
    /// wraps) carries one.
    pub fn retry_after_hint(&self) -> Option<u64> {
        match self {
            RerankError::Server(ServerError::RateLimited {
                retry_after_ms: Some(ms),
            }) => Some(*ms),
            RerankError::RetriesExhausted { last, .. }
            | RerankError::RetryBudgetExhausted { last, .. } => last.retry_after_hint(),
            _ => None,
        }
    }
}

impl fmt::Display for RerankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RerankError::BudgetExhausted { spent, limit } => {
                write!(
                    f,
                    "query budget exhausted: {spent} of {limit} queries spent"
                )
            }
            RerankError::UnsupportedCapability(c) => {
                write!(f, "the server does not support {c}")
            }
            RerankError::InvalidAlgorithm { reason } => {
                write!(f, "invalid algorithm choice: {reason}")
            }
            RerankError::Server(e) => write!(f, "server error: {e}"),
            RerankError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            RerankError::RetryBudgetExhausted {
                retries_spent,
                limit,
                last,
            } => {
                write!(
                    f,
                    "retry budget exhausted: {retries_spent} of {limit} retries spent \
                     recovering from: {last}"
                )
            }
            RerankError::Cancelled => write!(f, "request cancelled by the caller"),
            RerankError::NanPredicate { attr } => {
                write!(f, "range predicate on attribute {attr} has a NaN endpoint")
            }
            RerankError::Unplannable { missing, reason } => {
                write!(f, "no algorithm fits the site's capabilities: {reason}")?;
                if !missing.is_empty() {
                    write!(f, " (missing: ")?;
                    for (i, c) in missing.iter().enumerate() {
                        if i > 0 {
                            write!(f, "; ")?;
                        }
                        write!(f, "{c}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RerankError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RerankError::Server(e) => Some(e),
            RerankError::RetriesExhausted { last, .. }
            | RerankError::RetryBudgetExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<ServerError> for RerankError {
    /// Lift a server failure. [`ServerError::Unsupported`] normalizes to
    /// [`RerankError::UnsupportedCapability`] so callers match a single
    /// variant whether negotiation failed at preflight or mid-stream.
    fn from(e: ServerError) -> Self {
        match e {
            ServerError::Unsupported(c) => RerankError::UnsupportedCapability(c),
            other => RerankError::Server(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsupported_normalizes_through_from() {
        let e: RerankError = ServerError::Unsupported(Capability::Paging).into();
        assert_eq!(e, RerankError::UnsupportedCapability(Capability::Paging));
        let e: RerankError = ServerError::RateLimited {
            retry_after_ms: Some(10),
        }
        .into();
        assert!(matches!(
            e,
            RerankError::Server(ServerError::RateLimited { .. })
        ));
    }

    #[test]
    fn transient_classification() {
        assert!(RerankError::BudgetExhausted { spent: 1, limit: 1 }.is_transient());
        assert!(RerankError::Server(ServerError::unavailable("503")).is_transient());
        assert!(!RerankError::UnsupportedCapability(Capability::OrderBy(AttrId(0))).is_transient());
        assert!(!RerankError::invalid_algorithm("1D needs one attribute").is_transient());
    }

    #[test]
    fn retry_wrappers_carry_attempt_metadata() {
        let last = RerankError::Server(ServerError::RateLimited {
            retry_after_ms: Some(250),
        });
        let e = RerankError::RetriesExhausted {
            attempts: 4,
            last: Box::new(last.clone()),
        };
        assert!(e.is_transient());
        // The wrapper itself is not auto-retryable: the policy already gave up.
        assert!(!e.is_retryable());
        assert_eq!(e.retry_after_hint(), Some(250));
        assert!(e.to_string().contains("4 attempts"));

        let e = RerankError::RetryBudgetExhausted {
            retries_spent: 7,
            limit: 7,
            last: Box::new(last),
        };
        assert!(e.is_transient());
        assert!(!e.is_retryable());
        assert!(e.to_string().contains("7 of 7 retries"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn retryable_is_narrower_than_transient() {
        // Budget exhaustion: transient (windows reset) but never auto-retryable.
        let e = RerankError::BudgetExhausted { spent: 5, limit: 5 };
        assert!(e.is_transient());
        assert!(!e.is_retryable());
        // Server transients are both.
        let e = RerankError::Server(ServerError::unavailable("503"));
        assert!(e.is_transient());
        assert!(e.is_retryable());
        // Contract violations are neither.
        let e = RerankError::Server(ServerError::invalid_query("bad range"));
        assert!(!e.is_transient());
        assert!(!e.is_retryable());
    }

    #[test]
    fn cancelled_is_caller_recoverable_but_never_auto_retried() {
        let e = RerankError::Cancelled;
        assert!(e.is_transient(), "the caller may re-issue");
        assert!(
            !e.is_retryable(),
            "the retry loop must not override a cancel"
        );
        assert_eq!(e.retry_after_hint(), None);
        assert!(e.to_string().contains("cancelled"));
    }

    #[test]
    fn unplannable_is_terminal_and_names_the_capability() {
        let e = RerankError::unplannable(
            vec![Capability::RangeFilter(AttrId(0)), Capability::Paging],
            "1D needs range predicates; page-down needs paging",
        );
        assert!(!e.is_transient());
        assert!(!e.is_retryable());
        let s = e.to_string();
        assert!(s.contains("range predicates on attribute A1"));
        assert!(s.contains("page turns"));
        // An empty missing list still renders the reason.
        let e = RerankError::unplannable(vec![], "nothing fits");
        assert!(e.to_string().contains("nothing fits"));
    }

    #[test]
    fn displays_are_informative() {
        let s = RerankError::BudgetExhausted {
            spent: 50,
            limit: 50,
        }
        .to_string();
        assert!(s.contains("50 of 50"));
        let s = RerankError::UnsupportedCapability(Capability::OrderBy(AttrId(2))).to_string();
        assert!(s.contains("ORDER BY"));
    }
}
