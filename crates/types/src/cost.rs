//! Per-site query cost models — the metered half of the site model.
//!
//! The paper's cost metric counts *queries*; real sites meter them
//! unevenly. A flight aggregator charges more for filtered searches, a
//! storefront's `ORDER BY` view is the expensive code path, deep paging is
//! throttled harder than the first page. [`CostModel`] captures those
//! prices as per-query-class unit costs (plus per-attribute surcharges),
//! and is advertised through the server's capability surface so the
//! `qrs-service` planner can rank *feasible* algorithms by predicted spend
//! instead of a fixed preference order. The server side charges its ledger
//! by the same model, so predicted and actual costs are in the same
//! currency.
//!
//! The default model is [`CostModel::flat`]: every charged query costs one
//! unit, making weighted cost identical to the paper's raw query count.

use crate::query::Query;
use crate::schema::AttrId;
use std::fmt;

/// The shape of one charged request, used to price it under a
/// [`CostModel`]. Which class applies is decided by the *entry point* (a
/// page turn is [`RequestKind::Page`] no matter what predicates it
/// carries), while predicate surcharges stack on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// A one-shot top-`k` query (`SearchInterface::query`).
    TopK,
    /// A page turn on the system ranking (`SearchInterface::query_page`).
    Page,
    /// A page of a public `ORDER BY` view
    /// (`SearchInterface::query_ordered`).
    Ordered,
}

/// Per-query-class unit costs a site advertises and charges by.
///
/// The cost of one charged request is compositional:
///
/// ```text
/// cost = base
///      + point_predicate · #(point predicates, categorical included)
///      + range_predicate · #(non-degenerate range predicates)
///      + Σ attr_surcharge(attr) over predicated ordinal attributes
///      + paged    (if the request is a page turn)
///      + ordered  (if the request is an ORDER BY page)
/// ```
///
/// Unbounded (`Ai ∈ (-∞, ∞)`) predicates are free: the site never sees
/// them. All prices are integer units so ledgers stay exact under
/// concurrency.
///
/// ```
/// use qrs_types::{AttrId, CostModel, Interval, Query, RequestKind};
///
/// // A site that meters range filters at 2 units, surcharges its
/// // expensive "price" column, and triples ORDER-BY pages.
/// let model = CostModel::flat()
///     .with_range_cost(2)
///     .with_attr_surcharge(AttrId(0), 1)
///     .with_ordered_cost(2);
///
/// let q = Query::all().and_range(AttrId(0), Interval::open(10.0, 99.0));
/// // base 1 + range 2 + surcharge 1:
/// assert_eq!(model.charge(&q, RequestKind::TopK), 4);
/// // the same predicates through the ORDER BY view cost 2 more:
/// assert_eq!(model.charge(&q, RequestKind::Ordered), 6);
/// // the flat default prices every request at exactly one unit:
/// assert_eq!(CostModel::flat().charge(&q, RequestKind::Ordered), 1);
/// assert!(CostModel::flat().is_flat());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Cost of any charged request, before class and predicate charges.
    pub base: u64,
    /// Surcharge per point predicate (`Ai = v`; categorical membership
    /// predicates are priced as points too — they are dropdowns).
    pub point_predicate: u64,
    /// Surcharge per non-degenerate range predicate (`Ai ∈ (v, v')`).
    pub range_predicate: u64,
    /// Surcharge for requests through the public `ORDER BY` view.
    pub ordered: u64,
    /// Surcharge for page turns on the system ranking.
    pub paged: u64,
    /// Extra units per predicate on specific ordinal attributes (sparse;
    /// attributes absent here cost nothing extra).
    pub attr_surcharge: Vec<(AttrId, u64)>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::flat()
    }
}

impl CostModel {
    /// Every charged request costs one unit: weighted cost ≡ raw query
    /// count, the paper's metric and the default advertisement.
    pub fn flat() -> Self {
        CostModel {
            base: 1,
            point_predicate: 0,
            range_predicate: 0,
            ordered: 0,
            paged: 0,
            attr_surcharge: Vec::new(),
        }
    }

    /// Builder: the per-request base cost.
    pub fn with_base(mut self, units: u64) -> Self {
        self.base = units;
        self
    }

    /// Builder: surcharge per point predicate.
    pub fn with_point_cost(mut self, units: u64) -> Self {
        self.point_predicate = units;
        self
    }

    /// Builder: surcharge per non-degenerate range predicate.
    pub fn with_range_cost(mut self, units: u64) -> Self {
        self.range_predicate = units;
        self
    }

    /// Builder: surcharge for `ORDER BY` pages.
    pub fn with_ordered_cost(mut self, units: u64) -> Self {
        self.ordered = units;
        self
    }

    /// Builder: surcharge for page turns.
    pub fn with_paged_cost(mut self, units: u64) -> Self {
        self.paged = units;
        self
    }

    /// Builder: extra units per predicate on `attr` (replacing any earlier
    /// surcharge for the same attribute).
    pub fn with_attr_surcharge(mut self, attr: AttrId, units: u64) -> Self {
        self.attr_surcharge.retain(|(a, _)| *a != attr);
        self.attr_surcharge.push((attr, units));
        self
    }

    /// The surcharge configured for `attr` (0 when absent).
    pub fn attr_surcharge(&self, attr: AttrId) -> u64 {
        self.attr_surcharge
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, u)| *u)
            .unwrap_or(0)
    }

    /// Whether this model prices every request at exactly one unit (so
    /// weighted cost equals the raw query count).
    pub fn is_flat(&self) -> bool {
        self.base == 1
            && self.point_predicate == 0
            && self.range_predicate == 0
            && self.ordered == 0
            && self.paged == 0
            && self.attr_surcharge.iter().all(|(_, u)| *u == 0)
    }

    /// Price one charged request: query `q` through the `kind` entry
    /// point. This is the single pricing definition — servers charge their
    /// ledgers by it and planners predict with it, so the two never
    /// disagree on the currency.
    pub fn charge(&self, q: &Query, kind: RequestKind) -> u64 {
        let mut units = self.base;
        for p in q.ranges() {
            if p.interval.is_all() {
                continue;
            }
            units = units.saturating_add(if p.interval.is_point() {
                self.point_predicate
            } else {
                self.range_predicate
            });
            units = units.saturating_add(self.attr_surcharge(p.attr));
        }
        for _ in q.cats() {
            units = units.saturating_add(self.point_predicate);
        }
        units = units.saturating_add(match kind {
            RequestKind::TopK => 0,
            RequestKind::Page => self.paged,
            RequestKind::Ordered => self.ordered,
        });
        units
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_flat() {
            return write!(f, "flat");
        }
        write!(
            f,
            "base {} +pt {} +rg {} +ord {} +pg {}",
            self.base, self.point_predicate, self.range_predicate, self.ordered, self.paged
        )?;
        for (a, u) in &self.attr_surcharge {
            write!(f, " +{a}:{u}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::predicate::CatPredicate;
    use crate::schema::CatId;

    #[test]
    fn flat_model_counts_queries() {
        let m = CostModel::flat();
        assert!(m.is_flat());
        let q = Query::all()
            .and_range(AttrId(0), Interval::open(0.0, 1.0))
            .and_range(AttrId(1), Interval::point(2.0))
            .and_cat(CatPredicate::eq(CatId(0), 1));
        for kind in [RequestKind::TopK, RequestKind::Page, RequestKind::Ordered] {
            assert_eq!(m.charge(&q, kind), 1);
        }
    }

    #[test]
    fn compositional_pricing() {
        let m = CostModel::flat()
            .with_base(2)
            .with_point_cost(1)
            .with_range_cost(3)
            .with_ordered_cost(5)
            .with_paged_cost(4)
            .with_attr_surcharge(AttrId(1), 10);
        assert!(!m.is_flat());
        let q = Query::all()
            .and_range(AttrId(0), Interval::open(0.0, 1.0)) // +3 range
            .and_range(AttrId(1), Interval::point(2.0)) // +1 point, +10 surcharge
            .and_cat(CatPredicate::eq(CatId(0), 1)); // +1 point
        assert_eq!(m.charge(&q, RequestKind::TopK), 2 + 3 + 1 + 10 + 1);
        assert_eq!(m.charge(&q, RequestKind::Page), 17 + 4);
        assert_eq!(m.charge(&q, RequestKind::Ordered), 17 + 5);
    }

    #[test]
    fn unbounded_predicates_are_free() {
        let m = CostModel::flat().with_range_cost(7);
        let q = Query::all().and_range(AttrId(0), Interval::all());
        assert_eq!(m.charge(&q, RequestKind::TopK), 1);
    }

    #[test]
    fn surcharge_override_replaces() {
        let m = CostModel::flat()
            .with_attr_surcharge(AttrId(0), 5)
            .with_attr_surcharge(AttrId(0), 2);
        assert_eq!(m.attr_surcharge(AttrId(0)), 2);
        assert_eq!(m.attr_surcharge(AttrId(3)), 0);
        assert_eq!(m.attr_surcharge.len(), 1);
    }

    #[test]
    fn display_names_the_prices() {
        assert_eq!(CostModel::flat().to_string(), "flat");
        let m = CostModel::flat().with_ordered_cost(2);
        assert!(m.to_string().contains("+ord 2"));
    }
}
