//! Conjunctive search queries — the only thing the hidden database accepts.
//!
//! §2.1: `SELECT * FROM D WHERE Ai1 ∈ (v,v') AND … AND` categorical
//! predicates. A [`Query`] is a conjunction of at most one [`Interval`] per
//! ordinal attribute (intersected on insertion) plus categorical membership
//! predicates. The reranking algorithms build thousands of these per user
//! request, so construction and `matches` are allocation-light.

use crate::error::RerankError;
use crate::interval::Interval;
use crate::predicate::{CatPredicate, RangePredicate};
use crate::schema::AttrId;
#[cfg(test)]
use crate::schema::CatId;
use crate::tuple::Tuple;
use std::fmt;

/// A conjunctive range query (the paper's `q` / `Sel(q)`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    ranges: Vec<RangePredicate>,
    cats: Vec<CatPredicate>,
}

impl Query {
    /// The unrestricted query `SELECT * FROM D`.
    pub fn all() -> Self {
        Query::default()
    }

    /// Add (AND) a range predicate; intersects with any existing predicate on
    /// the same attribute.
    pub fn and_range(mut self, attr: AttrId, interval: Interval) -> Self {
        self.add_range(attr, interval);
        self
    }

    /// In-place version of [`Query::and_range`].
    pub fn add_range(&mut self, attr: AttrId, interval: Interval) {
        if let Some(p) = self.ranges.iter_mut().find(|p| p.attr == attr) {
            p.interval = p.interval.intersect(&interval);
        } else {
            self.ranges.push(RangePredicate::new(attr, interval));
        }
    }

    /// Add (AND) a categorical predicate; intersects code sets per attribute.
    pub fn and_cat(mut self, pred: CatPredicate) -> Self {
        self.add_cat(pred);
        self
    }

    /// In-place version of [`Query::and_cat`].
    pub fn add_cat(&mut self, pred: CatPredicate) {
        if let Some(p) = self.cats.iter_mut().find(|p| p.attr == pred.attr) {
            *p = p.intersect(&pred);
        } else {
            self.cats.push(pred);
        }
    }

    /// Conjunction of two queries.
    pub fn and(mut self, other: &Query) -> Self {
        for p in &other.ranges {
            self.add_range(p.attr, p.interval);
        }
        for p in &other.cats {
            self.add_cat(p.clone());
        }
        self
    }

    /// The interval constraining `attr` (`Interval::all()` if unconstrained).
    pub fn interval(&self, attr: AttrId) -> Interval {
        self.ranges
            .iter()
            .find(|p| p.attr == attr)
            .map(|p| p.interval)
            .unwrap_or_else(Interval::all)
    }

    /// All range predicates.
    #[inline]
    pub fn ranges(&self) -> &[RangePredicate] {
        &self.ranges
    }

    /// All categorical predicates.
    #[inline]
    pub fn cats(&self) -> &[CatPredicate] {
        &self.cats
    }

    /// Strip every range predicate, keeping categorical ones.
    ///
    /// The on-the-fly index deliberately crawls *without* inheriting `Sel(q)`
    /// (§3.2.2) so the index serves future queries too; it still needs the
    /// pure selection part sometimes, hence this helper and its dual
    /// [`Query::only_ranges`].
    pub fn only_cats(&self) -> Query {
        Query {
            ranges: Vec::new(),
            cats: self.cats.clone(),
        }
    }

    /// Strip categorical predicates, keeping ranges.
    pub fn only_ranges(&self) -> Query {
        Query {
            ranges: self.ranges.clone(),
            cats: Vec::new(),
        }
    }

    /// Does the query match a tuple? (Membership in the paper's `R(q)`.)
    pub fn matches(&self, t: &Tuple) -> bool {
        self.ranges.iter().all(|p| p.matches(t)) && self.cats.iter().all(|p| p.matches(t))
    }

    /// Is the query certainly unsatisfiable (some predicate is empty)?
    pub fn is_unsatisfiable(&self) -> bool {
        self.ranges.iter().any(|p| p.interval.is_empty())
            || self.cats.iter().any(|p| p.is_unsatisfiable())
    }

    /// Is every range predicate of `self` contained in the corresponding
    /// predicate of `outer`, and are the categorical predicates at least as
    /// strict? If so every tuple matching `self` matches `outer`.
    pub fn is_subsumed_by(&self, outer: &Query) -> bool {
        for p in &outer.ranges {
            if !self.interval(p.attr).is_subset_of(&p.interval) {
                return false;
            }
        }
        for p in &outer.cats {
            let Some(mine) = self.cats.iter().find(|c| c.attr == p.attr) else {
                return false;
            };
            if !mine
                .codes()
                .iter()
                .all(|c| p.codes().binary_search(c).is_ok())
            {
                return false;
            }
        }
        true
    }

    /// Number of predicates (for workload statistics).
    pub fn num_predicates(&self) -> usize {
        self.ranges.len() + self.cats.len()
    }

    /// Reject queries whose range predicates carry `NaN` endpoints.
    ///
    /// Interval construction is deliberately infallible (the algorithms
    /// build thousands on hot paths), so the check lives here and runs at
    /// the session and simulator boundaries: a NaN endpoint sorts after
    /// every real under the workspace total order, matching a surprising
    /// set and corrupting canonical cache-key ordering.
    pub fn validate(&self) -> Result<(), RerankError> {
        match self.ranges.iter().find(|p| p.interval.has_nan()) {
            Some(p) => Err(RerankError::NanPredicate { attr: p.attr }),
            None => Ok(()),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ranges.is_empty() && self.cats.is_empty() {
            return write!(f, "TRUE");
        }
        let mut first = true;
        for p in &self.ranges {
            if !first {
                write!(f, " AND ")?;
            }
            write!(f, "{} in {}", p.attr, p.interval)?;
            first = false;
        }
        for p in &self.cats {
            if !first {
                write!(f, " AND ")?;
            }
            write!(f, "{} in {:?}", p.attr, p.codes())?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TupleId;

    fn t(ord: Vec<f64>, cat: Vec<u32>) -> Tuple {
        Tuple::new(TupleId(0), ord, cat)
    }

    #[test]
    fn conjunction_intersects_same_attribute() {
        let q = Query::all()
            .and_range(AttrId(0), Interval::open(0.0, 10.0))
            .and_range(AttrId(0), Interval::closed(5.0, 20.0));
        assert_eq!(q.ranges().len(), 1);
        assert_eq!(q.interval(AttrId(0)), Interval::closed_open(5.0, 10.0));
    }

    #[test]
    fn matches_conjunction() {
        let q = Query::all()
            .and_range(AttrId(0), Interval::open(0.0, 10.0))
            .and_cat(CatPredicate::eq(CatId(0), 2));
        assert!(q.matches(&t(vec![5.0], vec![2])));
        assert!(!q.matches(&t(vec![5.0], vec![3])));
        assert!(!q.matches(&t(vec![10.0], vec![2])));
    }

    #[test]
    fn unsatisfiable_detection() {
        let q = Query::all()
            .and_range(AttrId(0), Interval::open(0.0, 5.0))
            .and_range(AttrId(0), Interval::open(5.0, 10.0));
        assert!(q.is_unsatisfiable());

        let q2 = Query::all()
            .and_cat(CatPredicate::eq(CatId(0), 1))
            .and_cat(CatPredicate::eq(CatId(0), 2));
        assert!(q2.is_unsatisfiable());
    }

    #[test]
    fn subsumption() {
        let outer = Query::all().and_range(AttrId(0), Interval::open(0.0, 10.0));
        let inner = Query::all().and_range(AttrId(0), Interval::closed(2.0, 8.0));
        assert!(inner.is_subsumed_by(&outer));
        assert!(!outer.is_subsumed_by(&inner));
        // Everything is subsumed by TRUE.
        assert!(outer.is_subsumed_by(&Query::all()));
    }

    #[test]
    fn cat_subsumption_requires_predicate() {
        let outer = Query::all().and_cat(CatPredicate::one_of(CatId(0), vec![1, 2]));
        let inner = Query::all().and_cat(CatPredicate::eq(CatId(0), 1));
        assert!(inner.is_subsumed_by(&outer));
        // An unconstrained query is not subsumed by a constrained one.
        assert!(!Query::all().is_subsumed_by(&outer));
    }

    #[test]
    fn validate_rejects_nan_endpoints() {
        assert_eq!(Query::all().validate(), Ok(()));
        let clean = Query::all().and_range(AttrId(0), Interval::open(0.0, 1.0));
        assert_eq!(clean.validate(), Ok(()));
        let q = clean
            .clone()
            .and_range(AttrId(3), Interval::at_most(f64::NAN));
        assert_eq!(
            q.validate(),
            Err(RerankError::NanPredicate { attr: AttrId(3) })
        );
        // Either side trips it; the offending attribute is named.
        let q = Query::all().and_range(AttrId(1), Interval::open(f64::NAN, 5.0));
        assert_eq!(
            q.validate(),
            Err(RerankError::NanPredicate { attr: AttrId(1) })
        );
        assert!(q.validate().unwrap_err().to_string().contains("NaN"));
    }

    #[test]
    fn interval_nan_detection() {
        assert!(Interval::open(f64::NAN, 1.0).has_nan());
        assert!(Interval::closed(0.0, f64::NAN).has_nan());
        assert!(Interval::point(f64::NAN).has_nan());
        assert!(!Interval::all().has_nan());
        assert!(!Interval::open(0.0, 1.0).has_nan());
        assert!(!Interval::greater_than(f64::INFINITY).has_nan());
    }

    #[test]
    fn strip_helpers() {
        let q = Query::all()
            .and_range(AttrId(0), Interval::open(0.0, 1.0))
            .and_cat(CatPredicate::eq(CatId(0), 7));
        assert!(q.only_cats().ranges().is_empty());
        assert_eq!(q.only_cats().cats().len(), 1);
        assert!(q.only_ranges().cats().is_empty());
    }
}
