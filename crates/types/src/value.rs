//! Total-order helpers for `f64` attribute values.
//!
//! Ordinal attribute values are plain `f64`s. The algorithms in the paper
//! constantly sort, compare and take minima of attribute values, so we need a
//! *total* order (`f64: Ord` does not hold because of NaN). All comparisons in
//! this workspace go through [`cmp_f64`] / [`OrdF64`] so that a stray NaN is
//! ordered deterministically (after `+inf`) instead of poisoning a sort.

use std::cmp::Ordering;

/// Totally ordered comparison of two attribute values (IEEE `totalOrder`).
#[inline]
pub fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// Minimum under the total order.
#[inline]
pub fn min_f64(a: f64, b: f64) -> f64 {
    if cmp_f64(a, b) == Ordering::Greater {
        b
    } else {
        a
    }
}

/// Maximum under the total order.
#[inline]
pub fn max_f64(a: f64, b: f64) -> f64 {
    if cmp_f64(a, b) == Ordering::Less {
        b
    } else {
        a
    }
}

/// An `f64` wrapper that is `Ord + Eq` under IEEE total order.
///
/// Useful as a key in `BTreeMap`/`BinaryHeap` (e.g. the per-attribute sorted
/// history index keeps `(OrdF64, TupleId)` keys).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_f64(self.0, other.0)
    }
}

impl From<f64> for OrdF64 {
    #[inline]
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}

impl From<OrdF64> for f64 {
    #[inline]
    fn from(v: OrdF64) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_is_total() {
        assert_eq!(cmp_f64(1.0, 2.0), Ordering::Less);
        assert_eq!(cmp_f64(2.0, 1.0), Ordering::Greater);
        assert_eq!(cmp_f64(1.5, 1.5), Ordering::Equal);
        // NaN sorts after +inf instead of breaking the order.
        assert_eq!(cmp_f64(f64::NAN, f64::INFINITY), Ordering::Greater);
        assert_eq!(cmp_f64(f64::NEG_INFINITY, -1e308), Ordering::Less);
    }

    #[test]
    fn min_max_agree_with_order() {
        assert_eq!(min_f64(3.0, -2.0), -2.0);
        assert_eq!(max_f64(3.0, -2.0), 3.0);
        assert_eq!(min_f64(0.0, -0.0), -0.0);
    }

    #[test]
    fn ordf64_sorts_in_btree() {
        let mut keys: Vec<OrdF64> = [3.0, -1.0, 2.5, -1.0].iter().map(|&v| OrdF64(v)).collect();
        keys.sort();
        let vals: Vec<f64> = keys.into_iter().map(f64::from).collect();
        assert_eq!(vals, vec![-1.0, -1.0, 2.5, 3.0]);
    }
}
