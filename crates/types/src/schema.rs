//! Database schemas: ordinal (rankable) and categorical (filter-only)
//! attributes.
//!
//! Matches §2.1 of the paper: `m` ordinal attributes `A1..Am` with finite
//! value domains, plus categorical attributes `B1..Bm'` that appear in
//! selection conditions but never in ranking functions.

use std::fmt;

/// Index of an ordinal attribute within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub usize);

/// Index of a categorical attribute within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CatId(pub usize);

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0 + 1)
    }
}

impl fmt::Display for CatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0 + 1)
    }
}

/// An ordinal (rankable, range-searchable) attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdinalAttr {
    /// Human-readable attribute name (unique within a schema).
    pub name: String,
    /// Smallest domain value `v0`.
    pub min: f64,
    /// Largest domain value `v∞`.
    pub max: f64,
    /// `true` if the search interface only accepts point predicates
    /// (`Ai = v`) on this attribute rather than ranges (§5 of the paper).
    pub point_only: bool,
    /// Explicit value domain, required for `point_only` attributes (the only
    /// way to enumerate them through the interface). Sorted ascending.
    pub values: Option<Vec<f64>>,
}

impl OrdinalAttr {
    /// A range-searchable attribute with the given domain.
    pub fn new(name: impl Into<String>, min: f64, max: f64) -> Self {
        OrdinalAttr {
            name: name.into(),
            min,
            max,
            point_only: false,
            values: None,
        }
    }

    /// A point-predicate-only attribute with an explicit value list (§5).
    ///
    /// # Panics
    /// If `values` is empty or unsorted.
    pub fn point_only(name: impl Into<String>, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "point-only attribute needs values");
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "values must be strictly ascending"
        );
        OrdinalAttr {
            name: name.into(),
            min: values[0],
            max: *values.last().unwrap(),
            point_only: true,
            values: Some(values),
        }
    }

    /// Domain span `|V(Ai)| = max - min`.
    #[inline]
    pub fn domain_width(&self) -> f64 {
        self.max - self.min
    }
}

/// A categorical attribute, usable only in equality/membership filters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatAttr {
    /// Human-readable attribute name (unique within a schema).
    pub name: String,
    /// Number of distinct values; values are encoded as `0..cardinality`.
    pub cardinality: u32,
}

impl CatAttr {
    /// A categorical attribute with `cardinality` distinct codes.
    pub fn new(name: impl Into<String>, cardinality: u32) -> Self {
        CatAttr {
            name: name.into(),
            cardinality,
        }
    }
}

/// Schema of a client-server database.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    ordinal: Vec<OrdinalAttr>,
    categorical: Vec<CatAttr>,
}

impl Schema {
    /// A schema over the given ordinal and categorical attributes.
    pub fn new(ordinal: Vec<OrdinalAttr>, categorical: Vec<CatAttr>) -> Self {
        Schema {
            ordinal,
            categorical,
        }
    }

    /// Number of ordinal attributes (`m` in the paper).
    #[inline]
    pub fn num_ordinal(&self) -> usize {
        self.ordinal.len()
    }

    /// Number of categorical attributes (`m'` in the paper).
    #[inline]
    pub fn num_categorical(&self) -> usize {
        self.categorical.len()
    }

    /// The ordinal attribute with index `id`.
    #[inline]
    pub fn ordinal(&self, id: AttrId) -> &OrdinalAttr {
        &self.ordinal[id.0]
    }

    /// The categorical attribute with index `id`.
    #[inline]
    pub fn categorical(&self, id: CatId) -> &CatAttr {
        &self.categorical[id.0]
    }

    /// Iterate over ordinal attribute ids.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.ordinal.len()).map(AttrId)
    }

    /// Iterate over categorical attribute ids.
    pub fn cat_ids(&self) -> impl Iterator<Item = CatId> + '_ {
        (0..self.categorical.len()).map(CatId)
    }

    /// Look up an ordinal attribute by name.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.ordinal.iter().position(|a| a.name == name).map(AttrId)
    }

    /// Look up a categorical attribute by name.
    pub fn cat_by_name(&self, name: &str) -> Option<CatId> {
        self.categorical
            .iter()
            .position(|a| a.name == name)
            .map(CatId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            vec![
                OrdinalAttr::new("price", 0.0, 50_000.0),
                OrdinalAttr::new("mileage", 0.0, 300_000.0),
            ],
            vec![CatAttr::new("body_style", 6)],
        )
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.attr_by_name("mileage"), Some(AttrId(1)));
        assert_eq!(s.attr_by_name("nope"), None);
        assert_eq!(s.cat_by_name("body_style"), Some(CatId(0)));
    }

    #[test]
    fn counts_and_domains() {
        let s = schema();
        assert_eq!(s.num_ordinal(), 2);
        assert_eq!(s.num_categorical(), 1);
        assert_eq!(s.ordinal(AttrId(0)).domain_width(), 50_000.0);
        assert_eq!(s.attr_ids().count(), 2);
    }

    #[test]
    fn display_is_one_indexed_like_the_paper() {
        assert_eq!(AttrId(0).to_string(), "A1");
        assert_eq!(CatId(2).to_string(), "B3");
    }
}
