//! Per-attribute preference direction.
//!
//! §2.2 of the paper: a monotonic user ranking function fixes, per attribute,
//! an order `≺` with `v1 ≺ v2` meaning `v1` is higher ranked. Different
//! ranking functions may prefer opposite ends of the same attribute (cheaper
//! vs. pricier). We encode the order as a [`Direction`]; all reranking
//! algorithms run in a *normalized* space where smaller is always better, and
//! translate back through the direction when talking to the server.

/// Which end of an ordinal attribute a ranking function prefers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Smaller values rank higher (e.g. price for a buyer).
    #[default]
    Asc,
    /// Larger values rank higher (e.g. model year).
    Desc,
}

impl Direction {
    /// Map a raw attribute value into normalized space where smaller = better.
    ///
    /// Normalization is the affine map `v ↦ v` (Asc) or `v ↦ -v` (Desc); it is
    /// its own inverse, see [`Direction::denormalize`].
    #[inline]
    pub fn normalize(self, v: f64) -> f64 {
        match self {
            Direction::Asc => v,
            Direction::Desc => -v,
        }
    }

    /// Inverse of [`Direction::normalize`].
    #[inline]
    pub fn denormalize(self, v: f64) -> f64 {
        // The map is an involution.
        self.normalize(v)
    }

    /// Flip the direction.
    #[inline]
    pub fn flip(self) -> Direction {
        match self {
            Direction::Asc => Direction::Desc,
            Direction::Desc => Direction::Asc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_is_involution() {
        for d in [Direction::Asc, Direction::Desc] {
            for v in [-3.5, 0.0, 17.25] {
                assert_eq!(d.denormalize(d.normalize(v)), v);
            }
        }
    }

    #[test]
    fn desc_reverses_order() {
        let d = Direction::Desc;
        assert!(d.normalize(10.0) < d.normalize(5.0));
    }

    #[test]
    fn flip_roundtrips() {
        assert_eq!(Direction::Asc.flip(), Direction::Desc);
        assert_eq!(Direction::Desc.flip().flip(), Direction::Desc);
    }
}
