//! # qrs-types
//!
//! Shared data model for the *Query Reranking As A Service* reproduction
//! (Asudeh, Zhang, Das — VLDB 2016).
//!
//! The paper's setting is a client-server database `D` with `n` tuples over
//! `m` ordinal attributes `A1..Am` (plus categorical attributes `B1..Bm'`
//! usable only for filtering), exposed through a restricted *top-k* search
//! interface that accepts conjunctive range queries. This crate defines that
//! vocabulary:
//!
//! * [`Schema`], [`Tuple`], [`Dataset`] — the database contents,
//! * [`Interval`], [`Endpoint`] — open/closed/half-open ranges (§2.1 of the
//!   paper discusses why open ranges are the primitive),
//! * [`Query`] — conjunctions of range predicates on ordinal attributes and
//!   membership predicates on categorical attributes,
//! * [`QueryOutcome`], [`QueryResponse`] — the trichotomy *underflow / valid /
//!   overflow* that every reranking algorithm branches on,
//! * [`RerankError`], [`ServerError`], [`Capability`] — the workspace-wide
//!   fallibility vocabulary: rate limits, capability negotiation, budgets,
//! * [`Mutation`], [`MutationKind`], [`MutationLog`] — the change-data-capture
//!   vocabulary a mutable source exposes: sequence-stamped inserts, deletes
//!   and updates that incremental top-k maintenance consumes,
//! * [`RetryPolicy`] — declarative retry/backoff configuration consumed by
//!   the `qrs-service` retry loop,
//! * [`CostModel`] — per-query-class unit costs a metered site advertises
//!   and charges by; the currency of the cost-based planner,
//! * [`AdaptiveConfig`], [`Ewma`] — knobs and the deterministic moving
//!   average behind the `qrs-service` calibration/re-planning loop.
//!
//! Everything downstream (`qrs-server`, `qrs-core`, …) is written against
//! these types.

#![deny(missing_docs)]

pub mod adaptive;
pub mod capability;
pub mod circuit;
pub mod cost;
pub mod dataset;
pub mod direction;
pub mod error;
pub mod interval;
pub mod mutation;
pub mod predicate;
pub mod query;
pub mod response;
pub mod retry;
pub mod schema;
pub mod tuple;
pub mod value;

pub use adaptive::{AdaptiveConfig, Ewma};
pub use capability::FilterSupport;
pub use circuit::CircuitPolicy;
pub use cost::{CostModel, RequestKind};
pub use dataset::Dataset;
pub use direction::Direction;
pub use error::{Capability, RerankError, ServerError, TypeError};
pub use interval::{Endpoint, Interval};
pub use mutation::{Mutation, MutationKind, MutationLog};
pub use predicate::{CatPredicate, RangePredicate};
pub use query::Query;
pub use response::{QueryOutcome, QueryResponse};
pub use retry::RetryPolicy;
pub use schema::{AttrId, CatAttr, CatId, OrdinalAttr, Schema};
pub use tuple::{Tuple, TupleId};

#[cfg(test)]
mod proptests;
