//! Tuples: one row of the client-server database.

use crate::schema::{AttrId, CatId};
use std::fmt;

/// Stable identifier of a tuple within its [`crate::Dataset`].
///
/// `u32` keeps hot structures small (see the type-sizes guidance in the Rust
/// perf book); the paper's largest dataset has 457,013 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u32);

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A database tuple: ordinal values (rankable) + categorical codes (filters).
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// Stable identifier (positional for generated datasets).
    pub id: TupleId,
    ord: Box<[f64]>,
    cat: Box<[u32]>,
}

impl Tuple {
    /// A tuple with the given ordinal values and categorical codes.
    pub fn new(id: TupleId, ord: Vec<f64>, cat: Vec<u32>) -> Self {
        Tuple {
            id,
            ord: ord.into_boxed_slice(),
            cat: cat.into_boxed_slice(),
        }
    }

    /// Value of ordinal attribute `a` — the paper's `t[Ai]`.
    #[inline]
    pub fn ord(&self, a: AttrId) -> f64 {
        self.ord[a.0]
    }

    /// Code of categorical attribute `c`.
    #[inline]
    pub fn cat(&self, c: CatId) -> u32 {
        self.cat[c.0]
    }

    /// All ordinal values in attribute order.
    #[inline]
    pub fn ords(&self) -> &[f64] {
        &self.ord
    }

    /// All categorical codes in attribute order.
    #[inline]
    pub fn cats(&self) -> &[u32] {
        &self.cat
    }

    /// Does `self` dominate `other` in normalized space (smaller = better on
    /// every listed attribute, strictly better on at least one)?
    ///
    /// `normalize` maps a raw value of attribute `i` into normalized space;
    /// pass `|_, v| v` when all attributes already prefer small values.
    pub fn dominates(
        &self,
        other: &Tuple,
        attrs: &[AttrId],
        normalize: impl Fn(AttrId, f64) -> f64,
    ) -> bool {
        let mut strictly = false;
        for &a in attrs {
            let s = normalize(a, self.ord(a));
            let o = normalize(a, other.ord(a));
            if s > o {
                return false;
            }
            if s < o {
                strictly = true;
            }
        }
        strictly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u32, ord: Vec<f64>) -> Tuple {
        Tuple::new(TupleId(id), ord, vec![])
    }

    #[test]
    fn accessors() {
        let tup = Tuple::new(TupleId(7), vec![1.0, 2.0], vec![3]);
        assert_eq!(tup.ord(AttrId(1)), 2.0);
        assert_eq!(tup.cat(CatId(0)), 3);
        assert_eq!(tup.ords(), &[1.0, 2.0]);
    }

    #[test]
    fn domination_is_strict_somewhere() {
        let attrs = [AttrId(0), AttrId(1)];
        let id = |_: AttrId, v: f64| v;
        let a = t(0, vec![1.0, 1.0]);
        let b = t(1, vec![2.0, 1.0]);
        let c = t(2, vec![1.0, 1.0]);
        assert!(a.dominates(&b, &attrs, id));
        assert!(!b.dominates(&a, &attrs, id));
        // Equal on all attributes: no domination either way.
        assert!(!a.dominates(&c, &attrs, id));
        assert!(!c.dominates(&a, &attrs, id));
    }

    #[test]
    fn domination_respects_normalization() {
        // Attribute 1 prefers large values: normalize by negation.
        let attrs = [AttrId(0), AttrId(1)];
        let norm = |a: AttrId, v: f64| if a.0 == 1 { -v } else { v };
        let cheap_new = t(0, vec![1.0, 2015.0]);
        let cheap_old = t(1, vec![1.0, 1999.0]);
        assert!(cheap_new.dominates(&cheap_old, &attrs, norm));
        assert!(!cheap_old.dominates(&cheap_new, &attrs, norm));
    }

    #[test]
    fn incomparable_tuples() {
        let attrs = [AttrId(0), AttrId(1)];
        let id = |_: AttrId, v: f64| v;
        let a = t(0, vec![1.0, 5.0]);
        let b = t(1, vec![5.0, 1.0]);
        assert!(!a.dominates(&b, &attrs, id));
        assert!(!b.dominates(&a, &attrs, id));
    }
}
