//! Atomic predicates: range conditions on ordinal attributes and membership
//! conditions on categorical attributes.

use crate::interval::Interval;
use crate::schema::{AttrId, CatId};
use crate::tuple::Tuple;

/// `Ai ∈ I` for an ordinal attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangePredicate {
    /// The constrained ordinal attribute.
    pub attr: AttrId,
    /// The accepted value range.
    pub interval: Interval,
}

impl RangePredicate {
    /// The predicate `attr ∈ interval`.
    pub fn new(attr: AttrId, interval: Interval) -> Self {
        RangePredicate { attr, interval }
    }

    /// Does `t` satisfy the predicate?
    #[inline]
    pub fn matches(&self, t: &Tuple) -> bool {
        self.interval.contains(t.ord(self.attr))
    }
}

/// `Bj ∈ {codes…}` for a categorical attribute (equality when a single code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatPredicate {
    /// The constrained categorical attribute.
    pub attr: CatId,
    /// Accepted codes, kept sorted and deduplicated.
    codes: Vec<u32>,
}

impl CatPredicate {
    /// Equality predicate `Bj = code`.
    pub fn eq(attr: CatId, code: u32) -> Self {
        CatPredicate {
            attr,
            codes: vec![code],
        }
    }

    /// Membership predicate `Bj ∈ codes`.
    pub fn one_of(attr: CatId, mut codes: Vec<u32>) -> Self {
        codes.sort_unstable();
        codes.dedup();
        CatPredicate { attr, codes }
    }

    /// Does `t` satisfy the predicate?
    #[inline]
    pub fn matches(&self, t: &Tuple) -> bool {
        self.codes.binary_search(&t.cat(self.attr)).is_ok()
    }

    /// Accepted codes, sorted ascending.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Intersection of accepted code sets; empty result means unsatisfiable.
    pub fn intersect(&self, other: &CatPredicate) -> CatPredicate {
        debug_assert_eq!(self.attr, other.attr);
        let codes = self
            .codes
            .iter()
            .copied()
            .filter(|c| other.codes.binary_search(c).is_ok())
            .collect();
        CatPredicate {
            attr: self.attr,
            codes,
        }
    }

    /// Whether the accepted code set is empty (no tuple can match).
    #[inline]
    pub fn is_unsatisfiable(&self) -> bool {
        self.codes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TupleId;

    fn t(ord: Vec<f64>, cat: Vec<u32>) -> Tuple {
        Tuple::new(TupleId(0), ord, cat)
    }

    #[test]
    fn range_predicate_matches() {
        let p = RangePredicate::new(AttrId(0), Interval::open(1.0, 3.0));
        assert!(p.matches(&t(vec![2.0], vec![])));
        assert!(!p.matches(&t(vec![1.0], vec![])));
        assert!(!p.matches(&t(vec![3.0], vec![])));
    }

    #[test]
    fn cat_predicate_membership() {
        let p = CatPredicate::one_of(CatId(0), vec![4, 2, 2]);
        assert_eq!(p.codes(), &[2, 4]);
        assert!(p.matches(&t(vec![], vec![2])));
        assert!(!p.matches(&t(vec![], vec![3])));
    }

    #[test]
    fn cat_predicate_intersection() {
        let a = CatPredicate::one_of(CatId(0), vec![1, 2, 3]);
        let b = CatPredicate::one_of(CatId(0), vec![2, 3, 4]);
        let c = a.intersect(&b);
        assert_eq!(c.codes(), &[2, 3]);
        let d = a.intersect(&CatPredicate::eq(CatId(0), 9));
        assert!(d.is_unsatisfiable());
    }
}
