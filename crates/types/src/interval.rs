//! Intervals over ordinal attribute domains.
//!
//! §2.1 of the paper: search queries carry range predicates `Ai ∈ (v, v')`.
//! Open endpoints are the primitive the algorithms need (e.g. 1D-BASELINE
//! repeatedly issues `Ai ∈ (th[Ai], a[Ai])` to exclude both known tuples);
//! closed and half-open ranges appear in 1D-BINARY's probe of the upper half
//! (`[mid, hi)`) and when removing the general-positioning assumption
//! (point queries `Ai = v`). [`Interval`] supports all of these exactly —
//! no epsilon hacks.

use crate::value::cmp_f64;
use std::cmp::Ordering;
use std::fmt;

/// One end of an [`Interval`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Endpoint {
    /// No constraint on this side.
    Unbounded,
    /// Strict inequality (`< v` or `> v`).
    Open(f64),
    /// Non-strict inequality (`<= v` or `>= v`).
    Closed(f64),
}

impl Endpoint {
    /// The finite value carried by the endpoint, if any.
    #[inline]
    pub fn value(self) -> Option<f64> {
        match self {
            Endpoint::Unbounded => None,
            Endpoint::Open(v) | Endpoint::Closed(v) => Some(v),
        }
    }

    /// Whether the endpoint admits its boundary value.
    #[inline]
    pub fn is_closed(self) -> bool {
        matches!(self, Endpoint::Closed(_))
    }
}

/// A (possibly open, possibly unbounded) interval of attribute values.
///
/// The empty interval is representable (e.g. `(3, 3)`); [`Interval::is_empty`]
/// detects it. Construction never panics on reversed bounds — a reversed
/// interval is simply empty, which is exactly how the reranking algorithms
/// want to treat an exhausted search region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: Endpoint,
    /// Upper endpoint.
    pub hi: Endpoint,
}

impl Interval {
    /// The whole domain `(-∞, +∞)`.
    #[inline]
    pub fn all() -> Self {
        Interval {
            lo: Endpoint::Unbounded,
            hi: Endpoint::Unbounded,
        }
    }

    /// Open interval `(lo, hi)`.
    #[inline]
    pub fn open(lo: f64, hi: f64) -> Self {
        Interval {
            lo: Endpoint::Open(lo),
            hi: Endpoint::Open(hi),
        }
    }

    /// Closed interval `[lo, hi]`.
    #[inline]
    pub fn closed(lo: f64, hi: f64) -> Self {
        Interval {
            lo: Endpoint::Closed(lo),
            hi: Endpoint::Closed(hi),
        }
    }

    /// Half-open `[lo, hi)` — used by 1D-BINARY's second probe.
    #[inline]
    pub fn closed_open(lo: f64, hi: f64) -> Self {
        Interval {
            lo: Endpoint::Closed(lo),
            hi: Endpoint::Open(hi),
        }
    }

    /// Half-open `(lo, hi]`.
    #[inline]
    pub fn open_closed(lo: f64, hi: f64) -> Self {
        Interval {
            lo: Endpoint::Open(lo),
            hi: Endpoint::Closed(hi),
        }
    }

    /// `(lo, +∞)` — "strictly better than what we have seen".
    #[inline]
    pub fn greater_than(lo: f64) -> Self {
        Interval {
            lo: Endpoint::Open(lo),
            hi: Endpoint::Unbounded,
        }
    }

    /// `[lo, +∞)`.
    #[inline]
    pub fn at_least(lo: f64) -> Self {
        Interval {
            lo: Endpoint::Closed(lo),
            hi: Endpoint::Unbounded,
        }
    }

    /// `(-∞, hi)`.
    #[inline]
    pub fn less_than(hi: f64) -> Self {
        Interval {
            lo: Endpoint::Unbounded,
            hi: Endpoint::Open(hi),
        }
    }

    /// `(-∞, hi]`.
    #[inline]
    pub fn at_most(hi: f64) -> Self {
        Interval {
            lo: Endpoint::Unbounded,
            hi: Endpoint::Closed(hi),
        }
    }

    /// The degenerate point interval `[v, v]` (a point predicate, §5).
    #[inline]
    pub fn point(v: f64) -> Self {
        Interval::closed(v, v)
    }

    /// Is this the degenerate point interval `[v, v]` — the only range a
    /// point-predicate-only interface (§5) accepts?
    pub fn is_point(&self) -> bool {
        match (self.lo, self.hi) {
            (Endpoint::Closed(a), Endpoint::Closed(b)) => cmp_f64(a, b) == Ordering::Equal,
            _ => false,
        }
    }

    /// Is this the unconstrained interval `(-∞, ∞)` (no predicate at all)?
    pub fn is_all(&self) -> bool {
        matches!(
            (self.lo, self.hi),
            (Endpoint::Unbounded, Endpoint::Unbounded)
        )
    }

    /// Does the interval contain `v`?
    pub fn contains(&self, v: f64) -> bool {
        let lo_ok = match self.lo {
            Endpoint::Unbounded => true,
            Endpoint::Open(l) => cmp_f64(v, l) == Ordering::Greater,
            Endpoint::Closed(l) => cmp_f64(v, l) != Ordering::Less,
        };
        if !lo_ok {
            return false;
        }
        match self.hi {
            Endpoint::Unbounded => true,
            Endpoint::Open(h) => cmp_f64(v, h) == Ordering::Less,
            Endpoint::Closed(h) => cmp_f64(v, h) != Ordering::Greater,
        }
    }

    /// Is the interval certainly empty?
    ///
    /// For continuous domains this is the right notion ("no real number can
    /// satisfy it"); discrete domains may render more intervals effectively
    /// empty, which callers detect via an underflowing query instead.
    pub fn is_empty(&self) -> bool {
        match (self.lo.value(), self.hi.value()) {
            (Some(l), Some(h)) => match cmp_f64(l, h) {
                Ordering::Greater => true,
                Ordering::Equal => !(self.lo.is_closed() && self.hi.is_closed()),
                Ordering::Less => false,
            },
            _ => false,
        }
    }

    /// Intersection of two intervals (conjunction of the two predicates).
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: tighter_lo(self.lo, other.lo),
            hi: tighter_hi(self.hi, other.hi),
        }
    }

    /// Width `hi - lo`; `+∞` when either side is unbounded, `0` for empty or
    /// point intervals. Used by the dense-region threshold tests
    /// (`width < |V(Ai)|·(s/n)/c`).
    pub fn width(&self) -> f64 {
        match (self.lo.value(), self.hi.value()) {
            (Some(l), Some(h)) => (h - l).max(0.0),
            _ => f64::INFINITY,
        }
    }

    /// Is `self` entirely contained in `outer`?
    pub fn is_subset_of(&self, outer: &Interval) -> bool {
        if self.is_empty() {
            return true;
        }
        let lo_ok = match (outer.lo, self.lo) {
            (Endpoint::Unbounded, _) => true,
            (_, Endpoint::Unbounded) => false,
            (Endpoint::Open(o), Endpoint::Open(s)) => cmp_f64(s, o) != Ordering::Less,
            (Endpoint::Open(o), Endpoint::Closed(s)) => cmp_f64(s, o) == Ordering::Greater,
            (Endpoint::Closed(o), Endpoint::Open(s) | Endpoint::Closed(s)) => {
                cmp_f64(s, o) != Ordering::Less
            }
        };
        if !lo_ok {
            return false;
        }
        match (outer.hi, self.hi) {
            (Endpoint::Unbounded, _) => true,
            (_, Endpoint::Unbounded) => false,
            (Endpoint::Open(o), Endpoint::Open(s)) => cmp_f64(s, o) != Ordering::Greater,
            (Endpoint::Open(o), Endpoint::Closed(s)) => cmp_f64(s, o) == Ordering::Less,
            (Endpoint::Closed(o), Endpoint::Open(s) | Endpoint::Closed(s)) => {
                cmp_f64(s, o) != Ordering::Greater
            }
        }
    }

    /// Does either endpoint carry a `NaN` boundary value?
    ///
    /// NaN sorts *after every real* under the workspace's total order, so a
    /// NaN-bounded predicate silently matches a surprising set and corrupts
    /// canonical cache-key ordering. Construction stays infallible (the
    /// algorithms build intervals on hot paths); instead `Query::validate`
    /// and the session/server boundaries reject NaN with a typed error.
    pub fn has_nan(&self) -> bool {
        self.lo.value().is_some_and(f64::is_nan) || self.hi.value().is_some_and(f64::is_nan)
    }

    /// Mirror the interval through negation: the image of the set under
    /// `v ↦ -v`. Used by the direction-normalization layer to translate
    /// normalized-space predicates on `Desc` attributes back to real ones.
    pub fn negate(&self) -> Interval {
        let flip = |e: Endpoint| match e {
            Endpoint::Unbounded => Endpoint::Unbounded,
            Endpoint::Open(v) => Endpoint::Open(-v),
            Endpoint::Closed(v) => Endpoint::Closed(-v),
        };
        Interval {
            lo: flip(self.hi),
            hi: flip(self.lo),
        }
    }
}

fn tighter_lo(a: Endpoint, b: Endpoint) -> Endpoint {
    match (a, b) {
        (Endpoint::Unbounded, x) | (x, Endpoint::Unbounded) => x,
        _ => {
            let (av, bv) = (a.value().unwrap(), b.value().unwrap());
            match cmp_f64(av, bv) {
                Ordering::Greater => a,
                Ordering::Less => b,
                // Equal boundary: open (strict) is tighter for a lower bound.
                Ordering::Equal => {
                    if a.is_closed() {
                        b
                    } else {
                        a
                    }
                }
            }
        }
    }
}

fn tighter_hi(a: Endpoint, b: Endpoint) -> Endpoint {
    match (a, b) {
        (Endpoint::Unbounded, x) | (x, Endpoint::Unbounded) => x,
        _ => {
            let (av, bv) = (a.value().unwrap(), b.value().unwrap());
            match cmp_f64(av, bv) {
                Ordering::Less => a,
                Ordering::Greater => b,
                Ordering::Equal => {
                    if a.is_closed() {
                        b
                    } else {
                        a
                    }
                }
            }
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            Endpoint::Unbounded => write!(f, "(-inf")?,
            Endpoint::Open(v) => write!(f, "({v}")?,
            Endpoint::Closed(v) => write!(f, "[{v}")?,
        }
        write!(f, ", ")?;
        match self.hi {
            Endpoint::Unbounded => write!(f, "+inf)"),
            Endpoint::Open(v) => write!(f, "{v})"),
            Endpoint::Closed(v) => write!(f, "{v}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_respects_openness() {
        let i = Interval::open(1.0, 2.0);
        assert!(!i.contains(1.0));
        assert!(i.contains(1.5));
        assert!(!i.contains(2.0));

        let j = Interval::closed_open(1.0, 2.0);
        assert!(j.contains(1.0));
        assert!(!j.contains(2.0));

        let p = Interval::point(3.0);
        assert!(p.contains(3.0));
        assert!(!p.contains(3.0001));
    }

    #[test]
    fn emptiness() {
        assert!(Interval::open(1.0, 1.0).is_empty());
        assert!(Interval::open(2.0, 1.0).is_empty());
        assert!(Interval::closed_open(1.0, 1.0).is_empty());
        assert!(!Interval::point(1.0).is_empty());
        assert!(!Interval::all().is_empty());
    }

    #[test]
    fn intersect_takes_tighter_bounds() {
        let a = Interval::open(0.0, 10.0);
        let b = Interval::closed(5.0, 20.0);
        let c = a.intersect(&b);
        assert_eq!(c, Interval::closed_open(5.0, 10.0));

        // Equal boundary, open wins.
        let d = Interval::open(5.0, 10.0).intersect(&Interval::closed(5.0, 10.0));
        assert_eq!(d, Interval::open(5.0, 10.0));
    }

    #[test]
    fn intersect_with_unbounded() {
        let a = Interval::greater_than(3.0);
        let b = Interval::less_than(7.0);
        assert_eq!(a.intersect(&b), Interval::open(3.0, 7.0));
        assert_eq!(Interval::all().intersect(&a), a);
    }

    #[test]
    fn subset_relation() {
        assert!(Interval::open(1.0, 2.0).is_subset_of(&Interval::closed(1.0, 2.0)));
        assert!(!Interval::closed(1.0, 2.0).is_subset_of(&Interval::open(1.0, 2.0)));
        assert!(Interval::open(1.0, 2.0).is_subset_of(&Interval::all()));
        assert!(!Interval::all().is_subset_of(&Interval::open(1.0, 2.0)));
        // Empty is a subset of everything.
        assert!(Interval::open(5.0, 5.0).is_subset_of(&Interval::open(1.0, 2.0)));
    }

    #[test]
    fn width_and_negate() {
        assert_eq!(Interval::open(2.0, 5.5).width(), 3.5);
        assert_eq!(Interval::greater_than(0.0).width(), f64::INFINITY);
        let n = Interval::closed_open(1.0, 2.0).negate();
        assert_eq!(n, Interval::open_closed(-2.0, -1.0));
        assert!(n.contains(-1.0));
        assert!(!n.contains(-2.0));
    }
}
