//! Proprietary system ranking functions for the simulated server.
//!
//! §2.1: "the database selects the k returned tuples from R(q) according to
//! a proprietary system ranking function unbeknown to the query reranking
//! service" — so unlike user ranking functions, system rankings need *not*
//! be monotone. This module provides the ones the paper evaluates with:
//!
//! * linear combinations with arbitrary signs — SR1 `0.3·AIR_TIME + TAXI_IN`
//!   and SR2 `-0.1·DISTANCE - DEP_DELAY` (§6.1),
//! * single-attribute rankings (Blue Nile's price-per-carat is a derived
//!   attribute handled via [`SystemRank::by_fn`]),
//! * a pseudo-random ranking standing in for Yahoo! Autos' non-monotonic
//!   "distance from a predefined location".

use qrs_types::{AttrId, Tuple};
use std::sync::Arc;

type ScoreFn = dyn Fn(&Tuple) -> f64 + Send + Sync;

/// An opaque tuple-scoring function; lower score = returned earlier.
#[derive(Clone)]
pub struct SystemRank {
    score: Arc<ScoreFn>,
    label: String,
}

impl std::fmt::Debug for SystemRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemRank")
            .field("label", &self.label)
            .finish()
    }
}

impl SystemRank {
    /// Arbitrary closure.
    pub fn by_fn(
        label: impl Into<String>,
        f: impl Fn(&Tuple) -> f64 + Send + Sync + 'static,
    ) -> Self {
        SystemRank {
            score: Arc::new(f),
            label: label.into(),
        }
    }

    /// Linear combination `Σ cᵢ·t[Aᵢ]` with arbitrary-sign coefficients.
    pub fn linear(label: impl Into<String>, terms: Vec<(AttrId, f64)>) -> Self {
        SystemRank::by_fn(label, move |t| {
            terms.iter().map(|&(a, c)| c * t.ord(a)).sum()
        })
    }

    /// Rank ascending by one attribute.
    pub fn by_attr_asc(attr: AttrId) -> Self {
        SystemRank::by_fn(format!("asc {attr}"), move |t| t.ord(attr))
    }

    /// Rank descending by one attribute.
    pub fn by_attr_desc(attr: AttrId) -> Self {
        SystemRank::by_fn(format!("desc {attr}"), move |t| -t.ord(attr))
    }

    /// Ratio `num/den` descending — Blue Nile's default "price per carat,
    /// descending" (§6.1).
    pub fn ratio_desc(num: AttrId, den: AttrId) -> Self {
        SystemRank::by_fn(format!("desc {num}/{den}"), move |t| {
            let d = t.ord(den);
            if d == 0.0 {
                f64::INFINITY
            } else {
                -(t.ord(num) / d)
            }
        })
    }

    /// Deterministic pseudo-random ranking keyed by tuple id — the stand-in
    /// for Yahoo! Autos' non-monotonic "distance from a predefined location".
    pub fn pseudo_random(seed: u64) -> Self {
        SystemRank::by_fn(format!("pseudo-random({seed})"), move |t| {
            // SplitMix64 of (seed ^ id): uniform, stable, uncorrelated with
            // any attribute.
            let mut z = seed ^ (u64::from(t.id.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        })
    }

    /// Score a tuple; lower comes back first.
    #[inline]
    pub fn score(&self, t: &Tuple) -> f64 {
        (self.score)(t)
    }

    /// Human-readable label (experiment output only).
    pub fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::TupleId;

    fn t(id: u32, ord: Vec<f64>) -> Tuple {
        Tuple::new(TupleId(id), ord, vec![])
    }

    #[test]
    fn linear_signs() {
        // SR2-style: -0.1·A0 - A1.
        let sr2 = SystemRank::linear("SR2", vec![(AttrId(0), -0.1), (AttrId(1), -1.0)]);
        assert_eq!(sr2.score(&t(0, vec![100.0, 5.0])), -15.0);
    }

    #[test]
    fn ratio_desc_prefers_large_ratio() {
        let r = SystemRank::ratio_desc(AttrId(0), AttrId(1));
        let expensive = t(0, vec![1000.0, 1.0]);
        let cheap = t(1, vec![100.0, 1.0]);
        assert!(r.score(&expensive) < r.score(&cheap));
        assert_eq!(r.score(&t(2, vec![5.0, 0.0])), f64::INFINITY);
    }

    #[test]
    fn pseudo_random_is_deterministic_and_spread() {
        let r = SystemRank::pseudo_random(42);
        let a = r.score(&t(1, vec![]));
        let b = r.score(&t(2, vec![]));
        assert_eq!(a, r.score(&t(1, vec![])));
        assert_ne!(a, b);
        assert!((0.0..1.0).contains(&a));
    }
}
