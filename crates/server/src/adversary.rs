//! The adversarial query-answering mechanism from the proof of Theorem 1.
//!
//! The theorem: for any `n > 1` there is a database of `n` tuples such that
//! finding the top-ranked tuple on an attribute through a top-`k` interface
//! takes at least `n/k` queries. The proof constructs the database *lazily*
//! while answering: it keeps a min-query-threshold `vq`; whenever the
//! reranker probes down to the domain minimum, the adversary materializes
//! `k` fresh tuples squeezed into `((v0+vq)/2, vq)` and halves `vq`, so
//! there is always a yet-unseen smaller tuple until all `n` are spent.
//!
//! [`AdversaryServer`] makes that mechanism executable: reranking algorithms
//! run against it unmodified, and the integration tests assert the `n/k`
//! lower bound empirically.

use crate::interface::SearchInterface;
use parking_lot::Mutex;
use qrs_types::value::cmp_f64;
use qrs_types::{Endpoint, OrdinalAttr, Query, QueryResponse, Schema, ServerError, Tuple, TupleId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct AdversaryState {
    /// Min-query-threshold `vq` from the proof.
    vq: f64,
    /// Tuples materialized so far, unordered.
    materialized: Vec<Arc<Tuple>>,
    next_id: u32,
}

/// A 1D hidden database that adversarially delays revealing its minimum.
#[derive(Debug)]
pub struct AdversaryServer {
    schema: Arc<Schema>,
    v0: f64,
    n: usize,
    k: usize,
    counter: AtomicU64,
    state: Mutex<AdversaryState>,
}

impl AdversaryServer {
    /// Adversary over one attribute with domain `[v0, v_inf]`, budget of `n`
    /// tuples, interface limit `k`.
    pub fn new(v0: f64, v_inf: f64, n: usize, k: usize) -> Self {
        assert!(v0 < v_inf);
        assert!(n >= 1 && k >= 1);
        AdversaryServer {
            schema: Arc::new(Schema::new(vec![OrdinalAttr::new("A", v0, v_inf)], vec![])),
            v0,
            n,
            k,
            counter: AtomicU64::new(0),
            state: Mutex::new(AdversaryState {
                vq: v_inf,
                materialized: Vec::new(),
                next_id: 0,
            }),
        }
    }

    /// Tuples materialized so far (tests compare the algorithm's answer
    /// against this once the budget is spent).
    pub fn materialized(&self) -> Vec<Arc<Tuple>> {
        self.state.lock().materialized.clone()
    }

    /// True once all `n` tuples exist and the database is frozen.
    pub fn is_frozen(&self) -> bool {
        self.state.lock().materialized.len() >= self.n
    }

    /// The current true minimum value (only meaningful to the test harness).
    pub fn current_min(&self) -> Option<f64> {
        let st = self.state.lock();
        st.materialized
            .iter()
            .map(|t| t.ord(qrs_types::AttrId(0)))
            .min_by(|a, b| cmp_f64(*a, *b))
    }

    /// Lower bound of the query interval, with "reaches the domain minimum"
    /// detection.
    fn query_lower(&self, q: &Query) -> (f64, bool) {
        let iv = q.interval(qrs_types::AttrId(0));
        match iv.lo {
            Endpoint::Unbounded => (self.v0, true),
            Endpoint::Open(v) => (v, v <= self.v0),
            Endpoint::Closed(v) => (v, v <= self.v0),
        }
    }

    fn upper_value(&self, q: &Query) -> f64 {
        let iv = q.interval(qrs_types::AttrId(0));
        match iv.hi {
            Endpoint::Unbounded => f64::INFINITY,
            Endpoint::Open(v) | Endpoint::Closed(v) => v,
        }
    }
}

impl SearchInterface for AdversaryServer {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn k(&self) -> usize {
        self.k
    }

    fn query(&self, q: &Query) -> Result<QueryResponse, ServerError> {
        self.counter.fetch_add(1, Ordering::Relaxed);
        let attr = qrs_types::AttrId(0);
        let iv = q.interval(attr);
        let mut st = self.state.lock();
        let frozen = st.materialized.len() >= self.n;
        let (lo, reaches_min) = self.query_lower(q);

        if frozen || !reaches_min {
            // Answer faithfully from the materialized set.
            if !reaches_min {
                st.vq = if st.vq < lo { st.vq } else { lo };
            }
            let mut matches: Vec<Arc<Tuple>> = st
                .materialized
                .iter()
                .filter(|t| iv.contains(t.ord(attr)) && q.matches(t))
                .cloned()
                .collect();
            matches.sort_by(|a, b| cmp_f64(a.ord(attr), b.ord(attr)));
            let overflow = matches.len() > self.k;
            matches.truncate(self.k);
            return Ok(QueryResponse::new(matches, overflow));
        }

        // The probe reaches the domain minimum: serve known matches and pad
        // with fresh tuples squeezed under vq.
        let upper = self.upper_value(q).min(st.vq);
        let mut out: Vec<Arc<Tuple>> = st
            .materialized
            .iter()
            .filter(|t| iv.contains(t.ord(attr)))
            .cloned()
            .collect();
        out.sort_by(|a, b| cmp_f64(a.ord(attr), b.ord(attr)));
        out.truncate(self.k);

        if out.len() < self.k && upper > self.v0 {
            let fresh_lo = (self.v0 + upper) / 2.0;
            let want = (self.k - out.len()).min(self.n - st.materialized.len());
            for i in 0..want {
                // Strictly inside (fresh_lo, upper), descending so later
                // tuples are smaller.
                let frac = (i as f64 + 1.0) / (want as f64 + 1.0);
                let v = upper - (upper - fresh_lo) * frac;
                let t = Arc::new(Tuple::new(TupleId(st.next_id), vec![v], vec![]));
                st.next_id += 1;
                st.materialized.push(Arc::clone(&t));
                if iv.contains(v) {
                    out.push(t);
                }
            }
            st.vq = fresh_lo;
            out.sort_by(|a, b| cmp_f64(a.ord(attr), b.ord(attr)));
        }

        let exhausted = st.materialized.len() >= self.n;
        // While un-frozen, a min-reaching probe always claims overflow: "there
        // may be more below".
        let overflow = if exhausted {
            out.len() >= self.k
                && st
                    .materialized
                    .iter()
                    .filter(|t| iv.contains(t.ord(attr)))
                    .count()
                    > self.k
        } else {
            true
        };
        Ok(QueryResponse::new(out, overflow))
    }

    fn queries_issued(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::{AttrId, Interval};

    #[test]
    fn keeps_materializing_below_previous_answers() {
        let adv = AdversaryServer::new(0.0, 1.0, 20, 2);
        let r1 = adv.query(&Query::all()).unwrap();
        assert!(r1.is_overflow());
        let min1 = r1
            .tuples
            .iter()
            .map(|t| t.ord(AttrId(0)))
            .fold(f64::INFINITY, f64::min);
        // Probe below the smallest seen value — fresh, smaller tuples appear.
        let r2 = adv
            .query(&Query::all().and_range(AttrId(0), Interval::open(0.0, min1)))
            .unwrap();
        assert!(r2.is_overflow());
        let min2 = r2
            .tuples
            .iter()
            .map(|t| t.ord(AttrId(0)))
            .fold(f64::INFINITY, f64::min);
        assert!(min2 < min1);
    }

    #[test]
    fn probes_above_domain_min_reveal_nothing_new() {
        let adv = AdversaryServer::new(0.0, 1.0, 20, 2);
        let r1 = adv.query(&Query::all()).unwrap();
        let count_before = adv.materialized().len();
        // A probe with a positive lower bound only replays history.
        let r2 = adv
            .query(&Query::all().and_range(AttrId(0), Interval::open(0.5, 1.0)))
            .unwrap();
        assert_eq!(adv.materialized().len(), count_before);
        for t in &r2.tuples {
            assert!(r1.tuples.iter().any(|u| u.id == t.id));
        }
    }

    #[test]
    fn takes_at_least_n_over_k_probes_to_freeze() {
        let (n, k) = (40, 4);
        let adv = AdversaryServer::new(0.0, 1.0, n, k);
        let mut probes = 0;
        while !adv.is_frozen() {
            // The strongest possible probe: straight to the domain minimum.
            let hi = adv.current_min().unwrap_or(1.0);
            adv.query(&Query::all().and_range(AttrId(0), Interval::open(0.0, hi)))
                .unwrap();
            probes += 1;
            assert!(probes <= n, "adversary failed to freeze");
        }
        assert!(probes >= n / k, "froze after only {probes} probes");
    }

    #[test]
    fn frozen_database_answers_faithfully() {
        let (n, k) = (8, 4);
        let adv = AdversaryServer::new(0.0, 1.0, n, k);
        while !adv.is_frozen() {
            let hi = adv.current_min().unwrap_or(1.0);
            adv.query(&Query::all().and_range(AttrId(0), Interval::open(0.0, hi)))
                .unwrap();
        }
        let all = adv.materialized();
        assert_eq!(all.len(), n);
        // A query below the true minimum underflows now.
        let true_min = adv.current_min().unwrap();
        let r = adv
            .query(&Query::all().and_range(AttrId(0), Interval::open(0.0, true_min)))
            .unwrap();
        assert!(r.is_underflow());
    }
}
