//! Injectable time for backoff and rate-limit windows.
//!
//! The retry layer in `qrs-service` sleeps between attempts, and the
//! [`FaultyServer`](crate::FaultyServer) decorator can enforce a server's
//! `retry_after_ms` hint as a hard refusal window. Both take time through
//! the [`Clock`] trait so tests drive whole rate-limit storms — backoff,
//! `Retry-After` dominance, recovery — without a single wall-clock sleep:
//! [`MockClock::sleep_ms`] *advances* the mock's notion of now instead of
//! blocking, and records every sleep for assertions.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic millisecond clock plus the ability to wait on it.
///
/// `now_ms` is monotonic but has an arbitrary epoch — callers may only
/// compare instants from the *same* clock instance.
pub trait Clock: Send + Sync {
    /// Milliseconds since this clock's (arbitrary) epoch.
    fn now_ms(&self) -> u64;

    /// Wait until `now_ms` has advanced by at least `ms`.
    fn sleep_ms(&self, ms: u64);
}

/// The real thing: `now_ms` measures from construction, `sleep_ms` blocks
/// the calling thread.
#[derive(Debug)]
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// A wall clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// A deterministic test clock: `sleep_ms` advances `now_ms` instantly and
/// logs the requested duration, so backoff schedules are asserted — never
/// waited for.
#[derive(Debug, Default)]
pub struct MockClock {
    now: AtomicU64,
    sleeps: Mutex<Vec<u64>>,
}

impl MockClock {
    /// A virtual clock starting at time zero with no recorded sleeps.
    pub fn new() -> Self {
        MockClock::default()
    }

    /// Move time forward without recording a sleep (an external event, e.g.
    /// "a day passes").
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
    }

    /// Every duration passed to [`Clock::sleep_ms`], in call order.
    pub fn sleeps(&self) -> Vec<u64> {
        self.sleeps.lock().clone()
    }

    /// Total virtual milliseconds slept.
    pub fn total_slept_ms(&self) -> u64 {
        self.sleeps.lock().iter().sum()
    }
}

impl Clock for MockClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    fn sleep_ms(&self, ms: u64) {
        self.sleeps.lock().push(ms);
        self.now.fetch_add(ms, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_advances_without_blocking() {
        let c = MockClock::new();
        assert_eq!(c.now_ms(), 0);
        c.sleep_ms(250);
        c.sleep_ms(500);
        assert_eq!(c.now_ms(), 750);
        assert_eq!(c.sleeps(), vec![250, 500]);
        assert_eq!(c.total_slept_ms(), 750);
        c.advance(1000);
        assert_eq!(c.now_ms(), 1750);
        // advance() is not a sleep.
        assert_eq!(c.sleeps(), vec![250, 500]);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }
}
