//! Deterministic fault injection for any [`SearchInterface`].
//!
//! Large-scale database systems treat fault handling as a first-class
//! testing target; the reranking middleware fronts *remote, rate-limited*
//! backends, so its failure paths deserve the same. [`FaultyServer`] wraps
//! any `SearchInterface` and injects failures from a **deterministic,
//! replayable schedule** — scripted per call index, drawn from a seeded RNG,
//! or both:
//!
//! * [`Fault::RateLimit`] — refuse with [`ServerError::RateLimited`]
//!   *before* the backend sees the query (a 429 at the gate; not charged),
//! * [`Fault::Outage`] — refuse with [`ServerError::Unavailable`]
//!   (a 503/network error; not charged),
//! * [`Fault::TruncatedPage`] — forward the query (the backend answers and
//!   **charges it**) but discard the response as corrupt: the page was
//!   truncated in transit, the caller paid and must re-pay on retry. This
//!   is the fault that makes exact query-count assertions interesting.
//!
//! With a [`Clock`] attached ([`FaultyServer::with_clock`]), rate-limit
//! faults carrying `retry_after_ms` are *enforced*: every call before the
//! window elapses is refused again with the remaining wait. A retry layer
//! that honors `Retry-After` recovers in exactly one retry; one that
//! hammers the server is caught by call-count assertions — all on a mock
//! clock, with zero wall-clock sleeping.

use crate::clock::Clock;
use crate::interface::{Capabilities, OrderedPage, SearchInterface};
use parking_lot::Mutex;
use qrs_types::{AttrId, Direction, MutationLog, Query, QueryResponse, Schema, ServerError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One injectable failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Refuse with [`ServerError::RateLimited`]; the backend is not reached
    /// and the query is not charged.
    RateLimit {
        /// The `Retry-After` hint the refusal carries, if any.
        retry_after_ms: Option<u64>,
    },
    /// Refuse with [`ServerError::Unavailable`]; not charged.
    Outage,
    /// Forward the query — the backend answers and charges it — then drop
    /// the response as corrupt ([`ServerError::Unavailable`] with a
    /// "truncated page" reason). Retries must re-pay.
    TruncatedPage,
}

enum Decision {
    Forward,
    Refuse(ServerError),
    ForwardThenDrop,
}

#[derive(Debug)]
struct Plan {
    /// Faults scripted by 0-based call index (over *all* query methods,
    /// including refused calls — each attempt consumes one index, except
    /// premature retries refused by an enforced retry-after window, which
    /// consume none so they cannot skip a scripted fault).
    scripted: BTreeMap<u64, Fault>,
    /// Refuse every call from this index on (a permanently dead backend).
    dead_after: Option<u64>,
    /// Seeded random schedule, drawn once per unscripted call.
    rng: Option<StdRng>,
    p_rate_limit: f64,
    p_outage: f64,
    p_truncated: f64,
    /// `retry_after_ms` attached to randomly drawn rate limits.
    default_retry_after_ms: Option<u64>,
    /// Enforcement window: refuse until the attached clock reaches this.
    not_before_ms: Option<u64>,
    /// Next call index.
    calls: u64,
}

impl Plan {
    fn draw_random(&mut self) -> Option<Fault> {
        let rng = self.rng.as_mut()?;
        let u: f64 = rng.random();
        if u < self.p_rate_limit {
            Some(Fault::RateLimit {
                retry_after_ms: self.default_retry_after_ms,
            })
        } else if u < self.p_rate_limit + self.p_outage {
            Some(Fault::Outage)
        } else if u < self.p_rate_limit + self.p_outage + self.p_truncated {
            Some(Fault::TruncatedPage)
        } else {
            None
        }
    }
}

/// A scripted fault-injecting decorator around any [`SearchInterface`].
///
/// Same seed + same call sequence ⇒ same faults, so every failure test is
/// replayable. `queries_issued` delegates to the wrapped server: refusals at
/// the gate are never charged, truncated pages are (see [`Fault`]).
pub struct FaultyServer {
    inner: Arc<dyn SearchInterface>,
    plan: Mutex<Plan>,
    clock: Option<Arc<dyn Clock>>,
    injected: AtomicU64,
}

impl FaultyServer {
    /// Wrap `inner` with an empty schedule (no faults until configured).
    pub fn new(inner: Arc<dyn SearchInterface>) -> Self {
        FaultyServer {
            inner,
            plan: Mutex::new(Plan {
                scripted: BTreeMap::new(),
                dead_after: None,
                rng: None,
                p_rate_limit: 0.0,
                p_outage: 0.0,
                p_truncated: 0.0,
                default_retry_after_ms: None,
                not_before_ms: None,
                calls: 0,
            }),
            clock: None,
            injected: AtomicU64::new(0),
        }
    }

    /// Script `fault` at 0-based call index `call` (counted over all query
    /// methods, refused calls included).
    pub fn with_fault_at(self, call: u64, fault: Fault) -> Self {
        self.plan.lock().scripted.insert(call, fault);
        self
    }

    /// Script a storm: the same fault at `len` consecutive call indices
    /// starting at `start`.
    pub fn with_storm(self, start: u64, len: u64, fault: Fault) -> Self {
        {
            let mut plan = self.plan.lock();
            for i in start..start.saturating_add(len) {
                plan.scripted.insert(i, fault.clone());
            }
        }
        self
    }

    /// Refuse every call from index `call` on with an outage — a backend
    /// that dies and never comes back.
    pub fn with_permanent_outage_from(self, call: u64) -> Self {
        self.plan.lock().dead_after = Some(call);
        self
    }

    /// Seeded random schedule: each unscripted call independently faults
    /// with the given probabilities (in order: rate limit, outage,
    /// truncated page). Deterministic per seed; replayable.
    pub fn with_random_faults(
        self,
        seed: u64,
        p_rate_limit: f64,
        p_outage: f64,
        p_truncated: f64,
    ) -> Self {
        debug_assert!(p_rate_limit + p_outage + p_truncated <= 1.0);
        {
            let mut plan = self.plan.lock();
            plan.rng = Some(StdRng::seed_from_u64(seed));
            plan.p_rate_limit = p_rate_limit;
            plan.p_outage = p_outage;
            plan.p_truncated = p_truncated;
        }
        self
    }

    /// Attach `retry_after_ms` to randomly drawn rate-limit faults.
    pub fn with_retry_after(self, ms: u64) -> Self {
        self.plan.lock().default_retry_after_ms = Some(ms);
        self
    }

    /// Attach a clock and *enforce* `retry_after_ms` windows: after a
    /// rate-limit fault with a hint, every call before the window elapses
    /// is refused again with the remaining wait.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Total schedule-indexed calls seen (scheduled refusals included).
    /// Premature retries refused by an enforced retry-after window are the
    /// one exception: they consume no schedule index (so scripted faults
    /// cannot be skipped) and are counted in
    /// [`FaultyServer::faults_injected`] only.
    pub fn calls_seen(&self) -> u64 {
        self.plan.lock().calls
    }

    /// Total faults injected (scheduled faults plus enforcement refusals).
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The wrapped server.
    pub fn inner(&self) -> &Arc<dyn SearchInterface> {
        &self.inner
    }

    fn decide(&self) -> Decision {
        let mut plan = self.plan.lock();
        // An enforced retry-after window refuses premature retries *before*
        // a call index is assigned, so they consume nothing from the
        // schedule: scripted fault indices stay aligned with the sequence a
        // well-behaved caller sees, and an impatient caller cannot skip a
        // scheduled fault. Such refusals show up in `faults_injected`, not
        // `calls_seen`.
        if let (Some(clock), Some(until)) = (self.clock.as_deref(), plan.not_before_ms) {
            let now = clock.now_ms();
            if now < until {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Decision::Refuse(ServerError::RateLimited {
                    retry_after_ms: Some(until - now),
                });
            }
            plan.not_before_ms = None;
        }
        let idx = plan.calls;
        plan.calls += 1;
        if let Some(dead) = plan.dead_after {
            if idx >= dead {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Decision::Refuse(ServerError::unavailable(
                    "injected outage (backend permanently down)",
                ));
            }
        }
        let fault = plan.scripted.remove(&idx).or_else(|| plan.draw_random());
        match fault {
            None => Decision::Forward,
            Some(f) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                match f {
                    Fault::RateLimit { retry_after_ms } => {
                        if let (Some(clock), Some(ms)) = (self.clock.as_deref(), retry_after_ms) {
                            plan.not_before_ms = Some(clock.now_ms() + ms);
                        }
                        Decision::Refuse(ServerError::RateLimited { retry_after_ms })
                    }
                    Fault::Outage => {
                        Decision::Refuse(ServerError::unavailable("injected outage (503)"))
                    }
                    Fault::TruncatedPage => Decision::ForwardThenDrop,
                }
            }
        }
    }
}

/// The error an adapter reports for a page whose payload was lost in
/// transit after the backend answered (and charged) the query.
fn truncated_in_transit(tuples_lost: usize) -> ServerError {
    ServerError::unavailable(format!(
        "truncated page: {tuples_lost} tuples lost in transit"
    ))
}

impl std::fmt::Debug for FaultyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyServer")
            .field("calls_seen", &self.calls_seen())
            .field("faults_injected", &self.faults_injected())
            .finish()
    }
}

impl SearchInterface for FaultyServer {
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn query(&self, q: &Query) -> Result<QueryResponse, ServerError> {
        match self.decide() {
            Decision::Refuse(e) => Err(e),
            Decision::Forward => self.inner.query(q),
            Decision::ForwardThenDrop => {
                let resp = self.inner.query(q)?;
                Err(truncated_in_transit(resp.tuples.len()))
            }
        }
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }

    fn cost_units_issued(&self) -> u64 {
        self.inner.cost_units_issued()
    }

    fn query_page(&self, q: &Query, page: usize) -> Result<QueryResponse, ServerError> {
        match self.decide() {
            Decision::Refuse(e) => Err(e),
            Decision::Forward => self.inner.query_page(q, page),
            Decision::ForwardThenDrop => {
                let resp = self.inner.query_page(q, page)?;
                Err(truncated_in_transit(resp.tuples.len()))
            }
        }
    }

    fn query_ordered(
        &self,
        q: &Query,
        attr: AttrId,
        dir: Direction,
        page: usize,
    ) -> Result<OrderedPage, ServerError> {
        match self.decide() {
            Decision::Refuse(e) => Err(e),
            Decision::Forward => self.inner.query_ordered(q, attr, dir, page),
            Decision::ForwardThenDrop => {
                let p = self.inner.query_ordered(q, attr, dir, page)?;
                Err(truncated_in_transit(p.tuples.len()))
            }
        }
    }

    // Mutation-feed reads are metadata, not searches: they bypass the
    // fault schedule (consuming no call index) so a failure script stays
    // aligned with the query methods it was written against.
    fn mutation_seq(&self) -> u64 {
        self.inner.mutation_seq()
    }

    fn mutations_since(&self, since: u64) -> Result<MutationLog, ServerError> {
        self.inner.mutations_since(since)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use crate::sim::SimServer;
    use crate::system_rank::SystemRank;
    use qrs_types::{Dataset, OrdinalAttr, Tuple, TupleId};

    fn sim(k: usize) -> Arc<SimServer> {
        let schema = Schema::new(vec![OrdinalAttr::new("x", 0.0, 9.0)], vec![]);
        let tuples = (0..10)
            .map(|i| Tuple::new(TupleId(i), vec![f64::from(i)], vec![]))
            .collect();
        let ds = Dataset::new(schema, tuples).unwrap();
        Arc::new(SimServer::new(ds, SystemRank::by_attr_desc(AttrId(0)), k))
    }

    #[test]
    fn scripted_faults_fire_at_exact_indices() {
        let s = FaultyServer::new(sim(3))
            .with_fault_at(1, Fault::Outage)
            .with_fault_at(
                2,
                Fault::RateLimit {
                    retry_after_ms: Some(40),
                },
            );
        assert!(s.query(&Query::all()).is_ok()); // call 0
        let e = s.query(&Query::all()).unwrap_err(); // call 1
        assert!(matches!(e, ServerError::Unavailable { .. }));
        let e = s.query(&Query::all()).unwrap_err(); // call 2
        assert_eq!(
            e,
            ServerError::RateLimited {
                retry_after_ms: Some(40)
            }
        );
        assert!(s.query(&Query::all()).is_ok()); // call 3
        assert_eq!(s.calls_seen(), 4);
        assert_eq!(s.faults_injected(), 2);
        // Gate refusals are never charged to the backend.
        assert_eq!(s.queries_issued(), 2);
    }

    #[test]
    fn truncated_pages_charge_the_backend() {
        let s = FaultyServer::new(sim(3)).with_fault_at(0, Fault::TruncatedPage);
        let e = s.query(&Query::all()).unwrap_err();
        assert!(matches!(
            e,
            ServerError::Unavailable { ref reason } if reason.contains("truncated")
        ));
        // The backend answered (and charged) before the payload was lost.
        assert_eq!(s.queries_issued(), 1);
        assert!(s.query(&Query::all()).is_ok());
        assert_eq!(s.queries_issued(), 2);
    }

    #[test]
    fn permanent_outage_refuses_forever() {
        let s = FaultyServer::new(sim(3)).with_permanent_outage_from(1);
        assert!(s.query(&Query::all()).is_ok());
        for _ in 0..5 {
            assert!(s.query(&Query::all()).unwrap_err().is_transient());
        }
        assert_eq!(s.queries_issued(), 1);
        assert_eq!(s.faults_injected(), 5);
    }

    #[test]
    fn retry_after_window_is_enforced_against_the_clock() {
        let clock = Arc::new(MockClock::new());
        let s = FaultyServer::new(sim(3))
            .with_fault_at(
                1,
                Fault::RateLimit {
                    retry_after_ms: Some(100),
                },
            )
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        assert!(s.query(&Query::all()).is_ok()); // call 0
        let e = s.query(&Query::all()).unwrap_err(); // call 1: opens the window
        assert_eq!(
            e,
            ServerError::RateLimited {
                retry_after_ms: Some(100)
            }
        );
        // A premature retry is refused with the *remaining* wait.
        clock.advance(30);
        let e = s.query(&Query::all()).unwrap_err();
        assert_eq!(
            e,
            ServerError::RateLimited {
                retry_after_ms: Some(70)
            }
        );
        // Honoring the hint clears the window.
        clock.advance(70);
        assert!(s.query(&Query::all()).is_ok());
        assert_eq!(s.queries_issued(), 2);
        assert_eq!(s.faults_injected(), 2);
    }

    #[test]
    fn premature_retries_cannot_skip_scripted_faults() {
        // An impatient caller hammering inside an enforced window must not
        // consume schedule indices: the fault scripted at index 2 still
        // fires once the window clears.
        let clock = Arc::new(MockClock::new());
        let s = FaultyServer::new(sim(3))
            .with_fault_at(
                1,
                Fault::RateLimit {
                    retry_after_ms: Some(100),
                },
            )
            .with_fault_at(2, Fault::Outage)
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        assert!(s.query(&Query::all()).is_ok()); // index 0
        assert!(s.query(&Query::all()).is_err()); // index 1: opens the window
                                                  // Three premature retries: refused, no index consumed.
        for _ in 0..3 {
            let e = s.query(&Query::all()).unwrap_err();
            assert!(matches!(e, ServerError::RateLimited { .. }));
        }
        assert_eq!(s.calls_seen(), 2);
        clock.advance(100);
        // The scripted outage at index 2 still fires.
        let e = s.query(&Query::all()).unwrap_err();
        assert!(matches!(e, ServerError::Unavailable { .. }));
        assert!(s.query(&Query::all()).is_ok()); // index 3
        assert_eq!(s.calls_seen(), 4);
        // 1 scripted rate limit + 3 enforcement refusals + 1 scripted outage.
        assert_eq!(s.faults_injected(), 5);
    }

    #[test]
    fn random_schedule_is_seed_deterministic() {
        let drive = |seed: u64| -> (Vec<bool>, u64) {
            let s = FaultyServer::new(sim(3)).with_random_faults(seed, 0.25, 0.15, 0.10);
            let outcomes = (0..200).map(|_| s.query(&Query::all()).is_ok()).collect();
            (outcomes, s.faults_injected())
        };
        let (a, fa) = drive(42);
        let (b, fb) = drive(42);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_eq!(fa, fb);
        assert!(
            fa > 0,
            "fault probabilities of 0.5 never fired in 200 calls"
        );
        let (c, _) = drive(43);
        assert_ne!(a, c, "distinct seeds should differ (within 200 calls)");
    }

    #[test]
    fn delegates_shape_and_capabilities() {
        let inner = sim(4);
        let s = FaultyServer::new(Arc::clone(&inner) as Arc<dyn SearchInterface>);
        assert_eq!(s.k(), 4);
        assert_eq!(s.capabilities(), inner.capabilities());
        assert_eq!(s.schema().num_ordinal(), 1);
    }
}
