//! Per-call latency injection for any [`SearchInterface`].
//!
//! Real hidden databases answer over the network: tens of milliseconds per
//! query, not the nanoseconds of the in-process [`crate::SimServer`]. The
//! parallel-federation and concurrent-service layers only pay off against
//! *slow* backends, so [`LatencyServer`] makes slowness injectable: every
//! query method sleeps `latency_ms` on the attached [`Clock`] before
//! delegating. With a [`crate::SystemClock`] the sleep is real (benchmarks
//! measure genuine wall-clock overlap); with a [`crate::MockClock`] it is
//! virtual and recorded (tests assert latency budgets without waiting).
//!
//! The decorator is thread-safe as long as its inner server is — sleeps
//! happen outside any lock, so concurrent callers overlap their waits.

use crate::clock::Clock;
use crate::interface::{Capabilities, OrderedPage, SearchInterface};
use qrs_types::{AttrId, Direction, MutationLog, Query, QueryResponse, Schema, ServerError};
use std::sync::Arc;

/// Wraps a [`SearchInterface`], adding a fixed per-call latency on an
/// injectable clock. See the module docs.
pub struct LatencyServer {
    inner: Arc<dyn SearchInterface>,
    clock: Arc<dyn Clock>,
    latency_ms: u64,
}

impl LatencyServer {
    /// Delay every query method by `latency_ms` on `clock`.
    pub fn new(inner: Arc<dyn SearchInterface>, clock: Arc<dyn Clock>, latency_ms: u64) -> Self {
        LatencyServer {
            inner,
            clock,
            latency_ms,
        }
    }

    /// The wrapped server.
    pub fn inner(&self) -> &Arc<dyn SearchInterface> {
        &self.inner
    }

    fn delay(&self) {
        if self.latency_ms > 0 {
            self.clock.sleep_ms(self.latency_ms);
        }
    }
}

impl std::fmt::Debug for LatencyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyServer")
            .field("latency_ms", &self.latency_ms)
            .finish()
    }
}

impl SearchInterface for LatencyServer {
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn k(&self) -> usize {
        self.inner.k()
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn query(&self, q: &Query) -> Result<QueryResponse, ServerError> {
        self.delay();
        self.inner.query(q)
    }

    fn queries_issued(&self) -> u64 {
        self.inner.queries_issued()
    }

    fn cost_units_issued(&self) -> u64 {
        self.inner.cost_units_issued()
    }

    fn query_page(&self, q: &Query, page: usize) -> Result<QueryResponse, ServerError> {
        self.delay();
        self.inner.query_page(q, page)
    }

    fn query_ordered(
        &self,
        q: &Query,
        attr: AttrId,
        dir: Direction,
        page: usize,
    ) -> Result<OrderedPage, ServerError> {
        self.delay();
        self.inner.query_ordered(q, attr, dir, page)
    }

    // Mutation-feed traffic is metadata, not a search: forwarded without
    // the injected latency (a watermark header costs nothing next to a
    // ranked-retrieval round trip).
    fn mutation_seq(&self) -> u64 {
        self.inner.mutation_seq()
    }

    fn mutations_since(&self, since: u64) -> Result<MutationLog, ServerError> {
        self.inner.mutations_since(since)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use crate::sim::SimServer;
    use crate::system_rank::SystemRank;
    use qrs_types::{Dataset, OrdinalAttr, Tuple, TupleId};

    #[test]
    fn every_query_sleeps_the_configured_latency_on_the_clock() {
        let schema = Schema::new(vec![OrdinalAttr::new("x", 0.0, 9.0)], vec![]);
        let tuples = (0..10)
            .map(|i| Tuple::new(TupleId(i), vec![f64::from(i)], vec![]))
            .collect();
        let ds = Dataset::new(schema, tuples).unwrap();
        let sim = Arc::new(SimServer::new(ds, SystemRank::by_attr_desc(AttrId(0)), 3));
        let clock = Arc::new(MockClock::new());
        let slow = LatencyServer::new(
            Arc::clone(&sim) as Arc<dyn SearchInterface>,
            Arc::clone(&clock) as Arc<dyn Clock>,
            25,
        );
        assert!(slow.query(&Query::all()).is_ok());
        assert!(slow.query(&Query::all()).is_ok());
        assert_eq!(clock.sleeps(), vec![25, 25]);
        // Shape and charging delegate untouched.
        assert_eq!(slow.k(), 3);
        assert_eq!(slow.queries_issued(), 2);
        assert_eq!(slow.capabilities(), sim.capabilities());
    }

    #[test]
    fn zero_latency_never_touches_the_clock() {
        let schema = Schema::new(vec![OrdinalAttr::new("x", 0.0, 9.0)], vec![]);
        let ds = Dataset::new(schema, vec![Tuple::new(TupleId(0), vec![1.0], vec![])]).unwrap();
        let sim = Arc::new(SimServer::new(ds, SystemRank::by_attr_desc(AttrId(0)), 3));
        let clock = Arc::new(MockClock::new());
        let slow = LatencyServer::new(
            sim as Arc<dyn SearchInterface>,
            Arc::clone(&clock) as Arc<dyn Clock>,
            0,
        );
        assert!(slow.query(&Query::all()).is_ok());
        assert!(clock.sleeps().is_empty());
    }
}
