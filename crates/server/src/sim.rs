//! The simulated hidden web database (the paper's §6.1 offline setup).
//!
//! [`SimServer`] owns a [`Dataset`], a proprietary [`SystemRank`] and the
//! interface constant `k`. A query is answered by walking the tuples in
//! system-rank order and returning the first `k` matches — exactly how a
//! ranked-retrieval backend behaves — and the response is flagged *overflow*
//! iff a `(k+1)`-th match exists. Every query bumps an atomic counter; the
//! counter is the experiment metric.
//!
//! Failure realism: [`SimServer::with_rate_limit`] makes the server refuse
//! queries past a hard cap with [`ServerError::RateLimited`] — the same
//! refusal a real metered API sends — so integration tests can exercise the
//! middleware's error paths end to end.
//!
//! Data-change realism: the inventory is *mutable*. [`SimServer::insert`],
//! [`SimServer::delete`] and [`SimServer::update`] commit sequence-stamped
//! changes (rebuilding the rank indexes under one write lock, so queries
//! always see a consistent snapshot) and the server advertises
//! [`Capability::MutationFeed`]: clients poll
//! [`SearchInterface::mutations_since`] with their last watermark and
//! delta-repair instead of re-driving. A capped log
//! ([`SimServer::with_mutation_log_cap`]) models real feeds that compact —
//! stragglers see [`MutationLog::gap`] and rebuild.

use crate::interface::{Capabilities, OrderedPage, SearchInterface};
use crate::system_rank::SystemRank;
use parking_lot::{Mutex, RwLock};
use qrs_types::value::cmp_f64;
use qrs_types::{
    AttrId, Capability, CostModel, Dataset, Direction, Endpoint, FilterSupport, Mutation,
    MutationKind, MutationLog, Query, QueryResponse, RequestKind, Schema, ServerError, Tuple,
    TupleId, TypeError,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The mutable backing store: tuples plus the derived rank indexes and the
/// retained mutation log, all swapped under one write lock so queries always
/// see a consistent snapshot.
#[derive(Debug)]
struct Store {
    tuples: Vec<Arc<Tuple>>,
    /// Tuple indices sorted by ascending system score (ties by id).
    system_order: Vec<u32>,
    /// Per-ordinal-attribute index sorted ascending by value (for ORDER BY).
    attr_order: Vec<Vec<u32>>,
    /// Sequence-stamped change log, oldest first, contiguous in `seq`.
    deltas: VecDeque<Mutation>,
}

impl Store {
    /// Recompute both rank indexes from the current tuple set. The
    /// simulator favors obviousness over speed here: a full O(n log n)
    /// rebuild per mutation, exactly mirroring `SimServer::new`.
    fn rebuild_orders(&mut self, schema: &Schema, system_rank: &SystemRank) {
        let mut system_order: Vec<u32> = (0..self.tuples.len() as u32).collect();
        system_order.sort_by(|&a, &b| {
            let (ta, tb) = (&self.tuples[a as usize], &self.tuples[b as usize]);
            cmp_f64(system_rank.score(ta), system_rank.score(tb)).then(ta.id.cmp(&tb.id))
        });
        self.system_order = system_order;
        self.attr_order = schema
            .attr_ids()
            .map(|attr| {
                let mut idx: Vec<u32> = (0..self.tuples.len() as u32).collect();
                idx.sort_by(|&a, &b| {
                    let (ta, tb) = (&self.tuples[a as usize], &self.tuples[b as usize]);
                    cmp_f64(ta.ord(attr), tb.ord(attr)).then(ta.id.cmp(&tb.id))
                });
                idx
            })
            .collect();
    }

    /// Matching tuples in system-rank order, lazily.
    fn matches_in_system_order<'a>(
        &'a self,
        q: &'a Query,
    ) -> impl Iterator<Item = &'a Arc<Tuple>> + 'a {
        self.system_order
            .iter()
            .map(move |&i| &self.tuples[i as usize])
            .filter(move |t| q.matches(t))
    }
}

/// Builder-configured simulated server.
#[derive(Debug)]
pub struct SimServer {
    schema: Arc<Schema>,
    store: RwLock<Store>,
    /// Sequence number of the latest committed mutation (0 = pristine).
    /// Mutators serialize on the store's write lock, so the counter is
    /// never contended; it is atomic only so watermark reads are lock-free.
    seq: AtomicU64,
    /// Retain at most this many mutation-log entries (None = unbounded).
    /// Compaction past a client's watermark surfaces as `MutationLog::gap`.
    mutation_log_cap: Option<usize>,
    k: usize,
    counter: AtomicU64,
    paging: bool,
    order_by: Vec<AttrId>,
    /// Deepest page served per query (None = unlimited, given `paging`).
    max_pages: Option<usize>,
    /// Conjunct arity cap per query (None = unlimited).
    max_predicates: Option<usize>,
    /// Explicit per-attribute filter-support overrides (sparse; schema
    /// `point_only` attributes implicitly degrade to `Point`).
    filters: Vec<(AttrId, FilterSupport)>,
    /// Refuse queries once the counter reaches this (None = unmetered).
    rate_limit: Option<u64>,
    /// How charged queries are priced; the weighted ledger accumulates in
    /// `cost_counter`. Flat by default (cost ≡ query count).
    cost_model: CostModel,
    /// What `capabilities()` *advertises* when it differs from what
    /// `cost_model` actually bills (None = honest site). The drift hook
    /// the adaptive-planner tests lean on: a stale public price list over
    /// live metered billing.
    advertised_cost: Option<CostModel>,
    /// Weighted cost units charged so far, under `cost_model`.
    cost_counter: AtomicU64,
    system_rank: SystemRank,
    /// Log of issued queries (enabled in tests/debug experiments only).
    log: Option<Mutex<Vec<Query>>>,
}

impl SimServer {
    /// A server answering with at most `k` tuples ranked by `system_rank`.
    pub fn new(dataset: Dataset, system_rank: SystemRank, k: usize) -> Self {
        assert!(k >= 1, "the interface k must be at least 1");
        let schema = Arc::clone(dataset.schema());
        let mut store = Store {
            tuples: dataset.tuples().to_vec(),
            system_order: Vec::new(),
            attr_order: Vec::new(),
            deltas: VecDeque::new(),
        };
        store.rebuild_orders(&schema, &system_rank);
        SimServer {
            schema,
            store: RwLock::new(store),
            seq: AtomicU64::new(0),
            mutation_log_cap: None,
            k,
            counter: AtomicU64::new(0),
            paging: false,
            order_by: Vec::new(),
            max_pages: None,
            max_predicates: None,
            filters: Vec::new(),
            rate_limit: None,
            cost_model: CostModel::flat(),
            advertised_cost: None,
            cost_counter: AtomicU64::new(0),
            system_rank,
            log: None,
        }
    }

    /// Meter queries by `model`: the server advertises it through
    /// [`SearchInterface::capabilities`] and charges its weighted ledger
    /// ([`SearchInterface::cost_units_issued`]) by it — prediction and
    /// billing share one price list.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Advertise `model` through [`SearchInterface::capabilities`] while
    /// the billing model set by [`SimServer::with_cost_model`] keeps
    /// charging the ledger — a site whose public price list went stale.
    /// Static planning prices candidates under the advertised lie; the
    /// calibration layer learns the real ratio from charged deltas.
    pub fn with_advertised_cost(mut self, model: CostModel) -> Self {
        self.advertised_cost = Some(model);
        self
    }

    /// Enable page turns on the system ranking (real sites' "next page").
    pub fn with_paging(mut self) -> Self {
        self.paging = true;
        self
    }

    /// Advertise public `ORDER BY` support on the given attributes (§5).
    pub fn with_order_by(mut self, attrs: Vec<AttrId>) -> Self {
        self.order_by = attrs;
        self
    }

    /// Stop serving result pages past `pages` per query ("showing results
    /// 1–1000"). Deeper page turns are refused, uncharged, with
    /// [`ServerError::Unsupported`]`(`[`Capability::PageDepth`]`)`.
    pub fn with_max_pages(mut self, pages: usize) -> Self {
        assert!(pages >= 1, "a paging site serves at least one page");
        self.max_pages = Some(pages);
        self
    }

    /// Refuse queries carrying more than `n` predicates — the typical
    /// flight-site cap on simultaneous search criteria. Refusals are
    /// uncharged and typed ([`Capability::PredicateArity`]).
    pub fn with_max_predicates(mut self, n: usize) -> Self {
        assert!(n >= 1, "a searchable site accepts at least one predicate");
        self.max_predicates = Some(n);
        self
    }

    /// Restrict filter support on one attribute: [`FilterSupport::Point`]
    /// models a dropdown (point predicates only), [`FilterSupport::None`] a
    /// browse-only column. Violations are refused, uncharged, with
    /// [`Capability::RangeFilter`]/[`Capability::PointFilter`] named in the
    /// error.
    pub fn with_filter_support(mut self, attr: AttrId, support: FilterSupport) -> Self {
        self.filters.retain(|(a, _)| *a != attr);
        self.filters.push((attr, support));
        self
    }

    /// Refuse queries with [`ServerError::RateLimited`] once `limit` queries
    /// have been answered — a hard server-side quota, as opposed to the
    /// middleware's own soft budget.
    pub fn with_rate_limit(mut self, limit: u64) -> Self {
        self.rate_limit = Some(limit);
        self
    }

    /// Record every issued query (for tests asserting query shapes).
    pub fn with_query_log(mut self) -> Self {
        self.log = Some(Mutex::new(Vec::new()));
        self
    }

    /// Retain at most `n` mutation-log entries. Clients whose watermark
    /// falls behind the compacted prefix get [`MutationLog::gap`] from
    /// [`SearchInterface::mutations_since`] and must rebuild from scratch.
    pub fn with_mutation_log_cap(mut self, n: usize) -> Self {
        self.mutation_log_cap = Some(n);
        self
    }

    /// A snapshot of the backing data as of now (test/experiment ground
    /// truth — a real hidden database would not expose this). Tuples are
    /// `Arc`-shared with the store, so the copy is shallow.
    pub fn dataset(&self) -> Dataset {
        let store = self.store.read();
        Dataset::from_shared(Arc::clone(&self.schema), store.tuples.clone())
    }

    /// Insert a new tuple. Returns the mutation's sequence number, or a
    /// typed error if the tuple fails schema validation or its id is
    /// already present.
    pub fn insert(&self, t: Tuple) -> Result<u64, TypeError> {
        Dataset::validate_tuple(&self.schema, &t)?;
        let mut store = self.store.write();
        if store.tuples.iter().any(|e| e.id == t.id) {
            return Err(TypeError::DuplicateTupleId { id: t.id });
        }
        let t = Arc::new(t);
        store.tuples.push(Arc::clone(&t));
        Ok(self.commit(&mut store, MutationKind::Insert(t)))
    }

    /// Delete the tuple with `id`. Returns the mutation's sequence number,
    /// or `None` (and no mutation) when the id is not present.
    pub fn delete(&self, id: TupleId) -> Option<u64> {
        let mut store = self.store.write();
        let pos = store.tuples.iter().position(|e| e.id == id)?;
        store.tuples.remove(pos);
        Some(self.commit(&mut store, MutationKind::Delete(id)))
    }

    /// Replace the tuple with `t.id` by `t` — delete-then-insert under one
    /// sequence number. Returns the mutation's sequence number, or a typed
    /// error if `t` fails schema validation or its id is not present.
    pub fn update(&self, t: Tuple) -> Result<u64, TypeError> {
        Dataset::validate_tuple(&self.schema, &t)?;
        let mut store = self.store.write();
        let Some(pos) = store.tuples.iter().position(|e| e.id == t.id) else {
            return Err(TypeError::UnknownTupleId { id: t.id });
        };
        let t = Arc::new(t);
        store.tuples[pos] = Arc::clone(&t);
        Ok(self.commit(&mut store, MutationKind::Update(t)))
    }

    /// Finish a mutation while still holding the write lock: rebuild the
    /// rank indexes, stamp the next sequence number, append to the retained
    /// log and compact it to the configured cap.
    fn commit(&self, store: &mut Store, kind: MutationKind) -> u64 {
        store.rebuild_orders(&self.schema, &self.system_rank);
        // Mutators serialize on the write lock, so this cannot race another
        // commit; Release pairs with the Acquire in `mutation_seq`.
        let seq = self.seq.fetch_add(1, Ordering::AcqRel) + 1;
        store.deltas.push_back(Mutation { seq, kind });
        if let Some(cap) = self.mutation_log_cap {
            while store.deltas.len() > cap {
                store.deltas.pop_front();
            }
        }
        seq
    }

    /// The proprietary ranking (exposed for experiment labeling only).
    pub fn system_rank(&self) -> &SystemRank {
        &self.system_rank
    }

    /// Reset the query and cost ledgers (between experiment runs).
    pub fn reset_counter(&self) {
        self.counter.store(0, Ordering::Relaxed);
        self.cost_counter.store(0, Ordering::Relaxed);
    }

    /// Drain the query log (requires [`SimServer::with_query_log`]).
    pub fn take_log(&self) -> Vec<Query> {
        self.log
            .as_ref()
            .map(|l| std::mem::take(&mut *l.lock()))
            .unwrap_or_default()
    }

    /// Admit (and charge) a query, or refuse it. Refused queries are not
    /// charged — to either ledger: the backend rejected them before doing
    /// any work. Admitted ones charge the raw counter by 1 and the
    /// weighted ledger by the cost model's price for `(q, kind)`.
    fn charge(&self, q: &Query, kind: RequestKind) -> Result<(), ServerError> {
        // NaN endpoints violate the interface contract outright (they
        // compare as after-every-real, matching a surprising set); refuse
        // them uncharged before any site-model negotiation.
        q.validate()
            .map_err(|e| ServerError::invalid_query(e.to_string()))?;
        self.validate_point_only(q)?;
        self.validate_site_model(q)?;
        match self.rate_limit {
            // Atomic check-and-increment so concurrent queries can never
            // exceed the advertised hard cap.
            Some(limit) => {
                self.counter
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                        (c < limit).then_some(c + 1)
                    })
                    .map_err(|_| ServerError::RateLimited {
                        retry_after_ms: None,
                    })?;
            }
            None => {
                self.counter.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.cost_counter
            .fetch_add(self.cost_model.charge(q, kind), Ordering::Relaxed);
        if let Some(log) = &self.log {
            log.lock().push(q.clone());
        }
        Ok(())
    }

    /// Enforce the §5 point-predicate contract: a `point_only` attribute may
    /// only carry point or unbounded predicates.
    fn validate_point_only(&self, q: &Query) -> Result<(), ServerError> {
        for p in q.ranges() {
            if self.schema.ordinal(p.attr).point_only {
                let iv = p.interval;
                let is_point = match (iv.lo, iv.hi) {
                    (Endpoint::Closed(a), Endpoint::Closed(b)) => a == b,
                    (Endpoint::Unbounded, Endpoint::Unbounded) => true,
                    _ => false,
                };
                if !is_point {
                    return Err(ServerError::invalid_query(format!(
                        "attribute {} only supports point predicates, got {}",
                        p.attr, iv
                    )));
                }
            }
        }
        Ok(())
    }

    /// Enforce the configured site model: conjunct arity cap and explicit
    /// per-attribute filter restrictions. Violations are typed capability
    /// refusals (never charged), so a planner that preflighted correctly
    /// never sees them.
    fn validate_site_model(&self, q: &Query) -> Result<(), ServerError> {
        if let Some(cap) = self.max_predicates {
            if q.num_predicates() > cap {
                return Err(ServerError::Unsupported(Capability::PredicateArity(
                    q.num_predicates(),
                )));
            }
        }
        for p in q.ranges() {
            if p.interval.is_all() {
                continue;
            }
            let support = self.effective_filter_support(p.attr);
            if !support.allows_point() {
                return Err(ServerError::Unsupported(Capability::PointFilter(p.attr)));
            }
            if !support.allows_range() && !p.interval.is_point() {
                return Err(ServerError::Unsupported(Capability::RangeFilter(p.attr)));
            }
        }
        Ok(())
    }

    /// The filter support this server actually enforces on `attr`: the
    /// explicit override (default: full ranges), clamped to at most
    /// [`FilterSupport::Point`] for schema `point_only` attributes — the
    /// §5 contract binds regardless of configuration. Both the
    /// advertisement ([`SearchInterface::capabilities`]) and the
    /// enforcement ([`SimServer::validate_site_model`]) read this one
    /// definition, so the server can never advertise what it would refuse.
    fn effective_filter_support(&self, attr: AttrId) -> FilterSupport {
        let configured = self
            .filters
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, s)| *s)
            .unwrap_or_default();
        if self.schema.ordinal(attr).point_only {
            configured.min(FilterSupport::Point)
        } else {
            configured
        }
    }

    /// Refuse page turns past the configured depth cap, uncharged.
    fn validate_page_depth(&self, page: usize) -> Result<(), ServerError> {
        if let Some(cap) = self.max_pages {
            if page + 1 > cap {
                return Err(ServerError::Unsupported(Capability::PageDepth(page + 1)));
            }
        }
        Ok(())
    }
}

impl SearchInterface for SimServer {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn k(&self) -> usize {
        self.k
    }

    fn capabilities(&self) -> Capabilities {
        // Advertise exactly what `validate_site_model` enforces — the
        // shared `effective_filter_support` definition, which clamps
        // schema `point_only` attributes to Point even past an explicit
        // override.
        let filters = self
            .schema
            .attr_ids()
            .filter_map(|attr| {
                let support = self.effective_filter_support(attr);
                (support != FilterSupport::Range).then_some((attr, support))
            })
            .collect();
        Capabilities {
            paging: self.paging,
            order_by: self.order_by.clone(),
            max_pages: self.max_pages,
            max_page_size: Some(self.k),
            max_predicates: self.max_predicates,
            filters,
            cost: self
                .advertised_cost
                .clone()
                .unwrap_or_else(|| self.cost_model.clone()),
            mutation_feed: true,
        }
    }

    fn query(&self, q: &Query) -> Result<QueryResponse, ServerError> {
        self.charge(q, RequestKind::TopK)?;
        let store = self.store.read();
        let mut out = Vec::with_capacity(self.k.min(16));
        for t in store.matches_in_system_order(q) {
            if out.len() == self.k {
                return Ok(QueryResponse::new(out, true));
            }
            out.push(Arc::clone(t));
        }
        Ok(QueryResponse::new(out, false))
    }

    fn queries_issued(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    fn cost_units_issued(&self) -> u64 {
        self.cost_counter.load(Ordering::Relaxed)
    }

    fn query_page(&self, q: &Query, page: usize) -> Result<QueryResponse, ServerError> {
        if !self.paging {
            return Err(ServerError::Unsupported(Capability::Paging));
        }
        self.validate_page_depth(page)?;
        self.charge(q, RequestKind::Page)?;
        let store = self.store.read();
        let skip = page * self.k;
        let mut out = Vec::with_capacity(self.k.min(16));
        for (i, t) in store.matches_in_system_order(q).enumerate() {
            if i < skip {
                continue;
            }
            if out.len() == self.k {
                return Ok(QueryResponse::new(out, true));
            }
            out.push(Arc::clone(t));
        }
        Ok(QueryResponse::new(out, false))
    }

    fn query_ordered(
        &self,
        q: &Query,
        attr: AttrId,
        dir: Direction,
        page: usize,
    ) -> Result<OrderedPage, ServerError> {
        if !self.order_by.contains(&attr) {
            return Err(ServerError::Unsupported(Capability::OrderBy(attr)));
        }
        self.validate_page_depth(page)?;
        self.charge(q, RequestKind::Ordered)?;
        let store = self.store.read();
        let idx = &store.attr_order[attr.0];
        let skip = page * self.k;
        let mut out = Vec::with_capacity(self.k.min(16));
        let mut seen = 0usize;
        let mut has_more = false;
        let iter: Box<dyn Iterator<Item = &u32>> = match dir {
            Direction::Asc => Box::new(idx.iter()),
            Direction::Desc => Box::new(idx.iter().rev()),
        };
        for &i in iter {
            let t = &store.tuples[i as usize];
            if !q.matches(t) {
                continue;
            }
            if seen >= skip {
                if out.len() == self.k {
                    has_more = true;
                    break;
                }
                out.push(Arc::clone(t));
            }
            seen += 1;
        }
        Ok(OrderedPage {
            tuples: out,
            has_more,
        })
    }

    fn mutation_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    fn mutations_since(&self, since: u64) -> Result<MutationLog, ServerError> {
        let store = self.store.read();
        let current = self.seq.load(Ordering::Acquire);
        // The retained log is contiguous; a gap means compaction discarded
        // deltas the caller has not seen, so exact replay is impossible.
        let first_retained = store.deltas.front().map(|m| m.seq).unwrap_or(current + 1);
        let gap = since < current && since + 1 < first_retained;
        let deltas = store
            .deltas
            .iter()
            .filter(|m| m.seq > since)
            .cloned()
            .collect();
        Ok(MutationLog { deltas, gap })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::{Interval, OrdinalAttr, QueryOutcome, TupleId};

    fn server(k: usize) -> SimServer {
        // 10 tuples with x = 0..9; system rank = descending x (adversarial
        // for an ascending user preference).
        let schema = Schema::new(vec![OrdinalAttr::new("x", 0.0, 9.0)], vec![]);
        let tuples = (0..10)
            .map(|i| Tuple::new(TupleId(i), vec![f64::from(i)], vec![]))
            .collect();
        let ds = Dataset::new(schema, tuples).unwrap();
        SimServer::new(ds, SystemRank::by_attr_desc(AttrId(0)), k)
    }

    #[test]
    fn overflow_valid_underflow() {
        let s = server(3);
        let all = s.query(&Query::all()).unwrap();
        assert_eq!(all.outcome, QueryOutcome::Overflow);
        assert_eq!(all.tuples.len(), 3);
        // System rank descending: returns x = 9, 8, 7.
        let xs: Vec<f64> = all.tuples.iter().map(|t| t.ord(AttrId(0))).collect();
        assert_eq!(xs, vec![9.0, 8.0, 7.0]);

        let narrow = Query::all().and_range(AttrId(0), Interval::open(3.5, 6.5));
        let r = s.query(&narrow).unwrap();
        assert_eq!(r.outcome, QueryOutcome::Valid);
        assert_eq!(r.tuples.len(), 3);

        let empty = Query::all().and_range(AttrId(0), Interval::open(100.0, 200.0));
        assert_eq!(s.query(&empty).unwrap().outcome, QueryOutcome::Underflow);
        assert_eq!(s.queries_issued(), 3);
    }

    #[test]
    fn exactly_k_matches_is_valid_not_overflow() {
        let s = server(3);
        let q = Query::all().and_range(AttrId(0), Interval::closed(0.0, 2.0));
        let r = s.query(&q).unwrap();
        assert_eq!(r.outcome, QueryOutcome::Valid);
        assert_eq!(r.tuples.len(), 3);
    }

    #[test]
    fn paging_walks_system_order() {
        let s = server(3).with_paging();
        assert!(s.capabilities().supports(Capability::Paging));
        let p0 = s.query_page(&Query::all(), 0).unwrap();
        let p1 = s.query_page(&Query::all(), 1).unwrap();
        let p3 = s.query_page(&Query::all(), 3).unwrap();
        assert!(p0.is_overflow());
        let x1: Vec<f64> = p1.tuples.iter().map(|t| t.ord(AttrId(0))).collect();
        assert_eq!(x1, vec![6.0, 5.0, 4.0]);
        // Last page: only one tuple left, not an overflow.
        assert_eq!(p3.tuples.len(), 1);
        assert!(p3.is_valid());
        assert_eq!(s.queries_issued(), 3);
    }

    #[test]
    fn paging_refused_without_capability() {
        let s = server(3);
        assert_eq!(
            s.query_page(&Query::all(), 0).unwrap_err(),
            ServerError::Unsupported(Capability::Paging)
        );
        // Refused requests are not charged.
        assert_eq!(s.queries_issued(), 0);
    }

    #[test]
    fn order_by_pages_both_directions() {
        let s = server(4).with_order_by(vec![AttrId(0)]);
        assert!(s.capabilities().supports(Capability::OrderBy(AttrId(0))));
        let asc = s
            .query_ordered(&Query::all(), AttrId(0), Direction::Asc, 0)
            .unwrap();
        let xs: Vec<f64> = asc.tuples.iter().map(|t| t.ord(AttrId(0))).collect();
        assert_eq!(xs, vec![0.0, 1.0, 2.0, 3.0]);
        assert!(asc.has_more);
        let desc = s
            .query_ordered(&Query::all(), AttrId(0), Direction::Desc, 2)
            .unwrap();
        let xs: Vec<f64> = desc.tuples.iter().map(|t| t.ord(AttrId(0))).collect();
        assert_eq!(xs, vec![1.0, 0.0]);
        assert!(!desc.has_more);
    }

    #[test]
    fn order_by_refused_on_unadvertised_attribute() {
        let s = server(4).with_order_by(vec![AttrId(0)]);
        assert_eq!(
            s.query_ordered(&Query::all(), AttrId(1), Direction::Asc, 0)
                .unwrap_err(),
            ServerError::Unsupported(Capability::OrderBy(AttrId(1)))
        );
    }

    #[test]
    fn point_only_contract_is_a_typed_refusal() {
        let schema = Schema::new(
            vec![{
                let mut a = OrdinalAttr::new("grade", 0.0, 5.0);
                a.point_only = true;
                a
            }],
            vec![],
        );
        let ds = Dataset::new(schema, vec![Tuple::new(TupleId(0), vec![1.0], vec![])]).unwrap();
        let s = SimServer::new(ds, SystemRank::pseudo_random(1), 2);
        let err = s
            .query(&Query::all().and_range(AttrId(0), Interval::open(0.0, 3.0)))
            .unwrap_err();
        assert!(matches!(err, ServerError::InvalidQuery { .. }));
        assert_eq!(s.queries_issued(), 0);
    }

    #[test]
    fn predicate_arity_cap_refuses_wide_queries_uncharged() {
        let schema = Schema::new(
            vec![
                OrdinalAttr::new("x", 0.0, 9.0),
                OrdinalAttr::new("y", 0.0, 9.0),
                OrdinalAttr::new("z", 0.0, 9.0),
            ],
            vec![],
        );
        let tuples = (0..5)
            .map(|i| Tuple::new(TupleId(i), vec![f64::from(i); 3], vec![]))
            .collect();
        let ds = Dataset::new(schema, tuples).unwrap();
        let s = SimServer::new(ds, SystemRank::pseudo_random(3), 2).with_max_predicates(2);
        let wide = Query::all()
            .and_range(AttrId(0), Interval::open(0.0, 5.0))
            .and_range(AttrId(1), Interval::open(0.0, 5.0))
            .and_range(AttrId(2), Interval::open(0.0, 5.0));
        assert_eq!(
            s.query(&wide).unwrap_err(),
            ServerError::Unsupported(Capability::PredicateArity(3))
        );
        assert_eq!(s.queries_issued(), 0);
        // Two predicates pass.
        let narrow = Query::all()
            .and_range(AttrId(0), Interval::open(0.0, 5.0))
            .and_range(AttrId(1), Interval::open(0.0, 5.0));
        assert!(s.query(&narrow).is_ok());
        assert!(!s.capabilities().supports(Capability::PredicateArity(3)));
    }

    #[test]
    fn filter_support_restrictions_refuse_with_the_missing_capability() {
        let s = server(3)
            .with_filter_support(AttrId(0), FilterSupport::Point)
            .with_query_log();
        // A true range on a point-only filter: refused, names RangeFilter.
        let err = s
            .query(&Query::all().and_range(AttrId(0), Interval::open(1.0, 4.0)))
            .unwrap_err();
        assert_eq!(
            err,
            ServerError::Unsupported(Capability::RangeFilter(AttrId(0)))
        );
        // A point predicate passes.
        assert!(s
            .query(&Query::all().and_range(AttrId(0), Interval::point(4.0)))
            .is_ok());
        // A browse-only attribute refuses even point predicates.
        let s = server(3).with_filter_support(AttrId(0), FilterSupport::None);
        let err = s
            .query(&Query::all().and_range(AttrId(0), Interval::point(4.0)))
            .unwrap_err();
        assert_eq!(
            err,
            ServerError::Unsupported(Capability::PointFilter(AttrId(0)))
        );
        // The unconstrained query still works — and nothing was charged
        // for the refusals.
        assert!(s.query(&Query::all()).is_ok());
        assert_eq!(s.queries_issued(), 1);
    }

    #[test]
    fn page_depth_cap_refuses_deep_pages_uncharged() {
        let s = server(3).with_paging().with_max_pages(2);
        assert!(s.query_page(&Query::all(), 0).is_ok());
        assert!(s.query_page(&Query::all(), 1).is_ok());
        assert_eq!(
            s.query_page(&Query::all(), 2).unwrap_err(),
            ServerError::Unsupported(Capability::PageDepth(3))
        );
        assert_eq!(s.queries_issued(), 2);
        let caps = s.capabilities();
        assert!(caps.supports(Capability::PageDepth(2)));
        assert!(!caps.supports(Capability::PageDepth(3)));
    }

    #[test]
    fn capabilities_advertise_the_full_site_model() {
        let schema = Schema::new(
            vec![
                OrdinalAttr::new("price", 0.0, 9.0),
                OrdinalAttr::point_only("grade", vec![1.0, 2.0, 3.0]),
            ],
            vec![],
        );
        let ds =
            Dataset::new(schema, vec![Tuple::new(TupleId(0), vec![1.0, 2.0], vec![])]).unwrap();
        let s = SimServer::new(ds, SystemRank::pseudo_random(1), 4)
            .with_paging()
            .with_max_pages(20)
            .with_max_predicates(3);
        let caps = s.capabilities();
        assert_eq!(caps.max_page_size, Some(4));
        assert_eq!(caps.max_pages, Some(20));
        assert_eq!(caps.max_predicates, Some(3));
        // Schema point_only degrades the advertised filter support.
        assert_eq!(caps.filter_support(AttrId(1)), FilterSupport::Point);
        assert_eq!(caps.filter_support(AttrId(0)), FilterSupport::Range);
    }

    #[test]
    fn advertisement_never_exceeds_enforcement_on_point_only_attrs() {
        // A misconfigured Range override on a schema point_only attribute
        // must not make capabilities() advertise what validate_point_only
        // would refuse: the advertisement clamps to Point.
        let schema = Schema::new(
            vec![OrdinalAttr::point_only("grade", vec![1.0, 2.0, 3.0])],
            vec![],
        );
        let ds = Dataset::new(schema, vec![Tuple::new(TupleId(0), vec![2.0], vec![])]).unwrap();
        let s = SimServer::new(ds, SystemRank::pseudo_random(1), 2)
            .with_filter_support(AttrId(0), FilterSupport::Range);
        assert_eq!(
            s.capabilities().filter_support(AttrId(0)),
            FilterSupport::Point
        );
        // And the enforcement still refuses the range (schema contract).
        assert!(s
            .query(&Query::all().and_range(AttrId(0), Interval::open(0.0, 3.0)))
            .is_err());
        // Point predicates keep working.
        assert!(s
            .query(&Query::all().and_range(AttrId(0), Interval::point(2.0)))
            .is_ok());
    }

    #[test]
    fn cost_model_is_advertised_and_charged_by() {
        use qrs_types::CostModel;
        let s = server(3)
            .with_paging()
            .with_order_by(vec![AttrId(0)])
            .with_cost_model(
                CostModel::flat()
                    .with_range_cost(2)
                    .with_paged_cost(1)
                    .with_ordered_cost(4),
            );
        assert_eq!(s.capabilities().cost.range_predicate, 2);
        // Plain top-k: base 1.
        s.query(&Query::all()).unwrap();
        assert_eq!(s.cost_units_issued(), 1);
        // Range-filtered: 1 + 2.
        s.query(&Query::all().and_range(AttrId(0), Interval::open(1.0, 5.0)))
            .unwrap();
        assert_eq!(s.cost_units_issued(), 4);
        // Page turn: 1 + 1. Ordered page: 1 + 4.
        s.query_page(&Query::all(), 1).unwrap();
        assert_eq!(s.cost_units_issued(), 6);
        s.query_ordered(&Query::all(), AttrId(0), Direction::Asc, 0)
            .unwrap();
        assert_eq!(s.cost_units_issued(), 11);
        // The raw ledger still counts queries; refusals charge neither.
        assert_eq!(s.queries_issued(), 4);
        assert!(s
            .query_ordered(&Query::all(), AttrId(1), Direction::Asc, 0)
            .is_err());
        assert_eq!(s.cost_units_issued(), 11);
        s.reset_counter();
        assert_eq!((s.queries_issued(), s.cost_units_issued()), (0, 0));
    }

    #[test]
    fn advertised_cost_lies_while_billing_stays_honest() {
        use qrs_types::CostModel;
        let s = server(3)
            .with_cost_model(CostModel::flat().with_range_cost(9))
            .with_advertised_cost(CostModel::flat());
        // Capabilities carry the stale public price list…
        assert!(s.capabilities().cost.is_flat());
        // …but the ledger bills the true model.
        s.query(&Query::all().and_range(AttrId(0), Interval::open(1.0, 5.0)))
            .unwrap();
        assert_eq!(s.cost_units_issued(), 10);
    }

    #[test]
    fn flat_default_keeps_cost_equal_to_query_count() {
        let s = server(3);
        assert!(s.capabilities().cost.is_flat());
        s.query(&Query::all()).unwrap();
        s.query(&Query::all().and_range(AttrId(0), Interval::open(1.0, 5.0)))
            .unwrap();
        assert_eq!(s.cost_units_issued(), s.queries_issued());
    }

    #[test]
    fn rate_limit_refuses_after_cap() {
        let s = server(3).with_rate_limit(2);
        assert!(s.query(&Query::all()).is_ok());
        assert!(s.query(&Query::all()).is_ok());
        let err = s.query(&Query::all()).unwrap_err();
        assert_eq!(
            err,
            ServerError::RateLimited {
                retry_after_ms: None
            }
        );
        assert!(err.is_transient());
        // Refusals are not charged.
        assert_eq!(s.queries_issued(), 2);
    }

    #[test]
    fn nan_predicates_are_refused_uncharged() {
        let s = server(3);
        let err = s
            .query(&Query::all().and_range(AttrId(0), Interval::at_most(f64::NAN)))
            .unwrap_err();
        assert!(matches!(err, ServerError::InvalidQuery { .. }));
        assert!(err.to_string().contains("NaN"));
        assert_eq!(s.queries_issued(), 0);
        assert_eq!(s.cost_units_issued(), 0);
        // Paged and ordered entry points refuse too.
        let s = s.with_paging().with_order_by(vec![AttrId(0)]);
        let bad = Query::all().and_range(AttrId(0), Interval::open(f64::NAN, 1.0));
        assert!(s.query_page(&bad, 0).is_err());
        assert!(s.query_ordered(&bad, AttrId(0), Direction::Asc, 0).is_err());
        assert_eq!(s.queries_issued(), 0);
    }

    #[test]
    fn mutations_advance_the_feed_and_the_answers() {
        let s = server(3);
        assert!(s.capabilities().supports(Capability::MutationFeed));
        assert_eq!(s.mutation_seq(), 0);

        // Delete the system-rank leader (x = 9): answers shift immediately.
        assert_eq!(s.delete(TupleId(9)), Some(1));
        let xs: Vec<f64> = s
            .query(&Query::all())
            .unwrap()
            .tuples
            .iter()
            .map(|t| t.ord(AttrId(0)))
            .collect();
        assert_eq!(xs, vec![8.0, 7.0, 6.0]);

        // Insert a new leader; update an existing tuple upward.
        assert_eq!(s.insert(Tuple::new(TupleId(20), vec![12.0], vec![])), Ok(2));
        assert_eq!(s.update(Tuple::new(TupleId(0), vec![8.5], vec![])), Ok(3));
        assert_eq!(s.mutation_seq(), 3);
        let xs: Vec<f64> = s
            .query(&Query::all())
            .unwrap()
            .tuples
            .iter()
            .map(|t| t.ord(AttrId(0)))
            .collect();
        assert_eq!(xs, vec![12.0, 8.5, 8.0]);

        // The feed replays everything after a watermark, oldest first.
        let log = s.mutations_since(0).unwrap();
        assert!(!log.gap);
        assert_eq!(log.deltas.len(), 3);
        assert_eq!(log.deltas[0].kind, MutationKind::Delete(TupleId(9)));
        assert_eq!(log.deltas[0].seq, 1);
        assert_eq!(log.max_seq(), Some(3));
        let log = s.mutations_since(2).unwrap();
        assert_eq!(log.deltas.len(), 1);
        assert!(matches!(log.deltas[0].kind, MutationKind::Update(_)));
        // At or past the head: empty, no gap.
        assert!(s.mutations_since(3).unwrap().deltas.is_empty());
        assert!(!s.mutations_since(3).unwrap().gap);
        assert!(!s.mutations_since(99).unwrap().gap);

        // Deletes never double-fire; bad mutations are typed refusals.
        assert_eq!(s.delete(TupleId(9)), None);
        assert_eq!(
            s.insert(Tuple::new(TupleId(20), vec![1.0], vec![])),
            Err(TypeError::DuplicateTupleId { id: TupleId(20) })
        );
        assert_eq!(
            s.update(Tuple::new(TupleId(99), vec![1.0], vec![])),
            Err(TypeError::UnknownTupleId { id: TupleId(99) })
        );
        assert_eq!(
            s.insert(Tuple::new(TupleId(30), vec![1.0, 2.0], vec![])),
            Err(TypeError::OrdinalArityMismatch {
                expected: 1,
                got: 2
            })
        );
        // Failed mutations advance nothing.
        assert_eq!(s.mutation_seq(), 3);
        // Mutation traffic is metadata: no query charges anywhere above
        // beyond the two searches this test issued.
        assert_eq!(s.queries_issued(), 2);
    }

    #[test]
    fn compacted_log_reports_a_gap() {
        let s = server(3).with_mutation_log_cap(2);
        s.delete(TupleId(0)).unwrap();
        s.delete(TupleId(1)).unwrap();
        s.delete(TupleId(2)).unwrap(); // seq 3; log now retains {2, 3}
        let log = s.mutations_since(0).unwrap();
        assert!(log.gap, "delta 1 was compacted away");
        assert_eq!(log.deltas.len(), 2);
        // A watermark inside the retained window sees no gap.
        let log = s.mutations_since(1).unwrap();
        assert!(!log.gap);
        assert_eq!(log.deltas.len(), 2);
        // The dataset snapshot tracks the mutations.
        assert_eq!(s.dataset().len(), 7);
    }

    #[test]
    fn query_log_captures_queries() {
        let s = server(2).with_query_log();
        s.query(&Query::all()).unwrap();
        s.query(&Query::all().and_range(AttrId(0), Interval::open(1.0, 2.0)))
            .unwrap();
        let log = s.take_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], Query::all());
    }
}
