//! Named restricted-site profiles — reproducible `SimServer` configurations
//! modeled on the kinds of sites the paper rerank-fronts.
//!
//! The paper's evaluation runs against one idealized interface; real
//! deployments meet a zoo of restrictions (PAPERS.md's hidden-database
//! sampling line works against exactly these): classifieds whose search
//! forms are dropdowns (point predicates only), flight sites capping the
//! number of simultaneous search criteria, storefronts that page but stop
//! at a fixed depth. A [`SiteProfile`] names one such shape and builds a
//! [`SimServer`] enforcing it, so experiments (`qrs-bench`'s
//! `capability_matrix`) and tests sweep the same catalog.
//!
//! The catalog ([`SiteProfile::catalog`]) is deliberately diverse: for each
//! profile the `qrs-service` planner should either find a working algorithm
//! or fail fast with `RerankError::Unplannable` naming what is missing.

use crate::sim::SimServer;
use crate::system_rank::SystemRank;
use qrs_types::{CostModel, Dataset, FilterSupport};

/// A named, reproducible restricted-site shape.
///
/// Build one with a constructor ([`SiteProfile::open_site`],
/// [`SiteProfile::classifieds`], …), then [`SiteProfile::build`] a
/// [`SimServer`] over any dataset. The profile's restrictions apply to
/// *every* ordinal attribute uniformly (per-attribute mixes are built
/// directly via [`SimServer::with_filter_support`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteProfile {
    /// Stable identifier, used as the experiment row label.
    pub name: &'static str,
    /// Interface page size `k`.
    pub k: usize,
    /// Whether the site serves page turns on the system ranking.
    pub paging: bool,
    /// Page-depth cap, given `paging` (`None` = unlimited).
    pub max_pages: Option<usize>,
    /// Conjunct arity cap per query (`None` = unlimited).
    pub max_predicates: Option<usize>,
    /// Filter support applied to every ordinal attribute.
    pub filter: FilterSupport,
    /// Whether the site publicly offers `ORDER BY` on every attribute.
    pub order_by_all: bool,
    /// How the site meters queries: advertised through capabilities and
    /// charged by the built server's weighted ledger. Flat for sites that
    /// bill every query the same.
    pub cost: CostModel,
}

impl SiteProfile {
    /// The paper's idealized interface: range filters everywhere, paging,
    /// no caps. Every algorithm plans here — the matrix baseline.
    pub fn open_site(k: usize) -> Self {
        SiteProfile {
            name: "open_site",
            k,
            paging: true,
            max_pages: None,
            max_predicates: None,
            filter: FilterSupport::Range,
            order_by_all: false,
            cost: CostModel::flat(),
        }
    }

    /// A dropdown-only classifieds site: every attribute accepts point
    /// predicates only, but paging is unlimited — so the exact fallback is
    /// paging the whole result down and reranking locally.
    pub fn classifieds(k: usize) -> Self {
        SiteProfile {
            name: "classifieds",
            k,
            paging: true,
            max_pages: None,
            max_predicates: None,
            filter: FilterSupport::Point,
            order_by_all: false,
            cost: CostModel::flat(),
        }
    }

    /// A flight-search site: full range filters but at most three search
    /// criteria per query, and no page turns (each query answers once).
    /// Filtered searches are the metered path: each range criterion adds a
    /// unit on top of the base fare query.
    pub fn flight_site(k: usize) -> Self {
        SiteProfile {
            name: "flight_site",
            k,
            paging: false,
            max_pages: None,
            max_predicates: Some(3),
            filter: FilterSupport::Range,
            order_by_all: false,
            cost: CostModel::flat().with_range_cost(1),
        }
    }

    /// A browse-only storefront: no attribute filters at all, public
    /// `ORDER BY` on every column, paging capped at twenty pages — the
    /// "showing results 1–N" wall. The `ORDER BY` view is the expensive
    /// code path (2 extra units per sorted page), so plain page turns are
    /// the cheap way in when the inventory is shallow enough to drain.
    pub fn storefront(k: usize) -> Self {
        SiteProfile {
            name: "storefront",
            k,
            paging: true,
            max_pages: Some(20),
            max_predicates: None,
            filter: FilterSupport::None,
            order_by_all: true,
            cost: CostModel::flat().with_ordered_cost(2),
        }
    }

    /// A full-featured aggregator: range filters, public `ORDER BY`,
    /// unlimited paging — every algorithm family is *feasible*, so only
    /// the cost model separates them. Deep paging is throttled hard
    /// (3 extra units per page turn): draining the system ranking is the
    /// one thing this site makes expensive.
    pub fn aggregator(k: usize) -> Self {
        SiteProfile {
            name: "aggregator",
            k,
            paging: true,
            max_pages: None,
            max_predicates: None,
            filter: FilterSupport::Range,
            order_by_all: true,
            cost: CostModel::flat().with_paged_cost(3),
        }
    }

    /// The canonical sweep, in increasing order of restriction. Used by
    /// the `capability_matrix` and `planner_cost` experiments and the
    /// planning test suite.
    pub fn catalog(k: usize) -> Vec<SiteProfile> {
        vec![
            SiteProfile::open_site(k),
            SiteProfile::aggregator(k),
            SiteProfile::flight_site(k),
            SiteProfile::classifieds(k),
            SiteProfile::storefront(k),
        ]
    }

    /// Materialize the profile over `dataset` with the given proprietary
    /// ranking: a [`SimServer`] that both *advertises* and *enforces* the
    /// profile's restrictions.
    pub fn build(&self, dataset: Dataset, system_rank: SystemRank) -> SimServer {
        let order_by = if self.order_by_all {
            dataset.schema().attr_ids().collect()
        } else {
            Vec::new()
        };
        let attrs: Vec<_> = dataset.schema().attr_ids().collect();
        let mut server = SimServer::new(dataset, system_rank, self.k);
        if self.paging {
            server = server.with_paging();
        }
        if let Some(p) = self.max_pages {
            server = server.with_max_pages(p);
        }
        if let Some(n) = self.max_predicates {
            server = server.with_max_predicates(n);
        }
        if self.filter != FilterSupport::Range {
            for a in attrs {
                server = server.with_filter_support(a, self.filter);
            }
        }
        server
            .with_order_by(order_by)
            .with_cost_model(self.cost.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::SearchInterface;
    use qrs_types::{
        AttrId, Capability, Interval, OrdinalAttr, Query, Schema, ServerError, Tuple, TupleId,
    };

    fn dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                OrdinalAttr::new("x", 0.0, 9.0),
                OrdinalAttr::new("y", 0.0, 9.0),
            ],
            vec![],
        );
        let tuples = (0..10)
            .map(|i| Tuple::new(TupleId(i), vec![f64::from(i), f64::from(9 - i)], vec![]))
            .collect();
        Dataset::new(schema, tuples).unwrap()
    }

    #[test]
    fn catalog_is_diverse_and_self_describing() {
        let names: Vec<_> = SiteProfile::catalog(5).iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "open_site",
                "aggregator",
                "flight_site",
                "classifieds",
                "storefront"
            ]
        );
    }

    #[test]
    fn built_servers_charge_by_the_profile_cost_model() {
        let storefront = SiteProfile::storefront(5).build(dataset(), SystemRank::pseudo_random(1));
        assert_eq!(storefront.capabilities().cost.ordered, 2);
        // One ordered page: base 1 + ordered 2.
        storefront
            .query_ordered(&Query::all(), AttrId(0), qrs_types::Direction::Asc, 0)
            .unwrap();
        assert_eq!(storefront.cost_units_issued(), 3);
        assert_eq!(storefront.queries_issued(), 1);

        let aggregator = SiteProfile::aggregator(5).build(dataset(), SystemRank::pseudo_random(1));
        assert!(aggregator.capabilities().supports(Capability::Paging));
        assert!(aggregator
            .capabilities()
            .supports(Capability::OrderBy(AttrId(0))));
        aggregator.query_page(&Query::all(), 0).unwrap();
        assert_eq!(aggregator.cost_units_issued(), 4);
    }

    #[test]
    fn built_servers_enforce_what_they_advertise() {
        let range_q = Query::all().and_range(AttrId(0), Interval::open(1.0, 5.0));

        let open = SiteProfile::open_site(5).build(dataset(), SystemRank::pseudo_random(1));
        assert!(open.query(&range_q).is_ok());
        assert!(open.capabilities().supports(Capability::PageDepth(10_000)));

        let classifieds =
            SiteProfile::classifieds(5).build(dataset(), SystemRank::pseudo_random(1));
        assert_eq!(
            classifieds.query(&range_q).unwrap_err(),
            ServerError::Unsupported(Capability::RangeFilter(AttrId(0)))
        );
        assert!(classifieds
            .query(&Query::all().and_range(AttrId(0), Interval::point(3.0)))
            .is_ok());

        let storefront = SiteProfile::storefront(5).build(dataset(), SystemRank::pseudo_random(1));
        assert_eq!(
            storefront
                .query(&Query::all().and_range(AttrId(0), Interval::point(3.0)))
                .unwrap_err(),
            ServerError::Unsupported(Capability::PointFilter(AttrId(0)))
        );
        assert!(storefront
            .capabilities()
            .supports(Capability::PageDepth(20)));
        assert!(!storefront
            .capabilities()
            .supports(Capability::PageDepth(21)));
        assert!(storefront
            .capabilities()
            .supports(Capability::OrderBy(AttrId(1))));

        let flight = SiteProfile::flight_site(5).build(dataset(), SystemRank::pseudo_random(1));
        assert!(!flight.capabilities().supports(Capability::Paging));
        assert!(!flight
            .capabilities()
            .supports(Capability::PredicateArity(4)));
        assert!(flight.query(&range_q).is_ok());
    }
}
