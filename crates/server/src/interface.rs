//! The restricted search interface (§2.1) as a trait.
//!
//! Everything `qrs-core` knows about the remote database goes through
//! [`SearchInterface`]. The trait is object-safe so reranking algorithms are
//! generic over the simulated server, the adversarial server, and any future
//! adapter to a real HTTP endpoint — which is why every query method returns
//! `Result`: a real adapter surfaces rate limits (429s) and transient
//! failures as [`ServerError`] instead of panicking inside the middleware.
//!
//! Optional features — page turns, public `ORDER BY` — are *negotiated*
//! through [`SearchInterface::capabilities`]: callers preflight
//! [`Capabilities::require`] and get a typed [`ServerError::Unsupported`]
//! (never a panic) when a server lacks the feature.

use qrs_types::{
    AttrId, Capability, CostModel, Direction, FilterSupport, MutationLog, Query, QueryResponse,
    Schema, ServerError, Tuple,
};
use std::sync::Arc;

/// One page of an `ORDER BY` query (§5 extension; supported only by servers
/// whose [`Capabilities`] advertise it).
#[derive(Debug, Clone)]
pub struct OrderedPage {
    /// Tuples ranked `[offset, offset + k)` among `R(q)` under the public
    /// ordering.
    pub tuples: Vec<Arc<Tuple>>,
    /// Whether more pages follow.
    pub has_more: bool,
}

/// The site model: what a search interface offers beyond one-shot top-k
/// queries, and where it is *more* restricted than the paper's baseline.
/// Returned by [`SearchInterface::capabilities`]; the single source of
/// truth for capability negotiation and for the `qrs-service` planner.
///
/// The default ([`Capabilities::none`]) is the paper's §2.1 interface:
/// no paging, no public `ORDER BY`, range predicates on every attribute,
/// unlimited conjunct arity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Capabilities {
    /// The interface supports page turns on the system ranking.
    pub paging: bool,
    /// Attributes the interface can publicly `ORDER BY` (§5).
    pub order_by: Vec<AttrId>,
    /// Deepest result page served per query (`None` = unlimited, given
    /// [`Capabilities::paging`]). Real sites commonly stop at a fixed
    /// depth — "showing results 1–1000".
    pub max_pages: Option<usize>,
    /// Largest page size (the interface `k`) the site serves, when it
    /// advertises one. Advisory: planners use it to bound how many tuples
    /// paging can ever surface (`max_pages · max_page_size`).
    pub max_page_size: Option<usize>,
    /// Cap on the number of predicates one conjunctive query may carry
    /// (`None` = unlimited). Flight sites typically allow only a few
    /// simultaneous search criteria.
    pub max_predicates: Option<usize>,
    /// Per-attribute filter-support overrides, sparse: an attribute absent
    /// here accepts full range predicates ([`FilterSupport::Range`]).
    pub filters: Vec<(AttrId, FilterSupport)>,
    /// How the site meters queries: per-query-class unit costs the server
    /// *charges by* and the planner ranks feasible algorithms with. The
    /// default ([`CostModel::flat`]) prices every query at one unit —
    /// weighted cost equals the paper's raw query count.
    pub cost: CostModel,
    /// The interface exposes a mutation (change-data-capture) feed:
    /// [`SearchInterface::mutation_seq`] watermarks plus
    /// [`SearchInterface::mutations_since`] deltas. Off by default — the
    /// paper's baseline site is frozen.
    pub mutation_feed: bool,
}

impl Capabilities {
    /// A bare top-k interface: no paging, no public `ORDER BY`, full range
    /// filtering — the paper's baseline assumption and the trait default.
    pub fn none() -> Self {
        Capabilities::default()
    }

    /// Builder: advertise page-turn support.
    pub fn with_paging(mut self) -> Self {
        self.paging = true;
        self
    }

    /// Builder: advertise public `ORDER BY` on `attrs`.
    pub fn with_order_by(mut self, attrs: Vec<AttrId>) -> Self {
        self.order_by = attrs;
        self
    }

    /// Builder: cap paging at `pages` result pages per query.
    pub fn with_max_pages(mut self, pages: usize) -> Self {
        self.max_pages = Some(pages);
        self
    }

    /// Builder: advertise the interface page size.
    pub fn with_max_page_size(mut self, k: usize) -> Self {
        self.max_page_size = Some(k);
        self
    }

    /// Builder: cap conjunct arity at `n` predicates per query.
    pub fn with_max_predicates(mut self, n: usize) -> Self {
        self.max_predicates = Some(n);
        self
    }

    /// Builder: restrict filter support on one attribute (replacing any
    /// earlier override for the same attribute).
    pub fn with_filter(mut self, attr: AttrId, support: FilterSupport) -> Self {
        self.filters.retain(|(a, _)| *a != attr);
        self.filters.push((attr, support));
        self
    }

    /// Builder: advertise a non-flat query cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Builder: advertise a mutation (change-data-capture) feed.
    pub fn with_mutation_feed(mut self) -> Self {
        self.mutation_feed = true;
        self
    }

    /// Filter support advertised for `attr` ([`FilterSupport::Range`] when
    /// no override is present).
    pub fn filter_support(&self, attr: AttrId) -> FilterSupport {
        self.filters
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Does this interface offer `cap`?
    pub fn supports(&self, cap: Capability) -> bool {
        match cap {
            Capability::Paging => self.paging,
            Capability::OrderBy(a) => self.order_by.contains(&a),
            Capability::RangeFilter(a) => self.filter_support(a).allows_range(),
            Capability::PointFilter(a) => self.filter_support(a).allows_point(),
            Capability::PredicateArity(n) => self.max_predicates.is_none_or(|cap| n <= cap),
            Capability::PageDepth(p) => self.paging && self.max_pages.is_none_or(|cap| p <= cap),
            Capability::MutationFeed => self.mutation_feed,
        }
    }

    /// Preflight check: `Ok(())` or the typed refusal.
    pub fn require(&self, cap: Capability) -> Result<(), ServerError> {
        if self.supports(cap) {
            Ok(())
        } else {
            Err(ServerError::Unsupported(cap))
        }
    }
}

/// A client-server database's public top-k search interface.
///
/// Every *successful* call to [`SearchInterface::query`],
/// [`SearchInterface::query_page`] or [`SearchInterface::query_ordered`]
/// costs one unit of the paper's query budget and increments
/// [`SearchInterface::queries_issued`]. Failed calls may or may not be
/// charged, at the adapter's discretion — the in-tree simulators do *not*
/// charge refused requests (the backend rejected them before doing any
/// work), while a real HTTP adapter may, since some sites count rejected
/// requests against quotas too.
pub trait SearchInterface: Send + Sync {
    /// Schema of the underlying database (public on real sites via the
    /// search form).
    fn schema(&self) -> &Arc<Schema>;

    /// The interface's `k`: maximum number of tuples per response.
    fn k(&self) -> usize;

    /// The optional features this interface offers. Defaults to
    /// [`Capabilities::none`] — a bare top-k interface.
    fn capabilities(&self) -> Capabilities {
        Capabilities::none()
    }

    /// Issue a conjunctive query; the response holds at most `k` tuples
    /// selected by the proprietary system ranking function.
    fn query(&self, q: &Query) -> Result<QueryResponse, ServerError>;

    /// Total number of queries issued so far — the cost metric of §2.2.
    fn queries_issued(&self) -> u64;

    /// Total weighted cost units charged so far, under the advertised
    /// [`CostModel`] ([`Capabilities::cost`]). Defaults to the raw query
    /// count — exactly right for servers on the flat model; metered
    /// servers (and decorators wrapping them) override to forward their
    /// weighted ledger.
    fn cost_units_issued(&self) -> u64 {
        self.queries_issued()
    }

    /// Page `page` (0-based) of the system-ranked answer to `q`.
    ///
    /// Default: `Err(ServerError::Unsupported(Capability::Paging))`;
    /// preflight with [`SearchInterface::capabilities`].
    fn query_page(&self, _q: &Query, _page: usize) -> Result<QueryResponse, ServerError> {
        Err(ServerError::Unsupported(Capability::Paging))
    }

    /// Page `page` of `R(q)` ordered publicly by `attr` in direction `dir`.
    ///
    /// Default: `Err(ServerError::Unsupported(Capability::OrderBy(attr)))`;
    /// preflight with [`SearchInterface::capabilities`].
    fn query_ordered(
        &self,
        _q: &Query,
        attr: AttrId,
        _dir: Direction,
        _page: usize,
    ) -> Result<OrderedPage, ServerError> {
        Err(ServerError::Unsupported(Capability::OrderBy(attr)))
    }

    /// The sequence number of the latest data change — the watermark
    /// clients cache knowledge under. Defaults to `0`: a frozen interface
    /// never advances, so all knowledge stays fresh forever.
    ///
    /// Watermark reads are metadata, not searches: they are never charged
    /// against the query budget.
    fn mutation_seq(&self) -> u64 {
        0
    }

    /// The data changes after watermark `since`, oldest first.
    ///
    /// Default: `Err(ServerError::Unsupported(Capability::MutationFeed))`;
    /// preflight with [`SearchInterface::capabilities`]. Like
    /// [`SearchInterface::mutation_seq`], feed polls are uncharged.
    fn mutations_since(&self, _since: u64) -> Result<MutationLog, ServerError> {
        Err(ServerError::Unsupported(Capability::MutationFeed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Bare(Arc<Schema>);

    impl SearchInterface for Bare {
        fn schema(&self) -> &Arc<Schema> {
            &self.0
        }
        fn k(&self) -> usize {
            1
        }
        fn query(&self, _q: &Query) -> Result<QueryResponse, ServerError> {
            Ok(QueryResponse::new(vec![], false))
        }
        fn queries_issued(&self) -> u64 {
            0
        }
    }

    #[test]
    fn defaults_refuse_instead_of_panicking() {
        let s = Bare(Arc::new(Schema::new(
            vec![qrs_types::OrdinalAttr::new("x", 0.0, 1.0)],
            vec![],
        )));
        assert_eq!(s.capabilities(), Capabilities::none());
        assert_eq!(
            s.query_page(&Query::all(), 0).unwrap_err(),
            ServerError::Unsupported(Capability::Paging)
        );
        assert_eq!(
            s.query_ordered(&Query::all(), AttrId(0), Direction::Asc, 0)
                .unwrap_err(),
            ServerError::Unsupported(Capability::OrderBy(AttrId(0)))
        );
        // A frozen interface never advances and refuses feed polls.
        assert_eq!(s.mutation_seq(), 0);
        assert_eq!(
            s.mutations_since(0).unwrap_err(),
            ServerError::Unsupported(Capability::MutationFeed)
        );
    }

    #[test]
    fn mutation_feed_negotiates() {
        assert!(!Capabilities::none().supports(Capability::MutationFeed));
        let caps = Capabilities::none().with_mutation_feed();
        assert!(caps.supports(Capability::MutationFeed));
        assert!(caps.require(Capability::MutationFeed).is_ok());
        assert_eq!(
            Capabilities::none()
                .require(Capability::MutationFeed)
                .unwrap_err(),
            ServerError::Unsupported(Capability::MutationFeed)
        );
    }

    #[test]
    fn site_model_restrictions_negotiate() {
        let caps = Capabilities::none()
            .with_paging()
            .with_max_pages(20)
            .with_max_page_size(10)
            .with_max_predicates(3)
            .with_filter(AttrId(0), FilterSupport::Point)
            .with_filter(AttrId(1), FilterSupport::None);
        // Filter lattice: overridden attrs degrade, others stay Range.
        assert!(caps.supports(Capability::PointFilter(AttrId(0))));
        assert!(!caps.supports(Capability::RangeFilter(AttrId(0))));
        assert!(!caps.supports(Capability::PointFilter(AttrId(1))));
        assert!(caps.supports(Capability::RangeFilter(AttrId(2))));
        // Arity cap.
        assert!(caps.supports(Capability::PredicateArity(3)));
        assert!(!caps.supports(Capability::PredicateArity(4)));
        // Page depth requires paging AND a deep-enough cap.
        assert!(caps.supports(Capability::PageDepth(20)));
        assert!(!caps.supports(Capability::PageDepth(21)));
        assert!(!Capabilities::none().supports(Capability::PageDepth(1)));
        // Unlimited paging supports any depth.
        assert!(Capabilities::none()
            .with_paging()
            .supports(Capability::PageDepth(1_000_000)));
        // Re-overriding a filter replaces, not appends.
        let caps = caps.with_filter(AttrId(0), FilterSupport::Range);
        assert!(caps.supports(Capability::RangeFilter(AttrId(0))));
        assert_eq!(caps.filters.iter().filter(|(a, _)| a.0 == 0).count(), 1);
    }

    #[test]
    fn capabilities_negotiation() {
        let caps = Capabilities::none()
            .with_paging()
            .with_order_by(vec![AttrId(1)]);
        assert!(caps.supports(Capability::Paging));
        assert!(caps.supports(Capability::OrderBy(AttrId(1))));
        assert!(!caps.supports(Capability::OrderBy(AttrId(0))));
        assert!(caps.require(Capability::Paging).is_ok());
        assert_eq!(
            caps.require(Capability::OrderBy(AttrId(0))).unwrap_err(),
            ServerError::Unsupported(Capability::OrderBy(AttrId(0)))
        );
    }
}
