//! The restricted search interface (§2.1) as a trait.
//!
//! Everything `qrs-core` knows about the remote database goes through
//! [`SearchInterface`]. The trait is object-safe so reranking algorithms are
//! generic over the simulated server, the adversarial server, and any future
//! adapter to a real HTTP endpoint — which is why every query method returns
//! `Result`: a real adapter surfaces rate limits (429s) and transient
//! failures as [`ServerError`] instead of panicking inside the middleware.
//!
//! Optional features — page turns, public `ORDER BY` — are *negotiated*
//! through [`SearchInterface::capabilities`]: callers preflight
//! [`Capabilities::require`] and get a typed [`ServerError::Unsupported`]
//! (never a panic) when a server lacks the feature.

use qrs_types::{AttrId, Capability, Direction, Query, QueryResponse, Schema, ServerError, Tuple};
use std::sync::Arc;

/// One page of an `ORDER BY` query (§5 extension; supported only by servers
/// whose [`Capabilities`] advertise it).
#[derive(Debug, Clone)]
pub struct OrderedPage {
    /// Tuples ranked `[offset, offset + k)` among `R(q)` under the public
    /// ordering.
    pub tuples: Vec<Arc<Tuple>>,
    /// Whether more pages follow.
    pub has_more: bool,
}

/// The optional features a search interface offers beyond one-shot top-k
/// queries. Returned by [`SearchInterface::capabilities`]; the single source
/// of truth for capability negotiation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Capabilities {
    /// The interface supports page turns on the system ranking.
    pub paging: bool,
    /// Attributes the interface can publicly `ORDER BY` (§5).
    pub order_by: Vec<AttrId>,
}

impl Capabilities {
    /// A bare top-k interface: no paging, no public `ORDER BY` — the
    /// paper's baseline assumption and the trait default.
    pub fn none() -> Self {
        Capabilities::default()
    }

    /// Builder: advertise page-turn support.
    pub fn with_paging(mut self) -> Self {
        self.paging = true;
        self
    }

    /// Builder: advertise public `ORDER BY` on `attrs`.
    pub fn with_order_by(mut self, attrs: Vec<AttrId>) -> Self {
        self.order_by = attrs;
        self
    }

    /// Does this interface offer `cap`?
    pub fn supports(&self, cap: Capability) -> bool {
        match cap {
            Capability::Paging => self.paging,
            Capability::OrderBy(a) => self.order_by.contains(&a),
        }
    }

    /// Preflight check: `Ok(())` or the typed refusal.
    pub fn require(&self, cap: Capability) -> Result<(), ServerError> {
        if self.supports(cap) {
            Ok(())
        } else {
            Err(ServerError::Unsupported(cap))
        }
    }
}

/// A client-server database's public top-k search interface.
///
/// Every *successful* call to [`SearchInterface::query`],
/// [`SearchInterface::query_page`] or [`SearchInterface::query_ordered`]
/// costs one unit of the paper's query budget and increments
/// [`SearchInterface::queries_issued`]. Failed calls may or may not be
/// charged, at the adapter's discretion — the in-tree simulators do *not*
/// charge refused requests (the backend rejected them before doing any
/// work), while a real HTTP adapter may, since some sites count rejected
/// requests against quotas too.
pub trait SearchInterface: Send + Sync {
    /// Schema of the underlying database (public on real sites via the
    /// search form).
    fn schema(&self) -> &Arc<Schema>;

    /// The interface's `k`: maximum number of tuples per response.
    fn k(&self) -> usize;

    /// The optional features this interface offers. Defaults to
    /// [`Capabilities::none`] — a bare top-k interface.
    fn capabilities(&self) -> Capabilities {
        Capabilities::none()
    }

    /// Issue a conjunctive query; the response holds at most `k` tuples
    /// selected by the proprietary system ranking function.
    fn query(&self, q: &Query) -> Result<QueryResponse, ServerError>;

    /// Total number of queries issued so far — the cost metric of §2.2.
    fn queries_issued(&self) -> u64;

    /// Page `page` (0-based) of the system-ranked answer to `q`.
    ///
    /// Default: `Err(ServerError::Unsupported(Capability::Paging))`;
    /// preflight with [`SearchInterface::capabilities`].
    fn query_page(&self, _q: &Query, _page: usize) -> Result<QueryResponse, ServerError> {
        Err(ServerError::Unsupported(Capability::Paging))
    }

    /// Page `page` of `R(q)` ordered publicly by `attr` in direction `dir`.
    ///
    /// Default: `Err(ServerError::Unsupported(Capability::OrderBy(attr)))`;
    /// preflight with [`SearchInterface::capabilities`].
    fn query_ordered(
        &self,
        _q: &Query,
        attr: AttrId,
        _dir: Direction,
        _page: usize,
    ) -> Result<OrderedPage, ServerError> {
        Err(ServerError::Unsupported(Capability::OrderBy(attr)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Bare(Arc<Schema>);

    impl SearchInterface for Bare {
        fn schema(&self) -> &Arc<Schema> {
            &self.0
        }
        fn k(&self) -> usize {
            1
        }
        fn query(&self, _q: &Query) -> Result<QueryResponse, ServerError> {
            Ok(QueryResponse::new(vec![], false))
        }
        fn queries_issued(&self) -> u64 {
            0
        }
    }

    #[test]
    fn defaults_refuse_instead_of_panicking() {
        let s = Bare(Arc::new(Schema::new(
            vec![qrs_types::OrdinalAttr::new("x", 0.0, 1.0)],
            vec![],
        )));
        assert_eq!(s.capabilities(), Capabilities::none());
        assert_eq!(
            s.query_page(&Query::all(), 0).unwrap_err(),
            ServerError::Unsupported(Capability::Paging)
        );
        assert_eq!(
            s.query_ordered(&Query::all(), AttrId(0), Direction::Asc, 0)
                .unwrap_err(),
            ServerError::Unsupported(Capability::OrderBy(AttrId(0)))
        );
    }

    #[test]
    fn capabilities_negotiation() {
        let caps = Capabilities::none()
            .with_paging()
            .with_order_by(vec![AttrId(1)]);
        assert!(caps.supports(Capability::Paging));
        assert!(caps.supports(Capability::OrderBy(AttrId(1))));
        assert!(!caps.supports(Capability::OrderBy(AttrId(0))));
        assert!(caps.require(Capability::Paging).is_ok());
        assert_eq!(
            caps.require(Capability::OrderBy(AttrId(0))).unwrap_err(),
            ServerError::Unsupported(Capability::OrderBy(AttrId(0)))
        );
    }
}
