//! The restricted search interface (§2.1) as a trait.
//!
//! Everything `qrs-core` knows about the remote database goes through
//! [`SearchInterface`]. The trait is object-safe so reranking algorithms are
//! generic over the simulated server, the adversarial server, and any future
//! adapter to a real HTTP endpoint.

use qrs_types::{AttrId, Direction, Query, QueryResponse, Schema, Tuple};
use std::sync::Arc;

/// One page of an `ORDER BY` query (§5 extension; supported only by servers
/// that advertise it).
#[derive(Debug, Clone)]
pub struct OrderedPage {
    /// Tuples ranked `[offset, offset + k)` among `R(q)` under the public
    /// ordering.
    pub tuples: Vec<Arc<Tuple>>,
    /// Whether more pages follow.
    pub has_more: bool,
}

/// A client-server database's public top-k search interface.
///
/// Every call to [`SearchInterface::query`], [`SearchInterface::query_page`]
/// or [`SearchInterface::query_ordered`] costs one unit of the paper's query
/// budget and increments [`SearchInterface::queries_issued`].
pub trait SearchInterface: Send + Sync {
    /// Schema of the underlying database (public on real sites via the
    /// search form).
    fn schema(&self) -> &Arc<Schema>;

    /// The interface's `k`: maximum number of tuples per response.
    fn k(&self) -> usize;

    /// Issue a conjunctive query; the response holds at most `k` tuples
    /// selected by the proprietary system ranking function.
    fn query(&self, q: &Query) -> QueryResponse;

    /// Total number of queries issued so far — the cost metric of §2.2.
    fn queries_issued(&self) -> u64;

    /// Whether the interface supports page turns on the system ranking.
    fn supports_paging(&self) -> bool {
        false
    }

    /// Page `page` (0-based) of the system-ranked answer to `q`.
    ///
    /// Default: unsupported (panics); call only if
    /// [`SearchInterface::supports_paging`].
    fn query_page(&self, _q: &Query, _page: usize) -> QueryResponse {
        unimplemented!("this interface does not support page turns")
    }

    /// Which attributes the interface can publicly `ORDER BY` (§5); empty by
    /// default.
    fn order_by_attrs(&self) -> Vec<AttrId> {
        Vec::new()
    }

    /// Page `page` of `R(q)` ordered publicly by `attr` in direction `dir`.
    ///
    /// Default: unsupported (panics); check [`SearchInterface::order_by_attrs`]
    /// first.
    fn query_ordered(&self, _q: &Query, _attr: AttrId, _dir: Direction, _page: usize) -> OrderedPage {
        unimplemented!("this interface does not support ORDER BY")
    }
}
