//! # qrs-server
//!
//! The substrate the paper's middleware runs against: an in-process
//! **client-server (hidden) database** exposing only the restricted search
//! interface of §2.1 — conjunctive range queries answered with at most `k`
//! tuples chosen by a *proprietary system ranking function* the reranker
//! knows nothing about.
//!
//! This replaces the paper's offline "Top-k web search interface constructed
//! over the DOT dataset" (§6.1) and the live Blue Nile / Yahoo! Autos
//! endpoints. It exactly preserves what matters to the algorithms:
//!
//! * the *underflow / valid / overflow* trichotomy,
//! * the opaque, possibly adversarial, system ranking,
//! * the **query counter** — the paper's one and only efficiency metric,
//! * optional extras real sites have — page turns and public `ORDER BY`
//!   ranking options (§5 "Multiple/Known System Ranking Functions") —
//!   advertised through [`Capabilities`] and *negotiated*, never assumed:
//!   a server that lacks a capability refuses with a typed
//!   [`qrs_types::ServerError`] instead of panicking,
//! * failure realism: rate limits and transient errors surface as
//!   `Result`s so real HTTP adapters slot in without panics,
//! * **fault injection**: [`FaultyServer`] wraps any interface and injects
//!   rate limits, outages and truncated pages from a deterministic,
//!   seeded schedule, with `retry_after_ms` windows enforceable against an
//!   injectable [`Clock`] — so retry/backoff machinery is tested end to
//!   end without wall-clock sleeping.
//!
//! [`adversary::AdversaryServer`] implements the query-answering mechanism
//! from the proof of Theorem 1, so the `n/k` lower bound is executable.

#![deny(missing_docs)]

pub mod adversary;
pub mod clock;
pub mod faulty;
pub mod interface;
pub mod latency;
pub mod profiles;
pub mod sim;
pub mod system_rank;

pub use adversary::AdversaryServer;
pub use clock::{Clock, MockClock, SystemClock};
pub use faulty::{Fault, FaultyServer};
pub use interface::{Capabilities, OrderedPage, SearchInterface};
pub use latency::LatencyServer;
pub use profiles::SiteProfile;
pub use sim::SimServer;
pub use system_rank::SystemRank;
