//! # qrs-datagen
//!
//! Seeded synthetic datasets and query workloads standing in for the paper's
//! data sources (see DESIGN.md §3 for the substitution argument):
//!
//! * [`mod@flights`] — the DOT on-time dataset (§6.1): 457,013 rows, 8 ranking
//!   attributes with the published domain sizes, heavy-tailed delays,
//!   distance↔air-time correlation,
//! * [`mod@diamonds`] — Blue Nile (§6.1): 117,641 rows, published attribute
//!   domains, power-law price↔carat correlation,
//! * [`mod@autos`] — Yahoo! Autos (§6.1): 13,169 rows, anti-correlated
//!   price↔mileage,
//! * [`synthetic`] — uniform / clustered / correlated generators for
//!   ablations (dense-region stress, Theorem-1-style skew),
//! * [`workload`] — the user-preference query workloads of §6.2/§6.3.
//!
//! Everything is deterministic given a seed, so experiments are replayable.

pub mod autos;
pub mod diamonds;
pub mod dist;
pub mod flights;
pub mod synthetic;
pub mod workload;

pub use autos::autos;
pub use diamonds::diamonds;
pub use flights::flights;
pub use workload::{md_workload, one_d_workload, MdUserQuery, OneDUserQuery, WorkloadConfig};
