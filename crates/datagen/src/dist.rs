//! Small distribution toolkit over `rand` primitives.
//!
//! Only the pre-approved `rand` crate is available (no `rand_distr`), so the
//! couple of shapes the generators need — truncated normal, bounded power
//! law, discrete grids — are implemented here from uniform deviates.

use rand::RngExt;

/// Standard normal deviate via Box–Muller (one value per call; simple and
/// plenty fast for dataset generation).
pub fn std_normal(rng: &mut impl RngExt) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Normal with mean/σ, resampled (up to a bound) into `[lo, hi]`, then
/// clamped. Produces the mild bell shapes of taxi times and elapsed-time
/// noise.
pub fn truncated_normal(rng: &mut impl RngExt, mean: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    for _ in 0..16 {
        let v = mean + sigma * std_normal(rng);
        if (lo..=hi).contains(&v) {
            return v;
        }
    }
    (mean + sigma * std_normal(rng)).clamp(lo, hi)
}

/// Bounded power-law (Pareto-ish) deviate on `[lo, hi]` with tail exponent
/// `alpha > 0`: density ∝ x^-(alpha+1). Heavy-tailed — most mass near `lo`.
/// Models flight delays, diamond carats, and the dense-region skew of
/// Theorem 1's bad cases.
pub fn bounded_power_law(rng: &mut impl RngExt, lo: f64, hi: f64, alpha: f64) -> f64 {
    debug_assert!(0.0 < lo && lo < hi);
    debug_assert!(alpha > 0.0);
    // Inverse-CDF of the truncated Pareto.
    let u: f64 = rng.random();
    let la = lo.powf(-alpha);
    let ha = hi.powf(-alpha);
    (la - u * (la - ha)).powf(-1.0 / alpha)
}

/// Snap a continuous value onto a `size`-point uniform grid over `[lo, hi]`
/// (inclusive endpoints). Used to reproduce the paper's *domain sizes* (e.g.
/// Taxi-Out has 180 distinct values) so ties and discrete domains actually
/// occur, exercising the §5 tie-handling machinery.
pub fn to_grid(v: f64, lo: f64, hi: f64, size: usize) -> f64 {
    debug_assert!(size >= 2);
    let steps = (size - 1) as f64;
    let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    lo + (frac * steps).round() / steps * (hi - lo)
}

/// Zipf-like categorical code in `0..card`: code 0 most frequent.
pub fn zipf_code(rng: &mut impl RngExt, card: u32, skew: f64) -> u32 {
    debug_assert!(card >= 1);
    // Inverse-transform on the (unnormalized) Zipf CDF, approximated through
    // the continuous power law; adequate for filter-attribute realism.
    let x = bounded_power_law(rng, 1.0, card as f64 + 1.0, skew);
    (x as u32 - 1).min(card - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn std_normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| std_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = truncated_normal(&mut r, 10.0, 5.0, 0.0, 12.0);
            assert!((0.0..=12.0).contains(&v));
        }
    }

    #[test]
    fn power_law_is_heavy_tailed_and_bounded() {
        let mut r = rng();
        let n = 10_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| bounded_power_law(&mut r, 1.0, 1000.0, 1.2))
            .collect();
        assert!(samples.iter().all(|&v| (1.0..=1000.0).contains(&v)));
        let below_10 = samples.iter().filter(|&&v| v < 10.0).count();
        // Most of the mass near the low end.
        assert!(below_10 as f64 > 0.8 * n as f64, "below_10 = {below_10}");
        // But the tail is populated.
        assert!(samples.iter().any(|&v| v > 100.0));
    }

    #[test]
    fn grid_produces_exact_domain() {
        // 5-point grid on [0, 1]: {0, .25, .5, .75, 1}.
        assert_eq!(to_grid(0.13, 0.0, 1.0, 5), 0.25);
        assert_eq!(to_grid(0.99, 0.0, 1.0, 5), 1.0);
        assert_eq!(to_grid(-3.0, 0.0, 1.0, 5), 0.0);
        let mut r = rng();
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let v = to_grid(r.random::<f64>(), 0.0, 1.0, 5);
            distinct.insert((v * 1e9) as i64);
        }
        assert!(distinct.len() <= 5);
    }

    #[test]
    fn zipf_codes_in_range_and_skewed() {
        let mut r = rng();
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            let c = zipf_code(&mut r, 8, 1.0);
            counts[c as usize] += 1;
        }
        assert!(counts[0] > counts[7]);
        assert!(counts.iter().sum::<usize>() == 8000);
    }
}
