//! Parametric synthetic datasets for ablations and property tests.
//!
//! These isolate the phenomena the paper's analysis talks about:
//!
//! * [`uniform`] — the friendly case where 1D-BINARY costs `O(log(|R(q)|/k))`,
//! * [`clustered`] — Gaussian clusters producing *dense regions* (§3.2), the
//!   workload that justifies on-the-fly indexing,
//! * [`correlated`] — tunable pairwise correlation, the knob behind the
//!   SR1-vs-SR2 and Yahoo!-Autos effects,
//! * [`discrete_grid`] — coarse domains with heavy ties, stressing the §5
//!   general-positioning post-processing.

use crate::dist::{std_normal, truncated_normal};
use qrs_types::{CatAttr, Dataset, OrdinalAttr, Schema, Tuple, TupleId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn plain_schema(m: usize, cats: usize) -> Schema {
    Schema::new(
        (0..m)
            .map(|i| OrdinalAttr::new(format!("a{i}"), 0.0, 1.0))
            .collect(),
        (0..cats)
            .map(|i| CatAttr::new(format!("c{i}"), 4))
            .collect(),
    )
}

/// `n` tuples uniform on `[0,1]^m`, with `cats` 4-valued filter attributes.
pub fn uniform(n: usize, m: usize, cats: usize, seed: u64) -> Dataset {
    let schema = plain_schema(m, cats);
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(
                TupleId(i as u32),
                (0..m).map(|_| rng.random::<f64>()).collect(),
                (0..cats).map(|_| rng.random_range(0..4)).collect(),
            )
        })
        .collect();
    Dataset::new_unchecked(schema, tuples)
}

/// `n` tuples drawn from `clusters` Gaussian blobs on `[0,1]^m` (σ =
/// `spread`), plus 10% uniform background. Small `spread` ⇒ sharp dense
/// regions.
pub fn clustered(n: usize, m: usize, clusters: usize, spread: f64, seed: u64) -> Dataset {
    assert!(clusters >= 1);
    let schema = plain_schema(m, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..m).map(|_| 0.1 + 0.8 * rng.random::<f64>()).collect())
        .collect();
    let tuples = (0..n)
        .map(|i| {
            let ord: Vec<f64> = if rng.random::<f64>() < 0.1 {
                (0..m).map(|_| rng.random::<f64>()).collect()
            } else {
                let c = &centers[rng.random_range(0..clusters)];
                c.iter()
                    .map(|&mu| truncated_normal(&mut rng, mu, spread, 0.0, 1.0))
                    .collect()
            };
            Tuple::new(TupleId(i as u32), ord, vec![rng.random_range(0..4)])
        })
        .collect();
    Dataset::new_unchecked(schema, tuples)
}

/// `n` 2D tuples with Pearson correlation ≈ `rho` (negative for the
/// anti-correlated regime of Fig. 14/17), mapped onto `[0,1]²`.
pub fn correlated(n: usize, rho: f64, seed: u64) -> Dataset {
    assert!((-1.0..=1.0).contains(&rho));
    let schema = plain_schema(2, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples = (0..n)
        .map(|i| {
            let z1 = std_normal(&mut rng);
            let z2 = std_normal(&mut rng);
            let x = z1;
            let y = rho * z1 + (1.0 - rho * rho).sqrt() * z2;
            // Squash to [0,1] via the logistic of the standardized values.
            let sq = |v: f64| 1.0 / (1.0 + (-v).exp());
            Tuple::new(
                TupleId(i as u32),
                vec![sq(x), sq(y)],
                vec![rng.random_range(0..4)],
            )
        })
        .collect();
    Dataset::new_unchecked(schema, tuples)
}

/// `n` 2D tuples with `frac` of them packed into a tight Gaussian (σ =
/// `sigma`) *at the low end* of attribute 0 (center 3σ above the domain
/// minimum), the rest uniform above it. Top-h queries on attribute 0 dive
/// straight into the dense region — the §3.2.2 worst case the on-the-fly
/// index exists for.
pub fn dense_floor(n: usize, frac: f64, sigma: f64, seed: u64) -> Dataset {
    assert!((0.0..=1.0).contains(&frac));
    let schema = plain_schema(2, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let center = 3.0 * sigma;
    let tuples = (0..n)
        .map(|i| {
            let x = if rng.random::<f64>() < frac {
                truncated_normal(&mut rng, center, sigma, 0.0, 1.0)
            } else {
                center + (1.0 - center) * rng.random::<f64>()
            };
            Tuple::new(
                TupleId(i as u32),
                vec![x, rng.random::<f64>()],
                vec![rng.random_range(0..4)],
            )
        })
        .collect();
    Dataset::new_unchecked(schema, tuples)
}

/// `n` tuples on an integer grid `{0, 1, …, levels-1}^m` (stored as f64) —
/// maximal ties; exercises slab handling and exact-duplicate groups.
pub fn discrete_grid(n: usize, m: usize, levels: u32, seed: u64) -> Dataset {
    assert!(levels >= 2);
    let schema = Schema::new(
        (0..m)
            .map(|i| OrdinalAttr::new(format!("g{i}"), 0.0, f64::from(levels - 1)))
            .collect(),
        vec![CatAttr::new("c0", 4)],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(
                TupleId(i as u32),
                (0..m)
                    .map(|_| f64::from(rng.random_range(0..levels)))
                    .collect(),
                vec![rng.random_range(0..4)],
            )
        })
        .collect();
    Dataset::new_unchecked(schema, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrs_types::AttrId;

    #[test]
    fn uniform_covers_space() {
        let d = uniform(2000, 2, 1, 3);
        assert_eq!(d.len(), 2000);
        let (lo, hi) = d.attr_extent(AttrId(0)).unwrap();
        assert!(lo < 0.05 && hi > 0.95);
    }

    #[test]
    fn clustered_has_dense_regions() {
        let d = clustered(4000, 1, 2, 0.01, 4);
        // Some narrow window should hold far more than the uniform share.
        let mut vals: Vec<f64> = d.tuples().iter().map(|t| t.ord(AttrId(0))).collect();
        vals.sort_by(f64::total_cmp);
        let window = 0.02;
        let mut max_in_window = 0usize;
        let mut j = 0;
        for i in 0..vals.len() {
            while vals[i] - vals[j] > window {
                j += 1;
            }
            max_in_window = max_in_window.max(i - j + 1);
        }
        // Uniform share of a 2% window would be ~80 tuples.
        assert!(max_in_window > 800, "max_in_window = {max_in_window}");
    }

    #[test]
    fn correlated_hits_target_sign() {
        for rho in [-0.9, 0.9] {
            let d = correlated(4000, rho, 5);
            let xs: Vec<f64> = d.tuples().iter().map(|t| t.ord(AttrId(0))).collect();
            let ys: Vec<f64> = d.tuples().iter().map(|t| t.ord(AttrId(1))).collect();
            let n = xs.len() as f64;
            let mx = xs.iter().sum::<f64>() / n;
            let my = ys.iter().sum::<f64>() / n;
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
            let r = cov / (vx.sqrt() * vy.sqrt());
            assert!(
                r.signum() == rho.signum() && r.abs() > 0.6,
                "rho {rho} r {r}"
            );
        }
    }

    #[test]
    fn dense_floor_packs_the_low_end() {
        let d = dense_floor(2000, 0.4, 0.001, 7);
        let low = d
            .tuples()
            .iter()
            .filter(|t| t.ord(AttrId(0)) < 0.01)
            .count();
        assert!(low > 600, "low = {low}");
        let (lo, hi) = d.attr_extent(AttrId(0)).unwrap();
        assert!(lo >= 0.0 && hi > 0.9);
    }

    #[test]
    fn grid_has_many_ties() {
        let d = discrete_grid(1000, 2, 4, 6);
        let mut distinct = std::collections::BTreeSet::new();
        for t in d.tuples() {
            distinct.insert((t.ord(AttrId(0)).to_bits(), t.ord(AttrId(1)).to_bits()));
        }
        assert!(distinct.len() <= 16);
    }
}
