//! Synthetic stand-in for the Yahoo! Autos listings (§6.1).
//!
//! The paper: 13,169 used cars within 30 miles of New York City; ranking
//! attributes Price ∈ [$0, $50,000], Mileage ∈ [0, 300,000] and Year ∈
//! [1993, 2016]; filter attributes BodyStyle, DriveType, Transmission, Name,
//! Model. The default system ranking ("distance from a predefined location")
//! is non-monotonic — reproduced by a pseudo-random system rank in the
//! experiments. The key statistical feature the MD experiments hinge on is
//! the *anti-correlation* between price and mileage (old, high-mileage cars
//! are cheap), which makes TA-style per-attribute access expensive.

use crate::dist::{truncated_normal, zipf_code};
use qrs_types::{CatAttr, Dataset, OrdinalAttr, Schema, Tuple, TupleId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Ranking attribute indices.
pub mod attr {
    use qrs_types::AttrId;
    pub const PRICE: AttrId = AttrId(0);
    pub const MILEAGE: AttrId = AttrId(1);
    pub const YEAR: AttrId = AttrId(2);
}

/// Filter attribute indices.
pub mod cat {
    use qrs_types::CatId;
    pub const BODY_STYLE: CatId = CatId(0);
    pub const DRIVE_TYPE: CatId = CatId(1);
    pub const TRANSMISSION: CatId = CatId(2);
    pub const NAME: CatId = CatId(3);
    pub const MODEL: CatId = CatId(4);
}

/// Listing count at the time of the paper's live experiment.
pub const FULL_SIZE: usize = 13_169;

fn schema() -> Schema {
    Schema::new(
        vec![
            OrdinalAttr::new("price", 0.0, 50_000.0),
            OrdinalAttr::new("mileage", 0.0, 300_000.0),
            OrdinalAttr::new("year", 1993.0, 2016.0),
        ],
        vec![
            CatAttr::new("body_style", 6),
            CatAttr::new("drive_type", 3),
            CatAttr::new("transmission", 2),
            CatAttr::new("name", 20),
            CatAttr::new("model", 40),
        ],
    )
}

/// Generate `n` synthetic listings (pass [`FULL_SIZE`] for paper scale).
pub fn autos(n: usize, seed: u64) -> Dataset {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples = (0..n).map(|i| gen_car(&mut rng, i as u32)).collect();
    Dataset::new_unchecked(schema, tuples)
}

fn gen_car(rng: &mut StdRng, id: u32) -> Tuple {
    // Age drives everything: uniform-ish with more recent listings.
    let age = (23.0 * rng.random::<f64>().powf(1.4)).floor(); // 0..23 years
    let year = 2016.0 - age;
    // Mileage grows with age: ~12k/year with spread, capped at the domain.
    let mileage = truncated_normal(
        rng,
        12_000.0 * (age + 0.5),
        9_000.0 + 2_500.0 * age,
        0.0,
        300_000.0,
    );
    // Price decays with age and mileage: anti-correlated by construction.
    let base = truncated_normal(rng, 34_000.0, 9_000.0, 4_000.0, 50_000.0);
    let decay = (-0.16 * age - mileage / 320_000.0).exp();
    let price =
        (base * decay + truncated_normal(rng, 0.0, 900.0, -2_500.0, 2_500.0)).clamp(0.0, 50_000.0);

    let ord = vec![
        (price / 50.0).round() * 50.0, // listings priced to $50 granularity
        (mileage / 100.0).round() * 100.0,
        year,
    ];
    let model_per_make = 2; // model codes loosely tied to make
    let make = zipf_code(rng, 20, 0.6);
    let model = (make * model_per_make + rng.random_range(0..model_per_make)).min(39);
    let cats = vec![
        zipf_code(rng, 6, 0.7),
        rng.random_range(0..3),
        if rng.random::<f64>() < 0.85 { 0 } else { 1 },
        make,
        model,
    ];
    Tuple::new(TupleId(id), ord, cats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_respected() {
        let d = autos(3000, 11);
        for t in d.tuples() {
            assert!((0.0..=50_000.0).contains(&t.ord(attr::PRICE)));
            assert!((0.0..=300_000.0).contains(&t.ord(attr::MILEAGE)));
            assert!((1993.0..=2016.0).contains(&t.ord(attr::YEAR)));
        }
    }

    #[test]
    fn price_mileage_anticorrelated() {
        let d = autos(5000, 12);
        let xs: Vec<f64> = d.tuples().iter().map(|t| t.ord(attr::PRICE)).collect();
        let ys: Vec<f64> = d.tuples().iter().map(|t| t.ord(attr::MILEAGE)).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        let r = cov / (vx.sqrt() * vy.sqrt());
        assert!(r < -0.5, "correlation {r} not strongly negative");
    }

    #[test]
    fn newer_cars_cost_more() {
        let d = autos(5000, 13);
        let new_avg = avg(&d, |t| t.ord(attr::YEAR) >= 2014.0);
        let old_avg = avg(&d, |t| t.ord(attr::YEAR) <= 2000.0);
        assert!(new_avg > 2.0 * old_avg, "new {new_avg} old {old_avg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            autos(50, 1).tuples()[9].ords(),
            autos(50, 1).tuples()[9].ords()
        );
    }

    fn avg(d: &Dataset, pred: impl Fn(&Tuple) -> bool) -> f64 {
        let v: Vec<f64> = d
            .tuples()
            .iter()
            .filter(|t| pred(t))
            .map(|t| t.ord(attr::PRICE))
            .collect();
        assert!(!v.is_empty());
        v.iter().sum::<f64>() / v.len() as f64
    }
}
